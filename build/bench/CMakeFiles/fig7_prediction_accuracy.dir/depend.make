# Empty dependencies file for fig7_prediction_accuracy.
# This may be replaced when dependencies are built.
