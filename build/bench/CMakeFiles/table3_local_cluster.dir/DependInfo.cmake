
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_local_cluster.cpp" "bench/CMakeFiles/table3_local_cluster.dir/table3_local_cluster.cpp.o" "gcc" "bench/CMakeFiles/table3_local_cluster.dir/table3_local_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/textmr_benchutil.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/textmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/textgen/CMakeFiles/textmr_textgen.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/textmr_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/textmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/freqbuf/CMakeFiles/textmr_freqbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/textmr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/textmr_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/textmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
