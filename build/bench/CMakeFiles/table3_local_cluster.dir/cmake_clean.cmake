file(REMOVE_RECURSE
  "CMakeFiles/table3_local_cluster.dir/table3_local_cluster.cpp.o"
  "CMakeFiles/table3_local_cluster.dir/table3_local_cluster.cpp.o.d"
  "table3_local_cluster"
  "table3_local_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_local_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
