# Empty compiler generated dependencies file for table3_local_cluster.
# This may be replaced when dependencies are built.
