# Empty dependencies file for fig10_syntext_grid.
# This may be replaced when dependencies are built.
