file(REMOVE_RECURSE
  "libtextmr_benchutil.a"
)
