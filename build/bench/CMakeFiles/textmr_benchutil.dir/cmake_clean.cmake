file(REMOVE_RECURSE
  "CMakeFiles/textmr_benchutil.dir/bench_util.cpp.o"
  "CMakeFiles/textmr_benchutil.dir/bench_util.cpp.o.d"
  "libtextmr_benchutil.a"
  "libtextmr_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
