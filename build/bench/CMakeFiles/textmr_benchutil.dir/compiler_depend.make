# Empty compiler generated dependencies file for textmr_benchutil.
# This may be replaced when dependencies are built.
