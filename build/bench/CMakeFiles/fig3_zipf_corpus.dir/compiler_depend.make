# Empty compiler generated dependencies file for fig3_zipf_corpus.
# This may be replaced when dependencies are built.
