file(REMOVE_RECURSE
  "CMakeFiles/fig3_zipf_corpus.dir/fig3_zipf_corpus.cpp.o"
  "CMakeFiles/fig3_zipf_corpus.dir/fig3_zipf_corpus.cpp.o.d"
  "fig3_zipf_corpus"
  "fig3_zipf_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_zipf_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
