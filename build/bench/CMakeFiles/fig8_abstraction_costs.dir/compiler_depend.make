# Empty compiler generated dependencies file for fig8_abstraction_costs.
# This may be replaced when dependencies are built.
