file(REMOVE_RECURSE
  "CMakeFiles/fig8_abstraction_costs.dir/fig8_abstraction_costs.cpp.o"
  "CMakeFiles/fig8_abstraction_costs.dir/fig8_abstraction_costs.cpp.o.d"
  "fig8_abstraction_costs"
  "fig8_abstraction_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_abstraction_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
