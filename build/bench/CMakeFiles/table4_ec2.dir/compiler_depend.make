# Empty compiler generated dependencies file for table4_ec2.
# This may be replaced when dependencies are built.
