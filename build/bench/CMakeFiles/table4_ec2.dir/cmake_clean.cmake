file(REMOVE_RECURSE
  "CMakeFiles/table4_ec2.dir/table4_ec2.cpp.o"
  "CMakeFiles/table4_ec2.dir/table4_ec2.cpp.o.d"
  "table4_ec2"
  "table4_ec2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_ec2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
