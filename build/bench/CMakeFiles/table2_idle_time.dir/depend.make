# Empty dependencies file for table2_idle_time.
# This may be replaced when dependencies are built.
