file(REMOVE_RECURSE
  "CMakeFiles/fig9_wait_time.dir/fig9_wait_time.cpp.o"
  "CMakeFiles/fig9_wait_time.dir/fig9_wait_time.cpp.o.d"
  "fig9_wait_time"
  "fig9_wait_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_wait_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
