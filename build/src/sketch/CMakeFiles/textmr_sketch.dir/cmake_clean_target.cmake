file(REMOVE_RECURSE
  "libtextmr_sketch.a"
)
