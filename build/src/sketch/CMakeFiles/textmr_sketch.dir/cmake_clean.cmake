file(REMOVE_RECURSE
  "CMakeFiles/textmr_sketch.dir/space_saving.cpp.o"
  "CMakeFiles/textmr_sketch.dir/space_saving.cpp.o.d"
  "CMakeFiles/textmr_sketch.dir/zipf_estimator.cpp.o"
  "CMakeFiles/textmr_sketch.dir/zipf_estimator.cpp.o.d"
  "libtextmr_sketch.a"
  "libtextmr_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
