# Empty compiler generated dependencies file for textmr_sketch.
# This may be replaced when dependencies are built.
