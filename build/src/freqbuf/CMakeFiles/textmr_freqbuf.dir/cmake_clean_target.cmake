file(REMOVE_RECURSE
  "libtextmr_freqbuf.a"
)
