file(REMOVE_RECURSE
  "CMakeFiles/textmr_freqbuf.dir/controller.cpp.o"
  "CMakeFiles/textmr_freqbuf.dir/controller.cpp.o.d"
  "CMakeFiles/textmr_freqbuf.dir/frequent_key_table.cpp.o"
  "CMakeFiles/textmr_freqbuf.dir/frequent_key_table.cpp.o.d"
  "libtextmr_freqbuf.a"
  "libtextmr_freqbuf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_freqbuf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
