# Empty compiler generated dependencies file for textmr_freqbuf.
# This may be replaced when dependencies are built.
