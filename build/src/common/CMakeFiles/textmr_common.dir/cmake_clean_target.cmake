file(REMOVE_RECURSE
  "libtextmr_common.a"
)
