file(REMOVE_RECURSE
  "CMakeFiles/textmr_common.dir/logging.cpp.o"
  "CMakeFiles/textmr_common.dir/logging.cpp.o.d"
  "CMakeFiles/textmr_common.dir/tempdir.cpp.o"
  "CMakeFiles/textmr_common.dir/tempdir.cpp.o.d"
  "CMakeFiles/textmr_common.dir/zipf.cpp.o"
  "CMakeFiles/textmr_common.dir/zipf.cpp.o.d"
  "libtextmr_common.a"
  "libtextmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
