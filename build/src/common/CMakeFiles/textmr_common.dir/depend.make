# Empty dependencies file for textmr_common.
# This may be replaced when dependencies are built.
