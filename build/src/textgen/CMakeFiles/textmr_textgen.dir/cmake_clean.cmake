file(REMOVE_RECURSE
  "CMakeFiles/textmr_textgen.dir/corpus_gen.cpp.o"
  "CMakeFiles/textmr_textgen.dir/corpus_gen.cpp.o.d"
  "CMakeFiles/textmr_textgen.dir/graphgen.cpp.o"
  "CMakeFiles/textmr_textgen.dir/graphgen.cpp.o.d"
  "CMakeFiles/textmr_textgen.dir/loggen.cpp.o"
  "CMakeFiles/textmr_textgen.dir/loggen.cpp.o.d"
  "libtextmr_textgen.a"
  "libtextmr_textgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_textgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
