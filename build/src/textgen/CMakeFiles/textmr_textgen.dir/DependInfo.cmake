
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textgen/corpus_gen.cpp" "src/textgen/CMakeFiles/textmr_textgen.dir/corpus_gen.cpp.o" "gcc" "src/textgen/CMakeFiles/textmr_textgen.dir/corpus_gen.cpp.o.d"
  "/root/repo/src/textgen/graphgen.cpp" "src/textgen/CMakeFiles/textmr_textgen.dir/graphgen.cpp.o" "gcc" "src/textgen/CMakeFiles/textmr_textgen.dir/graphgen.cpp.o.d"
  "/root/repo/src/textgen/loggen.cpp" "src/textgen/CMakeFiles/textmr_textgen.dir/loggen.cpp.o" "gcc" "src/textgen/CMakeFiles/textmr_textgen.dir/loggen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/textmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/textmr_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
