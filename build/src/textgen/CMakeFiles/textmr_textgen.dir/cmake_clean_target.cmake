file(REMOVE_RECURSE
  "libtextmr_textgen.a"
)
