# Empty dependencies file for textmr_textgen.
# This may be replaced when dependencies are built.
