file(REMOVE_RECURSE
  "CMakeFiles/textmr_apps.dir/access_log.cpp.o"
  "CMakeFiles/textmr_apps.dir/access_log.cpp.o.d"
  "CMakeFiles/textmr_apps.dir/pagerank.cpp.o"
  "CMakeFiles/textmr_apps.dir/pagerank.cpp.o.d"
  "CMakeFiles/textmr_apps.dir/pos_tag.cpp.o"
  "CMakeFiles/textmr_apps.dir/pos_tag.cpp.o.d"
  "CMakeFiles/textmr_apps.dir/syntext.cpp.o"
  "CMakeFiles/textmr_apps.dir/syntext.cpp.o.d"
  "libtextmr_apps.a"
  "libtextmr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
