# Empty dependencies file for textmr_apps.
# This may be replaced when dependencies are built.
