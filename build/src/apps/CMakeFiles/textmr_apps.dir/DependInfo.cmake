
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/access_log.cpp" "src/apps/CMakeFiles/textmr_apps.dir/access_log.cpp.o" "gcc" "src/apps/CMakeFiles/textmr_apps.dir/access_log.cpp.o.d"
  "/root/repo/src/apps/pagerank.cpp" "src/apps/CMakeFiles/textmr_apps.dir/pagerank.cpp.o" "gcc" "src/apps/CMakeFiles/textmr_apps.dir/pagerank.cpp.o.d"
  "/root/repo/src/apps/pos_tag.cpp" "src/apps/CMakeFiles/textmr_apps.dir/pos_tag.cpp.o" "gcc" "src/apps/CMakeFiles/textmr_apps.dir/pos_tag.cpp.o.d"
  "/root/repo/src/apps/syntext.cpp" "src/apps/CMakeFiles/textmr_apps.dir/syntext.cpp.o" "gcc" "src/apps/CMakeFiles/textmr_apps.dir/syntext.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/textmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/textmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/freqbuf/CMakeFiles/textmr_freqbuf.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/textmr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/textmr_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
