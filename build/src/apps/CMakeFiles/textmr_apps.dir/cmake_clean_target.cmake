file(REMOVE_RECURSE
  "libtextmr_apps.a"
)
