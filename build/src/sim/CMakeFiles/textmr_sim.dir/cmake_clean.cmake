file(REMOVE_RECURSE
  "CMakeFiles/textmr_sim.dir/cluster.cpp.o"
  "CMakeFiles/textmr_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/textmr_sim.dir/pipeline.cpp.o"
  "CMakeFiles/textmr_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/textmr_sim.dir/profile.cpp.o"
  "CMakeFiles/textmr_sim.dir/profile.cpp.o.d"
  "libtextmr_sim.a"
  "libtextmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
