# Empty compiler generated dependencies file for textmr_sim.
# This may be replaced when dependencies are built.
