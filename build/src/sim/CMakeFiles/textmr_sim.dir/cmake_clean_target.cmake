file(REMOVE_RECURSE
  "libtextmr_sim.a"
)
