# Empty dependencies file for textmr_io.
# This may be replaced when dependencies are built.
