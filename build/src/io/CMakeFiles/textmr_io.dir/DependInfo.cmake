
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/dfs.cpp" "src/io/CMakeFiles/textmr_io.dir/dfs.cpp.o" "gcc" "src/io/CMakeFiles/textmr_io.dir/dfs.cpp.o.d"
  "/root/repo/src/io/line_reader.cpp" "src/io/CMakeFiles/textmr_io.dir/line_reader.cpp.o" "gcc" "src/io/CMakeFiles/textmr_io.dir/line_reader.cpp.o.d"
  "/root/repo/src/io/spill_file.cpp" "src/io/CMakeFiles/textmr_io.dir/spill_file.cpp.o" "gcc" "src/io/CMakeFiles/textmr_io.dir/spill_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/textmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
