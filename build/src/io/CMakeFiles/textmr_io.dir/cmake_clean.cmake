file(REMOVE_RECURSE
  "CMakeFiles/textmr_io.dir/dfs.cpp.o"
  "CMakeFiles/textmr_io.dir/dfs.cpp.o.d"
  "CMakeFiles/textmr_io.dir/line_reader.cpp.o"
  "CMakeFiles/textmr_io.dir/line_reader.cpp.o.d"
  "CMakeFiles/textmr_io.dir/spill_file.cpp.o"
  "CMakeFiles/textmr_io.dir/spill_file.cpp.o.d"
  "libtextmr_io.a"
  "libtextmr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
