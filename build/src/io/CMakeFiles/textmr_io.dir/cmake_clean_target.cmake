file(REMOVE_RECURSE
  "libtextmr_io.a"
)
