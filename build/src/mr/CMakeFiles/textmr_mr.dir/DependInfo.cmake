
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/engine.cpp" "src/mr/CMakeFiles/textmr_mr.dir/engine.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/engine.cpp.o.d"
  "/root/repo/src/mr/map_task.cpp" "src/mr/CMakeFiles/textmr_mr.dir/map_task.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/map_task.cpp.o.d"
  "/root/repo/src/mr/merger.cpp" "src/mr/CMakeFiles/textmr_mr.dir/merger.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/merger.cpp.o.d"
  "/root/repo/src/mr/metrics.cpp" "src/mr/CMakeFiles/textmr_mr.dir/metrics.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/metrics.cpp.o.d"
  "/root/repo/src/mr/reduce_task.cpp" "src/mr/CMakeFiles/textmr_mr.dir/reduce_task.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/reduce_task.cpp.o.d"
  "/root/repo/src/mr/report.cpp" "src/mr/CMakeFiles/textmr_mr.dir/report.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/report.cpp.o.d"
  "/root/repo/src/mr/spill_buffer.cpp" "src/mr/CMakeFiles/textmr_mr.dir/spill_buffer.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/spill_buffer.cpp.o.d"
  "/root/repo/src/mr/spill_sorter.cpp" "src/mr/CMakeFiles/textmr_mr.dir/spill_sorter.cpp.o" "gcc" "src/mr/CMakeFiles/textmr_mr.dir/spill_sorter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/textmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/textmr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/textmr_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/freqbuf/CMakeFiles/textmr_freqbuf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
