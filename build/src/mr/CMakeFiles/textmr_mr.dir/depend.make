# Empty dependencies file for textmr_mr.
# This may be replaced when dependencies are built.
