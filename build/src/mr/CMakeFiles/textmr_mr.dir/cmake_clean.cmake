file(REMOVE_RECURSE
  "CMakeFiles/textmr_mr.dir/engine.cpp.o"
  "CMakeFiles/textmr_mr.dir/engine.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/map_task.cpp.o"
  "CMakeFiles/textmr_mr.dir/map_task.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/merger.cpp.o"
  "CMakeFiles/textmr_mr.dir/merger.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/metrics.cpp.o"
  "CMakeFiles/textmr_mr.dir/metrics.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/reduce_task.cpp.o"
  "CMakeFiles/textmr_mr.dir/reduce_task.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/report.cpp.o"
  "CMakeFiles/textmr_mr.dir/report.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/spill_buffer.cpp.o"
  "CMakeFiles/textmr_mr.dir/spill_buffer.cpp.o.d"
  "CMakeFiles/textmr_mr.dir/spill_sorter.cpp.o"
  "CMakeFiles/textmr_mr.dir/spill_sorter.cpp.o.d"
  "libtextmr_mr.a"
  "libtextmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
