file(REMOVE_RECURSE
  "libtextmr_mr.a"
)
