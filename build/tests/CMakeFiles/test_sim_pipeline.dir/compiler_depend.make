# Empty compiler generated dependencies file for test_sim_pipeline.
# This may be replaced when dependencies are built.
