file(REMOVE_RECURSE
  "CMakeFiles/test_sim_pipeline.dir/test_sim_pipeline.cpp.o"
  "CMakeFiles/test_sim_pipeline.dir/test_sim_pipeline.cpp.o.d"
  "test_sim_pipeline"
  "test_sim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
