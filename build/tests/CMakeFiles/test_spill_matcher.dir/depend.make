# Empty dependencies file for test_spill_matcher.
# This may be replaced when dependencies are built.
