file(REMOVE_RECURSE
  "CMakeFiles/test_spill_matcher.dir/test_spill_matcher.cpp.o"
  "CMakeFiles/test_spill_matcher.dir/test_spill_matcher.cpp.o.d"
  "test_spill_matcher"
  "test_spill_matcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill_matcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
