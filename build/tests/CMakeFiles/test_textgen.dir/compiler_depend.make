# Empty compiler generated dependencies file for test_textgen.
# This may be replaced when dependencies are built.
