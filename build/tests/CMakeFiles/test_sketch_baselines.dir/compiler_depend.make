# Empty compiler generated dependencies file for test_sketch_baselines.
# This may be replaced when dependencies are built.
