file(REMOVE_RECURSE
  "CMakeFiles/test_sketch_baselines.dir/test_sketch_baselines.cpp.o"
  "CMakeFiles/test_sketch_baselines.dir/test_sketch_baselines.cpp.o.d"
  "test_sketch_baselines"
  "test_sketch_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
