file(REMOVE_RECURSE
  "CMakeFiles/test_sorter.dir/test_sorter.cpp.o"
  "CMakeFiles/test_sorter.dir/test_sorter.cpp.o.d"
  "test_sorter"
  "test_sorter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
