file(REMOVE_RECURSE
  "CMakeFiles/test_freq_controller.dir/test_freq_controller.cpp.o"
  "CMakeFiles/test_freq_controller.dir/test_freq_controller.cpp.o.d"
  "test_freq_controller"
  "test_freq_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freq_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
