# Empty dependencies file for test_freq_controller.
# This may be replaced when dependencies are built.
