# Empty dependencies file for test_zipf_estimator.
# This may be replaced when dependencies are built.
