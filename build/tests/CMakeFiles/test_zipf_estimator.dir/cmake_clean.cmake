file(REMOVE_RECURSE
  "CMakeFiles/test_zipf_estimator.dir/test_zipf_estimator.cpp.o"
  "CMakeFiles/test_zipf_estimator.dir/test_zipf_estimator.cpp.o.d"
  "test_zipf_estimator"
  "test_zipf_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zipf_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
