# Empty compiler generated dependencies file for test_freq_table.
# This may be replaced when dependencies are built.
