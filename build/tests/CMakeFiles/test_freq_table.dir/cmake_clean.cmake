file(REMOVE_RECURSE
  "CMakeFiles/test_freq_table.dir/test_freq_table.cpp.o"
  "CMakeFiles/test_freq_table.dir/test_freq_table.cpp.o.d"
  "test_freq_table"
  "test_freq_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_freq_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
