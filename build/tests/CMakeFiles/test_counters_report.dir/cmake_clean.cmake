file(REMOVE_RECURSE
  "CMakeFiles/test_counters_report.dir/test_counters_report.cpp.o"
  "CMakeFiles/test_counters_report.dir/test_counters_report.cpp.o.d"
  "test_counters_report"
  "test_counters_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counters_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
