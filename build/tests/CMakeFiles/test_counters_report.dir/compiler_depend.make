# Empty compiler generated dependencies file for test_counters_report.
# This may be replaced when dependencies are built.
