file(REMOVE_RECURSE
  "CMakeFiles/test_spill_buffer.dir/test_spill_buffer.cpp.o"
  "CMakeFiles/test_spill_buffer.dir/test_spill_buffer.cpp.o.d"
  "test_spill_buffer"
  "test_spill_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
