# Empty dependencies file for test_spill_buffer.
# This may be replaced when dependencies are built.
