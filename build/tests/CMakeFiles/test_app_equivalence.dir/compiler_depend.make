# Empty compiler generated dependencies file for test_app_equivalence.
# This may be replaced when dependencies are built.
