file(REMOVE_RECURSE
  "CMakeFiles/test_app_equivalence.dir/test_app_equivalence.cpp.o"
  "CMakeFiles/test_app_equivalence.dir/test_app_equivalence.cpp.o.d"
  "test_app_equivalence"
  "test_app_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_app_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
