file(REMOVE_RECURSE
  "CMakeFiles/test_common_utils.dir/test_common_utils.cpp.o"
  "CMakeFiles/test_common_utils.dir/test_common_utils.cpp.o.d"
  "test_common_utils"
  "test_common_utils.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_utils.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
