file(REMOVE_RECURSE
  "CMakeFiles/test_sim_knobs.dir/test_sim_knobs.cpp.o"
  "CMakeFiles/test_sim_knobs.dir/test_sim_knobs.cpp.o.d"
  "test_sim_knobs"
  "test_sim_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
