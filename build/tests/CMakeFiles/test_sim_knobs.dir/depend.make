# Empty dependencies file for test_sim_knobs.
# This may be replaced when dependencies are built.
