file(REMOVE_RECURSE
  "CMakeFiles/test_reduce_task.dir/test_reduce_task.cpp.o"
  "CMakeFiles/test_reduce_task.dir/test_reduce_task.cpp.o.d"
  "test_reduce_task"
  "test_reduce_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
