# Empty dependencies file for test_multi_support.
# This may be replaced when dependencies are built.
