file(REMOVE_RECURSE
  "CMakeFiles/test_multi_support.dir/test_multi_support.cpp.o"
  "CMakeFiles/test_multi_support.dir/test_multi_support.cpp.o.d"
  "test_multi_support"
  "test_multi_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
