file(REMOVE_RECURSE
  "CMakeFiles/test_dfs.dir/test_dfs.cpp.o"
  "CMakeFiles/test_dfs.dir/test_dfs.cpp.o.d"
  "test_dfs"
  "test_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
