file(REMOVE_RECURSE
  "CMakeFiles/test_space_saving.dir/test_space_saving.cpp.o"
  "CMakeFiles/test_space_saving.dir/test_space_saving.cpp.o.d"
  "test_space_saving"
  "test_space_saving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_space_saving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
