# Empty dependencies file for test_space_saving.
# This may be replaced when dependencies are built.
