file(REMOVE_RECURSE
  "CMakeFiles/test_line_reader.dir/test_line_reader.cpp.o"
  "CMakeFiles/test_line_reader.dir/test_line_reader.cpp.o.d"
  "test_line_reader"
  "test_line_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_line_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
