file(REMOVE_RECURSE
  "CMakeFiles/test_map_task.dir/test_map_task.cpp.o"
  "CMakeFiles/test_map_task.dir/test_map_task.cpp.o.d"
  "test_map_task"
  "test_map_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
