# Empty compiler generated dependencies file for test_spill_file.
# This may be replaced when dependencies are built.
