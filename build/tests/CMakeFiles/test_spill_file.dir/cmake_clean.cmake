file(REMOVE_RECURSE
  "CMakeFiles/test_spill_file.dir/test_spill_file.cpp.o"
  "CMakeFiles/test_spill_file.dir/test_spill_file.cpp.o.d"
  "test_spill_file"
  "test_spill_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
