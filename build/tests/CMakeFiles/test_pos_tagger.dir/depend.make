# Empty dependencies file for test_pos_tagger.
# This may be replaced when dependencies are built.
