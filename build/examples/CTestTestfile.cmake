# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart" "50000")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_quickstart_baseline]=] "/root/repo/build/examples/quickstart" "50000" "--baseline")
set_tests_properties([=[example_quickstart_baseline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_search_index]=] "/root/repo/build/examples/build_search_index" "30000" "a" "zz")
set_tests_properties([=[example_search_index]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_log_analytics]=] "/root/repo/build/examples/log_analytics" "5000")
set_tests_properties([=[example_log_analytics]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_pagerank]=] "/root/repo/build/examples/pagerank_iterations" "2000" "2")
set_tests_properties([=[example_pagerank]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tuning]=] "/root/repo/build/examples/tuning_explorer" "60000")
set_tests_properties([=[example_tuning]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_cli_usage]=] "/root/repo/build/examples/textmr_cli")
set_tests_properties([=[example_cli_usage]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
