file(REMOVE_RECURSE
  "CMakeFiles/pagerank_iterations.dir/pagerank_iterations.cpp.o"
  "CMakeFiles/pagerank_iterations.dir/pagerank_iterations.cpp.o.d"
  "pagerank_iterations"
  "pagerank_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
