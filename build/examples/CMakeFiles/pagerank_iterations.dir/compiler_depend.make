# Empty compiler generated dependencies file for pagerank_iterations.
# This may be replaced when dependencies are built.
