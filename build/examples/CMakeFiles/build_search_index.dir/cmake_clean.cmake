file(REMOVE_RECURSE
  "CMakeFiles/build_search_index.dir/build_search_index.cpp.o"
  "CMakeFiles/build_search_index.dir/build_search_index.cpp.o.d"
  "build_search_index"
  "build_search_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_search_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
