# Empty dependencies file for build_search_index.
# This may be replaced when dependencies are built.
