file(REMOVE_RECURSE
  "CMakeFiles/textmr_cli.dir/textmr_cli.cpp.o"
  "CMakeFiles/textmr_cli.dir/textmr_cli.cpp.o.d"
  "textmr_cli"
  "textmr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textmr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
