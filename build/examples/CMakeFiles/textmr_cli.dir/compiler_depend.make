# Empty compiler generated dependencies file for textmr_cli.
# This may be replaced when dependencies are built.
