// textmr_cli — command-line driver: generate datasets and run any of the
// paper's applications over them with the optimizations toggled by flags.
// The "hadoop jar"-equivalent entry point for trying the system without
// writing code.
//
// Usage:
//   textmr_cli gen corpus OUT.txt [--words N] [--vocab V] [--alpha A] [--seed S]
//   textmr_cli gen log VISITS.log RANKINGS.txt [--visits N] [--urls U]
//   textmr_cli gen graph OUT.txt [--pages N]
//   textmr_cli run APP INPUT... --out DIR [--reducers R] [--freq] [--matcher]
//              [--topk K] [--sample S] [--buffer MB] [--report]
//              [--hash-combine] [--hash-shards N]
//              [--simd-tokenize scalar|swar|simd|auto]
//              [--skew-partitioner] [--skew-split-threshold X]
//              [--trace FILE] [--trace-jsonl FILE] [--metrics-json FILE]
//              [--failpoints SPEC] [--max-task-attempts N]
//              [--cluster-workers N] [--no-speculation]
//              [--transport socketpair|tcp] [--listen HOST:PORT]
//              [--external-workers N] [--io-timeout-ms MS]
//              [--liveness-timeout-ms MS]
//   textmr_cli worker APP INPUT... --out DIR --connect HOST:PORT
//              [same job flags as run]
//   APP = wordcount | invertedindex | wordpostag | accesslogsum |
//         accesslogjoin | pagerank
//
// Multi-node quickstart (two terminals, DESIGN.md §14): terminal 1 runs
// the coordinator with --transport tcp --listen 127.0.0.1:7070
// --external-workers 1; terminal 2 starts the worker with the SAME app,
// inputs and --out, plus --connect 127.0.0.1:7070.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <optional>

#include "cluster/worker.hpp"
#include "common/failpoint.hpp"
#include "mr/report.hpp"
#include "textmr.hpp"

using namespace textmr;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  std::set<std::string> flags;

  static Args parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        // --name=value form binds unambiguously; --name value is also
        // accepted when the next token is not itself an option.
        if (const auto eq = name.find('='); eq != std::string::npos) {
          args.options[name.substr(0, eq)] = name.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
          args.options[name] = argv[++i];
        } else {
          args.flags.insert(name);
        }
      } else {
        args.positional.push_back(std::move(arg));
      }
    }
    return args;
  }

  std::uint64_t u64(const std::string& name, std::uint64_t fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double f64(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
  bool flag(const std::string& name) const { return flags.count(name) > 0; }
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  textmr_cli gen corpus OUT [--words N] [--vocab V] "
               "[--alpha A] [--seed S]\n"
               "  textmr_cli gen log VISITS RANKINGS [--visits N] [--urls U]\n"
               "  textmr_cli gen graph OUT [--pages N]\n"
               "  textmr_cli run APP INPUT... --out DIR [--reducers R]\n"
               "             [--freq] [--matcher] [--topk K] [--sample S]\n"
               "             [--hash-combine] [--hash-shards N]\n"
               "             [--simd-tokenize scalar|swar|simd|auto]\n"
               "             [--buffer MB] [--report]\n"
               "             [--skew-partitioner] [--skew-split-threshold X]\n"
               "             [--trace FILE] [--trace-jsonl FILE]\n"
               "             [--metrics-json FILE]\n"
               "             [--failpoints SPEC] [--max-task-attempts N]\n"
               "             [--cluster-workers N] [--no-speculation]\n"
               "             [--transport socketpair|tcp] [--listen H:P]\n"
               "             [--external-workers N] [--io-timeout-ms MS]\n"
               "             [--liveness-timeout-ms MS]\n"
               "  textmr_cli worker APP INPUT... --out DIR --connect H:P\n"
               "             [--idle-timeout-ms MS] [same job flags as run]\n"
               "  APP: wordcount invertedindex wordpostag accesslogsum\n"
               "       accesslogjoin pagerank\n");
  return 2;
}

// Parses "host:port" into an Endpoint. Port 0 is allowed only when
// `allow_port_zero` (a listener can let the kernel pick; a connect
// target cannot).
std::optional<cluster::Endpoint> parse_endpoint(const std::string& text,
                                                bool allow_port_zero) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return std::nullopt;
  char* end = nullptr;
  const unsigned long port = std::strtoul(text.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) return std::nullopt;
  if (port == 0 && !allow_port_zero) return std::nullopt;
  cluster::Endpoint ep;
  ep.host = text.substr(0, colon);
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::optional<apps::AppBundle> bundle_for(const std::string& name) {
  if (name == "wordcount") return apps::wordcount_app();
  if (name == "invertedindex") return apps::inverted_index_app();
  if (name == "wordpostag") return apps::word_pos_tag_app();
  if (name == "accesslogsum") return apps::access_log_sum_app();
  if (name == "accesslogjoin") return apps::access_log_join_app();
  if (name == "pagerank") return apps::pagerank_app();
  return std::nullopt;
}

int cmd_gen(const Args& args) {
  const std::string& kind = args.positional[1];
  if (kind == "corpus" && args.positional.size() >= 3) {
    textgen::CorpusSpec spec;
    spec.total_words = args.u64("words", 1'000'000);
    spec.vocabulary = args.u64("vocab", 100'000);
    spec.alpha = args.f64("alpha", 1.0);
    spec.seed = args.u64("seed", 42);
    const auto stats = textgen::generate_corpus(spec, args.positional[2]);
    std::printf("wrote %s: %llu words, %llu lines, %.1f MB\n",
                args.positional[2].c_str(),
                static_cast<unsigned long long>(stats.words),
                static_cast<unsigned long long>(stats.lines),
                static_cast<double>(stats.bytes) / 1e6);
    return 0;
  }
  if (kind == "log" && args.positional.size() >= 4) {
    textgen::AccessLogSpec spec;
    spec.num_visits = args.u64("visits", 200'000);
    spec.num_urls = args.u64("urls", 20'000);
    spec.seed = args.u64("seed", 7);
    const auto stats = textgen::generate_access_log(spec, args.positional[2],
                                                    args.positional[3]);
    std::printf("wrote %llu visits (%.1f MB) + %llu rankings\n",
                static_cast<unsigned long long>(stats.visit_records),
                static_cast<double>(stats.visit_bytes) / 1e6,
                static_cast<unsigned long long>(stats.ranking_records));
    return 0;
  }
  if (kind == "graph" && args.positional.size() >= 3) {
    textgen::WebGraphSpec spec;
    spec.num_pages = args.u64("pages", 100'000);
    spec.seed = args.u64("seed", 13);
    const auto stats = textgen::generate_web_graph(spec, args.positional[2]);
    std::printf("wrote %s: %llu pages, %llu edges, %.1f MB\n",
                args.positional[2].c_str(),
                static_cast<unsigned long long>(stats.pages),
                static_cast<unsigned long long>(stats.edges),
                static_cast<double>(stats.bytes) / 1e6);
    return 0;
  }
  return usage();
}

// Builds the JobSpec shared by `run` and `worker`. An external worker
// must construct the exact same spec as the coordinator — JobSpec
// carries mapper/reducer factories (std::function), which cannot travel
// over the wire, so both sides derive them from the same APP name and
// flags. Returns nullopt on bad arguments (caller prints usage).
std::optional<mr::JobSpec> build_job_spec(const Args& args) {
  const auto bundle = bundle_for(args.positional[1]);
  if (!bundle.has_value()) return std::nullopt;
  auto out_it = args.options.find("out");
  if (out_it == args.options.end() || args.positional.size() < 3) {
    return std::nullopt;
  }

  mr::JobSpec spec;
  spec.name = bundle->name;
  for (std::size_t i = 2; i < args.positional.size(); ++i) {
    const auto splits = io::make_splits(
        args.positional[i], args.u64("split-mb", 8) * 1024 * 1024);
    spec.inputs.insert(spec.inputs.end(), splits.begin(), splits.end());
  }
  spec.mapper = bundle->mapper;
  spec.reducer = bundle->reducer;
  spec.combiner = bundle->combiner;
  spec.num_reducers = static_cast<std::uint32_t>(args.u64("reducers", 2));
  spec.spill_buffer_bytes =
      static_cast<std::size_t>(args.u64("buffer", 16)) << 20;
  spec.use_spill_matcher = args.flag("matcher");
  // --hash-combine swaps the map-side sort pipeline for the sharded
  // hash-combine path (DESIGN.md §15); output is byte-identical.
  if (args.flag("hash-combine")) {
    spec.combine_mode = mr::CombineMode::kHash;
    spec.hash_combine_shards = static_cast<std::uint32_t>(
        args.u64("hash-shards", spec.hash_combine_shards));
  }
  // --simd-tokenize selects the word-tokenizer kernel (scalar|swar|simd|
  // auto). Process-global; every kernel is oracle-equivalent, so a worker
  // need not agree with its coordinator.
  if (const auto tok = args.options.find("simd-tokenize");
      tok != args.options.end()) {
    text::TokenizeMode mode;
    if (!text::parse_tokenize_mode(tok->second, mode)) return std::nullopt;
    text::set_tokenize_mode(mode);
  }
  if (args.flag("freq")) {
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = args.u64("topk", bundle->freq_top_k);
    spec.freqbuf.sampling_fraction =
        args.f64("sample", bundle->freq_sampling_fraction);
  }
  // --skew-partitioner turns on skew-aware partitioning (DESIGN.md §12):
  // a sampling pre-pass finds heavy reduce keys, places them on dedicated
  // reducers and splits ultra-heavy ones, with a finalize merge keeping
  // the output byte-identical to a plain hash-partitioner run.
  // --skew-split-threshold sets the split bar in average-partition
  // multiples (a key splits once it alone carries X partitions' share).
  if (args.flag("skew-partitioner") ||
      args.options.count("skew-split-threshold") > 0) {
    spec.skew.enabled = true;
    spec.skew.split_threshold =
        args.f64("skew-split-threshold", spec.skew.split_threshold);
  }
  const std::filesystem::path out_dir = out_it->second;
  spec.output_dir = out_dir / "out";
  spec.scratch_dir = out_dir / "scratch";

  // Fault injection & recovery: --failpoints (or TEXTMR_FAILPOINTS in
  // the environment) arms deterministic fault sites; --max-task-attempts
  // bounds per-task re-execution (1 = fail fast).
  failpoint::arm_from_env();
  if (const auto fp = args.options.find("failpoints");
      fp != args.options.end()) {
    failpoint::arm_from_spec(fp->second);
  }
  spec.max_task_attempts =
      static_cast<std::uint32_t>(args.u64("max-task-attempts", 3));

  // Tracing must be decided here (not in cmd_run) because workers also
  // need it on: a worker only ships trace chunks when its spec says so.
  spec.trace.enabled = args.options.count("trace") > 0 ||
                       args.options.count("trace-jsonl") > 0;
  return spec;
}

int cmd_run(const Args& args) {
  auto spec_opt = build_job_spec(args);
  if (!spec_opt.has_value()) return usage();
  mr::JobSpec& spec = *spec_opt;

  // Observability exports: --trace FILE (Chrome trace JSON for
  // chrome://tracing / Perfetto), --trace-jsonl FILE (one event per
  // line), --metrics-json FILE (the structured job report).
  const auto trace_path = args.options.find("trace");
  const auto jsonl_path = args.options.find("trace-jsonl");
  const auto metrics_path = args.options.find("metrics-json");

  // --cluster-workers N runs the job on the multi-process ClusterEngine
  // (N forked workers, heartbeats, speculative execution) instead of the
  // in-process thread pool; output bytes are identical either way.
  // --transport tcp switches the control channels to checksummed TCP
  // frames and pulls shuffle data over per-worker shuffle servers;
  // --external-workers N reserves N of the slots for processes started
  // separately with `textmr_cli worker --connect` (DESIGN.md §14).
  mr::JobResult result;
  if (const std::uint64_t workers = args.u64("cluster-workers", 0);
      workers > 0) {
    cluster::ClusterConfig config;
    config.num_workers = static_cast<std::uint32_t>(workers);
    config.speculation = !args.flag("no-speculation");
    if (const auto t = args.options.find("transport");
        t != args.options.end()) {
      config.transport = cluster::parse_transport_kind(t->second);
    }
    if (const auto l = args.options.find("listen"); l != args.options.end()) {
      const auto ep = parse_endpoint(l->second, /*allow_port_zero=*/true);
      if (!ep.has_value()) return usage();
      config.listen = *ep;
      config.transport = cluster::TransportKind::kTcp;  // --listen implies tcp
    }
    config.external_workers =
        static_cast<std::uint32_t>(args.u64("external-workers", 0));
    if (config.external_workers > 0) {
      config.transport = cluster::TransportKind::kTcp;
    }
    if (args.options.count("io-timeout-ms") > 0) {
      config.io_timeout_ms =
          static_cast<std::int32_t>(args.u64("io-timeout-ms", 0));
    } else if (config.transport == cluster::TransportKind::kTcp) {
      config.io_timeout_ms = 30000;  // a dead TCP peer must not hang the job
    }
    config.liveness_timeout_ms =
        static_cast<std::uint32_t>(args.u64("liveness-timeout-ms", 0));
    cluster::ClusterEngine engine(config);
    if (config.external_workers > 0) {
      const cluster::Endpoint* ep = engine.listen_endpoint();
      std::printf("coordinator listening on %s; waiting for %u external "
                  "worker(s):\n  textmr_cli worker %s ... --connect %s\n",
                  ep->to_string().c_str(), config.external_workers,
                  args.positional[1].c_str(), ep->to_string().c_str());
      std::fflush(stdout);
    }
    result = engine.run(spec);
  } else {
    result = mr::LocalEngine().run(spec);
  }
  if (args.flag("report")) {
    std::fputs(mr::format_job_report(result, spec.name).c_str(), stdout);
  } else {
    std::printf("%s\n", mr::format_job_summary(result).c_str());
  }
  if (trace_path != args.options.end()) {
    obs::write_file(trace_path->second, obs::format_chrome_trace(result.trace));
    std::printf("trace: %s (%zu events, %llu dropped)\n",
                trace_path->second.c_str(), result.trace.events.size(),
                static_cast<unsigned long long>(result.trace.dropped_events));
  }
  if (jsonl_path != args.options.end()) {
    obs::write_file(jsonl_path->second, obs::format_trace_jsonl(result.trace));
  }
  if (metrics_path != args.options.end()) {
    obs::write_file(metrics_path->second,
                    mr::format_job_metrics_json(result, spec.name));
    std::printf("metrics: %s\n", metrics_path->second.c_str());
  }
  std::printf("output: %zu part files under %s\n", result.outputs.size(),
              spec.output_dir.string().c_str());
  return 0;
}

// `textmr_cli worker` — joins a coordinator started with
// --external-workers over TCP, runs tasks until told to shut down.
// APP, INPUT... and --out must match the coordinator's invocation
// exactly: the JobSpec (including the user-code factories it carries)
// is rebuilt locally from them, only task assignments travel the wire.
int cmd_worker(const Args& args) {
  auto spec_opt = build_job_spec(args);
  if (!spec_opt.has_value()) return usage();
  const auto connect_it = args.options.find("connect");
  if (connect_it == args.options.end()) return usage();
  const auto endpoint =
      parse_endpoint(connect_it->second, /*allow_port_zero=*/false);
  if (!endpoint.has_value()) return usage();

  cluster::RemoteWorkerOptions options;
  options.idle_timeout_ms =
      static_cast<std::uint32_t>(args.u64("idle-timeout-ms", 0));
  if (args.options.count("io-timeout-ms") > 0) {
    options.io_timeout_ms =
        static_cast<std::int32_t>(args.u64("io-timeout-ms", 0));
  }
  std::printf("worker connecting to %s\n", endpoint->to_string().c_str());
  std::fflush(stdout);
  const int code = cluster::run_remote_worker(*endpoint, *spec_opt, options);
  std::printf("worker finished (exit %d)\n", code);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Args::parse(argc, argv);
  if (args.positional.size() < 2) return usage();
  try {
    if (args.positional[0] == "gen") return cmd_gen(args);
    if (args.positional[0] == "run") return cmd_run(args);
    if (args.positional[0] == "worker") return cmd_worker(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
