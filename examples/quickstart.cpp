// Quickstart: run WordCount over a generated corpus with both paper
// optimizations enabled, print the hottest words and the job's
// abstraction-cost summary.
//
//   ./quickstart [words] [--baseline]
//
// This is the smallest complete textmr program: generate input, describe
// the job, run it, read the output.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include "textmr.hpp"

using namespace textmr;

int main(int argc, char** argv) {
  std::uint64_t words = 500'000;
  bool optimized = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0) {
      optimized = false;
    } else {
      words = std::strtoull(argv[i], nullptr, 10);
    }
  }

  TempDir workdir("textmr-quickstart");

  // 1. Generate a Zipf-distributed text corpus (stand-in for real text).
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = words;
  corpus_spec.vocabulary = 50'000;
  corpus_spec.alpha = 1.0;
  const auto corpus = workdir.file("corpus.txt");
  const auto stats = textgen::generate_corpus(corpus_spec, corpus.string());
  std::printf("corpus: %llu words / %.1f MB / %llu lines\n",
              static_cast<unsigned long long>(stats.words),
              static_cast<double>(stats.bytes) / 1e6,
              static_cast<unsigned long long>(stats.lines));

  // 2. Describe the job. Factories are called once per task, so mapper
  //    and reducer instances never need synchronization.
  mr::JobSpec job;
  job.name = "quickstart-wordcount";
  job.inputs = io::make_splits(corpus.string(), 1 << 20);
  job.mapper = [] { return std::make_unique<apps::WordCountMapper>(); };
  job.combiner = [] { return std::make_unique<apps::WordCountCombiner>(); };
  job.reducer = [] { return std::make_unique<apps::WordCountReducer>(); };
  job.num_reducers = 2;
  job.spill_buffer_bytes = 1 << 20;
  job.scratch_dir = workdir.file("scratch");
  job.output_dir = workdir.file("out");
  if (optimized) {
    job.use_spill_matcher = true;       // paper §IV
    job.freqbuf.enabled = true;         // paper §III
    job.freqbuf.top_k = 500;
    job.freqbuf.sampling_fraction = 0;  // 0 = §III-C auto-tuner
  }

  // 3. Run.
  mr::LocalEngine engine;
  const auto result = engine.run(job);

  // 4. Read the sorted part files back.
  std::map<std::string, std::uint64_t> counts;
  for (const auto& part : result.outputs) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      counts[line.substr(0, tab)] = std::stoull(line.substr(tab + 1));
    }
  }
  std::printf("\ntop words (of %zu distinct):\n", counts.size());
  std::multimap<std::uint64_t, std::string, std::greater<>> by_count;
  for (const auto& [word, count] : counts) by_count.emplace(count, word);
  int shown = 0;
  for (const auto& [count, word] : by_count) {
    std::printf("  %-10s %llu\n", word.c_str(),
                static_cast<unsigned long long>(count));
    if (++shown == 10) break;
  }

  // 5. The instrumentation the paper is built on.
  const auto& work = result.metrics.work;
  std::printf("\nmode: %s\n", optimized ? "freq-buffering + spill-matcher"
                                        : "baseline");
  std::printf("serialized work: %.2fs (user code %.1f%%, framework %.1f%%)\n",
              work.total_ns() * 1e-9,
              100.0 * work.user_ns() / work.total_ns(),
              100.0 * work.abstraction_ns() / work.total_ns());
  std::printf("map output records: %llu, absorbed by freq table: %llu\n",
              static_cast<unsigned long long>(work.map_output_records),
              static_cast<unsigned long long>(work.freq_hits));
  std::printf("wall: %.2fs\n", result.metrics.job_wall_ns * 1e-9);
  return 0;
}
