// Example: build an inverted index over a corpus and answer lookups —
// the text-centric workload the paper's introduction motivates (web data
// processing). Demonstrates: multiple map tasks with globally unique
// record locations, a storage-intensive combiner, sorted output as an
// on-disk dictionary, and a simple query loop over the part files.
//
//   ./build_search_index [words] [query words...]

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "textmr.hpp"

using namespace textmr;

namespace {

/// Looks a word up in the sorted part files (linear scan per part; a
/// production system would keep a sparse index, but this shows that the
/// MapReduce contract — sorted, disjoint parts — is what makes the
/// output directly usable as an index).
std::string lookup(const std::vector<std::filesystem::path>& parts,
                   const std::string& word) {
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      const std::string_view key(line.data(), tab);
      if (key == word) return line.substr(tab + 1);
      if (key > std::string_view(word)) break;  // sorted: passed it
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t words = 400'000;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    if (std::isdigit(static_cast<unsigned char>(argv[i][0])) != 0) {
      words = std::strtoull(argv[i], nullptr, 10);
    } else {
      queries.emplace_back(argv[i]);
    }
  }
  if (queries.empty()) queries = {"a", "b", "zz"};

  TempDir workdir("textmr-index");
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = words;
  corpus_spec.vocabulary = 30'000;
  const auto corpus = workdir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  mr::JobSpec job;
  job.name = "build-search-index";
  job.inputs = io::make_splits(corpus.string(), 512 << 10);
  job.mapper = [] { return std::make_unique<apps::InvertedIndexMapper>(); };
  job.combiner = [] { return std::make_unique<apps::InvertedIndexCombiner>(); };
  job.reducer = [] { return std::make_unique<apps::InvertedIndexReducer>(); };
  job.num_reducers = 3;
  job.spill_buffer_bytes = 2 << 20;
  job.use_spill_matcher = true;
  job.scratch_dir = workdir.file("scratch");
  job.output_dir = workdir.file("out");

  mr::LocalEngine engine;
  const auto result = engine.run(job);
  std::printf("index built: %llu postings over %llu map tasks, %.2fs wall\n",
              static_cast<unsigned long long>(
                  result.metrics.work.map_output_records),
              static_cast<unsigned long long>(result.metrics.map_tasks),
              result.metrics.job_wall_ns * 1e-9);

  for (const auto& query : queries) {
    const auto postings = lookup(result.outputs, query);
    if (postings.empty()) {
      std::printf("  '%s': not in corpus\n", query.c_str());
      continue;
    }
    // Format: "count:loc1,loc2,..." — print the count and first few.
    const auto colon = postings.find(':');
    std::string head = postings.substr(colon + 1);
    int commas = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      if (head[i] == ',' && ++commas == 5) {
        head = head.substr(0, i) + ",...";
        break;
      }
    }
    std::printf("  '%s': %s occurrences at [%s]\n", query.c_str(),
                postings.substr(0, colon).c_str(), head.c_str());
  }
  return 0;
}
