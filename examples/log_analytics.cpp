// Example: the paper's relational-style workloads over a web access log —
// AccessLogSum (GROUP BY aggregation) and AccessLogJoin (repartition
// join between UserVisits and Rankings). Demonstrates multi-input jobs
// and the engine on non-text-centric work.
//
//   ./log_analytics [visits]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "textmr.hpp"

using namespace textmr;

int main(int argc, char** argv) {
  const std::uint64_t visits =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80'000;

  TempDir workdir("textmr-logs");
  textgen::AccessLogSpec log_spec;
  log_spec.num_visits = visits;
  log_spec.num_urls = 5'000;
  log_spec.url_alpha = 0.8;  // Breslau et al. web-request skew
  const auto visits_path = workdir.file("user_visits.log");
  const auto rankings_path = workdir.file("rankings.txt");
  const auto stats = textgen::generate_access_log(
      log_spec, visits_path.string(), rankings_path.string());
  std::printf("generated %llu visits (%.1f MB), %llu rankings\n",
              static_cast<unsigned long long>(stats.visit_records),
              static_cast<double>(stats.visit_bytes) / 1e6,
              static_cast<unsigned long long>(stats.ranking_records));

  mr::LocalEngine engine;

  // --- Query 1: SELECT destURL, sum(adRevenue) GROUP BY destURL ----------
  {
    mr::JobSpec job;
    job.name = "access-log-sum";
    job.inputs = io::make_splits(visits_path.string(), 1 << 20);
    job.mapper = [] { return std::make_unique<apps::AccessLogSumMapper>(); };
    job.combiner = [] {
      return std::make_unique<apps::AccessLogSumCombiner>();
    };
    job.reducer = [] { return std::make_unique<apps::AccessLogSumReducer>(); };
    job.num_reducers = 2;
    job.freqbuf.enabled = true;  // URLs are Zipf-skewed too (§V-B)
    job.freqbuf.top_k = 500;
    job.freqbuf.sampling_fraction = 0.1;
    job.scratch_dir = workdir.file("s1");
    job.output_dir = workdir.file("o1");
    const auto result = engine.run(job);

    // Show the highest-revenue URL.
    std::string best_url;
    double best_revenue = -1;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        const double revenue = std::strtod(line.c_str() + tab + 1, nullptr);
        if (revenue > best_revenue) {
          best_revenue = revenue;
          best_url = line.substr(0, tab);
        }
      }
    }
    std::printf("\n[sum] top URL by ad revenue: %s ($%.2f), %.2fs wall\n",
                best_url.c_str(), best_revenue,
                result.metrics.job_wall_ns * 1e-9);
  }

  // --- Query 2: join visits with rankings on URL --------------------------
  {
    mr::JobSpec job;
    job.name = "access-log-join";
    job.inputs = io::make_splits(visits_path.string(), 1 << 20);
    const auto ranking_splits =
        io::make_splits(rankings_path.string(), 1 << 20);
    job.inputs.insert(job.inputs.end(), ranking_splits.begin(),
                      ranking_splits.end());
    job.mapper = [] { return std::make_unique<apps::AccessLogJoinMapper>(); };
    job.reducer = [] {
      return std::make_unique<apps::AccessLogJoinReducer>();
    };
    job.num_reducers = 2;
    job.use_spill_matcher = true;
    job.scratch_dir = workdir.file("s2");
    job.output_dir = workdir.file("o2");
    const auto result = engine.run(job);

    std::uint64_t rows = 0;
    std::string sample;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) {
        if (rows == 0) sample = line;
        ++rows;
      }
    }
    std::printf("[join] %llu joined rows (one per visit), %.2fs wall\n",
                static_cast<unsigned long long>(rows),
                result.metrics.job_wall_ns * 1e-9);
    std::printf("[join] sample row (sourceIP \\t revenue|pageRank): %s\n",
                sample.c_str());
  }
  return 0;
}
