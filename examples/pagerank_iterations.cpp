// Example: iterative PageRank by chaining MapReduce jobs — each
// iteration's output is the next iteration's input, exactly how the
// paper-era Hadoop ran graph algorithms. Demonstrates job chaining,
// rank-mass conservation checks, and convergence tracking.
//
//   ./pagerank_iterations [pages] [iterations]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "textmr.hpp"

using namespace textmr;

namespace {

/// Reads url -> rank from one iteration's part files, and rewrites them
/// into the next iteration's input file (url \t rank \t links).
std::map<std::string, double> collect_ranks(
    const std::vector<std::filesystem::path>& parts,
    const std::filesystem::path& next_input) {
  std::map<std::string, double> ranks;
  std::ofstream out(next_input);
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      ranks[line.substr(0, tab)] =
          std::strtod(line.c_str() + tab + 1, nullptr);
      out << line << "\n";
    }
  }
  return ranks;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t pages =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 4;

  TempDir workdir("textmr-pagerank");
  textgen::WebGraphSpec graph_spec;
  graph_spec.num_pages = pages;
  graph_spec.link_alpha = 1.0;  // Adamic & Huberman in-link skew
  auto input = workdir.file("iter0.txt");
  const auto stats = textgen::generate_web_graph(graph_spec, input.string());
  std::printf("graph: %llu pages, %llu edges\n",
              static_cast<unsigned long long>(stats.pages),
              static_cast<unsigned long long>(stats.edges));

  mr::LocalEngine engine;
  std::map<std::string, double> previous;
  for (int iter = 1; iter <= iterations; ++iter) {
    mr::JobSpec job;
    job.name = "pagerank-iter" + std::to_string(iter);
    job.inputs = io::make_splits(input.string(), 1 << 20);
    job.mapper = [] { return std::make_unique<apps::PageRankMapper>(); };
    job.combiner = [] { return std::make_unique<apps::PageRankCombiner>(); };
    job.reducer = [] { return std::make_unique<apps::PageRankReducer>(); };
    job.num_reducers = 2;
    job.use_spill_matcher = true;
    job.freqbuf.enabled = true;  // popular pages dominate rank traffic
    job.freqbuf.top_k = 500;
    job.freqbuf.sampling_fraction = 0.1;
    job.scratch_dir = workdir.file("s" + std::to_string(iter));
    job.output_dir = workdir.file("o" + std::to_string(iter));
    const auto result = engine.run(job);

    input = workdir.file("iter" + std::to_string(iter) + ".txt");
    const auto ranks = collect_ranks(result.outputs, input);

    double total = 0;
    double delta = 0;
    double top_rank = 0;
    std::string top_page;
    for (const auto& [url, rank] : ranks) {
      total += rank;
      if (rank > top_rank) {
        top_rank = rank;
        top_page = url;
      }
      auto it = previous.find(url);
      delta += std::fabs(rank - (it == previous.end() ? 1.0 : it->second));
    }
    std::printf(
        "iter %d: %.2fs wall | rank mass %.1f | L1 delta %.2f | top %s "
        "(%.2f)\n",
        iter, result.metrics.job_wall_ns * 1e-9, total, delta,
        top_page.c_str(), top_rank);
    previous = ranks;
  }
  std::printf("\nL1 delta should shrink every iteration (power iteration\n"
              "convergence); the top page should stabilize early.\n");
  return 0;
}
