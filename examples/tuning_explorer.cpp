// Example: explore the two optimizations' tuning space on your own
// workload — the tool a downstream user runs before enabling them in
// production. Sweeps the spill threshold (showing why a static value is
// fragile and what the spill-matcher converges to), then the
// frequency-buffering k, printing measured work and absorption.
//
//   ./tuning_explorer [words]

#include <cstdio>
#include <cstdlib>

#include "textmr.hpp"

using namespace textmr;

namespace {

mr::JobSpec base_job(const TempDir& workdir,
                     const std::filesystem::path& corpus, int run_id) {
  mr::JobSpec job;
  job.name = "tuning";
  job.inputs = io::make_splits(corpus.string(), 1 << 20);
  job.mapper = [] { return std::make_unique<apps::WordCountMapper>(); };
  job.combiner = [] { return std::make_unique<apps::WordCountCombiner>(); };
  job.reducer = [] { return std::make_unique<apps::WordCountReducer>(); };
  job.num_reducers = 2;
  job.spill_buffer_bytes = 512 << 10;
  job.scratch_dir = workdir.file("s" + std::to_string(run_id));
  job.output_dir = workdir.file("o" + std::to_string(run_id));
  return job;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t words =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600'000;

  TempDir workdir("textmr-tuning");
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = words;
  corpus_spec.vocabulary = 50'000;
  const auto corpus = workdir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  mr::LocalEngine engine;
  int run_id = 0;

  std::printf("1. spill threshold sweep (fixed x) vs spill-matcher\n");
  std::printf("   %-12s %-12s %-12s %-12s\n", "x", "map idle", "sup idle",
              "pipeline");
  for (const double x : {0.2, 0.5, 0.8, 0.95}) {
    auto job = base_job(workdir, corpus, run_id++);
    job.spill_threshold = x;
    const auto result = engine.run(job);
    std::uint64_t pipeline_ns = 0;
    for (const auto& task : result.map_tasks) {
      pipeline_ns += task.pipeline_wall_ns;
    }
    std::printf("   %-12.2f %-12.3f %-12.3f %-12.3f\n", x,
                result.metrics.map_thread_idle_ns * 1e-9,
                result.metrics.support_thread_idle_ns * 1e-9,
                pipeline_ns * 1e-9);
  }
  {
    auto job = base_job(workdir, corpus, run_id++);
    job.use_spill_matcher = true;
    const auto result = engine.run(job);
    std::uint64_t pipeline_ns = 0;
    double final_x = 0;
    for (const auto& task : result.map_tasks) {
      pipeline_ns += task.pipeline_wall_ns;
      final_x = std::max(final_x, task.final_spill_threshold);
    }
    std::printf("   %-12s %-12.3f %-12.3f %-12.3f (converged x ~ %.2f)\n",
                "matcher", result.metrics.map_thread_idle_ns * 1e-9,
                result.metrics.support_thread_idle_ns * 1e-9,
                pipeline_ns * 1e-9, final_x);
  }

  std::printf("\n2. frequency-buffering k sweep (s auto-tuned)\n");
  std::printf("   %-12s %-14s %-14s %-12s\n", "k", "absorbed", "spill recs",
              "work (s)");
  for (const std::size_t k : {0, 50, 200, 1000, 5000}) {
    auto job = base_job(workdir, corpus, run_id++);
    if (k > 0) {
      job.freqbuf.enabled = true;
      job.freqbuf.top_k = k;
      job.freqbuf.sampling_fraction = 0.0;  // auto-tune s (§III-C)
    }
    const auto result = engine.run(job);
    const auto& work = result.metrics.work;
    std::printf("   %-12zu %-14llu %-14llu %-12.2f\n", k,
                static_cast<unsigned long long>(work.freq_hits),
                static_cast<unsigned long long>(work.spill_input_records),
                work.total_ns() * 1e-9);
  }
  std::printf(
      "\nReading the tables: the matcher should sit near the best fixed x\n"
      "without being told; absorption should saturate once k covers the\n"
      "corpus' heavy hitters (Zipf mass ~ ln k).\n");
  return 0;
}
