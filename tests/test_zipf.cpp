#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace textmr {
namespace {

TEST(Zipf, PmfSumsToOne) {
  for (const double alpha : {0.0, 0.5, 1.0, 1.5}) {
    ZipfDistribution zipf(500, alpha);
    double total = 0.0;
    for (std::uint64_t r = 1; r <= 500; ++r) total += zipf.pmf(r);
    EXPECT_NEAR(total, 1.0, 1e-9) << alpha;
  }
}

TEST(Zipf, SamplesStayInRange) {
  ZipfDistribution zipf(100, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t r = zipf(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 100u);
  }
}

TEST(Zipf, SingleElementAlwaysReturnsOne) {
  ZipfDistribution zipf(1, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(zipf(rng), 1u);
  }
}

class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalFrequenciesMatchPmf) {
  const double alpha = GetParam();
  constexpr std::uint64_t kN = 1000;
  constexpr int kSamples = 400000;
  ZipfDistribution zipf(kN, alpha);
  Xoshiro256 rng(17);
  std::vector<std::uint64_t> counts(kN + 1, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf(rng)] += 1;

  // Check head ranks tightly and a couple of tail ranks loosely.
  for (const std::uint64_t r : {1ull, 2ull, 3ull, 10ull}) {
    const double expected = zipf.pmf(r) * kSamples;
    if (expected < 100) continue;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 10)
        << "alpha=" << alpha << " rank=" << r;
  }
  // Mass of the tail half.
  double tail_expected = 0.0;
  std::uint64_t tail_actual = 0;
  for (std::uint64_t r = kN / 2; r <= kN; ++r) {
    tail_expected += zipf.pmf(r) * kSamples;
    tail_actual += counts[r];
  }
  EXPECT_NEAR(tail_actual, tail_expected,
              5 * std::sqrt(tail_expected + 1) + 50)
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFrequencyTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2, 2.0));

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  Xoshiro256 rng(23);
  std::vector<int> counts(51, 0);
  constexpr int kSamples = 250000;
  for (int i = 0; i < kSamples; ++i) counts[zipf(rng)] += 1;
  for (std::uint64_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(counts[r], kSamples / 50.0, kSamples / 50.0 * 0.1) << r;
  }
}

TEST(Zipf, SupportsHugeDomains) {
  // Rejection-inversion must work without materializing the domain.
  ZipfDistribution zipf(1ull << 40, 1.1);
  Xoshiro256 rng(31);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t r = zipf(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 1ull << 40);
    max_seen = std::max(max_seen, r);
  }
  // With alpha=1.1 over a huge domain, some samples land well past 2^20.
  EXPECT_GT(max_seen, 1u << 20);
}

TEST(Zipf, RejectsInvalidParameters) {
  EXPECT_THROW(ZipfDistribution(0, 1.0), InternalError);
  EXPECT_THROW(ZipfDistribution(10, -0.5), InternalError);
}

TEST(Zipf, RankOneDominatesForLargeAlpha) {
  ZipfDistribution zipf(1000, 2.0);
  Xoshiro256 rng(41);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf(rng) == 1) ++ones;
  }
  // pmf(1) = 1/H_{1000,2} ~ 0.608
  EXPECT_NEAR(ones / static_cast<double>(kSamples), zipf.pmf(1), 0.02);
}

}  // namespace
}  // namespace textmr
