#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "common/varint.hpp"
#include "apps/wordcount.hpp"
#include "mr/merger.hpp"

namespace textmr::mr {
namespace {

std::string varint_value(std::uint64_t v) {
  std::string out;
  put_varint(out, v);
  return out;
}

std::uint64_t varint_of(std::string_view bytes) {
  std::size_t pos = 0;
  return get_varint(bytes, pos);
}

io::SpillRunInfo write_run(const std::filesystem::path& path,
                           std::uint32_t partitions,
                           const std::vector<std::tuple<std::uint32_t,
                                                        std::string,
                                                        std::string>>& recs) {
  io::SpillRunWriter writer(path.string(), partitions);
  for (const auto& [p, k, v] : recs) writer.append(p, k, v);
  return writer.finish();
}

TEST(MergeStream, MergesSortedVectorsGlobally) {
  std::vector<io::Record> a = {{"apple", "1"}, {"mango", "2"}};
  std::vector<io::Record> b = {{"banana", "3"}, {"zebra", "4"}};
  std::vector<io::Record> c = {{"apple", "5"}};
  std::vector<std::unique_ptr<RecordCursor>> cursors;
  cursors.push_back(std::make_unique<VectorRunCursor>(&a));
  cursors.push_back(std::make_unique<VectorRunCursor>(&b));
  cursors.push_back(std::make_unique<VectorRunCursor>(&c));
  MergeStream stream(std::move(cursors));

  std::vector<std::pair<std::string, std::string>> out;
  while (auto record = stream.next()) {
    out.emplace_back(std::string(record->key), std::string(record->value));
  }
  // Equal keys ordered by cursor index (stable across runs).
  const std::vector<std::pair<std::string, std::string>> expected = {
      {"apple", "1"}, {"apple", "5"}, {"banana", "3"},
      {"mango", "2"}, {"zebra", "4"},
  };
  EXPECT_EQ(out, expected);
}

TEST(MergeStream, EmptyCursorsAreFine) {
  std::vector<io::Record> empty;
  std::vector<std::unique_ptr<RecordCursor>> cursors;
  cursors.push_back(std::make_unique<VectorRunCursor>(&empty));
  MergeStream stream(std::move(cursors));
  EXPECT_FALSE(stream.next().has_value());
}

TEST(MergeStream, NoCursorsAtAll) {
  MergeStream stream({});
  EXPECT_FALSE(stream.next().has_value());
}

TEST(KeyGroups, GroupsConsecutiveEqualKeys) {
  std::vector<io::Record> a = {{"a", "1"}, {"a", "2"}, {"b", "3"}};
  std::vector<io::Record> b = {{"a", "4"}, {"c", "5"}};
  std::vector<std::unique_ptr<RecordCursor>> cursors;
  cursors.push_back(std::make_unique<VectorRunCursor>(&a));
  cursors.push_back(std::make_unique<VectorRunCursor>(&b));
  MergeStream stream(std::move(cursors));
  KeyGroups groups(stream);

  std::map<std::string, std::vector<std::string>> seen;
  while (auto key = groups.next_group()) {
    auto& list = seen[std::string(*key)];
    while (auto value = groups.values().next()) {
      list.emplace_back(*value);
    }
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen["a"], (std::vector<std::string>{"1", "2", "4"}));
  EXPECT_EQ(seen["b"], (std::vector<std::string>{"3"}));
  EXPECT_EQ(seen["c"], (std::vector<std::string>{"5"}));
}

TEST(KeyGroups, UnconsumedValuesAreDrained) {
  std::vector<io::Record> a = {{"a", "1"}, {"a", "2"}, {"b", "3"}};
  std::vector<std::unique_ptr<RecordCursor>> cursors;
  cursors.push_back(std::make_unique<VectorRunCursor>(&a));
  MergeStream stream(std::move(cursors));
  KeyGroups groups(stream);

  auto first = groups.next_group();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "a");
  // Skip the values entirely; next_group must still land on "b".
  auto second = groups.next_group();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "b");
  EXPECT_EQ(*groups.values().next(), "3");
  EXPECT_FALSE(groups.next_group().has_value());
}

TEST(MergeRuns, CombinesAcrossRuns) {
  TempDir dir;
  std::vector<io::SpillRunInfo> runs;
  runs.push_back(write_run(dir.file("r0"), 2,
                           {{0, "apple", varint_value(2)},
                            {1, "pear", varint_value(1)}}));
  runs.push_back(write_run(dir.file("r1"), 2,
                           {{0, "apple", varint_value(3)},
                            {0, "cherry", varint_value(4)}}));
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto merged = merge_runs(runs, &combiner, dir.file("out").string(), 2,
                                 io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(merged.records, 3u);

  io::SpillRunReader reader(merged.path);
  auto c0 = reader.open(0);
  auto apple = c0.next();
  EXPECT_EQ(apple->key, "apple");
  EXPECT_EQ(varint_of(apple->value), 5u);
  auto cherry = c0.next();
  EXPECT_EQ(cherry->key, "cherry");
  EXPECT_EQ(varint_of(cherry->value), 4u);
  auto c1 = reader.open(1);
  EXPECT_EQ(c1.next()->key, "pear");
  EXPECT_GT(metrics.op_ns(Op::kMerge), 0u);
  EXPECT_EQ(metrics.merged_records, 3u);
}

TEST(MergeRuns, WithoutCombinerKeepsAllRecords) {
  TempDir dir;
  std::vector<io::SpillRunInfo> runs;
  runs.push_back(write_run(dir.file("r0"), 1, {{0, "k", "a"}, {0, "k", "b"}}));
  runs.push_back(write_run(dir.file("r1"), 1, {{0, "k", "c"}}));
  TaskMetrics metrics;
  const auto merged = merge_runs(runs, nullptr, dir.file("out").string(), 1,
                                 io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(merged.records, 3u);
  io::SpillRunReader reader(merged.path);
  auto cursor = reader.open(0);
  std::vector<std::string> values;
  while (auto record = cursor.next()) values.emplace_back(record->value);
  EXPECT_EQ(values, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MergeRuns, RandomizedManyRunsMatchReference) {
  TempDir dir;
  Xoshiro256 rng(17);
  constexpr std::uint32_t kPartitions = 3;
  std::vector<io::SpillRunInfo> runs;
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> expected;
  for (int run = 0; run < 6; ++run) {
    // Each run: per-partition sorted unique keys (post-combine shape).
    std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> local;
    const int keys = 1 + static_cast<int>(rng.next_below(60));
    for (int i = 0; i < keys; ++i) {
      const std::uint32_t p = static_cast<std::uint32_t>(rng.next_below(kPartitions));
      const std::string key = "w" + std::to_string(rng.next_below(40));
      const std::uint64_t count = 1 + rng.next_below(9);
      local[{p, key}] += count;
      expected[{p, key}] += count;
    }
    io::SpillRunWriter writer(dir.file("run" + std::to_string(run)).string(),
                              kPartitions);
    for (const auto& [pk, count] : local) {
      writer.append(pk.first, pk.second, varint_value(count));
    }
    runs.push_back(writer.finish());
  }
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto merged =
      merge_runs(runs, &combiner, dir.file("out").string(), kPartitions,
                 io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(merged.records, expected.size());

  io::SpillRunReader reader(merged.path);
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> actual;
  for (std::uint32_t p = 0; p < kPartitions; ++p) {
    auto cursor = reader.open(p);
    std::string previous;
    bool first = true;
    while (auto record = cursor.next()) {
      actual[{p, std::string(record->key)}] = varint_of(record->value);
      if (!first) { EXPECT_LT(previous, record->key); }  // unique + sorted
      previous.assign(record->key);
      first = false;
    }
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace textmr::mr
