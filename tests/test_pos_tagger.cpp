#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/stopwatch.hpp"
#include "apps/pos_tag.hpp"

namespace textmr::apps {
namespace {

class RecordingSink final : public mr::EmitSink {
 public:
  void emit(std::string_view key, std::string_view value) override {
    records.emplace_back(std::string(key), std::string(value));
  }
  std::vector<std::pair<std::string, std::string>> records;
};

TEST(PosTagger, LexiconWordsGetClosedClassTags) {
  PosTagger tagger;
  EXPECT_EQ(tagger.tag_word("the"), PosTag::kDeterminer);
  EXPECT_EQ(tagger.tag_word("of"), PosTag::kPreposition);
  EXPECT_EQ(tagger.tag_word("and"), PosTag::kConjunction);
  EXPECT_EQ(tagger.tag_word("they"), PosTag::kPronoun);
}

TEST(PosTagger, SuffixRulesApply) {
  PosTagger tagger;
  EXPECT_EQ(tagger.tag_word("running"), PosTag::kVerbGerund);
  EXPECT_EQ(tagger.tag_word("jumped"), PosTag::kVerbPast);
  EXPECT_EQ(tagger.tag_word("quickly"), PosTag::kAdverb);
  EXPECT_EQ(tagger.tag_word("information"), PosTag::kNoun);
  EXPECT_EQ(tagger.tag_word("beautiful"), PosTag::kAdjective);
  EXPECT_EQ(tagger.tag_word("cats"), PosTag::kPluralNoun);
  EXPECT_EQ(tagger.tag_word("12345"), PosTag::kNumber);
  EXPECT_EQ(tagger.tag_word("dog"), PosTag::kNoun);
}

TEST(PosTagger, SentenceTaggingIsDeterministic) {
  PosTagger tagger;
  const std::vector<std::string> tokens = {"the", "quick", "dog", "jumped"};
  std::vector<PosTag> tags1, tags2;
  tagger.tag_sentence(tokens, tags1);
  tagger.tag_sentence(tokens, tags2);
  EXPECT_EQ(tags1, tags2);
  ASSERT_EQ(tags1.size(), tokens.size());
  EXPECT_EQ(tags1[0], PosTag::kDeterminer);
}

TEST(PosTagger, EmptySentence) {
  PosTagger tagger;
  std::vector<PosTag> tags;
  tagger.tag_sentence({}, tags);
  EXPECT_TRUE(tags.empty());
}

TEST(PosTagger, MoreWorkPassesCostMoreCpu) {
  // The work_passes knob is the application's CPU-intensity control and
  // must scale measurably (this is what makes WordPOSTag the paper's
  // CPU-bound extreme).
  std::vector<std::string> tokens;
  for (int i = 0; i < 200; ++i) tokens.push_back("word" + std::to_string(i));
  std::vector<PosTag> tags;

  auto time_passes = [&](std::uint32_t passes) {
    PosTagger tagger(passes);
    const std::uint64_t t0 = monotonic_ns();
    for (int rep = 0; rep < 20; ++rep) tagger.tag_sentence(tokens, tags);
    return monotonic_ns() - t0;
  };
  const std::uint64_t cheap = time_passes(1);
  const std::uint64_t expensive = time_passes(64);
  EXPECT_GT(expensive, cheap * 4);
}

TEST(PosTagName, AllTagsHaveNames) {
  for (std::size_t t = 0; t < kNumPosTags; ++t) {
    const char* name = pos_tag_name(static_cast<PosTag>(t));
    EXPECT_NE(std::string(name), "?");
    EXPECT_FALSE(std::string(name).empty());
  }
}

TEST(TagCounts, EncodeDecodeRoundTrip) {
  std::array<std::uint64_t, kNumPosTags> counts{};
  counts[0] = 5;
  counts[3] = 17;
  counts[kNumPosTags - 1] = 1;
  std::string encoded;
  tagcounts::encode(encoded, counts);
  std::array<std::uint64_t, kNumPosTags> decoded{};
  tagcounts::decode_add(encoded, decoded);
  EXPECT_EQ(decoded, counts);
  // decode_add accumulates.
  tagcounts::decode_add(encoded, decoded);
  EXPECT_EQ(decoded[3], 34u);
}

TEST(WordPosTag, MapperEmitsCounterArrayPerWord) {
  WordPosTagMapper mapper(2);
  RecordingSink sink;
  mapper.map(0, "the dog jumped", sink);
  ASSERT_EQ(sink.records.size(), 3u);
  EXPECT_EQ(sink.records[0].first, "the");
  std::array<std::uint64_t, kNumPosTags> counts{};
  tagcounts::decode_add(sink.records[0].second, counts);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(PosTag::kDeterminer)], 1u);
}

TEST(WordPosTag, CombinerSumsArrays) {
  WordPosTagMapper mapper(2);
  RecordingSink mapped;
  mapper.map(0, "dog dog dog", mapped);
  std::vector<std::string> values;
  for (const auto& [key, value] : mapped.records) values.push_back(value);
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink combined;
  WordPosTagCombiner combiner;
  combiner.reduce("dog", stream, combined);
  ASSERT_EQ(combined.records.size(), 1u);
  std::array<std::uint64_t, kNumPosTags> counts{};
  tagcounts::decode_add(combined.records[0].second, counts);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 3u);
}

TEST(WordPosTag, ReducerFormatsNonzeroTags) {
  std::array<std::uint64_t, kNumPosTags> counts{};
  counts[static_cast<std::size_t>(PosTag::kNoun)] = 7;
  counts[static_cast<std::size_t>(PosTag::kVerb)] = 2;
  std::string encoded;
  tagcounts::encode(encoded, counts);
  std::vector<std::string> values = {encoded};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  WordPosTagReducer reducer;
  reducer.reduce("dog", stream, sink);
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].second, "NN:7 VB:2");
}

}  // namespace
}  // namespace textmr::apps
