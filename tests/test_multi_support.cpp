#include <gtest/gtest.h>

// Tests for the multi-support-thread generalization (paper §IV-A: "one
// or more support threads"): out-of-order spill releases, correctness of
// results under concurrent consumers, and the engine-level knob.

#include <thread>

#include "helpers.hpp"

namespace textmr {
namespace {

TEST(SpillBufferMulti, TwoConsumersDrainEverything) {
  mr::SpillBuffer buffer(32 * 1024, 0.3, /*max_outstanding=*/2);
  std::atomic<std::uint64_t> consumed{0};
  auto consumer = [&] {
    while (auto spill = buffer.take()) {
      consumed += spill->records.size();
      buffer.release(*spill, 100);
    }
  };
  std::thread c1(consumer);
  std::thread c2(consumer);
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    buffer.put(0, "key" + std::to_string(i), "value");
  }
  buffer.close();
  c1.join();
  c2.join();
  EXPECT_EQ(consumed.load(), static_cast<std::uint64_t>(kN));
}

TEST(SpillBufferMulti, OutOfOrderReleaseReclaimsRingSpace) {
  // Seal two spills, release the *second* first: ring space must only be
  // reclaimed when the frontier (spill 0) releases, and afterwards both
  // regions are free.
  mr::SpillBuffer buffer(16 * 1024, 0.2, /*max_outstanding=*/2);
  const std::string value(1000, 'v');
  // 8 KB of puts against a 3.2 KB threshold and 2 slots: two spills seal
  // back-to-back with no release in between.
  for (int i = 0; i < 8; ++i) buffer.put(0, "a", value);
  ASSERT_EQ(buffer.spills_sealed(), 2u);
  auto first = buffer.take();
  auto second = buffer.take();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(first->sequence, 0u);
  ASSERT_EQ(second->sequence, 1u);

  buffer.release(*second, 10);  // out of order: parks behind spill 0
  buffer.release(*first, 10);   // frontier advances past both

  // The ring must now have room for ~15 KB of new records without
  // blocking (would deadlock if the parked release leaked).
  for (int i = 0; i < 14; ++i) buffer.put(0, "c", value);
  buffer.close();
  std::uint64_t remaining = 0;
  while (auto spill = buffer.take()) {
    remaining += spill->records.size();
    buffer.release(*spill, 1);
  }
  EXPECT_EQ(remaining, 14u);
}

TEST(SpillBufferMulti, SingleSlotSealsOnlyOneWithoutRelease) {
  // Contrast case: with max_outstanding = 1 (Hadoop's structure), the
  // second region cannot seal until the first spill releases.
  mr::SpillBuffer buffer(16 * 1024, 0.2, 1);
  const std::string value(1000, 'v');
  for (int i = 0; i < 8; ++i) buffer.put(0, "a", value);
  EXPECT_EQ(buffer.spills_sealed(), 1u);
  auto spill = buffer.take();
  ASSERT_TRUE(spill.has_value());
  buffer.release(*spill, 1);
  EXPECT_EQ(buffer.spills_sealed(), 2u);  // sealed on release
  buffer.close();
}

TEST(MultiSupport, MapTaskResultsIdenticalAcrossThreadCounts) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 60000;
  corpus_spec.vocabulary = 1500;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);
  const auto expected = test::reference_wordcount(corpus.string());

  mr::LocalEngine engine;
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    auto spec = test::make_job(apps::wordcount_app(), splits,
                               dir.file("s" + std::to_string(threads)),
                               dir.file("o" + std::to_string(threads)));
    spec.spill_buffer_bytes = 64 * 1024;  // many concurrent spills
    spec.support_threads = threads;
    const auto result = engine.run(spec);
    const auto actual = test::read_outputs(result.outputs);
    ASSERT_EQ(actual.size(), expected.size()) << threads;
    for (const auto& [word, count] : expected) {
      ASSERT_EQ(actual.at(word), std::to_string(count))
          << word << " threads=" << threads;
    }
  }
}

TEST(MultiSupport, WorksWithBothOptimizationsEnabled) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 40000;
  corpus_spec.vocabulary = 800;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);

  auto spec = test::make_job(apps::wordcount_app(), splits, dir.file("s"),
                             dir.file("o"));
  spec.support_threads = 3;
  spec.use_spill_matcher = true;
  spec.freqbuf.enabled = true;
  spec.freqbuf.top_k = 50;
  spec.freqbuf.sampling_fraction = 0.05;
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto expected = test::reference_wordcount(corpus.string());
  EXPECT_EQ(test::read_outputs(result.outputs).size(), expected.size());
}

TEST(MultiSupport, InvertedIndexStaysSortedAndComplete) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 25000;
  corpus_spec.vocabulary = 400;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);

  auto baseline = test::make_job(apps::inverted_index_app(), splits,
                                 dir.file("s1"), dir.file("o1"));
  auto multi = test::make_job(apps::inverted_index_app(), splits,
                              dir.file("s2"), dir.file("o2"));
  multi.support_threads = 4;
  multi.spill_buffer_bytes = 64 * 1024;
  mr::LocalEngine engine;
  EXPECT_EQ(test::read_outputs(engine.run(baseline).outputs),
            test::read_outputs(engine.run(multi).outputs));
}

TEST(MultiSupport, CombinerErrorInAnySupportThreadPropagates) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 30000;
  corpus_spec.vocabulary = 300;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.support_threads = 3;
  spec.spill_buffer_bytes = 16 * 1024;
  spec.combiner = [] {
    return std::make_unique<mr::LambdaReducer>(
        [](std::string_view, mr::ValueStream&, mr::EmitSink&) {
          throw std::runtime_error("boom");
        });
  };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), std::runtime_error);
}

TEST(MultiSupport, EngineRejectsZeroSupportThreads) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 1000;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.support_threads = 0;
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), ConfigError);
}

}  // namespace
}  // namespace textmr
