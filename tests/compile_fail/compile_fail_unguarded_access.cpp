// MUST NOT COMPILE under -Werror=thread-safety: writes a GUARDED_BY
// field without holding its mutex. If this target ever builds, the
// thread-safety gate has rotted (see tests/compile_fail/CMakeLists.txt).

#include "common/mutex.hpp"

namespace {

class Unguarded {
 public:
  void increment() {
    ++value_;  // error: writing value_ requires holding mu_
  }

 private:
  textmr::Mutex mu_{textmr::LockRank::kEngine, "compile_fail.mu"};
  int value_ TEXTMR_GUARDED_BY(mu_) = 0;
};

}  // namespace

void compile_fail_probe() {
  Unguarded u;
  u.increment();
}
