// Negative-compile check for TEXTMR_LIFETIME_BOUND (DESIGN.md §13):
// RecordArena::records() is annotated [[clang::lifetimebound]], so binding
// the returned reference to a temporary arena must be rejected — the refs
// would index frame storage that dies at the end of the full-expression.
// Built with -Werror=dangling; see CMakeLists.txt. Without the annotation
// (or under GCC, where the macro expands empty) this compiles silently,
// which is why the target is registered only for Clang.

#include <vector>

#include "mr/record_arena.hpp"

const std::vector<textmr::mr::RecordRef>& dangling_records() {
  // Reference into a temporary: storage is gone before the caller looks.
  const std::vector<textmr::mr::RecordRef>& refs =
      textmr::mr::RecordArena{}.records();
  return refs;
}
