// Positive control for the lifetimebound negative-compile checks: correct
// borrows — views and references whose owner outlives them — must compile
// cleanly under the same -Werror=dangling flags. Without this control a
// broken include path or flag typo would make the compile_fail targets
// "pass" vacuously.

#include <cstddef>
#include <string_view>
#include <vector>

#include "io/spill_file.hpp"
#include "mr/record_arena.hpp"

std::size_t well_scoped_borrows() {
  textmr::mr::RecordArena arena;
  const textmr::mr::RecordRef& ref = arena.append(0, "key", "value");
  const std::vector<textmr::mr::RecordRef>& refs = arena.records();

  textmr::io::SpillRunReader reader{"run.spill"};
  const textmr::io::PartitionExtent& extent = reader.extent(0);

  std::string_view key = ref.key();
  return refs.size() + key.size() + static_cast<std::size_t>(extent.records);
}
