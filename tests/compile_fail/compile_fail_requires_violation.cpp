// MUST NOT COMPILE under -Werror=thread-safety: calls a REQUIRES(mu)
// function without holding mu. If this target ever builds, the
// thread-safety gate has rotted (see tests/compile_fail/CMakeLists.txt).

#include "common/mutex.hpp"

namespace {

textmr::Mutex g_mu{textmr::LockRank::kEngine, "compile_fail.requires_mu"};
int g_value TEXTMR_GUARDED_BY(g_mu) = 0;

void bump_locked() TEXTMR_REQUIRES(g_mu) { ++g_value; }

}  // namespace

void compile_fail_requires_probe() {
  bump_locked();  // error: calling bump_locked() requires holding g_mu
}
