// Positive control for the negative-compile harness: correctly guarded
// code must build clean under -Werror=thread-safety. If this target ever
// fails, the compile_fail_* results are meaningless.

#include "common/mutex.hpp"

namespace {

class Guarded {
 public:
  void increment() {
    textmr::MutexLock lock(mu_);
    ++value_;
  }

  int value() const {
    textmr::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable textmr::Mutex mu_{textmr::LockRank::kEngine, "compile_pass.mu"};
  int value_ TEXTMR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int compile_pass_probe() {
  Guarded g;
  g.increment();
  return g.value();
}
