// Negative-compile check for TEXTMR_LIFETIME_BOUND (DESIGN.md §13) on the
// frame-codec layer: SpillRunReader::extent() returns a reference into the
// reader's footer table and is annotated [[clang::lifetimebound]], so
// binding it past a temporary reader must be rejected. Built with
// -Werror=dangling; Clang-only (the macro expands empty under GCC).

#include "io/spill_file.hpp"

const textmr::io::PartitionExtent& dangling_extent() {
  // The reader (and its footer vector) dies at the end of the
  // full-expression; the reference would point into freed memory.
  const textmr::io::PartitionExtent& extent =
      textmr::io::SpillRunReader{"run.spill"}.extent(0);
  return extent;
}
