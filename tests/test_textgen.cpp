#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "common/tempdir.hpp"
#include "apps/tokenizer.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/zipf_estimator.hpp"
#include "textgen/corpus_gen.hpp"
#include "textgen/graphgen.hpp"
#include "textgen/loggen.hpp"

namespace textmr::textgen {
namespace {

TEST(WordForRank, IsUniqueAndShortForLowRanks) {
  std::set<std::string> seen;
  for (std::uint64_t r = 1; r <= 10000; ++r) {
    const auto word = word_for_rank(r);
    EXPECT_TRUE(seen.insert(word).second) << r;
  }
  EXPECT_EQ(word_for_rank(1).size(), 1u);
  EXPECT_EQ(word_for_rank(26).size(), 1u);
  EXPECT_EQ(word_for_rank(27).size(), 2u);
}

TEST(CorpusStream, HonorsWordBudget) {
  CorpusSpec spec;
  spec.total_words = 1000;
  spec.vocabulary = 100;
  CorpusStream stream(spec);
  std::string line;
  std::uint64_t words = 0;
  std::string scratch;
  while (stream.next_line(line)) {
    apps::for_each_token(line, scratch, [&](std::string_view) { ++words; });
  }
  EXPECT_EQ(words, 1000u);
  EXPECT_EQ(stream.words_emitted(), 1000u);
}

TEST(CorpusStream, IsDeterministic) {
  CorpusSpec spec;
  spec.total_words = 500;
  spec.seed = 99;
  CorpusStream a(spec);
  CorpusStream b(spec);
  std::string la, lb;
  while (true) {
    const bool more_a = a.next_line(la);
    const bool more_b = b.next_line(lb);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) break;
    ASSERT_EQ(la, lb);
  }
}

TEST(CorpusStream, DifferentSeedsDiffer) {
  CorpusSpec a_spec;
  a_spec.seed = 1;
  CorpusSpec b_spec;
  b_spec.seed = 2;
  CorpusStream a(a_spec);
  CorpusStream b(b_spec);
  std::string la, lb;
  a.next_line(la);
  b.next_line(lb);
  EXPECT_NE(la, lb);
}

TEST(GenerateCorpus, StatsMatchFile) {
  TempDir dir;
  CorpusSpec spec;
  spec.total_words = 20000;
  spec.vocabulary = 500;
  const auto path = dir.file("c.txt").string();
  const auto stats = generate_corpus(spec, path);
  EXPECT_EQ(stats.words, 20000u);
  EXPECT_EQ(stats.bytes, std::filesystem::file_size(path));
  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, stats.lines);
}

TEST(GenerateCorpus, WordFrequenciesAreZipfish) {
  // The generated corpus must reproduce the paper's Fig. 3 shape: a
  // log-log-linear rank/frequency curve with slope ~ -alpha.
  TempDir dir;
  CorpusSpec spec;
  spec.total_words = 200000;
  spec.vocabulary = 5000;
  spec.alpha = 1.0;
  spec.decoration_rate = 0.0;
  const auto path = dir.file("c.txt").string();
  generate_corpus(spec, path);

  sketch::ExactCounter counter;
  std::ifstream in(path);
  std::string line, scratch;
  while (std::getline(in, line)) {
    apps::for_each_token(line, scratch, [&](std::string_view token) {
      counter.offer(token);
    });
  }
  auto top = counter.top(counter.distinct());
  std::vector<std::uint64_t> freqs;
  for (const auto& [word, count] : top) freqs.push_back(count);
  const auto fit = sketch::fit_zipf(freqs);
  EXPECT_NEAR(fit.alpha, 1.0, 0.2);
  EXPECT_GT(fit.r_squared, 0.9);
  // The most frequent word must be the rank-1 word.
  EXPECT_EQ(top[0].first, word_for_rank(1));
}

TEST(GenerateAccessLog, SchemaAndDeterminism) {
  TempDir dir;
  AccessLogSpec spec;
  spec.num_visits = 1000;
  spec.num_urls = 100;
  const auto visits = dir.file("v.log").string();
  const auto rankings = dir.file("r.txt").string();
  const auto stats = generate_access_log(spec, visits, rankings);
  EXPECT_EQ(stats.visit_records, 1000u);
  EXPECT_EQ(stats.ranking_records, 100u);
  EXPECT_EQ(stats.visit_bytes, std::filesystem::file_size(visits));

  std::ifstream in(visits);
  std::string line;
  std::uint64_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    std::size_t fields = 1;
    for (const char c : line) {
      if (c == kLogFieldSep) ++fields;
    }
    ASSERT_EQ(fields, 9u) << line;
  }
  EXPECT_EQ(lines, 1000u);

  // Deterministic regeneration.
  const auto visits2 = dir.file("v2.log").string();
  const auto rankings2 = dir.file("r2.txt").string();
  generate_access_log(spec, visits2, rankings2);
  std::ifstream a(visits), b(visits2);
  std::string la, lb;
  while (std::getline(a, la) && std::getline(b, lb)) ASSERT_EQ(la, lb);
}

TEST(GenerateAccessLog, UrlPopularityIsSkewed) {
  TempDir dir;
  AccessLogSpec spec;
  spec.num_visits = 50000;
  spec.num_urls = 1000;
  spec.url_alpha = 0.8;
  const auto visits = dir.file("v.log").string();
  const auto rankings = dir.file("r.txt").string();
  generate_access_log(spec, visits, rankings);

  sketch::ExactCounter counter;
  std::ifstream in(visits);
  std::string line;
  while (std::getline(in, line)) {
    const auto first = line.find(kLogFieldSep);
    const auto second = line.find(kLogFieldSep, first + 1);
    counter.offer(line.substr(first + 1, second - first - 1));
  }
  // Top URL must dominate the median URL by a large factor under Zipf 0.8.
  const auto top = counter.top(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].first, url_for_rank(1));
  EXPECT_GT(top[0].second, 500u);
}

TEST(GenerateAccessLog, RankingsCoverEveryUrlOnce) {
  TempDir dir;
  AccessLogSpec spec;
  spec.num_visits = 100;
  spec.num_urls = 50;
  const auto visits = dir.file("v.log").string();
  const auto rankings = dir.file("r.txt").string();
  generate_access_log(spec, visits, rankings);
  std::ifstream in(rankings);
  std::string line;
  std::set<std::string> urls;
  while (std::getline(in, line)) {
    urls.insert(line.substr(0, line.find(kLogFieldSep)));
  }
  EXPECT_EQ(urls.size(), 50u);
  EXPECT_TRUE(urls.count(url_for_rank(1)) > 0);
  EXPECT_TRUE(urls.count(url_for_rank(50)) > 0);
}

TEST(GenerateWebGraph, FormatAndStats) {
  TempDir dir;
  WebGraphSpec spec;
  spec.num_pages = 500;
  spec.min_out_degree = 2;
  spec.max_out_degree = 5;
  const auto path = dir.file("g.txt").string();
  const auto stats = generate_web_graph(spec, path);
  EXPECT_EQ(stats.pages, 500u);
  EXPECT_GE(stats.edges, 2u * 500u);
  EXPECT_LE(stats.edges, 5u * 500u);

  std::ifstream in(path);
  std::string line;
  std::uint64_t lines = 0;
  std::uint64_t edges = 0;
  while (std::getline(in, line)) {
    ++lines;
    const auto tab1 = line.find('\t');
    const auto tab2 = line.find('\t', tab1 + 1);
    ASSERT_NE(tab2, std::string::npos);
    const auto links = line.substr(tab2 + 1);
    ASSERT_FALSE(links.empty());
    edges += 1 + static_cast<std::uint64_t>(
                     std::count(links.begin(), links.end(), ','));
  }
  EXPECT_EQ(lines, 500u);
  EXPECT_EQ(edges, stats.edges);
}

TEST(GenerateWebGraph, NoSelfLinks) {
  TempDir dir;
  WebGraphSpec spec;
  spec.num_pages = 300;
  const auto path = dir.file("g.txt").string();
  generate_web_graph(spec, path);
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto url = line.substr(0, line.find('\t'));
    const auto links = line.substr(line.rfind('\t') + 1);
    std::size_t start = 0;
    while (start < links.size()) {
      auto end = links.find(',', start);
      if (end == std::string::npos) end = links.size();
      ASSERT_NE(links.substr(start, end - start), url);
      start = end + 1;
    }
  }
}

TEST(GenerateWebGraph, PopularPagesAttractMoreInlinks) {
  TempDir dir;
  WebGraphSpec spec;
  spec.num_pages = 2000;
  spec.link_alpha = 1.0;
  const auto path = dir.file("g.txt").string();
  generate_web_graph(spec, path);
  sketch::ExactCounter inlinks;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto links = line.substr(line.rfind('\t') + 1);
    std::size_t start = 0;
    while (start < links.size()) {
      auto end = links.find(',', start);
      if (end == std::string::npos) end = links.size();
      inlinks.offer(links.substr(start, end - start));
      start = end + 1;
    }
  }
  const auto top = inlinks.top(1);
  ASSERT_FALSE(top.empty());
  // Under Zipf(1), page 1 should collect roughly observed/H_n ~ 2.5% of
  // all in-links; demand well above the uniform share.
  EXPECT_GT(top[0].second, inlinks.observed() / 2000 * 10);
}

}  // namespace
}  // namespace textmr::textgen
