#include <gtest/gtest.h>

// Golden end-to-end fixtures: a small checked-in corpus with checked-in
// expected outputs for WordCount and InvertedIndex. Any byte of drift in
// the record path (framing, sorting, combining, merging, reduce output)
// fails here with a readable diff, independently of the randomized
// property suites.
//
// Regenerate after an *intentional* output change with:
//   TEXTMR_UPDATE_GOLDEN=1 ./build/tests/test_golden
// and commit the updated files under tests/golden/.

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "helpers.hpp"

#ifndef TEXTMR_GOLDEN_DIR
#error "TEXTMR_GOLDEN_DIR must be defined by the build"
#endif

namespace textmr {
namespace {

std::filesystem::path golden_dir() { return TEXTMR_GOLDEN_DIR; }

bool update_mode() { return std::getenv("TEXTMR_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Runs `app` over a checked-in input with a fixed configuration chosen
/// to exercise multiple map tasks, multiple spills and the final merge,
/// and compares every part file byte-for-byte against the checked-in
/// golden. `inputs` are fixture filenames under tests/golden/, split and
/// concatenated in order (AccessLogJoin-style apps take two).
void compare_parts(const std::string& stem,
                   const std::vector<std::filesystem::path>& outputs) {
  for (std::size_t part = 0; part < outputs.size(); ++part) {
    const auto expected_path =
        golden_dir() / (stem + ".part" + std::to_string(part) + ".golden");
    const std::string actual = read_file(outputs[part]);
    if (update_mode()) {
      write_file(expected_path, actual);
      continue;
    }
    ASSERT_TRUE(std::filesystem::exists(expected_path))
        << expected_path << " missing; run with TEXTMR_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, read_file(expected_path))
        << "golden drift in " << expected_path;
  }
}

void run_golden_case(const apps::AppBundle& app, const std::string& stem,
                     const std::vector<std::string>& inputs = {"corpus.txt"}) {
  TempDir dir;
  // Tiny splits and spill buffer: several map tasks, several spills each,
  // so the golden run covers sort, combine, spill and merge — not just
  // the single-spill fast path. All knobs fixed for determinism.
  std::vector<io::InputSplit> splits;
  for (const auto& name : inputs) {
    const auto input = golden_dir() / name;
    ASSERT_TRUE(std::filesystem::exists(input)) << input;
    const auto extra = io::make_splits(input.string(), 512);
    splits.insert(splits.end(), extra.begin(), extra.end());
  }
  auto spec = test::make_job(app, std::move(splits), dir.file("scratch"),
                             dir.file("out"), /*num_reducers=*/2);
  spec.spill_buffer_bytes = 4 * 1024;

  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  ASSERT_EQ(result.outputs.size(), 2u);
  compare_parts(stem, result.outputs);
}

TEST(Golden, WordCount) { run_golden_case(apps::wordcount_app(), "wordcount"); }

TEST(Golden, InvertedIndex) {
  run_golden_case(apps::inverted_index_app(), "inverted_index");
}

TEST(Golden, WordPOSTag) {
  // Dictionary tagger with context window 1 — the paper's POS-tagging
  // workload (§V) pinned to fixed bytes.
  run_golden_case(apps::word_pos_tag_app(1), "pos_tag");
}

TEST(Golden, AccessLogSum) {
  run_golden_case(apps::access_log_sum_app(), "access_log_sum",
                  {"access_log.txt"});
}

TEST(Golden, AccessLogJoin) {
  // One fixed engine configuration is deterministic even for the join
  // (within-group row order follows the merge schedule, which is pinned
  // by the fixed split/spill geometry here).
  run_golden_case(apps::access_log_join_app(), "access_log_join",
                  {"access_log.txt", "rankings.txt"});
}

TEST(Golden, AccessLogJoinSorted) {
  // The canonicalized join variant: within-group rows are sorted, so its
  // bytes are pinned by the data alone, not the merge schedule.
  run_golden_case(apps::access_log_join_sorted_app(), "access_log_join_sorted",
                  {"access_log.txt", "rankings.txt"});
}

TEST(Golden, Sessionize) {
  run_golden_case(apps::sessionize_app(), "sessionize", {"access_log.txt"});
}

TEST(Golden, TfIdfPipeline) {
  // Two chained jobs: job 1's term counts per document feed job 2's
  // document-frequency join. Both stages' part files are pinned — drift
  // in either stage (or in how stage 1's output re-splits) fails here.
  TempDir dir;
  const auto corpus = golden_dir() / "corpus.txt";
  ASSERT_TRUE(std::filesystem::exists(corpus)) << corpus;

  auto job1 = test::make_job(apps::tfidf_job1_app(),
                             io::make_splits(corpus.string(), 512),
                             dir.file("s1"), dir.file("o1"),
                             /*num_reducers=*/2);
  job1.spill_buffer_bytes = 4 * 1024;
  mr::LocalEngine engine;
  const auto mid = engine.run(job1);
  ASSERT_EQ(mid.outputs.size(), 2u);
  compare_parts("tfidf_termcount", mid.outputs);

  std::vector<io::InputSplit> mid_splits;
  for (const auto& part : mid.outputs) {
    const auto extra = io::make_splits(part.string(), 512);
    mid_splits.insert(mid_splits.end(), extra.begin(), extra.end());
  }
  auto job2 = test::make_job(apps::tfidf_job2_app(), std::move(mid_splits),
                             dir.file("s2"), dir.file("o2"),
                             /*num_reducers=*/2);
  job2.spill_buffer_bytes = 4 * 1024;
  const auto result = engine.run(job2);
  ASSERT_EQ(result.outputs.size(), 2u);
  compare_parts("tfidf_join", result.outputs);
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t checksum = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    checksum = (checksum ^ c) * 1099511628211ull;
  }
  return checksum;
}

/// The inputs themselves are fixtures: if someone edits one, the goldens
/// must be regenerated, so pin each input's size and checksum.
TEST(Golden, CorpusFixtureUnchanged) {
  const std::string corpus = read_file(golden_dir() / "corpus.txt");
  EXPECT_EQ(corpus.size(), 1593u);
  EXPECT_EQ(fnv1a(corpus), 0xebf43344e8c207fbull)
      << "corpus.txt changed; regenerate the goldens";
}

TEST(Golden, AccessLogFixturesUnchanged) {
  const std::string visits = read_file(golden_dir() / "access_log.txt");
  const std::string rankings = read_file(golden_dir() / "rankings.txt");
  EXPECT_EQ(visits.size(), 11955u);
  EXPECT_EQ(rankings.size(), 1192u);
  EXPECT_EQ(fnv1a(visits), 0xc462622cadb7b48aull) << "access_log.txt changed; regenerate";
  EXPECT_EQ(fnv1a(rankings), 0xa35c1140d546120full) << "rankings.txt changed; regenerate";
}

}  // namespace
}  // namespace textmr
