#include <gtest/gtest.h>

// Golden end-to-end fixtures: a small checked-in corpus with checked-in
// expected outputs for WordCount and InvertedIndex. Any byte of drift in
// the record path (framing, sorting, combining, merging, reduce output)
// fails here with a readable diff, independently of the randomized
// property suites.
//
// Regenerate after an *intentional* output change with:
//   TEXTMR_UPDATE_GOLDEN=1 ./build/tests/test_golden
// and commit the updated files under tests/golden/.

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "helpers.hpp"

#ifndef TEXTMR_GOLDEN_DIR
#error "TEXTMR_GOLDEN_DIR must be defined by the build"
#endif

namespace textmr {
namespace {

std::filesystem::path golden_dir() { return TEXTMR_GOLDEN_DIR; }

bool update_mode() { return std::getenv("TEXTMR_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Runs `app` over the golden corpus with a fixed configuration chosen to
/// exercise multiple map tasks, multiple spills and the final merge, and
/// compares every part file byte-for-byte against the checked-in golden.
void run_golden_case(const apps::AppBundle& app, const std::string& stem) {
  TempDir dir;
  const auto corpus = golden_dir() / "corpus.txt";
  ASSERT_TRUE(std::filesystem::exists(corpus)) << corpus;

  // Tiny splits and spill buffer: several map tasks, several spills each,
  // so the golden run covers sort, combine, spill and merge — not just
  // the single-spill fast path. All knobs fixed for determinism.
  auto spec = test::make_job(app, io::make_splits(corpus.string(), 512),
                             dir.file("scratch"), dir.file("out"),
                             /*num_reducers=*/2);
  spec.spill_buffer_bytes = 4 * 1024;

  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  ASSERT_EQ(result.outputs.size(), 2u);

  for (std::size_t part = 0; part < result.outputs.size(); ++part) {
    const auto expected_path =
        golden_dir() / (stem + ".part" + std::to_string(part) + ".golden");
    const std::string actual = read_file(result.outputs[part]);
    if (update_mode()) {
      write_file(expected_path, actual);
      continue;
    }
    ASSERT_TRUE(std::filesystem::exists(expected_path))
        << expected_path << " missing; run with TEXTMR_UPDATE_GOLDEN=1";
    EXPECT_EQ(actual, read_file(expected_path))
        << "golden drift in " << expected_path;
  }
}

TEST(Golden, WordCount) { run_golden_case(apps::wordcount_app(), "wordcount"); }

TEST(Golden, InvertedIndex) {
  run_golden_case(apps::inverted_index_app(), "inverted_index");
}

/// The corpus itself is a fixture: if someone edits it, the goldens must
/// be regenerated, so pin its size and a simple checksum.
TEST(Golden, CorpusFixtureUnchanged) {
  const std::string corpus = read_file(golden_dir() / "corpus.txt");
  std::uint64_t checksum = 1469598103934665603ull;  // FNV-1a
  for (const unsigned char c : corpus) {
    checksum = (checksum ^ c) * 1099511628211ull;
  }
  EXPECT_EQ(corpus.size(), 1593u);
  EXPECT_EQ(checksum, 0xebf43344e8c207fbull)
      << "corpus.txt changed; regenerate the goldens";
}

}  // namespace
}  // namespace textmr
