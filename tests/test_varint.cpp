#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "common/varint.hpp"

namespace textmr {
namespace {

TEST(Varint, EncodesSmallValuesInOneByte) {
  for (std::uint64_t v = 0; v < 128; ++v) {
    std::string out;
    put_varint(out, v);
    EXPECT_EQ(out.size(), 1u) << v;
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(out, pos), v);
    EXPECT_EQ(pos, 1u);
  }
}

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      (1ull << 32) - 1,
      1ull << 32,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const std::uint64_t v : cases) {
    std::string out;
    put_varint(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(out, pos), v);
    EXPECT_EQ(pos, out.size());
  }
}

TEST(Varint, RoundTripsRandomValuesBackToBack) {
  Xoshiro256 rng(123);
  std::string out;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes so all byte-lengths are exercised.
    const int shift = static_cast<int>(rng.next_below(64));
    const std::uint64_t v = rng() >> shift;
    values.push_back(v);
    put_varint(out, v);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    ASSERT_EQ(get_varint(out, pos), v);
  }
  EXPECT_EQ(pos, out.size());
}

TEST(Varint, ThrowsOnTruncation) {
  std::string out;
  put_varint(out, 1ull << 40);
  for (std::size_t cut = 1; cut < out.size(); ++cut) {
    std::size_t pos = 0;
    EXPECT_THROW(get_varint(out.substr(0, cut), pos), FormatError) << cut;
  }
}

TEST(Varint, ThrowsOnOverlongEncoding) {
  // 11 continuation bytes exceed 64 bits of payload.
  std::string bad(10, '\x80');
  bad.push_back('\x01');
  std::size_t pos = 0;
  EXPECT_THROW(get_varint(bad, pos), FormatError);
}

TEST(ZigZag, RoundTripsSignedValues) {
  const std::int64_t cases[] = {0, -1, 1, -2, 2, 1000000, -1000000,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : cases) {
    std::string out;
    put_varint_signed(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint_signed(out, pos), v);
  }
}

TEST(ZigZag, SmallMagnitudesStaySmall) {
  // |v| <= 63 must fit in one byte — the point of zigzag.
  for (std::int64_t v = -63; v <= 63; ++v) {
    std::string out;
    put_varint_signed(out, v);
    EXPECT_EQ(out.size(), 1u) << v;
  }
}

TEST(Fixed, RoundTrips32And64) {
  std::string out;
  put_fixed32(out, 0xdeadbeefu);
  put_fixed64(out, 0x0123456789abcdefull);
  std::size_t pos = 0;
  EXPECT_EQ(get_fixed32(out, pos), 0xdeadbeefu);
  EXPECT_EQ(get_fixed64(out, pos), 0x0123456789abcdefull);
  EXPECT_EQ(pos, 12u);
}

TEST(Fixed, IsLittleEndianOnTheWire) {
  std::string out;
  put_fixed32(out, 0x01020304u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(out[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(out[3]), 0x01);
}

TEST(Fixed, ThrowsOnTruncation) {
  std::string out;
  put_fixed64(out, 42);
  std::size_t pos = 0;
  EXPECT_THROW(get_fixed64(out.substr(0, 7), pos), FormatError);
  pos = 0;
  EXPECT_THROW(get_fixed32(out.substr(0, 3), pos), FormatError);
}

TEST(DoubleCodec, RoundTripsExactly) {
  const double cases[] = {0.0, -0.0, 1.0, -1.5, 3.14159265358979,
                          1e-300, 1e300,
                          std::numeric_limits<double>::infinity()};
  for (const double v : cases) {
    std::string out;
    put_double(out, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_double(out, pos), v);
  }
}

TEST(LengthPrefixed, RoundTripsIncludingEmbeddedNulsAndEmpty) {
  const std::string cases[] = {"", "a", std::string("x\0y", 3),
                               std::string(1000, 'q')};
  std::string out;
  for (const auto& s : cases) put_length_prefixed(out, s);
  std::size_t pos = 0;
  for (const auto& s : cases) {
    EXPECT_EQ(get_length_prefixed(out, pos), s);
  }
  EXPECT_EQ(pos, out.size());
}

TEST(LengthPrefixed, ThrowsWhenLengthExceedsBuffer) {
  std::string out;
  put_varint(out, 100);  // claims 100 bytes, provides none
  std::size_t pos = 0;
  EXPECT_THROW(get_length_prefixed(out, pos), FormatError);
}

}  // namespace
}  // namespace textmr
