#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/varint.hpp"
#include "apps/wordcount.hpp"
#include "freqbuf/frequent_key_table.hpp"

namespace textmr::freqbuf {
namespace {

/// Captures records routed back to the standard spill path.
class RecordingSink final : public mr::EmitSink {
 public:
  void emit(std::string_view key, std::string_view value) override {
    records.emplace_back(std::string(key), std::string(value));
  }
  std::vector<std::pair<std::string, std::string>> records;
};

std::string varint_value(std::uint64_t v) {
  std::string out;
  put_varint(out, v);
  return out;
}

std::uint64_t varint_of(std::string_view bytes) {
  std::size_t pos = 0;
  return get_varint(bytes, pos);
}

TEST(FrequentKeyTable, AbsorbsFrequentRejectsInfrequent) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FrequentKeyTable table({"hot", "warm"}, {}, &combiner, sink, metrics);
  EXPECT_TRUE(table.offer("hot", varint_value(1)));
  EXPECT_TRUE(table.offer("warm", varint_value(1)));
  EXPECT_FALSE(table.offer("cold", varint_value(1)));
  EXPECT_EQ(metrics.freq_hits, 2u);
  EXPECT_TRUE(sink.records.empty());
}

TEST(FrequentKeyTable, FlushCombinesAndEmitsOnce) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FrequentKeyTable table({"hot"}, {}, &combiner, sink, metrics);
  for (int i = 0; i < 100; ++i) table.offer("hot", varint_value(1));
  table.flush();
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(sink.records[0].first, "hot");
  EXPECT_EQ(varint_of(sink.records[0].second), 100u);
  EXPECT_EQ(metrics.freq_hits, 100u);
  EXPECT_EQ(metrics.freq_flushes, 1u);
}

TEST(FrequentKeyTable, FlushIsIdempotent) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FrequentKeyTable table({"hot"}, {}, &combiner, sink, metrics);
  table.offer("hot", varint_value(3));
  table.flush();
  table.flush();
  EXPECT_EQ(sink.records.size(), 1u);
}

TEST(FrequentKeyTable, PerKeyLimitTriggersEagerCombine) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FrequentKeyTable::Options options;
  options.budget_bytes = 1 << 20;
  options.per_key_limit_bytes = 16;  // combine after ~16 buffered bytes
  FrequentKeyTable table({"hot"}, options, &combiner, sink, metrics);
  for (int i = 0; i < 1000; ++i) table.offer("hot", varint_value(1));
  // Eager combining keeps the buffered footprint tiny at all times.
  EXPECT_LE(table.buffered_bytes(), options.per_key_limit_bytes + 10);
  EXPECT_TRUE(sink.records.empty());  // never overflowed to disk
  table.flush();
  ASSERT_EQ(sink.records.size(), 1u);
  EXPECT_EQ(varint_of(sink.records[0].second), 1000u);
  EXPECT_GT(metrics.op_ns(mr::Op::kCombine), 0u);
}

TEST(FrequentKeyTable, BudgetOverflowEvictsToSpillPath) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  // No combiner: values cannot shrink, so the budget forces evictions.
  FrequentKeyTable::Options options;
  options.budget_bytes = 64;
  options.per_key_limit_bytes = 1 << 20;
  FrequentKeyTable table({"a", "b"}, options, nullptr, sink, metrics);
  for (int i = 0; i < 10; ++i) {
    table.offer("a", std::string(10, 'x'));
    table.offer("b", std::string(10, 'y'));
  }
  EXPECT_FALSE(sink.records.empty());
  EXPECT_LE(table.buffered_bytes(), 64u + 10u);
  table.flush();
  // Every absorbed value eventually reaches the spill path exactly once.
  std::size_t a_bytes = 0, b_bytes = 0;
  for (const auto& [key, value] : sink.records) {
    if (key == "a") a_bytes += value.size();
    if (key == "b") b_bytes += value.size();
  }
  EXPECT_EQ(a_bytes, 100u);
  EXPECT_EQ(b_bytes, 100u);
}

TEST(FrequentKeyTable, WithoutCombinerPerKeyLimitEvicts) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  FrequentKeyTable::Options options;
  options.budget_bytes = 1 << 20;
  options.per_key_limit_bytes = 32;
  FrequentKeyTable table({"k"}, options, nullptr, sink, metrics);
  for (int i = 0; i < 10; ++i) table.offer("k", std::string(8, 'v'));
  EXPECT_FALSE(sink.records.empty());
  table.flush();
  std::size_t total = 0;
  for (const auto& [key, value] : sink.records) total += value.size();
  EXPECT_EQ(total, 80u);
}

TEST(FrequentKeyTable, NoDataLossUnderRandomizedLoad) {
  // Conservation: sum of counts absorbed == sum of counts flushed, under
  // tight budgets that force every code path.
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FrequentKeyTable::Options options;
  options.budget_bytes = 48;
  options.per_key_limit_bytes = 12;
  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("k" + std::to_string(i));
  FrequentKeyTable table(keys, options, &combiner, sink, metrics);

  std::map<std::string, std::uint64_t> expected;
  std::uint64_t state = 1;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::string key = "k" + std::to_string(state % 8);
    const std::uint64_t count = 1 + (state >> 32) % 7;
    ASSERT_TRUE(table.offer(key, varint_value(count)));
    expected[key] += count;
  }
  table.flush();
  std::map<std::string, std::uint64_t> actual;
  for (const auto& [key, value] : sink.records) {
    actual[key] += varint_of(value);
  }
  EXPECT_EQ(actual, expected);
}

TEST(FrequentKeyTable, EmptyKeySetAbsorbsNothing) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  FrequentKeyTable table({}, {}, nullptr, sink, metrics);
  EXPECT_FALSE(table.offer("anything", "v"));
  table.flush();
  EXPECT_TRUE(sink.records.empty());
}

}  // namespace
}  // namespace textmr::freqbuf
