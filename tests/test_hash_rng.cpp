#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/harmonic.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace textmr {
namespace {

TEST(Fnv1a, MatchesKnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, IsConstexpr) {
  static_assert(fnv1a64("abc") != fnv1a64("abd"));
  SUCCEED();
}

TEST(HashKey, MatchesPinnedGoldenVectors) {
  // hash_key decides partition assignment, so these values pin every
  // golden fixture's part layout and the skew plan's dedicated-partition
  // routing. A platform or compiler that changes any of them would shift
  // outputs silently everywhere else — fail loudly here instead. Never
  // update these constants; if this test breaks, the hash broke.
  EXPECT_EQ(hash_key(""), 0xc3817c016ba4ff30ull);
  EXPECT_EQ(hash_key("a"), 0x5f29c2aadd9b8527ull);
  EXPECT_EQ(hash_key("the"), 0xff7f3d556c4703b3ull);
  EXPECT_EQ(hash_key("of"), 0x531ed2bfd070a1e3ull);
  EXPECT_EQ(hash_key("and"), 0xdb7877dbf15219e8ull);
  EXPECT_EQ(hash_key("foobar"), 0x5df295413403de4full);
  EXPECT_EQ(hash_key(std::string_view("\0", 1)), 0x71b8262bb6e2e086ull);
  EXPECT_EQ(hash_key(std::string_view("k\0y", 3)), 0x23e5588659f3b4c7ull);
  EXPECT_EQ(hash_key("http://example.com/page?id=42"), 0x36022579f2d1bb6bull);
  EXPECT_EQ(hash_key("\xE6\x97\xA5\xE6\x9C\xAC"), 0xf4288c2908dbf755ull);
  EXPECT_EQ(hash_key(std::string(70000, 'x')), 0x09bd1b6e44636cdcull);
}

TEST(HashKey, PartitionLayoutIsPinned) {
  // The full partition map for keys "w0".."w31" at 8 partitions — the
  // shape golden fixtures and the differential grid implicitly rely on.
  constexpr std::uint64_t kPartitions = 8;
  constexpr std::uint64_t kExpected[32] = {
      2, 3, 7, 5, 0, 4, 4, 3, 3, 4, 2, 6, 1, 5, 6, 6,
      4, 6, 3, 6, 4, 5, 6, 6, 2, 7, 1, 6, 5, 3, 6, 6};
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(hash_key("w" + std::to_string(i)) % kPartitions, kExpected[i])
        << "w" << i;
  }
}

TEST(HashKey, DistributesShortKeysAcrossPartitions) {
  // fnv1a alone clusters short keys in low bits; mix64 must spread them.
  constexpr int kPartitions = 16;
  std::vector<int> buckets(kPartitions, 0);
  for (int i = 0; i < 16000; ++i) {
    buckets[hash_key(std::to_string(i)) % kPartitions] += 1;
  }
  for (const int count : buckets) {
    EXPECT_GT(count, 700);   // expectation 1000; loose 30% band
    EXPECT_LT(count, 1300);
  }
}

TEST(SplitMix64, ProducesKnownSequence) {
  // Reference sequence for seed 1234567 (from the splitmix64 reference
  // implementation).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ull);
  EXPECT_EQ(sm.next(), 3203168211198807973ull);
}

TEST(Xoshiro, IsDeterministicPerSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
  Xoshiro256 c(100);
  bool differs = false;
  Xoshiro256 a2(99);
  for (int i = 0; i < 10; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  double min_seen = 1.0;
  double max_seen = 0.0;
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    min_seen = std::min(min_seen, u);
    max_seen = std::max(max_seen, u);
    sum += u;
  }
  EXPECT_LT(min_seen, 0.01);
  EXPECT_GT(max_seen, 0.99);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr std::uint64_t kBound = 7;
  std::vector<int> counts(kBound, 0);
  constexpr int kSamples = 70000;
  for (int i = 0; i < kSamples; ++i) {
    const std::uint64_t v = rng.next_below(kBound);
    ASSERT_LT(v, kBound);
    counts[v] += 1;
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / kBound, kSamples / kBound * 0.1);
  }
}

TEST(Harmonic, MatchesDirectSumForSmallM) {
  for (const double alpha : {0.0, 0.5, 0.8, 1.0, 1.3}) {
    double direct = 0.0;
    for (int j = 1; j <= 1000; ++j) {
      direct += std::pow(j, -alpha);
    }
    EXPECT_NEAR(generalized_harmonic(1000, alpha), direct, 1e-9) << alpha;
  }
}

TEST(Harmonic, TailApproximationIsAccurateForLargeM) {
  // Compare Euler–Maclaurin path (m > 100000) against a brute-force sum.
  const std::uint64_t m = 300000;
  for (const double alpha : {0.6, 1.0, 1.4}) {
    double direct = 0.0;
    for (std::uint64_t j = 1; j <= m; ++j) {
      direct += std::pow(static_cast<double>(j), -alpha);
    }
    const double approx = generalized_harmonic(m, alpha);
    EXPECT_NEAR(approx / direct, 1.0, 1e-6) << alpha;
  }
}

TEST(Harmonic, AlphaOneIsLogarithmic) {
  // H_{m,1} ~ ln m + gamma
  const double h = generalized_harmonic(10'000'000, 1.0);
  EXPECT_NEAR(h, std::log(1e7) + 0.5772156649, 1e-3);
}

TEST(Harmonic, RejectsZeroM) {
  EXPECT_THROW(generalized_harmonic(0, 1.0), InternalError);
}

}  // namespace
}  // namespace textmr
