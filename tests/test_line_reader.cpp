#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "io/line_reader.hpp"

namespace textmr::io {
namespace {

std::string write_file(const TempDir& dir, const std::string& name,
                       const std::string& content) {
  const auto path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  out << content;
  return path.string();
}

std::vector<std::string> read_all(const InputSplit& split,
                                  std::size_t buffer_size = 1 << 16) {
  LineReader reader(split, buffer_size);
  std::vector<std::string> lines;
  while (auto line = reader.next_line()) {
    lines.emplace_back(*line);
  }
  return lines;
}

TEST(LineReader, ReadsWholeFileAsSingleSplit) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "one\ntwo\nthree\n");
  const auto lines = read_all(InputSplit{path, 0, 14});
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(LineReader, HandlesMissingTrailingNewline) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "one\ntwo");
  const auto lines = read_all(InputSplit{path, 0, 7});
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
}

TEST(LineReader, StripsCarriageReturns) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "one\r\ntwo\r\n");
  const auto lines = read_all(InputSplit{path, 0, 10});
  EXPECT_EQ(lines, (std::vector<std::string>{"one", "two"}));
}

TEST(LineReader, EmptyFileYieldsNoLines) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "");
  EXPECT_TRUE(read_all(InputSplit{path, 0, 0}).empty());
}

TEST(LineReader, EmptyLinesAreDelivered) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "a\n\n\nb\n");
  const auto lines = read_all(InputSplit{path, 0, 6});
  EXPECT_EQ(lines, (std::vector<std::string>{"a", "", "", "b"}));
}

TEST(LineReader, LinesLongerThanBufferAreAssembled) {
  TempDir dir;
  const std::string longline(10000, 'x');
  const auto path = write_file(dir, "a.txt", longline + "\nshort\n");
  const auto lines =
      read_all(InputSplit{path, 0, longline.size() + 7}, /*buffer=*/128);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], longline);
  EXPECT_EQ(lines[1], "short");
}

TEST(LineReader, SplitBoundaryInMiddleOfLine) {
  TempDir dir;
  // "alpha\nbravo\ncharlie\n" : boundary at 8 cuts "bravo".
  const auto path = write_file(dir, "a.txt", "alpha\nbravo\ncharlie\n");
  const auto first = read_all(InputSplit{path, 0, 8});
  const auto second = read_all(InputSplit{path, 8, 12});
  EXPECT_EQ(first, (std::vector<std::string>{"alpha", "bravo"}));
  EXPECT_EQ(second, (std::vector<std::string>{"charlie"}));
}

TEST(LineReader, SplitBoundaryExactlyAtLineStart) {
  TempDir dir;
  // Boundary exactly after "alpha\n" (offset 6): second split must keep
  // "bravo" (the offset-1 trick).
  const auto path = write_file(dir, "a.txt", "alpha\nbravo\n");
  const auto first = read_all(InputSplit{path, 0, 6});
  const auto second = read_all(InputSplit{path, 6, 6});
  EXPECT_EQ(first, (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(second, (std::vector<std::string>{"bravo"}));
}

TEST(LineReader, SplitCoveringOnlyPartialLineIsEmpty) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", std::string(100, 'y') + "\n");
  // Range [10, 50) lies strictly inside the single line.
  EXPECT_TRUE(read_all(InputSplit{path, 10, 40}).empty());
}

TEST(MakeSplits, CoversFileWithoutGapsOrOverlap) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", std::string(1000, 'z'));
  const auto splits = make_splits(path, 300);
  std::uint64_t expected_offset = 0;
  for (const auto& split : splits) {
    EXPECT_EQ(split.offset, expected_offset);
    expected_offset += split.length;
  }
  EXPECT_EQ(expected_offset, 1000u);
}

TEST(MakeSplits, AbsorbsShortTail) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", std::string(1100, 'z'));
  const auto splits = make_splits(path, 500);
  // 500 + 600 (tail of 100 < 250 absorbed), not 500+500+100.
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[1].length, 600u);
}

TEST(MakeSplits, EmptyFileYieldsNoSplits) {
  TempDir dir;
  const auto path = write_file(dir, "a.txt", "");
  EXPECT_TRUE(make_splits(path, 100).empty());
}

TEST(MakeSplits, ThrowsOnMissingFile) {
  EXPECT_THROW(make_splits("/nonexistent/file", 100), IoError);
}

/// Property: for random files and random split sizes, the union of all
/// splits yields exactly the file's lines, in order, exactly once.
class SplitCoverageTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitCoverageTest, SplitsPartitionLinesExactly) {
  const auto [seed, split_size] = GetParam();
  textmr::Xoshiro256 rng(static_cast<std::uint64_t>(seed));
  std::string content;
  std::vector<std::string> expected;
  const int num_lines = 50 + static_cast<int>(rng.next_below(200));
  for (int i = 0; i < num_lines; ++i) {
    std::string line = "line" + std::to_string(i);
    const int extra = static_cast<int>(rng.next_below(120));
    line.append(static_cast<std::size_t>(extra), 'p');
    expected.push_back(line);
    content += line;
    content.push_back('\n');
  }
  TempDir dir;
  const auto path = write_file(dir, "prop.txt", content);

  std::vector<std::string> actual;
  for (const auto& split :
       make_splits(path, static_cast<std::uint64_t>(split_size))) {
    LineReader reader(split, /*buffer_size=*/64);
    while (auto line = reader.next_line()) {
      actual.emplace_back(*line);
    }
  }
  EXPECT_EQ(actual, expected) << "seed=" << seed << " split=" << split_size;
}

INSTANTIATE_TEST_SUITE_P(
    RandomFiles, SplitCoverageTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(37, 64, 100, 256, 1024, 4096)));

}  // namespace
}  // namespace textmr::io
