#include <gtest/gtest.h>

#include <fstream>
#include <thread>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"
#include "common/tempdir.hpp"
#include "mr/metrics.hpp"
#include "mr/partitioner.hpp"
#include "mr/types.hpp"

namespace textmr {
namespace {

TEST(TempDir, CreatesAndRemoves) {
  std::filesystem::path kept;
  {
    TempDir dir("textmr-unit");
    kept = dir.path();
    EXPECT_TRUE(std::filesystem::is_directory(kept));
    std::ofstream(dir.file("inner.txt")) << "data";
    std::filesystem::create_directories(dir.file("sub/deeper"));
  }
  EXPECT_FALSE(std::filesystem::exists(kept));
}

TEST(TempDir, UniqueAcrossInstances) {
  TempDir a;
  TempDir b;
  EXPECT_NE(a.path(), b.path());
}

TEST(TempDir, MoveTransfersOwnership) {
  std::filesystem::path p;
  {
    TempDir a("textmr-unit");
    p = a.path();
    TempDir b = std::move(a);
    EXPECT_EQ(b.path(), p);
    EXPECT_TRUE(std::filesystem::exists(p));
  }
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST(Stopwatch, AccumulatesIntervals) {
  Stopwatch watch;
  watch.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  watch.stop();
  const auto first = watch.total_ns();
  EXPECT_GT(first, 1'000'000u);
  watch.start();
  watch.stop();
  EXPECT_GE(watch.total_ns(), first);
  watch.reset();
  EXPECT_EQ(watch.total_ns(), 0u);
}

TEST(MonotonicClock, NeverGoesBackwards) {
  std::uint64_t previous = monotonic_ns();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = monotonic_ns();
    ASSERT_GE(now, previous);
    previous = now;
  }
}

TEST(Logging, LevelsGateOutput) {
  // No crash and correct gating; output goes to stderr which we do not
  // capture — the point is exercising the code paths.
  set_log_level(LogLevel::kOff);
  TEXTMR_LOG(kError) << "suppressed " << 42;
  set_log_level(LogLevel::kError);
  TEXTMR_LOG(kWarn) << "suppressed";
  set_log_level(LogLevel::kWarn);  // restore default
  SUCCEED();
}

TEST(Logging, ConcurrentSetLevelAndLogIsRaceFree) {
  // Regression test for PR 3's annotation-surfaced fix: Logger::level_
  // used to be a plain enum written by set_level() while every TEXTMR_LOG
  // site read it concurrently — a data race the TSan CI job now polices
  // here. Logging is routed to kOff half the time so the test stays quiet.
  std::thread flipper([] {
    for (int i = 0; i < 200; ++i) {
      set_log_level(i % 2 == 0 ? LogLevel::kOff : LogLevel::kError);
    }
  });
  std::thread writer([] {
    for (int i = 0; i < 200; ++i) {
      TEXTMR_LOG(kDebug) << "racing line " << i;
    }
  });
  flipper.join();
  writer.join();
  set_log_level(LogLevel::kWarn);  // restore default
  SUCCEED();
}

TEST(OpNames, AllOpsNamed) {
  for (std::size_t i = 0; i < mr::kNumOps; ++i) {
    const char* name = mr::op_name(static_cast<mr::Op>(i));
    EXPECT_NE(std::string(name), "unknown") << i;
  }
  EXPECT_EQ(std::string(mr::op_name(mr::Op::kNumOps)), "unknown");
}

TEST(TaskMetrics, TotalsAndUserSplit) {
  mr::TaskMetrics metrics;
  metrics.op_ns(mr::Op::kMapUser) = 100;
  metrics.op_ns(mr::Op::kSort) = 50;
  metrics.op_ns(mr::Op::kCombine) = 25;
  metrics.op_ns(mr::Op::kMapIdle) = 1000;
  EXPECT_EQ(metrics.total_ns(), 175u);
  EXPECT_EQ(metrics.total_ns(/*include_idle=*/true), 1175u);
  EXPECT_EQ(metrics.user_ns(), 125u);
  EXPECT_EQ(metrics.abstraction_ns(), 50u);

  mr::TaskMetrics other;
  other.op_ns(mr::Op::kSort) = 10;
  other.input_records = 7;
  metrics += other;
  EXPECT_EQ(metrics.op_ns(mr::Op::kSort), 60u);
  EXPECT_EQ(metrics.input_records, 7u);
}

TEST(ScopedTimer, AddsElapsedToOp) {
  mr::TaskMetrics metrics;
  {
    mr::ScopedTimer timer(metrics, mr::Op::kSort);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(metrics.op_ns(mr::Op::kSort), 500'000u);
}

TEST(HashPartitioner, CoversAllPartitionsDeterministically) {
  mr::HashPartitioner partitioner(5);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) {
    const auto p = partitioner("key" + std::to_string(i));
    ASSERT_LT(p, 5u);
    seen[p] += 1;
  }
  for (const int count : seen) EXPECT_GT(count, 100);
  // Determinism across instances.
  mr::HashPartitioner other(5);
  EXPECT_EQ(partitioner("stable"), other("stable"));
}

TEST(VectorValueStream, IteratesOnce) {
  const std::vector<std::string> values = {"a", "bb", ""};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  EXPECT_EQ(*stream.next(), "a");
  EXPECT_EQ(*stream.next(), "bb");
  EXPECT_EQ(*stream.next(), "");
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_FALSE(stream.next().has_value());
}

TEST(LambdaAdapters, ForwardCalls) {
  int map_calls = 0;
  mr::LambdaMapper mapper(
      [&](std::uint64_t, std::string_view, mr::EmitSink&) { ++map_calls; });
  class NullSink final : public mr::EmitSink {
    void emit(std::string_view, std::string_view) override {}
  } sink;
  mapper.map(0, "line", sink);
  mapper.map(1, "line", sink);
  EXPECT_EQ(map_calls, 2);

  int reduce_calls = 0;
  mr::LambdaReducer reducer(
      [&](std::string_view, mr::ValueStream&, mr::EmitSink&) {
        ++reduce_calls;
      });
  const std::vector<std::string> values = {"v"};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  reducer.reduce("k", stream, sink);
  EXPECT_EQ(reduce_calls, 1);
}

}  // namespace
}  // namespace textmr
