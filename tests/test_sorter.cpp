#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "common/varint.hpp"
#include "apps/wordcount.hpp"
#include "mr/spill_sorter.hpp"

namespace textmr::mr {
namespace {

/// Builds a Spill whose RecordRefs point into an arena the builder owns —
/// the same framed representation the ring produces. Keep the builder
/// alive while the Spill is in use.
class SpillBuilder {
 public:
  void add(std::uint32_t partition, std::string_view key,
           std::string_view value) {
    spill_.records.push_back(arena_.append(partition, key, value));
    spill_.data_bytes += key.size() + value.size();
  }

  Spill& spill() { return spill_; }

 private:
  RecordArena arena_;
  Spill spill_;
};

std::string varint_value(std::uint64_t v) {
  std::string out;
  put_varint(out, v);
  return out;
}

std::uint64_t varint_of(std::string_view bytes) {
  std::size_t pos = 0;
  return get_varint(bytes, pos);
}

TEST(SpillSorter, SortsByPartitionThenKey) {
  TempDir dir;
  SpillBuilder builder;
  builder.add(1, "zebra", "1");
  builder.add(0, "banana", "2");
  builder.add(1, "apple", "3");
  builder.add(0, "apple", "4");
  TaskMetrics metrics;
  const auto info =
      sort_and_spill(builder.spill(), nullptr, dir.file("run").string(), 2,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(info.records, 4u);

  io::SpillRunReader reader(info.path);
  auto c0 = reader.open(0);
  EXPECT_EQ(c0.next()->key, "apple");
  EXPECT_EQ(c0.next()->key, "banana");
  EXPECT_FALSE(c0.next().has_value());
  auto c1 = reader.open(1);
  EXPECT_EQ(c1.next()->key, "apple");
  EXPECT_EQ(c1.next()->key, "zebra");
}

TEST(SpillSorter, CombinerCollapsesDuplicates) {
  TempDir dir;
  SpillBuilder builder;
  for (int i = 0; i < 10; ++i) builder.add(0, "dup", varint_value(1));
  builder.add(0, "single", varint_value(7));
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto info =
      sort_and_spill(builder.spill(), &combiner, dir.file("run").string(), 1,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(info.records, 2u);

  io::SpillRunReader reader(info.path);
  auto cursor = reader.open(0);
  auto first = cursor.next();
  EXPECT_EQ(first->key, "dup");
  EXPECT_EQ(varint_of(first->value), 10u);
  auto second = cursor.next();
  EXPECT_EQ(second->key, "single");
  EXPECT_EQ(varint_of(second->value), 7u);
}

TEST(SpillSorter, SingleValueGroupsSkipCombiner) {
  // A combiner that would fail on single-value groups never runs on them
  // (the framework short-circuits; Hadoop behaves the same way).
  class ThrowingCombiner final : public Reducer {
   public:
    void reduce(std::string_view key, ValueStream& values,
                EmitSink& out) override {
      int n = 0;
      std::string last;
      while (auto v = values.next()) {
        ++n;
        last.assign(*v);
      }
      ASSERT_GE(n, 2) << "combiner invoked on single-value group";
      out.emit(key, last);
    }
  };
  TempDir dir;
  SpillBuilder builder;
  builder.add(0, "solo", "x");
  builder.add(0, "pair", "y");
  builder.add(0, "pair", "z");
  TaskMetrics metrics;
  ThrowingCombiner combiner;
  const auto info =
      sort_and_spill(builder.spill(), &combiner, dir.file("run").string(), 1,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(info.records, 2u);
}

TEST(SpillSorter, EqualKeysInDifferentPartitionsStayApart) {
  TempDir dir;
  SpillBuilder builder;
  builder.add(0, "same", varint_value(1));
  builder.add(1, "same", varint_value(2));
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto info =
      sort_and_spill(builder.spill(), &combiner, dir.file("run").string(), 2,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(info.records, 2u);  // not combined across partitions
  io::SpillRunReader reader(info.path);
  EXPECT_EQ(varint_of(reader.open(0).next()->value), 1u);
  EXPECT_EQ(varint_of(reader.open(1).next()->value), 2u);
}

TEST(SpillSorter, MetricsAreAccumulated) {
  TempDir dir;
  SpillBuilder builder;
  for (int i = 0; i < 1000; ++i) {
    builder.add(0, "k" + std::to_string(i % 37), varint_value(1));
  }
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto info =
      sort_and_spill(builder.spill(), &combiner, dir.file("run").string(), 1,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(metrics.spilled_records, info.records);
  EXPECT_EQ(metrics.spilled_bytes, info.bytes);
  EXPECT_EQ(metrics.spill_count, 1u);
  EXPECT_GT(metrics.op_ns(Op::kSort), 0u);
  EXPECT_GT(metrics.op_ns(Op::kCombine), 0u);
  EXPECT_GT(metrics.op_ns(Op::kSpillWrite), 0u);
}

TEST(SpillSorter, RandomizedAgainstReferenceGroupBy) {
  TempDir dir;
  Xoshiro256 rng(7);
  SpillBuilder builder;
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> expected;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t p = static_cast<std::uint32_t>(rng.next_below(3));
    const std::string key = "w" + std::to_string(rng.next_below(100));
    const std::uint64_t count = 1 + rng.next_below(5);
    expected[{p, key}] += count;
    builder.add(p, key, varint_value(count));
  }
  TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  const auto info =
      sort_and_spill(builder.spill(), &combiner, dir.file("run").string(), 3,
                     io::SpillFormat::kCompactVarint, metrics);
  EXPECT_EQ(info.records, expected.size());

  io::SpillRunReader reader(info.path);
  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> actual;
  for (std::uint32_t p = 0; p < 3; ++p) {
    auto cursor = reader.open(p);
    std::string previous;
    bool first = true;
    while (auto record = cursor.next()) {
      actual[{p, std::string(record->key)}] += varint_of(record->value);
      if (!first) { EXPECT_LE(previous, record->key); }
      previous.assign(record->key);
      first = false;
    }
  }
  EXPECT_EQ(actual, expected);
}

}  // namespace
}  // namespace textmr::mr
