#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/space_saving.hpp"
#include "textgen/corpus_gen.hpp"

namespace textmr::sketch {
namespace {

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving sketch(100);
  for (int i = 0; i < 5; ++i) sketch.offer("a");
  for (int i = 0; i < 3; ++i) sketch.offer("b");
  sketch.offer("c");
  const auto top = sketch.top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 3u);
  EXPECT_EQ(top[2].key, "c");
  EXPECT_EQ(top[2].count, 1u);
}

TEST(SpaceSaving, CapacityIsRespected) {
  SpaceSaving sketch(4);
  for (int i = 0; i < 100; ++i) {
    sketch.offer("key" + std::to_string(i));
  }
  EXPECT_EQ(sketch.size(), 4u);
  EXPECT_EQ(sketch.observed(), 100u);
}

TEST(SpaceSaving, CountUpperBoundInvariant) {
  // Space-Saving guarantee: monitored count >= true frequency, and
  // count - error <= true frequency.
  SpaceSaving sketch(8);
  ExactCounter exact;
  Xoshiro256 rng(77);
  ZipfDistribution zipf(50, 1.2);
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "k" + std::to_string(zipf(rng));
    sketch.offer(key);
    exact.offer(key);
  }
  for (const auto& entry : sketch.top()) {
    const std::uint64_t truth = exact.count(entry.key);
    EXPECT_GE(entry.count, truth) << entry.key;
    EXPECT_LE(entry.count - entry.error, truth) << entry.key;
  }
}

TEST(SpaceSaving, SumOfCountsEqualsObservations) {
  // Classic stream-summary invariant: counts sum to the stream length
  // (every arrival increments exactly one counter, evictions inherit).
  SpaceSaving sketch(16);
  Xoshiro256 rng(5);
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    sketch.offer("k" + std::to_string(rng.next_below(200)));
  }
  std::uint64_t total = 0;
  for (const auto& entry : sketch.top()) total += entry.count;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kN));
}

TEST(SpaceSaving, FindsHeavyHittersInZipfStream) {
  // With capacity well above k, the true top-k of a skewed stream must be
  // monitored (the Metwally et al. guarantee the paper relies on).
  constexpr std::size_t kK = 10;
  SpaceSaving sketch(200);
  ExactCounter exact;
  Xoshiro256 rng(123);
  ZipfDistribution zipf(10000, 1.0);
  for (int i = 0; i < 200000; ++i) {
    const std::string key = textgen::word_for_rank(zipf(rng));
    sketch.offer(key);
    exact.offer(key);
  }
  std::set<std::string> sketched;
  for (const auto& entry : sketch.top(kK)) sketched.insert(entry.key);
  std::size_t found = 0;
  for (const auto& [key, count] : exact.top(kK)) {
    if (sketched.count(key) > 0) ++found;
  }
  EXPECT_GE(found, kK - 1);  // allow one borderline swap at the tail
}

TEST(SpaceSaving, TopKTruncates) {
  SpaceSaving sketch(50);
  for (int i = 0; i < 30; ++i) {
    for (int j = 0; j <= i; ++j) sketch.offer("k" + std::to_string(i));
  }
  const auto top5 = sketch.top(5);
  ASSERT_EQ(top5.size(), 5u);
  EXPECT_EQ(top5[0].key, "k29");
  EXPECT_EQ(top5[0].count, 30u);
  EXPECT_EQ(top5[4].key, "k25");
}

TEST(SpaceSaving, EvictionInheritsMinCountPlusOne) {
  SpaceSaving sketch(2);
  sketch.offer("a");
  sketch.offer("a");
  sketch.offer("b");
  // Table full {a:2, b:1}; new key evicts b and gets count 2, error 1.
  sketch.offer("c");
  EXPECT_FALSE(sketch.contains("b"));
  ASSERT_TRUE(sketch.contains("c"));
  const auto top = sketch.top();
  for (const auto& entry : top) {
    if (entry.key == "c") {
      EXPECT_EQ(entry.count, 2u);
      EXPECT_EQ(entry.error, 1u);
    }
  }
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving sketch(4);
  sketch.offer("x");
  sketch.clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.observed(), 0u);
  EXPECT_FALSE(sketch.contains("x"));
  sketch.offer("y");
  EXPECT_TRUE(sketch.contains("y"));
}

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_THROW(SpaceSaving sketch(0), InternalError);
}

class SpaceSavingRecallTest : public ::testing::TestWithParam<double> {};

TEST_P(SpaceSavingRecallTest, RecallImprovesWithSkew) {
  // Property: for fixed capacity, higher skew -> the sketch's top-k
  // contains more of the true top-k. Here we just assert a floor that
  // holds for all tested alphas.
  const double alpha = GetParam();
  SpaceSaving sketch(100);
  ExactCounter exact;
  Xoshiro256 rng(321);
  ZipfDistribution zipf(5000, alpha);
  for (int i = 0; i < 100000; ++i) {
    const std::string key = "w" + std::to_string(zipf(rng));
    sketch.offer(key);
    exact.offer(key);
  }
  std::set<std::string> sketched;
  for (const auto& entry : sketch.top(20)) sketched.insert(entry.key);
  std::size_t hits = 0;
  for (const auto& [key, count] : exact.top(20)) {
    hits += sketched.count(key);
  }
  EXPECT_GE(hits, 12u) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Skews, SpaceSavingRecallTest,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5));

}  // namespace
}  // namespace textmr::sketch
