#include <gtest/gtest.h>

// Cross-cutting property tests: for randomized corpora and randomized
// engine configurations, every optimization setting must produce exactly
// the output of the sequential reference implementation. This is the
// paper's central correctness claim — the optimizations "require no user
// code changes" and never alter job semantics.

#include <cstdlib>
#include <set>

#include "common/failpoint.hpp"
#include "helpers.hpp"

namespace textmr {
namespace {

struct EngineParams {
  std::uint64_t corpus_seed;
  double alpha;
  std::uint32_t num_reducers;
  std::size_t spill_buffer_kb;
  bool freqbuf;
  bool matcher;
  mr::Grouping grouping;
  io::SpillFormat format;
  std::string fail_spec;  // empty = no fault injection
};

void PrintTo(const EngineParams& p, std::ostream* os) {
  *os << "seed=" << p.corpus_seed << " alpha=" << p.alpha
      << " reducers=" << p.num_reducers << " buf=" << p.spill_buffer_kb
      << "KiB freq=" << p.freqbuf << " matcher=" << p.matcher
      << " grouping=" << (p.grouping == mr::Grouping::kSorted ? "sort" : "hash")
      << " fmt="
      << (p.format == io::SpillFormat::kCompactVarint ? "varint" : "fixed32")
      << " fail=" << (p.fail_spec.empty() ? "none" : p.fail_spec);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineParams> {};

TEST_P(EngineEquivalenceTest, WordCountEqualsReferenceUnderAllConfigs) {
  const auto& p = GetParam();
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 25000;
  corpus_spec.vocabulary = 800;
  corpus_spec.alpha = p.alpha;
  corpus_spec.seed = p.corpus_seed;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 48 * 1024),
                             dir.file("s"), dir.file("o"), p.num_reducers);
  spec.spill_buffer_bytes = p.spill_buffer_kb * 1024;
  spec.use_spill_matcher = p.matcher;
  spec.grouping = p.grouping;
  spec.spill_format = p.format;
  if (p.freqbuf) {
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = 40;
    spec.freqbuf.sampling_fraction = 0.0;  // exercise the auto-tuner too
    spec.freqbuf.pre_profile_fraction = 0.02;
  }

  // Fault-injection axis: recovery (re-executed attempts, cleanup,
  // re-spills) must be as semantics-preserving as the optimizations.
  failpoint::ScopedFailpoints failpoints(p.fail_spec);
  spec.retry_backoff_base_ms = 0;

  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  if (!p.fail_spec.empty()) {
    EXPECT_GE(result.metrics.tasks_retried, 1u);
  }
  const auto expected = test::reference_wordcount(corpus.string());
  const auto actual = test::read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
}

std::vector<EngineParams> equivalence_matrix() {
  // Fault axis: sites that every configuration is guaranteed to reach
  // (support.sort is skipped here — hash grouping never sorts).
  const std::string fail_specs[] = {
      "",
      "spill.write:nth=1",
      "dfs.open:nth=1",
      "map.user_code:nth=1",
      "reduce.output_rename:nth=1",
      "spill.read:nth=1",
  };
  std::vector<EngineParams> params;
  std::uint64_t seed = 1000;
  for (const bool freq : {false, true}) {
    for (const bool matcher : {false, true}) {
      for (const double alpha : {0.6, 1.0, 1.4}) {
        params.push_back(EngineParams{
            ++seed, alpha, static_cast<std::uint32_t>(1 + seed % 4),
            static_cast<std::size_t>(seed % 2 == 0 ? 32 : 96), freq, matcher,
            seed % 3 == 0 ? mr::Grouping::kHash : mr::Grouping::kSorted,
            seed % 2 == 0 ? io::SpillFormat::kCompactVarint
                          : io::SpillFormat::kFixed32,
            fail_specs[params.size() % std::size(fail_specs)]});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineEquivalenceTest,
                         ::testing::ValuesIn(equivalence_matrix()));

/// Combiner-application-count invariance: a pathological spill buffer
/// (tiny, causing hundreds of spills and deep merges) must not change any
/// aggregate. This drives the "combiner may run zero or more times"
/// contract through extreme schedules.
TEST(EngineProperties, TinySpillBufferDoesNotChangeResults) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 15000;
  corpus_spec.vocabulary = 300;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);

  auto tiny = test::make_job(apps::wordcount_app(), splits, dir.file("s1"),
                             dir.file("o1"));
  tiny.spill_buffer_bytes = 4 * 1024;  // hundreds of spills
  auto large = test::make_job(apps::wordcount_app(), splits, dir.file("s2"),
                              dir.file("o2"));
  large.spill_buffer_bytes = 8 << 20;  // one spill

  mr::LocalEngine engine;
  EXPECT_EQ(test::read_outputs(engine.run(tiny).outputs),
            test::read_outputs(engine.run(large).outputs));
}

/// Partitioning property: the union of all reducers' outputs has exactly
/// one entry per distinct key, for any reducer count.
TEST(EngineProperties, ReducerCountNeverDuplicatesOrDropsKeys) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 10000;
  corpus_spec.vocabulary = 500;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);
  const auto expected = test::reference_wordcount(corpus.string());

  mr::LocalEngine engine;
  for (const std::uint32_t reducers : {1u, 2u, 5u, 16u}) {
    auto spec = test::make_job(apps::wordcount_app(), splits,
                               dir.file("s" + std::to_string(reducers)),
                               dir.file("o" + std::to_string(reducers)),
                               reducers);
    const auto result = engine.run(spec);
    EXPECT_EQ(result.outputs.size(), reducers);
    std::size_t total_rows = 0;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) ++total_rows;
    }
    EXPECT_EQ(total_rows, expected.size()) << reducers;
  }
}

/// SynText invariance across its parameter grid: the counts reported by
/// the reducer are independent of cpu/storage intensity (those knobs only
/// change costs, never semantics).
class SynTextGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SynTextGridTest, GridPointsAgreeOnGroupCardinality) {
  const auto [cpu, storage] = GetParam();
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 5000;
  corpus_spec.vocabulary = 200;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  apps::SynTextParams params;
  params.cpu_intensity = cpu;
  params.storage_intensity = storage;
  auto spec = test::make_job(apps::syntext_app(params),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto outputs = test::read_outputs(result.outputs);
  const auto expected = test::reference_wordcount(corpus.string());
  ASSERT_EQ(outputs.size(), expected.size());
  // Each output value is "count:bytes"; with a combiner the count per key
  // collapses to the number of runs that saw it, so only the key set is
  // invariant — which is what we assert.
  for (const auto& [word, count] : expected) {
    ASSERT_TRUE(outputs.count(word) == 1) << word;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynTextGridTest,
    ::testing::Combine(::testing::Values(1.0, 8.0),
                       ::testing::Values(0.0, 0.5, 1.0)));

// ---------------------------------------------------------------------------
// Differential oracle grid (ISSUE 4): every app with deterministic output
// runs over Zipf α × FreqOpt × SpillOpt × failpoints, and each optimized
// (and fault-injected) run must reproduce the *bytes* of a clean baseline
// run of the same app on the same dataset. WordCount is additionally
// checked against the sketch::ExactCounter sequential oracle, tying the
// grid to ground truth rather than just run-vs-run agreement.
//
// Excluded by design (same rationale as test_app_equivalence.cpp):
// PageRank carries %.6f-rounded rank text, so its last decimals are
// legitimately schedule-dependent; SynText reports run-count-sensitive
// aggregates. Both have dedicated tolerance/invariance tests elsewhere.

struct DiffParams {
  std::string app;
  std::uint64_t seed;
  double alpha;  // corpus skew; ignored by the access-log datasets
  bool freqbuf;
  bool matcher;
  io::SpillFormat format;
  std::size_t spill_buffer_kb;
  std::string fail_spec;  // empty = no fault injection
  bool skew = false;      // skew-aware partitioner on the optimized run
  // Map-side combine axis (DESIGN.md §15): 0 = sort-spill baseline,
  // 1 = sharded hash-combine, 2 = hash-combine with a tiny forced
  // watermark + demote-after-one-flush (every shard flushes AND demotes
  // mid-stream). All three must be byte-identical.
  int combine = 0;
};

const char* combine_name(int combine) {
  return combine == 0 ? "sort" : combine == 1 ? "hash" : "hash-forced";
}

/// Applies the combine axis to a spec (shared by the local and cluster
/// differential grids).
void apply_combine_mode(mr::JobSpec& spec, int combine) {
  if (combine == 0) return;
  spec.combine_mode = mr::CombineMode::kHash;
  spec.hash_combine_shards = 4;
  if (combine == 2) {
    spec.hash_combine_watermark_bytes = 2048;
    spec.hash_combine_demote_flushes = 1;
  }
}

void PrintTo(const DiffParams& p, std::ostream* os) {
  *os << p.app << " seed=" << p.seed << " alpha=" << p.alpha
      << " freq=" << p.freqbuf << " matcher=" << p.matcher << " fmt="
      << (p.format == io::SpillFormat::kCompactVarint ? "varint" : "fixed32")
      << " buf=" << p.spill_buffer_kb
      << "KiB fail=" << (p.fail_spec.empty() ? "none" : p.fail_spec)
      << " skew=" << p.skew << " combine=" << combine_name(p.combine);
}

/// "TfIdfPipeline" resolves to job 1's bundle for dataset selection; the
/// test body chains job 2 behind it.
apps::AppBundle diff_bundle(const std::string& name) {
  if (name == "WordCount") return apps::wordcount_app();
  if (name == "InvertedIndex") return apps::inverted_index_app();
  if (name == "WordPOSTag") return apps::word_pos_tag_app(1);
  if (name == "AccessLogSum") return apps::access_log_sum_app();
  if (name == "AccessLogJoinSorted") return apps::access_log_join_sorted_app();
  if (name == "Sessionize") return apps::sessionize_app();
  if (name == "TfIdfPipeline") return apps::tfidf_job1_app();
  return apps::access_log_join_app();
}

/// Skew-partitioner settings that reliably produce a non-empty plan on
/// the grid's skewed corpora (α=1.5's top word carries ~40% of the mass,
/// weight ≈ 1.2 with 3 reducers) while the flat corpora stay below the
/// placement bar — so the grid exercises empty plans, placement, and
/// splitting without per-app tuning.
void enable_skew(mr::JobSpec& spec) {
  spec.skew.enabled = true;
  spec.skew.top_k = 32;
  spec.skew.sample_bytes = 1u << 20;
  spec.skew.place_threshold = 0.3;
  spec.skew.split_threshold = 0.8;
  spec.skew.max_split_shares = 3;
}

std::vector<io::InputSplit> diff_dataset(const apps::AppBundle& app,
                                         const DiffParams& p,
                                         const TempDir& dir) {
  switch (app.dataset) {
    case apps::Dataset::kCorpus: {
      textgen::CorpusSpec spec;
      spec.total_words = app.name == "WordPOSTag" ? 4000 : 15000;
      spec.vocabulary = 500;
      spec.alpha = p.alpha;
      spec.seed = p.seed;
      const auto path = dir.file("corpus.txt");
      textgen::generate_corpus(spec, path.string());
      return io::make_splits(path.string(), 48 * 1024);
    }
    case apps::Dataset::kAccessLog:
    case apps::Dataset::kAccessLogWithRankings: {
      textgen::AccessLogSpec spec;
      spec.num_visits = 8000;
      spec.num_urls = 600;
      spec.seed = p.seed;
      const auto visits = dir.file("visits.log");
      const auto rankings = dir.file("rankings.txt");
      textgen::generate_access_log(spec, visits.string(), rankings.string());
      auto splits = io::make_splits(visits.string(), 96 * 1024);
      if (app.dataset == apps::Dataset::kAccessLogWithRankings) {
        const auto extra = io::make_splits(rankings.string(), 96 * 1024);
        splits.insert(splits.end(), extra.begin(), extra.end());
      }
      return splits;
    }
    case apps::Dataset::kWebGraph:
      break;  // PageRank is excluded from byte-identity (see above)
  }
  return {};
}

/// Raw bytes of each part file, in part order — the strictest possible
/// output comparison (content, line order, partition assignment).
std::vector<std::string> read_raw_parts(
    const std::vector<std::filesystem::path>& parts) {
  std::vector<std::string> raw;
  for (const auto& part : parts) {
    std::ifstream in(part, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    raw.push_back(std::move(buffer).str());
  }
  return raw;
}

std::multiset<std::string> all_output_lines(
    const std::vector<std::filesystem::path>& parts) {
  std::multiset<std::string> lines;
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) lines.insert(line);
  }
  return lines;
}

class DifferentialOracleTest : public ::testing::TestWithParam<DiffParams> {};

TEST_P(DifferentialOracleTest, OptimizedFaultedRunMatchesCleanBaseline) {
  const auto& p = GetParam();
  TempDir dir;
  const bool pipeline = p.app == "TfIdfPipeline";
  const apps::AppBundle app = diff_bundle(p.app);
  const auto splits = diff_dataset(app, p, dir);
  ASSERT_FALSE(splits.empty());
  mr::LocalEngine engine;

  const auto configure_optimized = [&](mr::JobSpec& spec) {
    spec.spill_buffer_bytes = p.spill_buffer_kb * 1024;
    spec.use_spill_matcher = p.matcher;
    spec.spill_format = p.format;
    if (p.freqbuf) {
      spec.freqbuf.enabled = true;
      spec.freqbuf.top_k = 60;
      spec.freqbuf.sampling_fraction = 0.05;
    }
    if (p.skew) enable_skew(spec);
    apply_combine_mode(spec, p.combine);
  };

  // Runs the app (or, for TfIdfPipeline, job 1 feeding job 2) and
  // accumulates retry counts across the chained jobs — a pipeline's
  // injected fault may land in either stage.
  std::uint64_t tasks_retried = 0;
  const auto run_app = [&](const std::string& tag, bool optimized) {
    if (!pipeline) {
      auto spec = test::make_job(app, splits, dir.file(tag + "s"),
                                 dir.file(tag + "o"));
      if (optimized) configure_optimized(spec);
      spec.retry_backoff_base_ms = 0;
      auto result = engine.run(spec);
      tasks_retried += result.metrics.tasks_retried;
      return result;
    }
    auto job1 = test::make_job(apps::tfidf_job1_app(), splits,
                               dir.file(tag + "s1"), dir.file(tag + "o1"));
    if (optimized) configure_optimized(job1);
    job1.retry_backoff_base_ms = 0;
    const auto mid = engine.run(job1);
    tasks_retried += mid.metrics.tasks_retried;
    std::vector<io::InputSplit> mid_splits;
    for (const auto& part : mid.outputs) {
      const auto extra = io::make_splits(part.string(), 48 * 1024);
      mid_splits.insert(mid_splits.end(), extra.begin(), extra.end());
    }
    auto job2 = test::make_job(apps::tfidf_job2_app(), mid_splits,
                               dir.file(tag + "s2"), dir.file(tag + "o2"));
    if (optimized) configure_optimized(job2);
    job2.retry_backoff_base_ms = 0;
    auto result = engine.run(job2);
    tasks_retried += result.metrics.tasks_retried;
    return result;
  };

  // The oracle run: no optimizations, no faults, a roomy spill buffer.
  const auto oracle = run_app("o", /*optimized=*/false);

  tasks_retried = 0;
  failpoint::ScopedFailpoints failpoints(p.fail_spec);
  const auto result = run_app("c", /*optimized=*/true);
  if (!p.fail_spec.empty()) {
    EXPECT_GE(tasks_retried, 1u);
  }

  if (p.app == "AccessLogJoin") {
    // Join rows repeat per key and their order within a reduce group
    // follows the merge schedule, so byte-identity does not apply;
    // compare the full line multiset instead.
    EXPECT_EQ(all_output_lines(result.outputs), all_output_lines(oracle.outputs));
  } else {
    EXPECT_EQ(read_raw_parts(result.outputs), read_raw_parts(oracle.outputs));
  }

  if (p.app == "WordCount") {
    // Ground truth: the ExactCounter oracle over the raw token stream.
    sketch::ExactCounter counter;
    std::ifstream in(dir.file("corpus.txt"));
    std::string line;
    std::string scratch;
    while (std::getline(in, line)) {
      apps::for_each_token(line, scratch,
                           [&](std::string_view token) { counter.offer(token); });
    }
    const auto actual = test::read_outputs(result.outputs);
    ASSERT_EQ(actual.size(), counter.distinct());
    for (const auto& [word, count] : actual) {
      EXPECT_EQ(count, std::to_string(counter.count(word))) << word;
    }
  }
}

/// Pressure runs (ctest -L pressure) multiply the grid by re-running it
/// with fresh dataset seeds; see tests/CMakeLists.txt.
std::size_t pressure_scale() {
  if (const char* env = std::getenv("TEXTMR_PRESSURE_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v > 100 ? 100 : v);
  }
  return 1;
}

std::vector<DiffParams> differential_matrix() {
  const char* app_names[] = {"WordCount",           "InvertedIndex",
                             "WordPOSTag",          "AccessLogSum",
                             "AccessLogJoin",       "AccessLogJoinSorted",
                             "Sessionize",          "TfIdfPipeline"};
  const double alphas[] = {0.7, 1.1, 1.5};
  const std::string fail_specs[] = {
      "",
      "spill.write:nth=1",
      "dfs.open:nth=1",
      "map.user_code:nth=1",
      "reduce.output_rename:nth=1",
      "spill.read:nth=1",
  };
  std::vector<DiffParams> params;
  std::uint64_t seed = 5000;
  for (std::size_t round = 0; round < pressure_scale(); ++round) {
    for (const char* app : app_names) {
      for (const bool freq : {false, true}) {
        for (const bool matcher : {false, true}) {
          ++seed;
          // Skew-aware partitioning alternates across the grid, so every
          // app sees both partitioner modes over its four cells.
          const bool skew = seed % 2 == 0;
          std::string fail = fail_specs[params.size() % std::size(fail_specs)];
          // dfs.open:nth=1 would fire once inside the skew sampling
          // pre-pass (which tolerates and consumes it), leaving no fault
          // for a task to retry — swap in a task-side site instead.
          if (skew && fail == "dfs.open:nth=1") fail = "spill.read:nth=1";
          params.push_back(DiffParams{
              app, seed, alphas[seed % std::size(alphas)], freq, matcher,
              seed % 2 == 0 ? io::SpillFormat::kCompactVarint
                            : io::SpillFormat::kFixed32,
              static_cast<std::size_t>(seed % 3 == 0 ? 24 : 64),
              std::move(fail), skew,
              // Combine axis cycles so every app sees sort, hash and the
              // forced-watermark hash across its four cells.
              static_cast<int>(params.size() % 3)});
        }
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Oracle, DifferentialOracleTest,
                         ::testing::ValuesIn(differential_matrix()));

// ---------------------------------------------------------------------------
// Cross-engine differential grid: every deterministic app runs under the
// multi-process ClusterEngine at 1/2/4 workers, with and without the two
// paper optimizations, and must reproduce the bytes of a LocalEngine run
// of the identical spec. This is the contract DESIGN.md §10 promises:
// which engine scheduled a task — threads or forked worker processes with
// speculative duplicates — is unobservable in the output.

struct ClusterDiffParams {
  std::string app;
  std::uint32_t workers;
  bool freqbuf;
  bool matcher;
  bool skew = false;  // skew-aware partitioner on BOTH engines
  // Transport axis (DESIGN.md §14): kTcp runs the same forked workers
  // over checksummed loopback TCP with the network shuffle on, and must
  // still reproduce the LocalEngine bytes.
  cluster::TransportKind transport = cluster::TransportKind::kSocketpair;
  // Fault axis: armed for the cluster run only (inherited by every
  // forked worker); recovery must be byte-invisible too.
  std::string fail_spec;
  // Combine axis: applied to BOTH engines, so byte-identity proves the
  // hash-combine path is engine- and transport-invariant too.
  int combine = 0;
};

void PrintTo(const ClusterDiffParams& p, std::ostream* os) {
  *os << p.app << " workers=" << p.workers << " freq=" << p.freqbuf
      << " matcher=" << p.matcher << " skew=" << p.skew << " transport="
      << cluster::transport_kind_name(p.transport)
      << " combine=" << combine_name(p.combine);
  if (!p.fail_spec.empty()) *os << " fail=" << p.fail_spec;
}

class ClusterDifferentialTest
    : public ::testing::TestWithParam<ClusterDiffParams> {};

TEST_P(ClusterDifferentialTest, ClusterRunReproducesLocalEngineBytes) {
  const auto& p = GetParam();
  TempDir dir;
  const bool pipeline = p.app == "TfIdfPipeline";
  DiffParams dataset_params;
  dataset_params.app = p.app;
  dataset_params.seed = 9000 + p.workers * 10 + (p.freqbuf ? 2 : 0) +
                        (p.matcher ? 1 : 0) + (p.skew ? 4 : 0);
  // Skewed corpora when either skew-sensitive optimization is on, so the
  // partitioner actually builds a non-empty plan.
  dataset_params.alpha = (p.freqbuf || p.skew) ? 1.5 : 1.1;
  const apps::AppBundle app = diff_bundle(p.app);
  const auto splits = diff_dataset(app, dataset_params, dir);
  ASSERT_FALSE(splits.empty());

  // Both engines run the *same* spec — with skew on, each computes the
  // plan independently from the same inputs, so byte-identical outputs
  // also prove the plan construction itself is deterministic.
  const auto configure = [&](mr::JobSpec& spec) {
    spec.use_spill_matcher = p.matcher;
    if (p.freqbuf) {
      spec.freqbuf.enabled = true;
      spec.freqbuf.top_k = 60;
      spec.freqbuf.sampling_fraction = 0.05;
    }
    if (p.skew) enable_skew(spec);
    apply_combine_mode(spec, p.combine);
    spec.retry_backoff_base_ms = 0;
  };
  const auto run_app = [&](auto& engine, const std::string& tag) {
    if (!pipeline) {
      auto spec = test::make_job(app, splits, dir.file("s-" + tag),
                                 dir.file("o-" + tag));
      configure(spec);
      return engine.run(spec);
    }
    auto job1 = test::make_job(apps::tfidf_job1_app(), splits,
                               dir.file("s1-" + tag), dir.file("o1-" + tag));
    configure(job1);
    const auto mid = engine.run(job1);
    std::vector<io::InputSplit> mid_splits;
    for (const auto& part : mid.outputs) {
      const auto extra = io::make_splits(part.string(), 48 * 1024);
      mid_splits.insert(mid_splits.end(), extra.begin(), extra.end());
    }
    auto job2 = test::make_job(apps::tfidf_job2_app(), mid_splits,
                               dir.file("s2-" + tag), dir.file("o2-" + tag));
    configure(job2);
    return engine.run(job2);
  };

  mr::LocalEngine local;
  const auto oracle = run_app(local, "local");
  // Armed after the clean oracle run, inherited by the cluster workers.
  failpoint::ScopedFailpoints failpoints(p.fail_spec);
  cluster::ClusterConfig config;
  config.num_workers = p.workers;
  config.transport = p.transport;
  if (p.transport == cluster::TransportKind::kTcp) {
    config.io_timeout_ms = 10000;
  }
  cluster::ClusterEngine cluster_engine(config);
  const auto result = run_app(cluster_engine, "cluster");
  if (p.transport == cluster::TransportKind::kTcp) {
    // The TCP cells genuinely shuffle over the network — without this,
    // a silently-disabled shuffle service would pass the byte check.
    EXPECT_GT(result.metrics.work.shuffled_wire_bytes, 0u);
  } else {
    EXPECT_EQ(result.metrics.work.shuffled_wire_bytes, 0u);
  }

  ASSERT_EQ(result.outputs.size(), oracle.outputs.size());
  if (p.app == "AccessLogJoin") {
    // Join rows within a reduce group follow the merge schedule (same
    // rationale as the local differential grid above).
    EXPECT_EQ(all_output_lines(result.outputs),
              all_output_lines(oracle.outputs));
  } else {
    EXPECT_EQ(read_raw_parts(result.outputs), read_raw_parts(oracle.outputs));
  }
  EXPECT_EQ(result.metrics.map_tasks, oracle.metrics.map_tasks);
  EXPECT_EQ(result.metrics.reduce_tasks, oracle.metrics.reduce_tasks);
}

std::vector<ClusterDiffParams> cluster_differential_matrix() {
  std::vector<ClusterDiffParams> params;
  std::size_t i = 0;
  for (const char* app :
       {"WordCount", "InvertedIndex", "WordPOSTag", "AccessLogSum",
        "AccessLogJoin", "AccessLogJoinSorted", "Sessionize",
        "TfIdfPipeline"}) {
    for (const std::uint32_t workers : {1u, 2u, 4u}) {
      for (const bool skew : {false, true}) {
        // freq / matcher cycle by position so each appears in both skew
        // modes across the grid without squaring its size.
        params.push_back(ClusterDiffParams{
            app, workers, i % 2 == 0, i % 3 == 0, skew,
            cluster::TransportKind::kSocketpair, "",
            // Combine cycles across the grid so each app runs hash and
            // forced-watermark hash cells under the cluster engine too.
            static_cast<int>(i % 3)});
        ++i;
      }
    }
    // Transport axis: every app also runs over loopback TCP with the
    // network shuffle, in both skew modes, plus one fault cell per app
    // (alternating a worker-side spill fault with a shuffle-fetch fault
    // so both recovery paths appear across the grid).
    for (const bool skew : {false, true}) {
      params.push_back(ClusterDiffParams{app, 2, i % 2 == 0, i % 3 == 0,
                                         skew, cluster::TransportKind::kTcp,
                                         "", static_cast<int>(i % 3)});
      ++i;
    }
    params.push_back(ClusterDiffParams{
        app, 2, i % 2 == 0, i % 3 == 0, false, cluster::TransportKind::kTcp,
        i % 2 == 0 ? "spill.write:nth=1" : "shuffle.fetch:nth=1",
        static_cast<int>(i % 3)});
    ++i;
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(ClusterGrid, ClusterDifferentialTest,
                         ::testing::ValuesIn(cluster_differential_matrix()));

}  // namespace
}  // namespace textmr
