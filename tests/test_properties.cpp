#include <gtest/gtest.h>

// Cross-cutting property tests: for randomized corpora and randomized
// engine configurations, every optimization setting must produce exactly
// the output of the sequential reference implementation. This is the
// paper's central correctness claim — the optimizations "require no user
// code changes" and never alter job semantics.

#include "common/failpoint.hpp"
#include "helpers.hpp"

namespace textmr {
namespace {

struct EngineParams {
  std::uint64_t corpus_seed;
  double alpha;
  std::uint32_t num_reducers;
  std::size_t spill_buffer_kb;
  bool freqbuf;
  bool matcher;
  mr::Grouping grouping;
  io::SpillFormat format;
  std::string fail_spec;  // empty = no fault injection
};

void PrintTo(const EngineParams& p, std::ostream* os) {
  *os << "seed=" << p.corpus_seed << " alpha=" << p.alpha
      << " reducers=" << p.num_reducers << " buf=" << p.spill_buffer_kb
      << "KiB freq=" << p.freqbuf << " matcher=" << p.matcher
      << " grouping=" << (p.grouping == mr::Grouping::kSorted ? "sort" : "hash")
      << " fmt="
      << (p.format == io::SpillFormat::kCompactVarint ? "varint" : "fixed32")
      << " fail=" << (p.fail_spec.empty() ? "none" : p.fail_spec);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<EngineParams> {};

TEST_P(EngineEquivalenceTest, WordCountEqualsReferenceUnderAllConfigs) {
  const auto& p = GetParam();
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 25000;
  corpus_spec.vocabulary = 800;
  corpus_spec.alpha = p.alpha;
  corpus_spec.seed = p.corpus_seed;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 48 * 1024),
                             dir.file("s"), dir.file("o"), p.num_reducers);
  spec.spill_buffer_bytes = p.spill_buffer_kb * 1024;
  spec.use_spill_matcher = p.matcher;
  spec.grouping = p.grouping;
  spec.spill_format = p.format;
  if (p.freqbuf) {
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = 40;
    spec.freqbuf.sampling_fraction = 0.0;  // exercise the auto-tuner too
    spec.freqbuf.pre_profile_fraction = 0.02;
  }

  // Fault-injection axis: recovery (re-executed attempts, cleanup,
  // re-spills) must be as semantics-preserving as the optimizations.
  failpoint::ScopedFailpoints failpoints(p.fail_spec);
  spec.retry_backoff_base_ms = 0;

  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  if (!p.fail_spec.empty()) {
    EXPECT_GE(result.metrics.tasks_retried, 1u);
  }
  const auto expected = test::reference_wordcount(corpus.string());
  const auto actual = test::read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
}

std::vector<EngineParams> equivalence_matrix() {
  // Fault axis: sites that every configuration is guaranteed to reach
  // (support.sort is skipped here — hash grouping never sorts).
  const std::string fail_specs[] = {
      "",
      "spill.write:nth=1",
      "dfs.open:nth=1",
      "map.user_code:nth=1",
      "reduce.output_rename:nth=1",
      "spill.read:nth=1",
  };
  std::vector<EngineParams> params;
  std::uint64_t seed = 1000;
  for (const bool freq : {false, true}) {
    for (const bool matcher : {false, true}) {
      for (const double alpha : {0.6, 1.0, 1.4}) {
        params.push_back(EngineParams{
            ++seed, alpha, static_cast<std::uint32_t>(1 + seed % 4),
            static_cast<std::size_t>(seed % 2 == 0 ? 32 : 96), freq, matcher,
            seed % 3 == 0 ? mr::Grouping::kHash : mr::Grouping::kSorted,
            seed % 2 == 0 ? io::SpillFormat::kCompactVarint
                          : io::SpillFormat::kFixed32,
            fail_specs[params.size() % std::size(fail_specs)]});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineEquivalenceTest,
                         ::testing::ValuesIn(equivalence_matrix()));

/// Combiner-application-count invariance: a pathological spill buffer
/// (tiny, causing hundreds of spills and deep merges) must not change any
/// aggregate. This drives the "combiner may run zero or more times"
/// contract through extreme schedules.
TEST(EngineProperties, TinySpillBufferDoesNotChangeResults) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 15000;
  corpus_spec.vocabulary = 300;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);

  auto tiny = test::make_job(apps::wordcount_app(), splits, dir.file("s1"),
                             dir.file("o1"));
  tiny.spill_buffer_bytes = 4 * 1024;  // hundreds of spills
  auto large = test::make_job(apps::wordcount_app(), splits, dir.file("s2"),
                              dir.file("o2"));
  large.spill_buffer_bytes = 8 << 20;  // one spill

  mr::LocalEngine engine;
  EXPECT_EQ(test::read_outputs(engine.run(tiny).outputs),
            test::read_outputs(engine.run(large).outputs));
}

/// Partitioning property: the union of all reducers' outputs has exactly
/// one entry per distinct key, for any reducer count.
TEST(EngineProperties, ReducerCountNeverDuplicatesOrDropsKeys) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 10000;
  corpus_spec.vocabulary = 500;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 1 << 20);
  const auto expected = test::reference_wordcount(corpus.string());

  mr::LocalEngine engine;
  for (const std::uint32_t reducers : {1u, 2u, 5u, 16u}) {
    auto spec = test::make_job(apps::wordcount_app(), splits,
                               dir.file("s" + std::to_string(reducers)),
                               dir.file("o" + std::to_string(reducers)),
                               reducers);
    const auto result = engine.run(spec);
    EXPECT_EQ(result.outputs.size(), reducers);
    std::size_t total_rows = 0;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) ++total_rows;
    }
    EXPECT_EQ(total_rows, expected.size()) << reducers;
  }
}

/// SynText invariance across its parameter grid: the counts reported by
/// the reducer are independent of cpu/storage intensity (those knobs only
/// change costs, never semantics).
class SynTextGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SynTextGridTest, GridPointsAgreeOnGroupCardinality) {
  const auto [cpu, storage] = GetParam();
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 5000;
  corpus_spec.vocabulary = 200;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  apps::SynTextParams params;
  params.cpu_intensity = cpu;
  params.storage_intensity = storage;
  auto spec = test::make_job(apps::syntext_app(params),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto outputs = test::read_outputs(result.outputs);
  const auto expected = test::reference_wordcount(corpus.string());
  ASSERT_EQ(outputs.size(), expected.size());
  // Each output value is "count:bytes"; with a combiner the count per key
  // collapses to the number of runs that saw it, so only the key set is
  // invariant — which is what we assert.
  for (const auto& [word, count] : expected) {
    ASSERT_TRUE(outputs.count(word) == 1) << word;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynTextGridTest,
    ::testing::Combine(::testing::Values(1.0, 8.0),
                       ::testing::Values(0.0, 0.5, 1.0)));

}  // namespace
}  // namespace textmr
