#include <gtest/gtest.h>

// Additional cluster-simulator knob coverage: memory carve-out, reducer
// count, wave arithmetic, and network sensitivity.

#include "sim/cluster.hpp"

namespace textmr::sim {
namespace {

AppProfile balanced_profile() {
  AppProfile p;
  p.map_output_bytes = 1.5;
  p.spill_input_bytes = 1.5;
  p.spilled_bytes = 0.4;
  p.merged_bytes = 0.2;
  p.output_bytes = 0.1;
  p.produce_cpu_ns_per_input_byte = 60.0;
  p.consume_cpu_ns_per_spill_byte = 40.0;
  p.merge_cpu_ns_per_spilled_byte = 20.0;
  p.reduce_cpu_ns_per_shuffled_byte = 30.0;
  return p;
}

SimJobConfig job() {
  SimJobConfig config;
  config.input_bytes = 8e9;
  return config;
}

TEST(SimKnobs, FreqTableFractionShrinksEffectiveBuffer) {
  // Carving table memory out of the buffer makes spills smaller (more of
  // them) without changing the work; with balanced rates and x=0.8 this
  // costs a little wall time — never gains.
  auto base = job();
  auto carved = job();
  carved.freq_table_fraction = 0.5;
  const auto base_result = simulate_job(balanced_profile(), {}, base);
  const auto carved_result = simulate_job(balanced_profile(), {}, carved);
  EXPECT_GT(carved_result.spills_per_task, base_result.spills_per_task);
  EXPECT_GE(carved_result.total_s, base_result.total_s * 0.99);
}

TEST(SimKnobs, MoreReducersShrinkReduceTasksButAddWaves) {
  auto few = job();
  few.num_reducers = 12;  // one wave on 12 slots
  auto many = job();
  many.num_reducers = 24;  // two waves
  const auto few_result = simulate_job(balanced_profile(), {}, few);
  const auto many_result = simulate_job(balanced_profile(), {}, many);
  EXPECT_EQ(few_result.reduce_waves, 1u);
  EXPECT_EQ(many_result.reduce_waves, 2u);
  EXPECT_LT(many_result.reduce_task_wall_s, few_result.reduce_task_wall_s);
}

TEST(SimKnobs, MapWaveArithmetic) {
  auto config = job();
  config.input_bytes = 10.0 * config.split_bytes;  // exactly 10 tasks
  ClusterSpec cluster;
  cluster.nodes = 2;
  cluster.map_slots_per_node = 2;  // 4 slots -> 3 waves
  const auto result = simulate_job(balanced_profile(), cluster, config);
  EXPECT_EQ(result.map_tasks, 10u);
  EXPECT_EQ(result.map_waves, 3u);
  EXPECT_NEAR(result.map_phase_s, 3.0 * result.map_task_wall_s, 1e-9);
}

TEST(SimKnobs, SlowerNetworkStretchesShuffleOnly) {
  ClusterSpec fast;
  ClusterSpec slow = fast;
  slow.network_mbps_per_node = fast.network_mbps_per_node / 4.0;
  const auto fast_result = simulate_job(balanced_profile(), fast, job());
  const auto slow_result = simulate_job(balanced_profile(), slow, job());
  EXPECT_GT(slow_result.shuffle_s, fast_result.shuffle_s * 3.5);
  EXPECT_NEAR(slow_result.map_phase_s, fast_result.map_phase_s,
              fast_result.map_phase_s * 1e-9);
}

TEST(SimKnobs, StartupCostScalesWithWaves) {
  ClusterSpec cheap;
  cheap.task_startup_s = 0.0;
  ClusterSpec costly;
  costly.task_startup_s = 10.0;
  auto config = job();
  const auto cheap_result = simulate_job(balanced_profile(), cheap, config);
  const auto costly_result = simulate_job(balanced_profile(), costly, config);
  const double expected_extra =
      10.0 * static_cast<double>(cheap_result.map_waves +
                                 cheap_result.reduce_waves);
  EXPECT_NEAR(costly_result.total_s - cheap_result.total_s, expected_extra,
              expected_extra * 0.01);
}

TEST(SimKnobs, ZeroSpillInputProfileStillRuns) {
  // An app whose map() emits nothing (e.g. a pure filter with no matches)
  // must still cost its produce time.
  auto profile = balanced_profile();
  profile.map_output_bytes = 0.0;
  profile.spill_input_bytes = 0.0;
  profile.spilled_bytes = 0.0;
  profile.merged_bytes = 0.0;
  const auto result = simulate_job(profile, {}, job());
  EXPECT_GT(result.map_phase_s, 0.0);
  EXPECT_EQ(result.spills_per_task, 0u);
}

}  // namespace
}  // namespace textmr::sim
