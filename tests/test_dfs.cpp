#include <gtest/gtest.h>

#include <fstream>

#include "common/error.hpp"
#include "common/tempdir.hpp"
#include "io/dfs.hpp"

namespace textmr::io {
namespace {

void write_lines(const std::filesystem::path& path, int lines,
                 int line_bytes) {
  std::ofstream out(path, std::ios::binary);
  for (int i = 0; i < lines; ++i) {
    std::string line(static_cast<std::size_t>(line_bytes - 1), 'a' + (i % 26));
    out << line << "\n";
  }
}

TEST(SimDfs, CommitAndStat) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 3, .block_bytes = 1000});
  write_lines(dfs.path_of("data"), 10, 100);
  dfs.commit("data");
  EXPECT_TRUE(dfs.exists("data"));
  EXPECT_EQ(dfs.file_size("data"), 1000u);
  EXPECT_FALSE(dfs.exists("missing"));
}

TEST(SimDfs, CommitOfMissingFileThrows) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 2, .block_bytes = 100});
  EXPECT_THROW(dfs.commit("nope"), IoError);
}

TEST(SimDfs, SplitsFollowBlockLayout) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 3, .block_bytes = 1000});
  write_lines(dfs.path_of("data"), 35, 100);  // 3500 bytes -> 4 blocks
  dfs.commit("data");
  const auto splits = dfs.splits("data");
  ASSERT_EQ(splits.size(), 4u);  // 1000+1000+1000+500 (tail == half kept)
  // First committed file starts at node 0; consecutive blocks rotate.
  EXPECT_EQ(splits[0].preferred_node, 0u);
  EXPECT_EQ(splits[1].preferred_node, 1u);
  EXPECT_EQ(splits[2].preferred_node, 2u);
  EXPECT_EQ(splits[3].preferred_node, 0u);
}

TEST(SimDfs, FilesStartOnRotatingNodes) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 4, .block_bytes = 100});
  for (const char* name : {"a", "b", "c"}) {
    write_lines(dfs.path_of(name), 1, 50);
    dfs.commit(name);
  }
  EXPECT_EQ(dfs.splits("a")[0].preferred_node, 0u);
  EXPECT_EQ(dfs.splits("b")[0].preferred_node, 1u);
  EXPECT_EQ(dfs.splits("c")[0].preferred_node, 2u);
}

TEST(SimDfs, NodeOfMatchesSplitAssignment) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 5, .block_bytes = 200});
  write_lines(dfs.path_of("data"), 20, 100);  // 2000 bytes, 10 blocks
  dfs.commit("data");
  for (const auto& split : dfs.splits("data")) {
    EXPECT_EQ(dfs.node_of("data", split.split.offset), split.preferred_node);
  }
}

TEST(SimDfs, ReopenSeesPersistentMetadata) {
  TempDir dir;
  {
    SimDfs dfs(dir.path(), {.num_nodes = 3, .block_bytes = 500});
    write_lines(dfs.path_of("data"), 10, 100);
    dfs.commit("data");
  }
  SimDfs reopened(dir.path(), {.num_nodes = 3, .block_bytes = 500});
  EXPECT_TRUE(reopened.exists("data"));
  EXPECT_EQ(reopened.splits("data").size(), 2u);
}

TEST(SimDfs, CustomSplitSizeOverridesBlockSize) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 2, .block_bytes = 1000});
  write_lines(dfs.path_of("data"), 40, 100);  // 4000 bytes
  dfs.commit("data");
  EXPECT_EQ(dfs.splits("data", 2000).size(), 2u);
  EXPECT_EQ(dfs.splits("data", 500).size(), 8u);
}

TEST(SimDfs, RejectsPathEscape) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 1, .block_bytes = 100});
  EXPECT_THROW(dfs.path_of("../evil"), InternalError);
}

TEST(SimDfs, SplitsOfUncommittedFileThrow) {
  TempDir dir;
  SimDfs dfs(dir.path(), {.num_nodes = 1, .block_bytes = 100});
  write_lines(dfs.path_of("raw"), 2, 10);
  EXPECT_THROW(dfs.splits("raw"), IoError);
}

}  // namespace
}  // namespace textmr::io
