#include <gtest/gtest.h>

// Counting-allocator verification of the zero-copy record path (ISSUE 4
// acceptance criterion): the spill path performs amortized O(1) heap
// allocations per record. Global operator new/delete are replaced with
// malloc/free wrappers that bump a counter, and the hot loops are
// measured directly: a warmed RecordArena refills with zero allocations,
// SpillBuffer::put allocates only on RecordRef-vector growth (logarithmic
// in the record count), and the stable-view merge/group path hands out
// views with zero allocations per record.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mr/hash_combine.hpp"
#include "mr/merger.hpp"
#include "mr/record_arena.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/types.hpp"

#include <charconv>

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto alignment = static_cast<std::size_t>(align);
  const std::size_t rounded =
      (size + alignment - 1) / alignment * alignment;
  if (void* p = std::aligned_alloc(alignment, rounded ? rounded : alignment)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace textmr::mr {
namespace {

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

struct Corpus {
  std::vector<std::string> keys;
  std::vector<std::string> values;
};

Corpus make_corpus(std::size_t n) {
  Xoshiro256 rng(11);
  Corpus corpus;
  corpus.keys.reserve(n);
  corpus.values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    corpus.keys.push_back("word" + std::to_string(rng.next_below(500)));
    corpus.values.push_back(std::to_string(1 + rng.next_below(1000)));
  }
  return corpus;
}

TEST(RecordPathAllocations, WarmedArenaRefillsWithZeroAllocations) {
  constexpr std::size_t kN = 50000;
  const Corpus corpus = make_corpus(kN);
  RecordArena arena;
  auto fill = [&] {
    for (std::size_t i = 0; i < kN; ++i) {
      arena.append(static_cast<std::uint32_t>(i % 4), corpus.keys[i],
                   corpus.values[i]);
    }
  };
  fill();  // warm-up: chunk storage + RecordRef vector grow here
  arena.clear();
  const std::uint64_t before = allocations();
  fill();
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(arena.size(), kN);
}

TEST(RecordPathAllocations, SpillRingPutAllocatesAmortizedConstant) {
  constexpr std::size_t kN = 20000;
  const Corpus corpus = make_corpus(kN);
  // Big buffer, threshold ~1: no spill seals during the loop, so the
  // measured allocations are exactly the put() hot path — which owns no
  // per-record strings, only the RecordRef vector (doubling growth).
  SpillBuffer buffer(8u << 20, 0.99);
  const std::uint64_t before = allocations();
  for (std::size_t i = 0; i < kN; ++i) {
    buffer.put(static_cast<std::uint32_t>(i % 4), corpus.keys[i],
               corpus.values[i]);
  }
  const std::uint64_t delta = allocations() - before;
  // Amortized O(1): vector doubling gives O(log n) reallocations total for
  // n records. 64 is a generous ceiling at n = 20000 (vs. n allocations
  // for the old string-copying path).
  EXPECT_LE(delta, 64u) << "put() allocates per record";
  buffer.close();
  std::size_t drained = 0;
  while (auto spill = buffer.take()) {
    drained += spill->records.size();
    buffer.release(*spill, 1);
  }
  EXPECT_EQ(drained, kN);
}

TEST(RecordPathAllocations, HashCombineInsertAllocatesAmortizedConstant) {
  // ISSUE 10 acceptance: the hash-combine hit path is allocation-free at
  // steady state. Once every key is resident — slots sized, entry vectors
  // grown, the value heap warm — a further wave of inserts combines
  // in-place: the combiner's staging buffers are reused members, totals
  // stay in SSO range, and only value-heap doubling (O(log n)) may touch
  // the heap.
  constexpr std::size_t kN = 20000;
  const Corpus corpus = make_corpus(kN);
  // Allocation-free summing combiner: parses digits from the view and
  // emits from a stack buffer (no std::string round trips).
  auto combiner = std::make_unique<LambdaReducer>(
      [](std::string_view key, ValueStream& values, EmitSink& out) {
        std::uint64_t total = 0;
        while (auto v = values.next()) {
          std::uint64_t x = 0;
          for (const char c : *v) {
            x = x * 10 + static_cast<std::uint64_t>(c - '0');
          }
          total += x;
        }
        char buf[24];
        const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), total);
        (void)ec;
        out.emit(key, std::string_view(buf, static_cast<std::size_t>(
                                                end - buf)));
      });
  TaskMetrics metrics;
  HashCombineConfig config;
  config.num_shards = 4;
  config.num_partitions = 4;
  config.memory_budget_bytes = 256u << 20;  // no watermark flushes
  HashCombineShards table(
      config, combiner.get(),
      [](std::uint64_t) -> std::string {
        ADD_FAILURE() << "no flush expected under a huge budget";
        return "/nonexistent/run";
      },
      metrics, nullptr);
  auto feed = [&] {
    for (std::size_t i = 0; i < kN; ++i) {
      table.insert(static_cast<std::uint32_t>(i % 4), corpus.keys[i],
                   corpus.values[i]);
    }
  };
  feed();  // warm-up: keys enter the table, slots/entries/heap grow here
  const std::uint64_t before = allocations();
  feed();  // steady state: every insert is a combine hit
  const std::uint64_t delta = allocations() - before;
  EXPECT_LE(delta, 64u) << "hash-combine hit path allocates per record";
  EXPECT_EQ(table.stats().records, 2 * kN);
  EXPECT_GE(table.stats().hits, kN);  // whole second wave must be hits
  EXPECT_EQ(table.stats().flushes, 0u);
}

TEST(RecordPathAllocations, StableViewMergeIteratesWithZeroAllocations) {
  constexpr std::size_t kN = 20000;
  const Corpus corpus = make_corpus(kN);
  RecordArena arena;
  std::vector<RecordRef> first_run;
  std::vector<RecordRef> second_run;
  for (std::size_t i = 0; i < kN; ++i) {
    (i % 2 == 0 ? first_run : second_run)
        .push_back(arena.append(0, corpus.keys[i], corpus.values[i]));
  }
  std::sort(first_run.begin(), first_run.end(), record_ref_less);
  std::sort(second_run.begin(), second_run.end(), record_ref_less);

  std::vector<std::unique_ptr<RecordCursor>> cursors;
  cursors.push_back(std::make_unique<MemoryRunCursor>(&first_run));
  cursors.push_back(std::make_unique<MemoryRunCursor>(&second_run));
  MergeStream stream(std::move(cursors));
  ASSERT_TRUE(stream.stable_views());
  KeyGroups groups(stream);

  const std::uint64_t before = allocations();
  std::uint64_t records = 0;
  std::uint64_t payload = 0;
  while (auto key = groups.next_group()) {
    payload += key->size();
    while (auto value = groups.values().next()) {
      ++records;
      payload += value->size();
    }
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(records, kN);
  EXPECT_GT(payload, 0u);
}

}  // namespace
}  // namespace textmr::mr
