#include <gtest/gtest.h>

// Differential fuzz battery for the tokenizer kernels (ISSUE 10): the
// scalar reference loop is the oracle; the SWAR and SIMD kernels (and the
// runtime dispatcher in every mode) must reproduce it token-for-token on
// adversarial input — NULs, multi-byte UTF-8, empty lines, long delimiter
// runs, tokens straddling the 8/16-byte block edges — at every alignment
// offset 0..15. Each case also plants alphanumeric canary bytes around
// the line, so a kernel reading past either end manufactures a token
// difference instead of passing silently. TEXTMR_FUZZ_ITERS multiplies
// the random-iteration counts (the `pressure` ctest label sets 10).

#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "apps/tokenizer.hpp"
#include "common/rng.hpp"
#include "text/tokenize.hpp"

namespace textmr::text {
namespace {

std::size_t fuzz_scale() {
  if (const char* env = std::getenv("TEXTMR_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v > 100 ? 100 : v);
  }
  return 1;
}

using Kernel = void (*)(std::string_view, std::string&, detail::EmitToken,
                        void*);

std::vector<std::string> run_kernel(Kernel kernel, std::string_view line) {
  std::vector<std::string> tokens;
  std::string scratch;
  kernel(
      line, scratch,
      [](void* ctx, std::string_view token) {
        static_cast<std::vector<std::string>*>(ctx)->emplace_back(token);
      },
      &tokens);
  return tokens;
}

struct NamedKernel {
  const char* name;
  Kernel kernel;
};

const NamedKernel kKernels[] = {
    {"swar", detail::tokenize_swar},
    {"simd", detail::tokenize_simd},
};

/// Copies `line` into a fresh buffer so that its first byte sits at
/// `offset` mod 16, with alphanumeric canaries on both sides: an
/// out-of-bounds read by a kernel extends a boundary token and fails the
/// comparison.
std::string_view place_at_offset(std::string_view line, std::size_t offset,
                                 std::vector<char>& storage) {
  storage.assign(offset + line.size() + 16, 'Z');
  std::copy(line.begin(), line.end(), storage.begin() + offset);
  return {storage.data() + offset, line.size()};
}

/// The core assertion: every kernel == oracle, at every alignment.
void expect_kernels_match(std::string_view line) {
  std::vector<char> storage;
  for (std::size_t offset = 0; offset < 16; ++offset) {
    const std::string_view placed = place_at_offset(line, offset, storage);
    const std::vector<std::string> oracle =
        run_kernel(detail::tokenize_scalar, placed);
    for (const NamedKernel& k : kKernels) {
      SCOPED_TRACE(std::string("kernel=") + k.name +
                   " offset=" + std::to_string(offset));
      EXPECT_EQ(oracle, run_kernel(k.kernel, placed));
    }
  }
}

TEST(TokenizerFuzz, EdgeCaseCorpus) {
  const std::string cases[] = {
      "",
      " ",
      "a",
      "A",
      "7",
      "hello world",
      "Hello, World!",
      "  leading and trailing  ",
      "....!!!....,,,,;;;;::::",                 // delimiter run, no tokens
      std::string("a\0b", 3),                    // NUL is a delimiter
      std::string("\0\0\0", 3),                  // NUL run
      std::string("abc\0def\0", 8),              // NUL-separated tokens
      "caf\xc3\xa9 na\xc3\xafve",                // multi-byte UTF-8 splits
      "\xe6\x97\xa5\xe6\x9c\xac\xe8\xaa\x9e",    // all high bytes, no tokens
      "mixed\xc2\xa0separator",                  // NBSP between tokens
      "ALLCAPS lower 0123456789",
      "under_score-hyphen'apostrophe",
      "a@b#c$d%e^f&g*h",
      "\x7f\x80\x81 edge \xfe\xff",              // DEL and top byte values
  };
  for (const std::string& line : cases) {
    SCOPED_TRACE("case bytes=" + std::to_string(line.size()));
    expect_kernels_match(line);
  }
}

TEST(TokenizerFuzz, BlockBoundaryLengths) {
  // Tokens and delimiter runs whose lengths straddle the 8-byte SWAR and
  // 16/32-byte SIMD boundaries: an all-token line of length L, a
  // one-delimiter-at-the-end variant, and an alternating pattern.
  for (std::size_t len :
       {1u, 7u, 8u, 9u, 15u, 16u, 17u, 23u, 24u, 31u, 32u, 33u, 47u, 48u,
        63u, 64u, 65u}) {
    SCOPED_TRACE("len=" + std::to_string(len));
    expect_kernels_match(std::string(len, 'q'));           // one long token
    expect_kernels_match(std::string(len, '.'));           // one long gap
    std::string edge(len, 'x');
    edge.back() = ' ';
    expect_kernels_match(edge);                            // token then gap
    std::string alt;
    for (std::size_t i = 0; i < len; ++i) {
      alt.push_back(i % 3 == 2 ? ' ' : static_cast<char>('a' + i % 26));
    }
    expect_kernels_match(alt);                             // mixed runs
  }
}

TEST(TokenizerFuzz, EveryByteValue) {
  // Single-byte lines covering the full byte range, plus each byte
  // sandwiched between token bytes (does it split or join?).
  for (unsigned b = 0; b < 256; ++b) {
    SCOPED_TRACE("byte=" + std::to_string(b));
    const char c = static_cast<char>(b);
    expect_kernels_match(std::string_view(&c, 1));
    std::string sandwich = "x";
    sandwich.push_back(c);
    sandwich += "y";
    expect_kernels_match(sandwich);
  }
}

TEST(TokenizerFuzz, SeededRandomLines) {
  // Mixed-alphabet random lines: mostly text bytes with deliberate
  // injections of NULs, high bytes and long runs. Fixed base seed —
  // failures replay deterministically.
  const std::size_t iters = 300 * fuzz_scale();
  Xoshiro256 rng(0x746f6b656e697aULL);  // "tokeniz"
  for (std::size_t it = 0; it < iters; ++it) {
    SCOPED_TRACE("iteration=" + std::to_string(it));
    const std::size_t len = rng.next_below(161);
    std::string line;
    line.reserve(len);
    while (line.size() < len) {
      switch (rng.next_below(8)) {
        case 0:  // run of token bytes straddling block edges
        case 1: {
          const std::size_t run = 1 + rng.next_below(40);
          for (std::size_t i = 0; i < run && line.size() < len; ++i) {
            const unsigned pick = static_cast<unsigned>(rng.next_below(62));
            line.push_back(static_cast<char>(
                pick < 26   ? 'a' + pick
                : pick < 52 ? 'A' + (pick - 26)
                            : '0' + (pick - 52)));
          }
          break;
        }
        case 2: {  // delimiter run
          const std::size_t run = 1 + rng.next_below(24);
          const char d = " \t.,;:!?"[rng.next_below(8)];
          for (std::size_t i = 0; i < run && line.size() < len; ++i) {
            line.push_back(d);
          }
          break;
        }
        case 3:  // NUL
          line.push_back('\0');
          break;
        case 4:  // high byte (multi-byte UTF-8 territory)
          line.push_back(static_cast<char>(0x80 + rng.next_below(0x80)));
          break;
        default:  // arbitrary byte
          line.push_back(static_cast<char>(rng.next_below(256)));
          break;
      }
    }
    line.resize(len);
    expect_kernels_match(line);
  }
}

/// RAII guard: tests below mutate the process-global kernel mode.
struct ModeGuard {
  TokenizeMode saved = tokenize_mode();
  ~ModeGuard() { set_tokenize_mode(saved); }
};

TEST(TokenizerDispatch, EveryModeMatchesOracle) {
  ModeGuard guard;
  std::string line = "The 39 steps\xc3\xa9 of MapReduce";
  line.push_back('\0');
  line += "!";
  const std::vector<std::string> oracle =
      run_kernel(detail::tokenize_scalar, line);
  for (TokenizeMode mode : {TokenizeMode::kAuto, TokenizeMode::kScalar,
                            TokenizeMode::kSwar, TokenizeMode::kSimd}) {
    set_tokenize_mode(mode);
    EXPECT_EQ(tokenize_mode(), mode);
    EXPECT_EQ(oracle, run_kernel(detail::tokenize, line));
  }
}

TEST(TokenizerDispatch, ParseModeNames) {
  TokenizeMode mode;
  EXPECT_TRUE(parse_tokenize_mode("auto", mode));
  EXPECT_EQ(mode, TokenizeMode::kAuto);
  EXPECT_TRUE(parse_tokenize_mode("scalar", mode));
  EXPECT_EQ(mode, TokenizeMode::kScalar);
  EXPECT_TRUE(parse_tokenize_mode("swar", mode));
  EXPECT_EQ(mode, TokenizeMode::kSwar);
  EXPECT_TRUE(parse_tokenize_mode("simd", mode));
  EXPECT_EQ(mode, TokenizeMode::kSimd);
  EXPECT_FALSE(parse_tokenize_mode("sse2", mode));
  EXPECT_FALSE(parse_tokenize_mode("", mode));
  EXPECT_FALSE(parse_tokenize_mode("SIMD", mode));
}

TEST(TokenizerDispatch, ResolvedKernelNameIsKnown) {
  const std::string name = resolved_kernel_name();
  EXPECT_TRUE(name == "scalar" || name == "swar" || name == "simd-sse2" ||
              name == "simd-neon")
      << name;
}

TEST(TokenizerDispatch, AppsWrapperDelegates) {
  // The apps-facing template wrapper (used by every text application)
  // yields exactly the oracle's tokens, with views into the caller's
  // scratch buffer.
  ModeGuard guard;
  set_tokenize_mode(TokenizeMode::kAuto);
  const std::string line = "Framework ABstraction-Costs, 2014\xc2\xa0redux";
  const std::vector<std::string> oracle =
      run_kernel(detail::tokenize_scalar, line);
  std::vector<std::string> got;
  std::string scratch;
  apps::for_each_token(line, scratch,
                       [&](std::string_view token) { got.emplace_back(token); });
  EXPECT_EQ(oracle, got);
}

}  // namespace
}  // namespace textmr::text
