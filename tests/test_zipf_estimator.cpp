#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/harmonic.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/zipf_estimator.hpp"

namespace textmr::sketch {
namespace {

TEST(ZipfFit, RecoversExactPowerLaw) {
  // Perfect synthetic frequencies f_i = C * i^-alpha.
  for (const double alpha : {0.5, 0.8, 1.0, 1.5}) {
    std::vector<std::uint64_t> freqs;
    for (int i = 1; i <= 200; ++i) {
      freqs.push_back(static_cast<std::uint64_t>(
          1e7 * std::pow(static_cast<double>(i), -alpha)));
    }
    const auto fit = fit_zipf(freqs);
    EXPECT_NEAR(fit.alpha, alpha, 0.02) << alpha;
    EXPECT_GT(fit.r_squared, 0.999) << alpha;
  }
}

TEST(ZipfFit, RecoversAlphaFromSampledStream) {
  // End-to-end: sample a Zipf stream, count exactly, fit.
  for (const double alpha : {0.8, 1.0, 1.2}) {
    Xoshiro256 rng(55);
    ZipfDistribution zipf(20000, alpha);
    ExactCounter counter;
    for (int i = 0; i < 300000; ++i) {
      counter.offer("w" + std::to_string(zipf(rng)));
    }
    auto top = counter.top(counter.distinct());
    std::vector<std::uint64_t> freqs;
    freqs.reserve(top.size());
    for (const auto& [key, count] : top) freqs.push_back(count);
    const auto fit = fit_zipf(freqs);
    // Sampling noise at the tail biases the log-log slope; a generous
    // band still discriminates 0.8 / 1.0 / 1.2 from each other.
    EXPECT_NEAR(fit.alpha, alpha, 0.15) << alpha;
  }
}

TEST(ZipfFit, DegenerateInputsReturnZeroAlpha) {
  EXPECT_EQ(fit_zipf({}).alpha, 0.0);
  EXPECT_EQ(fit_zipf({5}).alpha, 0.0);
  EXPECT_EQ(fit_zipf({}).points, 0u);
  EXPECT_EQ(fit_zipf({5}).points, 1u);
}

TEST(ZipfFit, UniformFrequenciesGiveNearZeroAlpha) {
  std::vector<std::uint64_t> freqs(100, 1000);
  const auto fit = fit_zipf(freqs);
  EXPECT_NEAR(fit.alpha, 0.0, 1e-9);
}

TEST(ZipfFit, ZeroFrequenciesAreIgnored) {
  std::vector<std::uint64_t> freqs = {100, 50, 25, 0, 0};
  const auto fit = fit_zipf(freqs);
  EXPECT_EQ(fit.points, 3u);
  EXPECT_GT(fit.alpha, 0.5);
}

TEST(ZipfFit, RequiresDescendingOrder) {
  EXPECT_THROW(fit_zipf({1, 2, 3}), InternalError);
}

TEST(SamplingFraction, MatchesPaperFormula) {
  // s = k^alpha * H_{m,alpha} / n, clamped.
  const std::uint64_t k = 3000;
  const double alpha = 1.0;
  const std::uint64_t m = 1000000;
  const std::uint64_t n = 1000000000;
  const double expected =
      std::pow(static_cast<double>(k), alpha) * generalized_harmonic(m, alpha) /
      static_cast<double>(n);
  EXPECT_NEAR(sampling_fraction(k, alpha, m, n, /*floor_s=*/0.0), expected,
              1e-12);
}

TEST(SamplingFraction, ClampsToOne) {
  // Tiny n: the formula exceeds 1, meaning "profile everything".
  EXPECT_EQ(sampling_fraction(1000, 1.5, 1000000, 100), 1.0);
}

TEST(SamplingFraction, FloorGuardsDegenerateFits) {
  // alpha = 0 and a huge n would give s ~ m/n ~ 0; the floor keeps a
  // minimal profile window.
  EXPECT_GE(sampling_fraction(10, 0.0, 100, 1000000000), 0.001);
}

TEST(SamplingFraction, GrowsWithKAndAlpha) {
  const std::uint64_t m = 100000;
  const std::uint64_t n = 100000000;
  EXPECT_LT(sampling_fraction(1000, 1.0, m, n, 0.0),
            sampling_fraction(10000, 1.0, m, n, 0.0));
  EXPECT_LT(sampling_fraction(3000, 0.8, m, n, 0.0),
            sampling_fraction(3000, 1.2, m, n, 0.0));
}

TEST(SamplingFraction, PaperScaleSanity) {
  // Wikipedia-like corpus: n=1.45e9 words, m=24.7e6 distinct, alpha~1,
  // k=3000 -> s should be small (paper uses s=0.01 for text apps).
  const double s = sampling_fraction(3000, 1.0, 24'700'000, 1'450'000'000);
  EXPECT_LT(s, 0.05);
  EXPECT_GT(s, 1e-5);
}

}  // namespace
}  // namespace textmr::sketch
