#include <gtest/gtest.h>

// The paper's central correctness requirement, asserted across ALL six
// applications: the two optimizations change performance, never results.
// Each app runs under Baseline / FreqOpt / SpillOpt / Combined on its own
// dataset; all four outputs must be byte-identical.

#include "helpers.hpp"

namespace textmr {
namespace {

struct AppCase {
  const char* name;
  std::function<apps::AppBundle()> bundle;
};

class AppEquivalenceTest : public ::testing::TestWithParam<AppCase> {};

void PrintTo(const AppCase& c, std::ostream* os) { *os << c.name; }

std::vector<io::InputSplit> dataset_for(const apps::AppBundle& app,
                                        const TempDir& dir) {
  switch (app.dataset) {
    case apps::Dataset::kCorpus: {
      textgen::CorpusSpec spec;
      spec.total_words = app.name == "WordPOSTag" ? 6000 : 40000;
      spec.vocabulary = 600;
      const auto path = dir.file(app.name + "-corpus.txt");
      if (!std::filesystem::exists(path)) {
        textgen::generate_corpus(spec, path.string());
      }
      return io::make_splits(path.string(), 48 * 1024);
    }
    case apps::Dataset::kAccessLog:
    case apps::Dataset::kAccessLogWithRankings: {
      textgen::AccessLogSpec spec;
      spec.num_visits = 12000;
      spec.num_urls = 800;
      const auto visits = dir.file("visits.log");
      const auto rankings = dir.file("rankings.txt");
      if (!std::filesystem::exists(visits)) {
        textgen::generate_access_log(spec, visits.string(),
                                     rankings.string());
      }
      auto splits = io::make_splits(visits.string(), 192 * 1024);
      if (app.dataset == apps::Dataset::kAccessLogWithRankings) {
        const auto extra = io::make_splits(rankings.string(), 192 * 1024);
        splits.insert(splits.end(), extra.begin(), extra.end());
      }
      return splits;
    }
    case apps::Dataset::kWebGraph: {
      textgen::WebGraphSpec spec;
      spec.num_pages = 3000;
      const auto path = dir.file("graph.txt");
      if (!std::filesystem::exists(path)) {
        textgen::generate_web_graph(spec, path.string());
      }
      return io::make_splits(path.string(), 128 * 1024);
    }
  }
  return {};
}

/// Join output keys repeat (one row per visit), so compare multiset-style
/// line collections instead of key->value maps.
std::multiset<std::string> read_lines(
    const std::vector<std::filesystem::path>& parts) {
  std::multiset<std::string> lines;
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) lines.insert(line);
  }
  return lines;
}

TEST_P(AppEquivalenceTest, AllFourSettingsProduceIdenticalOutput) {
  const auto app = GetParam().bundle();
  TempDir dir;
  const auto splits = dataset_for(app, dir);
  ASSERT_FALSE(splits.empty());

  mr::LocalEngine engine;
  std::optional<std::multiset<std::string>> baseline_lines;
  int run_id = 0;
  struct Setting {
    bool freq;
    bool matcher;
  };
  for (const Setting setting :
       {Setting{false, false}, Setting{true, false}, Setting{false, true},
        Setting{true, true}}) {
    auto spec = test::make_job(app, splits,
                               dir.file("s" + std::to_string(run_id)),
                               dir.file("o" + std::to_string(run_id)));
    ++run_id;
    spec.spill_buffer_bytes = 96 * 1024;
    spec.use_spill_matcher = setting.matcher;
    if (setting.freq) {
      spec.freqbuf.enabled = true;
      spec.freqbuf.top_k = 60;
      spec.freqbuf.sampling_fraction = 0.05;
    }
    const auto result = engine.run(spec);
    auto lines = read_lines(result.outputs);
    ASSERT_FALSE(lines.empty());
    if (!baseline_lines.has_value()) {
      baseline_lines = std::move(lines);
    } else {
      ASSERT_EQ(lines.size(), baseline_lines->size())
          << "freq=" << setting.freq << " matcher=" << setting.matcher;
      ASSERT_EQ(lines, *baseline_lines)
          << "freq=" << setting.freq << " matcher=" << setting.matcher;
    }
  }
}

// PageRank is excluded from byte-identity: rank shares are carried as
// %.6f text (the era-appropriate representation), so every combine
// rounds — results are schedule-dependent in the last decimals, exactly
// as in text-era Hadoop. It gets a tolerance-based equivalence below.
// SynText's reducer reports aggregate sizes, which are legitimately
// schedule-dependent; its key-set invariance is covered in
// test_properties.cpp.
INSTANTIATE_TEST_SUITE_P(
    PaperApps, AppEquivalenceTest,
    ::testing::Values(
        AppCase{"WordCount", [] { return apps::wordcount_app(); }},
        AppCase{"InvertedIndex", [] { return apps::inverted_index_app(); }},
        AppCase{"WordPOSTag", [] { return apps::word_pos_tag_app(2); }},
        AppCase{"AccessLogSum", [] { return apps::access_log_sum_app(); }},
        AppCase{"AccessLogJoin", [] { return apps::access_log_join_app(); }}),
    [](const ::testing::TestParamInfo<AppCase>& info) {
      return info.param.name;
    });

TEST(AppEquivalence, PageRankSettingsAgreeWithinRoundingTolerance) {
  TempDir dir;
  textgen::WebGraphSpec graph_spec;
  graph_spec.num_pages = 3000;
  const auto graph = dir.file("graph.txt");
  textgen::generate_web_graph(graph_spec, graph.string());
  const auto splits = io::make_splits(graph.string(), 128 * 1024);

  auto run_ranks = [&](bool freq, bool matcher, int id) {
    auto spec = test::make_job(apps::pagerank_app(), splits,
                               dir.file("s" + std::to_string(id)),
                               dir.file("o" + std::to_string(id)));
    spec.spill_buffer_bytes = 96 * 1024;
    spec.use_spill_matcher = matcher;
    if (freq) {
      spec.freqbuf.enabled = true;
      spec.freqbuf.top_k = 60;
      spec.freqbuf.sampling_fraction = 0.05;
    }
    mr::LocalEngine engine;
    const auto result = engine.run(spec);
    std::map<std::string, double> ranks;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) {
        const auto tab1 = line.find('\t');
        ranks[line.substr(0, tab1)] =
            std::strtod(line.c_str() + tab1 + 1, nullptr);
      }
    }
    return ranks;
  };

  const auto baseline = run_ranks(false, false, 0);
  int id = 1;
  for (const auto& [freq, matcher] :
       {std::pair{true, false}, std::pair{false, true},
        std::pair{true, true}}) {
    const auto ranks = run_ranks(freq, matcher, id++);
    ASSERT_EQ(ranks.size(), baseline.size());
    for (const auto& [url, rank] : baseline) {
      // %.6f rounding at each combine: allow a small absolute slack.
      ASSERT_NEAR(ranks.at(url), rank, 1e-3) << url;
    }
  }
}

}  // namespace
}  // namespace textmr
