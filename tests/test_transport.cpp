#include <gtest/gtest.h>

// In-process battery for the transport layer and the shuffle service
// (DESIGN.md §14): TCP listen/connect/accept plumbing, Connection framing
// and timeouts, the net.* / shuffle.* failpoints, ShuffleServer +
// ShuffleClient request/retry semantics, and a full TCP cluster run with
// external workers hosted on std::threads.
//
// Everything here is fork-free on purpose: this file is in the TSan CI
// tier, where fork() is off-limits, and thread-hosted workers over real
// loopback sockets give the race detector the exact code the forked
// production path runs. The forked TCP battery lives in test_cluster.cpp.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cluster/shuffle_client.hpp"
#include "cluster/shuffle_server.hpp"
#include "cluster/transport.hpp"
#include "cluster/worker.hpp"
#include "common/failpoint.hpp"
#include "common/tempdir.hpp"
#include "helpers.hpp"

namespace textmr::cluster {
namespace {

TEST(TransportKindTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_transport_kind("socketpair"), TransportKind::kSocketpair);
  EXPECT_EQ(parse_transport_kind("tcp"), TransportKind::kTcp);
  EXPECT_STREQ(transport_kind_name(TransportKind::kSocketpair), "socketpair");
  EXPECT_STREQ(transport_kind_name(TransportKind::kTcp), "tcp");
  EXPECT_THROW(parse_transport_kind("carrier-pigeon"), ConfigError);
  EXPECT_THROW(parse_transport_kind(""), ConfigError);
}

TEST(TcpPlumbing, ListenConnectAcceptRoundTrip) {
  Endpoint listen;  // 127.0.0.1, port 0 = kernel-assigned
  const int listen_fd = tcp_listen(listen);
  ASSERT_GE(listen_fd, 0);
  const Endpoint bound = local_endpoint(listen_fd);
  EXPECT_EQ(bound.host, "127.0.0.1");
  EXPECT_NE(bound.port, 0);

  const int client_fd = tcp_connect(bound, 2000);
  ASSERT_GE(client_fd, 0);
  const int server_fd = tcp_accept(listen_fd, 2000);
  ASSERT_GE(server_fd, 0);

  // Full frame round-trip in both directions, checksummed format.
  Connection client(client_fd, FrameFormat::kChecksummed, 2000);
  Connection server(server_fd, FrameFormat::kChecksummed, 2000);
  ASSERT_TRUE(client.send(encode_shuffle_fetch(ShuffleFetchMsg{"/r", 1})));
  auto got = server.recv();
  ASSERT_TRUE(got.has_value());
  auto r = WireReader(*got);
  EXPECT_EQ(static_cast<MsgType>(r.u8()), MsgType::kShuffleFetch);
  ASSERT_TRUE(server.send(encode_shuffle_data(ShuffleDataMsg{1, "payload"})));
  got = client.recv();
  ASSERT_TRUE(got.has_value());

  ::close(listen_fd);
}

TEST(TcpPlumbing, ConnectToClosedPortThrowsIoError) {
  // Bind, learn the port, close: connecting must be refused, not hang.
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  ::close(listen_fd);
  EXPECT_THROW(tcp_connect(bound, 1000), IoError);
}

TEST(TcpPlumbing, AcceptTimesOutWithNoClient) {
  const int listen_fd = tcp_listen(Endpoint{});
  EXPECT_THROW(tcp_accept(listen_fd, 50), IoError);
  ::close(listen_fd);
}

TEST(TcpPlumbing, BadListenAddressIsAConfigError) {
  Endpoint bad;
  bad.host = "not-an-ipv4-address";
  EXPECT_THROW(tcp_listen(bad), ConfigError);
}

TEST(TcpPlumbing, ConnectionRecvTimesOutOnSilentPeer) {
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  const int client_fd = tcp_connect(bound, 2000);
  const int server_fd = tcp_accept(listen_fd, 2000);
  Connection client(client_fd, FrameFormat::kChecksummed, 50);
  // The server never sends: the deadline must fire, not block forever —
  // this is the dead-TCP-peer bug class the io_timeout plumbing exists
  // for (a coordinator stuck in recv would hang the whole job).
  EXPECT_THROW(client.recv(), IoError);
  // A per-call override beats the default.
  EXPECT_THROW(client.recv(50), IoError);
  ::close(server_fd);
  ::close(listen_fd);
}

// ---- net.* failpoints ------------------------------------------------------

struct ConnectedTcpPair {
  int listen_fd = -1;
  Connection client;
  Connection server;

  explicit ConnectedTcpPair(std::int32_t timeout_ms = 2000) {
    listen_fd = tcp_listen(Endpoint{});
    const Endpoint bound = local_endpoint(listen_fd);
    client = Connection(tcp_connect(bound, timeout_ms),
                        FrameFormat::kChecksummed, timeout_ms);
    server = Connection(tcp_accept(listen_fd, timeout_ms),
                        FrameFormat::kChecksummed, timeout_ms);
  }
  ~ConnectedTcpPair() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
};

TEST(NetFailpoints, ConnectThrowInjectsFault) {
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  failpoint::ScopedFailpoints guard("net.connect:nth=1");
  EXPECT_THROW(tcp_connect(bound, 1000), failpoint::InjectedFault);
  // One-shot: the next connect goes through.
  const int fd = tcp_connect(bound, 1000);
  EXPECT_GE(fd, 0);
  ::close(fd);
  ::close(listen_fd);
}

TEST(NetFailpoints, SendThrowInjectsFault) {
  ConnectedTcpPair pair;
  failpoint::ScopedFailpoints guard("net.send:nth=1");
  EXPECT_THROW(pair.client.send("payload"), failpoint::InjectedFault);
}

TEST(NetFailpoints, SendCorruptIsCaughtByReceiverChecksum) {
  ConnectedTcpPair pair;
  {
    failpoint::ScopedFailpoints guard("net.send:nth=1:action=corrupt");
    ASSERT_TRUE(pair.client.send("a corruptible payload"));
  }
  // The flipped payload byte must fail the CRC on the receiving side —
  // this is the whole reason the TCP frames carry one.
  EXPECT_THROW(pair.server.recv(), IoError);
}

TEST(NetFailpoints, SendShortWriteTearsTheFrame) {
  ConnectedTcpPair pair;
  {
    failpoint::ScopedFailpoints guard("net.send:nth=1:action=shortwrite");
    // The sender learns its peer is gone (false), the receiver sees a
    // torn frame (IoError) once the connection drops.
    EXPECT_FALSE(pair.client.send("a payload that gets torn"));
  }
  pair.client.close();
  EXPECT_THROW(pair.server.recv(), IoError);
}

TEST(NetFailpoints, RecvThrowInjectsFault) {
  ConnectedTcpPair pair;
  ASSERT_TRUE(pair.client.send("payload"));
  failpoint::ScopedFailpoints guard("net.recv:nth=1");
  EXPECT_THROW(pair.server.recv(), failpoint::InjectedFault);
}

// ---- shuffle server + client ----------------------------------------------

struct ShuffleRig {
  TempDir dir;
  std::string run_path;
  io::SpillRunInfo info;

  explicit ShuffleRig(std::uint32_t partitions = 3) {
    run_path = dir.file("map0_a0_final").string();
    io::SpillRunWriter writer(run_path, partitions,
                              io::SpillFormat::kCompactVarint);
    writer.append(0, "apple", "1");
    writer.append(0, "avocado", "2");
    writer.append(1, "banana", "3");
    writer.append(2, "cherry", "4");
    writer.append(2, "citron", "");
    info = writer.finish();
  }

  ShuffleServer::Options server_options() const {
    ShuffleServer::Options options;
    options.root = dir.path().string();
    options.io_timeout_ms = 2000;
    return options;
  }
};

TEST(ShuffleService, FetchesEveryPartitionBitExact) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());
  ASSERT_NE(server.endpoint().port, 0);

  ShuffleClient client;
  io::SpillRunReader reader(rig.run_path, io::SpillFormat::kCompactVarint);
  std::uint64_t expected_bytes = 0;
  for (std::uint32_t p = 0; p < 3; ++p) {
    const auto fetched = client.fetch(server.endpoint(), rig.info, p);
    ASSERT_TRUE(fetched.has_value()) << "partition " << p;
    EXPECT_EQ(*fetched, reader.read_partition(p)) << "partition " << p;
    expected_bytes += fetched->size();
  }
  // The counters are bumped by the accept thread after the reply is on
  // the wire, so the client can observe its data slightly before the
  // increment lands — wait for them to settle.
  for (int i = 0; i < 200 && server.requests_served() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_EQ(server.bytes_served(), expected_bytes);
}

TEST(ShuffleService, PathOutsideRootIsRejectedWithoutRetry) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());

  // A run that exists on disk but lives outside the served root: the
  // server must refuse (non-retryable), the client must not burn the
  // full retry budget on it.
  TempDir other;
  const auto outside = other.file("evil_final").string();
  {
    io::SpillRunWriter writer(outside, 1, io::SpillFormat::kCompactVarint);
    writer.append(0, "secret", "1");
    writer.finish();
  }
  io::SpillRunInfo evil = rig.info;
  evil.path = outside;
  ShuffleClient::Options options;
  options.attempts = 3;
  options.backoff_ms = 1;
  ShuffleClient client(options);
  EXPECT_FALSE(client.fetch(server.endpoint(), evil, 0).has_value());
  // Prefix trickery must not pass either: "<root>-evil" shares the
  // root's spelling but is a sibling directory.
  io::SpillRunInfo sibling = rig.info;
  sibling.path = rig.dir.path().string() + "-evil/run_final";
  EXPECT_FALSE(client.fetch(server.endpoint(), sibling, 0).has_value());
}

TEST(ShuffleService, OutOfRangePartitionIsRejected) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());
  ShuffleClient client;
  EXPECT_FALSE(client.fetch(server.endpoint(), rig.info, 99).has_value());
}

TEST(ShuffleService, StoppedServerExhaustsRetriesToNullopt) {
  ShuffleRig rig;
  Endpoint dead;
  {
    ShuffleServer server(rig.server_options());
    dead = server.endpoint();
  }  // destroyed: the port refuses connections now
  ShuffleClient::Options options;
  options.attempts = 2;
  options.backoff_ms = 1;
  options.timeout_ms = 200;
  ShuffleClient client(options);
  EXPECT_FALSE(client.fetch(dead, rig.info, 0).has_value());
}

TEST(ShuffleService, ServeFailpointDropsConnectionClientRetries) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());
  ShuffleClient::Options options;
  options.attempts = 3;
  options.backoff_ms = 1;
  ShuffleClient client(options);

  // First request dropped mid-serve (models a crashing server); the
  // retry lands on a healthy server and must succeed bit-exact.
  failpoint::ScopedFailpoints guard("shuffle.serve:nth=1");
  const auto fetched = client.fetch(server.endpoint(), rig.info, 0);
  ASSERT_TRUE(fetched.has_value());
  io::SpillRunReader reader(rig.run_path, io::SpillFormat::kCompactVarint);
  EXPECT_EQ(*fetched, reader.read_partition(0));
}

TEST(ShuffleService, FetchFailpointBurnsOneAttempt) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());
  ShuffleClient::Options options;
  options.attempts = 2;
  options.backoff_ms = 1;
  ShuffleClient client(options);
  failpoint::ScopedFailpoints guard("shuffle.fetch:nth=1");
  EXPECT_TRUE(client.fetch(server.endpoint(), rig.info, 0).has_value());
  for (int i = 0; i < 200 && server.requests_served() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.requests_served(), 1u);  // only the retry reached it
}

TEST(ShuffleService, EveryAttemptInjectedToFailureReturnsNullopt) {
  ShuffleRig rig;
  ShuffleServer server(rig.server_options());
  ShuffleClient::Options options;
  options.attempts = 2;
  options.backoff_ms = 1;
  ShuffleClient client(options);
  failpoint::ScopedFailpoints guard("shuffle.fetch:always");
  EXPECT_FALSE(client.fetch(server.endpoint(), rig.info, 0).has_value());
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(ShuffleService, InvalidSourceEndpointFailsFast) {
  ShuffleRig rig;
  ShuffleClient client;
  // A map task whose owner died before kHello leaves an invalid (port 0)
  // source — the client must skip straight to the filesystem fallback.
  EXPECT_FALSE(client.fetch(Endpoint{}, rig.info, 0).has_value());
}

// ---- externally-joined workers (thread-hosted, no fork) -------------------

TEST(RemoteWorker, HandshakeTimesOutOnSilentCoordinator) {
  // Accepts the connection but never sends kWelcome: run_remote_worker
  // must throw IoError after its connect timeout instead of hanging.
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  std::atomic<bool> threw{false};
  std::thread worker([&] {
    mr::JobSpec spec;  // never used: the handshake fails first
    RemoteWorkerOptions options;
    options.connect_timeout_ms = 200;
    try {
      run_remote_worker(bound, spec, options);
    } catch (const IoError&) {
      threw.store(true);
    }
  });
  const int fd = tcp_accept(listen_fd, 2000);  // accept, then stay silent
  worker.join();
  EXPECT_TRUE(threw.load());
  ::close(fd);
  ::close(listen_fd);
}

TEST(RemoteWorker, ConnectToNobodyThrows) {
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  ::close(listen_fd);
  mr::JobSpec spec;
  RemoteWorkerOptions options;
  options.connect_timeout_ms = 200;
  EXPECT_THROW(run_remote_worker(bound, spec, options), IoError);
}

TEST(RemoteWorker, IdleTimeoutExitsWorkerWhenCoordinatorGoesSilent) {
  // Welcome the worker, then say nothing: the worker's idle timeout must
  // bring it home instead of leaving a thread blocked in recv forever.
  const int listen_fd = tcp_listen(Endpoint{});
  const Endpoint bound = local_endpoint(listen_fd);
  std::atomic<int> exit_code{-1};
  mr::JobSpec spec;
  std::thread worker([&] {
    RemoteWorkerOptions options;
    options.connect_timeout_ms = 2000;
    options.idle_timeout_ms = 100;
    exit_code.store(run_remote_worker(bound, spec, options));
  });
  const int fd = tcp_accept(listen_fd, 2000);
  ASSERT_TRUE(send_frame(fd, encode_welcome(WelcomeMsg{0, 1000}),
                         FrameFormat::kChecksummed, 2000));
  // Drain and discard whatever the worker sends (kHello, heartbeats) so
  // its socket buffer never fills; send nothing back.
  std::string sink(4096, '\0');
  while (true) {
    const ssize_t n = ::recv(fd, sink.data(), sink.size(), 0);
    if (n <= 0) break;  // worker hung up: idle timeout fired
  }
  worker.join();
  EXPECT_EQ(exit_code.load(), 0);
  ::close(fd);
  ::close(listen_fd);
}

// Full TCP cluster with every worker joining externally, hosted on
// threads in this process: exercises listen/accept/welcome/hello, the
// checksummed control channel, and the network shuffle end to end under
// TSan without a single fork.
TEST(TcpClusterInProcess, ExternalWorkersProduceByteIdenticalOutput) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 8000;
  corpus_spec.vocabulary = 300;
  corpus_spec.seed = 99;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 4 * 1024);

  auto local_spec = test::make_job(apps::wordcount_app(), splits,
                                   dir.file("s-local"), dir.file("o-local"));
  const auto local = mr::LocalEngine().run(local_spec);

  auto cluster_spec = test::make_job(apps::wordcount_app(), splits,
                                     dir.file("s-tcp"), dir.file("o-tcp"));
  ClusterConfig config;
  config.num_workers = 2;
  config.external_workers = 2;  // nothing forked: TSan-safe
  config.transport = TransportKind::kTcp;
  config.io_timeout_ms = 10000;
  // No duplicate attempts: makes shuffled_wire_bytes == shuffled_bytes
  // below exact (a killed loser's partial fetches would perturb it).
  config.speculation = false;
  ClusterEngine engine(config);
  const Endpoint* listen = engine.listen_endpoint();
  ASSERT_NE(listen, nullptr);
  ASSERT_NE(listen->port, 0);

  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < 2; ++w) {
    workers.emplace_back([listen, &cluster_spec] {
      RemoteWorkerOptions options;
      options.connect_timeout_ms = 10000;
      run_remote_worker(*listen, cluster_spec, options);
    });
  }
  const auto result = engine.run(cluster_spec);
  for (auto& t : workers) t.join();

  // Byte-identical, not merely equivalent: same part files, same bytes.
  ASSERT_EQ(result.outputs.size(), local.outputs.size());
  for (std::size_t i = 0; i < result.outputs.size(); ++i) {
    std::ifstream a(local.outputs[i], std::ios::binary);
    std::ifstream b(result.outputs[i], std::ios::binary);
    std::stringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    EXPECT_EQ(sa.str(), sb.str()) << result.outputs[i];
  }
  // The shuffle genuinely crossed the wire (not the filesystem
  // fallback): wire bytes equal total shuffled bytes on a fault-free run.
  EXPECT_GT(result.metrics.work.shuffled_wire_bytes, 0u);
  EXPECT_EQ(result.metrics.work.shuffled_wire_bytes,
            result.metrics.work.shuffled_bytes);
}

TEST(TcpClusterInProcess, MixedExternalValidation) {
  // external_workers > num_workers and external workers without TCP are
  // config errors, caught before anything binds or forks.
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 500;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  {
    ClusterConfig config;
    config.num_workers = 1;
    config.external_workers = 2;
    config.transport = TransportKind::kTcp;
    ClusterEngine engine(config);
    EXPECT_THROW(engine.run(spec), ConfigError);
  }
  {
    ClusterConfig config;
    config.num_workers = 2;
    config.external_workers = 1;  // socketpair transport: no listener
    ClusterEngine engine(config);
    EXPECT_THROW(engine.run(spec), ConfigError);
  }
}

TEST(TcpClusterInProcess, MissingExternalWorkerTimesOutCleanly) {
  // One external slot promised, nobody dials in: run() must fail with
  // IoError after accept_timeout_ms — never hang the coordinator.
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 500;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  ClusterConfig config;
  config.num_workers = 1;
  config.external_workers = 1;
  config.transport = TransportKind::kTcp;
  config.accept_timeout_ms = 100;
  ClusterEngine engine(config);
  EXPECT_THROW(engine.run(spec), IoError);
}

}  // namespace
}  // namespace textmr::cluster
