#include <gtest/gtest.h>

// Cross-module integration tests: SimDfs-driven jobs, the WordPOSTag
// pipeline end-to-end, chained jobs (PageRank two iterations), and
// engine metrics invariants under every optimization setting.

#include "helpers.hpp"

namespace textmr {
namespace {

TEST(Integration, JobOverSimDfsSplits) {
  TempDir dir;
  io::SimDfs dfs(dir.file("dfs"), {.num_nodes = 3, .block_bytes = 64 * 1024});
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 80000;
  corpus_spec.vocabulary = 500;
  textgen::generate_corpus(corpus_spec, dfs.path_of("corpus.txt").string());
  dfs.commit("corpus.txt");

  const auto dfs_splits = dfs.splits("corpus.txt");
  ASSERT_GT(dfs_splits.size(), 1u);
  std::vector<io::InputSplit> splits;
  for (const auto& s : dfs_splits) splits.push_back(s.split);

  auto spec = test::make_job(apps::wordcount_app(), splits, dir.file("s"),
                             dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto expected =
      test::reference_wordcount(dfs.path_of("corpus.txt").string());
  const auto actual = test::read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
}

TEST(Integration, WordPosTagEndToEndCountsEveryToken) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 4000;
  corpus_spec.vocabulary = 300;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 64 * 1024);

  auto spec = test::make_job(apps::word_pos_tag_app(/*work_passes=*/2),
                             splits, dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  // Every token contributes exactly one tag count; the per-word sums must
  // equal the reference word counts.
  const auto expected = test::reference_wordcount(corpus.string());
  const auto actual = test::read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, value] : actual) {
    // value: "TAG:n TAG:m ..." — sum the counts.
    std::uint64_t total = 0;
    std::size_t pos = 0;
    while ((pos = value.find(':', pos)) != std::string::npos) {
      total += std::strtoull(value.c_str() + pos + 1, nullptr, 10);
      ++pos;
    }
    ASSERT_EQ(total, expected.at(word)) << word << " -> " << value;
  }
}

TEST(Integration, PageRankTwoChainedIterationsConserveMass) {
  TempDir dir;
  textgen::WebGraphSpec graph_spec;
  graph_spec.num_pages = 800;
  const auto graph = dir.file("g0.txt");
  textgen::generate_web_graph(graph_spec, graph.string());

  mr::LocalEngine engine;
  auto input = graph;
  double previous_mass = -1;
  for (int iter = 0; iter < 2; ++iter) {
    auto spec = test::make_job(apps::pagerank_app(),
                               io::make_splits(input.string(), 1 << 20),
                               dir.file("s" + std::to_string(iter)),
                               dir.file("o" + std::to_string(iter)));
    const auto result = engine.run(spec);

    // Rewrite output as next input and measure total rank mass.
    input = dir.file("g" + std::to_string(iter + 1) + ".txt");
    std::ofstream next(input);
    double mass = 0;
    for (const auto& part : result.outputs) {
      std::ifstream in(part);
      std::string line;
      while (std::getline(in, line)) {
        next << line << "\n";
        const auto tab1 = line.find('\t');
        mass += std::strtod(line.c_str() + tab1 + 1, nullptr);
      }
    }
    if (previous_mass >= 0) {
      // After the first iteration the page set is stable, so total mass
      // is conserved by d*sum + (1-d)*N.
      EXPECT_NEAR(mass, previous_mass, previous_mass * 0.01) << iter;
    }
    previous_mass = mass;
  }
}

class SettingsMetricsTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(SettingsMetricsTest, MetricInvariantsHoldUnderEverySetting) {
  const auto [freq, matcher] = GetParam();
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 30000;
  corpus_spec.vocabulary = 600;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 96 * 1024),
                             dir.file("s"), dir.file("o"));
  spec.use_spill_matcher = matcher;
  if (freq) {
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = 50;
    spec.freqbuf.sampling_fraction = 0.05;
  }
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto& work = result.metrics.work;

  // Volume conservation: records either enter the spill path or are
  // absorbed; absorbed ones later re-enter via flush (already counted in
  // spill_input_records).
  EXPECT_LE(work.spill_input_records, work.map_output_records);
  if (!freq) {
    EXPECT_EQ(work.spill_input_records, work.map_output_records);
    EXPECT_EQ(work.freq_hits, 0u);
  } else {
    EXPECT_GT(work.freq_hits, 0u);
  }
  // The combiner only shrinks; merge only shrinks further.
  EXPECT_LE(work.spilled_records, work.spill_input_records);
  EXPECT_LE(work.merged_records, work.spilled_records);
  EXPECT_EQ(work.reduce_input_records, work.merged_records);
  // Shuffle moved exactly the merged bytes.
  EXPECT_EQ(work.shuffled_bytes, work.merged_bytes);
  // Per-thread aggregates partition the total work view.
  const auto& m = result.metrics;
  EXPECT_EQ(m.work.total_ns(true),
            m.map_work.total_ns(true) + m.support_work.total_ns(true) +
                m.reduce_work.total_ns(true));
  // Idle accounting matches the op buckets.
  EXPECT_EQ(m.map_thread_idle_ns, m.map_work.op_ns(mr::Op::kMapIdle));
  EXPECT_EQ(m.support_thread_idle_ns,
            m.support_work.op_ns(mr::Op::kSupportIdle));
}

INSTANTIATE_TEST_SUITE_P(Settings, SettingsMetricsTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Integration, SpillMatcherConvergesTowardModelPrediction) {
  // For WordCount-like rates the matcher's final threshold must settle in
  // [0.5, 0.95] and differ from the 0.8 default it started at (unless 0.8
  // happens to be optimal, which the rate imbalance here prevents).
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 80000;
  corpus_spec.vocabulary = 2000;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.spill_buffer_bytes = 64 * 1024;  // many spills -> many adjustments
  spec.use_spill_matcher = true;
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  for (const auto& task : result.map_tasks) {
    EXPECT_GE(task.final_spill_threshold, 0.05);
    EXPECT_LE(task.final_spill_threshold, 0.95);
    EXPECT_GT(task.spills, 3u);
  }
}

TEST(Integration, KeepIntermediatesPreservesSpillRuns) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 20000;
  corpus_spec.vocabulary = 400;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.spill_buffer_bytes = 16 * 1024;
  spec.keep_intermediates = true;
  mr::LocalEngine engine;
  engine.run(spec);
  std::size_t kept = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.file("s"))) {
    (void)entry;
    ++kept;
  }
  EXPECT_GT(kept, 1u);
}

}  // namespace
}  // namespace textmr
