#include <gtest/gtest.h>

#include "helpers.hpp"

namespace textmr {
namespace {

using test::make_job;
using test::part_files_sorted;
using test::read_outputs;

struct Fixture {
  TempDir dir;
  std::filesystem::path corpus;
  std::vector<io::InputSplit> splits;

  explicit Fixture(std::uint64_t words = 60000, double alpha = 1.0) {
    textgen::CorpusSpec spec;
    spec.total_words = words;
    spec.vocabulary = 2000;
    spec.alpha = alpha;
    spec.seed = 2024;
    corpus = dir.file("corpus.txt");
    textgen::generate_corpus(spec, corpus.string());
    splits = io::make_splits(corpus.string(), 64 * 1024);
  }
};

TEST(Engine, WordCountMatchesReference) {
  Fixture fx;
  auto spec = make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                       fx.dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  const auto expected = test::reference_wordcount(fx.corpus.string());
  const auto actual = read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
  EXPECT_TRUE(part_files_sorted(result.outputs));
  EXPECT_GT(fx.splits.size(), 1u);  // exercised multiple map tasks
  EXPECT_EQ(result.metrics.map_tasks, fx.splits.size());
}

class WordCountSettingsTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(WordCountSettingsTest, AllOptimizationSettingsAgree) {
  const auto [freq, matcher] = GetParam();
  Fixture fx;
  auto spec = make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                       fx.dir.file("o"));
  spec.use_spill_matcher = matcher;
  if (freq) {
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = 50;
    spec.freqbuf.sampling_fraction = 0.05;
  }
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto expected = test::reference_wordcount(fx.corpus.string());
  const auto actual = read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
  if (freq) {
    EXPECT_GT(result.metrics.work.freq_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Settings, WordCountSettingsTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Engine, InvertedIndexMatchesReference) {
  Fixture fx(30000);
  auto spec = make_job(apps::inverted_index_app(), fx.splits, fx.dir.file("s"),
                       fx.dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  const auto expected = test::reference_inverted_index(fx.splits);
  const auto actual = read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, locations] : expected) {
    std::string text = std::to_string(locations.size()) + ":";
    for (std::size_t i = 0; i < locations.size(); ++i) {
      if (i > 0) text.push_back(',');
      text += std::to_string(locations[i]);
    }
    ASSERT_EQ(actual.at(word), text) << word;
  }
}

TEST(Engine, InvertedIndexWithFreqBufferingAgrees) {
  Fixture fx(30000);
  auto base_spec = make_job(apps::inverted_index_app(), fx.splits,
                            fx.dir.file("s1"), fx.dir.file("o1"));
  auto freq_spec = make_job(apps::inverted_index_app(), fx.splits,
                            fx.dir.file("s2"), fx.dir.file("o2"));
  freq_spec.freqbuf.enabled = true;
  freq_spec.freqbuf.top_k = 30;
  freq_spec.freqbuf.sampling_fraction = 0.05;
  mr::LocalEngine engine;
  EXPECT_EQ(read_outputs(engine.run(base_spec).outputs),
            read_outputs(engine.run(freq_spec).outputs));
}

TEST(Engine, AccessLogSumMatchesReference) {
  TempDir dir;
  textgen::AccessLogSpec log_spec;
  log_spec.num_visits = 20000;
  log_spec.num_urls = 500;
  const auto visits = dir.file("visits.log");
  const auto rankings = dir.file("rankings.txt");
  textgen::generate_access_log(log_spec, visits.string(), rankings.string());

  auto spec = make_job(apps::access_log_sum_app(),
                       io::make_splits(visits.string(), 256 * 1024),
                       dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  const auto expected = test::reference_access_log_sum(visits.string());
  const auto actual = read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [url, cents] : expected) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%02llu",
                  static_cast<unsigned long long>(cents / 100),
                  static_cast<unsigned long long>(cents % 100));
    ASSERT_EQ(actual.at(url), buf) << url;
  }
}

TEST(Engine, AccessLogJoinProducesInnerJoin) {
  TempDir dir;
  textgen::AccessLogSpec log_spec;
  log_spec.num_visits = 5000;
  log_spec.num_urls = 200;
  const auto visits = dir.file("visits.log");
  const auto rankings = dir.file("rankings.txt");
  const auto stats =
      textgen::generate_access_log(log_spec, visits.string(), rankings.string());

  auto splits = io::make_splits(visits.string(), 256 * 1024);
  const auto ranking_splits = io::make_splits(rankings.string(), 256 * 1024);
  splits.insert(splits.end(), ranking_splits.begin(), ranking_splits.end());

  auto spec = make_job(apps::access_log_join_app(), splits, dir.file("s"),
                       dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  // Every visit joins (rankings cover all URLs): one output row per visit.
  std::uint64_t rows = 0;
  for (const auto& part : result.outputs) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      ++rows;
      // Row shape: sourceIP \t revenue|pageRank
      const auto tab = line.find('\t');
      ASSERT_NE(tab, std::string::npos);
      EXPECT_NE(line.find('|', tab), std::string::npos);
    }
  }
  EXPECT_EQ(rows, stats.visit_records);
}

TEST(Engine, PageRankConservesRankMass) {
  TempDir dir;
  textgen::WebGraphSpec graph_spec;
  graph_spec.num_pages = 2000;
  graph_spec.seed = 5;
  const auto graph = dir.file("graph.txt");
  textgen::generate_web_graph(graph_spec, graph.string());

  auto spec = make_job(apps::pagerank_app(),
                       io::make_splits(graph.string(), 128 * 1024),
                       dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  // Sum of ranks after one iteration with damping d over N emitting pages:
  // sum' = (1-d)*N' + d*sum_in, where every page starts at rank 1 and all
  // mass is redistributed; N' >= N because link-only pages materialize.
  double total_rank = 0.0;
  std::uint64_t pages = 0;
  for (const auto& part : result.outputs) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      const auto tab1 = line.find('\t');
      const auto tab2 = line.find('\t', tab1 + 1);
      total_rank += std::stod(line.substr(tab1 + 1, tab2 - tab1 - 1));
      ++pages;
    }
  }
  EXPECT_GE(pages, graph_spec.num_pages);
  const double expected =
      0.15 * static_cast<double>(pages) +
      0.85 * static_cast<double>(graph_spec.num_pages) * 1.0;
  EXPECT_NEAR(total_rank, expected, expected * 0.01);
}

TEST(Engine, HashGroupingMatchesSortedGrouping) {
  Fixture fx(20000);
  auto sorted_spec = make_job(apps::wordcount_app(), fx.splits,
                              fx.dir.file("s1"), fx.dir.file("o1"));
  auto hash_spec = make_job(apps::wordcount_app(), fx.splits,
                            fx.dir.file("s2"), fx.dir.file("o2"));
  hash_spec.grouping = mr::Grouping::kHash;
  mr::LocalEngine engine;
  EXPECT_EQ(read_outputs(engine.run(sorted_spec).outputs),
            read_outputs(engine.run(hash_spec).outputs));
}

TEST(Engine, FixedFormatMatchesVarintFormat) {
  Fixture fx(20000);
  auto varint_spec = make_job(apps::wordcount_app(), fx.splits,
                              fx.dir.file("s1"), fx.dir.file("o1"));
  auto fixed_spec = make_job(apps::wordcount_app(), fx.splits,
                             fx.dir.file("s2"), fx.dir.file("o2"));
  fixed_spec.spill_format = io::SpillFormat::kFixed32;
  mr::LocalEngine engine;
  EXPECT_EQ(read_outputs(engine.run(varint_spec).outputs),
            read_outputs(engine.run(fixed_spec).outputs));
}

TEST(Engine, ParallelWorkersMatchSerialExecution) {
  Fixture fx(40000);
  auto serial_spec = make_job(apps::wordcount_app(), fx.splits,
                              fx.dir.file("s1"), fx.dir.file("o1"));
  auto parallel_spec = make_job(apps::wordcount_app(), fx.splits,
                                fx.dir.file("s2"), fx.dir.file("o2"));
  parallel_spec.map_parallelism = 4;
  parallel_spec.reduce_parallelism = 3;
  mr::LocalEngine engine;
  EXPECT_EQ(read_outputs(engine.run(serial_spec).outputs),
            read_outputs(engine.run(parallel_spec).outputs));
}

TEST(Engine, ValidatesSpec) {
  mr::LocalEngine engine;
  mr::JobSpec spec;
  EXPECT_THROW(engine.run(spec), ConfigError);  // no inputs

  Fixture fx(1000);
  spec = test::make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                        fx.dir.file("o"));
  spec.num_reducers = 0;
  EXPECT_THROW(engine.run(spec), ConfigError);

  spec = test::make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                        fx.dir.file("o"));
  spec.spill_threshold = 1.5;
  EXPECT_THROW(engine.run(spec), ConfigError);

  spec = test::make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                        fx.dir.file("o"));
  spec.mapper = nullptr;
  EXPECT_THROW(engine.run(spec), ConfigError);
}

TEST(Engine, MetricsVolumesAreConsistent) {
  Fixture fx(30000);
  auto spec = make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                       fx.dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto& work = result.metrics.work;
  // Map output flows through the spill buffer (no freqbuf).
  EXPECT_EQ(work.spill_input_records, work.map_output_records);
  // Combining can only shrink.
  EXPECT_LE(work.spilled_records, work.spill_input_records);
  EXPECT_LE(work.merged_records, work.spilled_records);
  // Reduce input equals the merged map output.
  EXPECT_EQ(work.reduce_input_records, work.merged_records);
  // Each distinct word appears exactly once in the final output.
  EXPECT_EQ(work.output_records,
            test::reference_wordcount(fx.corpus.string()).size());
  // The serialized view is nonzero and dominated by measured ops.
  EXPECT_GT(work.total_ns(), 0u);
}

TEST(Engine, IntermediateFilesAreCleanedUp) {
  Fixture fx(5000);
  auto spec = make_job(apps::wordcount_app(), fx.splits, fx.dir.file("s"),
                       fx.dir.file("o"));
  mr::LocalEngine engine;
  engine.run(spec);
  std::size_t leftover = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(fx.dir.file("s"))) {
    (void)entry;
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u);
}

}  // namespace
}  // namespace textmr
