#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "mr/spill_buffer.hpp"

namespace textmr::mr {
namespace {

struct Collected {
  std::vector<std::pair<std::string, std::string>> records;
  std::uint64_t spills = 0;
};

/// Drains the buffer on a consumer thread, copying out all records.
Collected drain(SpillBuffer& buffer, std::uint64_t consume_delay_us = 0) {
  Collected out;
  while (auto spill = buffer.take()) {
    for (const auto& ref : spill->records) {
      out.records.emplace_back(std::string(ref.key()),
                               std::string(ref.value()));
    }
    if (consume_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(consume_delay_us));
    }
    out.spills += 1;
    buffer.release(*spill, /*consume_ns=*/consume_delay_us * 1000);
  }
  return out;
}

TEST(SpillBuffer, DeliversAllRecordsInOrder) {
  SpillBuffer buffer(1 << 16, 0.8);
  Collected out;
  std::thread consumer([&] { out = drain(buffer); });
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    buffer.put(0, "key" + std::to_string(i), "value" + std::to_string(i));
  }
  buffer.close();
  consumer.join();
  ASSERT_EQ(out.records.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(out.records[i].first, "key" + std::to_string(i));
    EXPECT_EQ(out.records[i].second, "value" + std::to_string(i));
  }
  EXPECT_GT(out.spills, 1u);  // buffer far smaller than the data
}

// The two wait-accounting tests used to model slowness with real
// sleeps, which made them both slow and timing-sensitive. They now
// inject a common::ManualClock (the SpillBuffer's measured waits read
// the injected clock) and advance it only while the opposite side is
// provably parked — the producer_waiting()/consumer_waiting() seam — so
// the asserted wait durations are exact, not best-effort lower bounds.

TEST(SpillBuffer, SlowConsumerForcesProducerWait) {
  common::ManualClock clock;
  SpillBuffer buffer(8 * 1024, 0.5, /*max_outstanding=*/1,
                     io::SpillFormat::kCompactVarint, /*trace=*/nullptr,
                     &clock);
  constexpr std::uint64_t kConsumeNs = 2'000'000;  // 2 ms per spill
  Collected out;
  std::atomic<bool> producer_done{false};
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      // Hold the spill until the producer is parked on ring space (it
      // must park: the data is several times the ring capacity), then
      // charge the modelled consume time to the fake clock while the
      // producer's wait measurement brackets it.
      while (!buffer.producer_waiting() && !producer_done.load()) {
        std::this_thread::yield();
      }
      clock.advance_ns(kConsumeNs);
      for (const auto& ref : spill->records) {
        out.records.emplace_back(std::string(ref.key()),
                                 std::string(ref.value()));
      }
      out.spills += 1;
      buffer.release(*spill, kConsumeNs);
    }
  });
  for (int i = 0; i < 2000; ++i) {
    buffer.put(0, "k" + std::to_string(i), std::string(64, 'v'));
  }
  buffer.close();
  producer_done.store(true);
  consumer.join();
  EXPECT_EQ(out.records.size(), 2000u);
  EXPECT_GT(out.spills, 1u);
  // Every advance happened while the producer was inside its measured
  // wait, so at least one full consume interval is attributed to it.
  EXPECT_GE(buffer.producer_wait_ns(), kConsumeNs);
}

TEST(SpillBuffer, SlowProducerForcesConsumerWait) {
  common::ManualClock clock;
  SpillBuffer buffer(1 << 16, 0.1, /*max_outstanding=*/1,
                     io::SpillFormat::kCompactVarint, /*trace=*/nullptr,
                     &clock);
  constexpr std::uint64_t kProduceGapNs = 3'000'000;  // 3 ms of map work
  Collected out;
  std::thread consumer([&] { out = drain(buffer); });
  // The consumer calls take() with nothing sealed and parks; the fake
  // clock advances only during that window, so the whole advance lands
  // in consumer_wait_ns.
  while (!buffer.consumer_waiting()) {
    std::this_thread::yield();
  }
  clock.advance_ns(kProduceGapNs);
  for (int i = 0; i < 50; ++i) {
    buffer.put(0, "k", "v");
  }
  buffer.close();
  consumer.join();
  EXPECT_EQ(out.records.size(), 50u);
  EXPECT_GE(buffer.consumer_wait_ns(), kProduceGapNs);
}

TEST(SpillBuffer, RecordsLargerThanTailGapWrapCorrectly) {
  // Capacity chosen so records straddle the wrap point repeatedly.
  SpillBuffer buffer(4096, 0.5);
  Collected out;
  std::thread consumer([&] { out = drain(buffer); });
  Xoshiro256 rng(3);
  std::vector<std::pair<std::string, std::string>> expected;
  for (int i = 0; i < 500; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string value(100 + rng.next_below(700), static_cast<char>('a' + i % 26));
    expected.emplace_back(key, value);
    buffer.put(0, key, value);
  }
  buffer.close();
  consumer.join();
  EXPECT_EQ(out.records, expected);
}

TEST(SpillBuffer, RejectsOversizedRecord) {
  SpillBuffer buffer(2048, 0.8);
  EXPECT_THROW(buffer.put(0, "k", std::string(4096, 'x')), ConfigError);
  buffer.close();
  EXPECT_FALSE(buffer.take().has_value());
}

TEST(SpillBuffer, RecordAlmostAsBigAsBufferSucceeds) {
  SpillBuffer buffer(2048, 0.8);
  Collected out;
  std::thread consumer([&] { out = drain(buffer); });
  // Each record occupies most of the buffer: forces seal-on-full every put.
  for (int i = 0; i < 20; ++i) {
    buffer.put(0, "k", std::string(1800, 'y'));
  }
  buffer.close();
  consumer.join();
  EXPECT_EQ(out.records.size(), 20u);
}

TEST(SpillBuffer, CloseWithoutRecordsDeliversEndOfStream) {
  SpillBuffer buffer(4096, 0.8);
  buffer.close();
  EXPECT_FALSE(buffer.take().has_value());
}

TEST(SpillBuffer, FinalSpillIsFlagged) {
  SpillBuffer buffer(1 << 20, 0.99);  // big: nothing seals early
  buffer.put(0, "a", "1");
  buffer.put(1, "b", "2");
  buffer.close();
  auto spill = buffer.take();
  ASSERT_TRUE(spill.has_value());
  EXPECT_TRUE(spill->is_final);
  EXPECT_EQ(spill->records.size(), 2u);
  buffer.release(*spill, 10);
  EXPECT_FALSE(buffer.take().has_value());
}

TEST(SpillBuffer, ThresholdControlsSpillSize) {
  // With threshold 0.25 of 64 KiB and an idle consumer, spills seal near
  // 16 KiB of payload.
  SpillBuffer buffer(1 << 16, 0.25);
  std::vector<std::uint64_t> spill_sizes;
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      spill_sizes.push_back(spill->data_bytes);
      buffer.release(*spill, 1);
    }
  });
  const std::string value(100, 'v');
  for (int i = 0; i < 3000; ++i) buffer.put(0, "key", value);
  buffer.close();
  consumer.join();
  ASSERT_GE(spill_sizes.size(), 3u);
  // All but the final spill should be within ~one record of the target.
  // data_bytes is payload, but the seal trigger counts framed ring bytes
  // (~3 bytes/record of varint header here), so payload undershoots the
  // 16 KiB target by up to framing-share + one record: 16384 * 3/106 +
  // 106 ≈ 570.
  for (std::size_t i = 0; i + 1 < spill_sizes.size(); ++i) {
    EXPECT_GE(spill_sizes[i], (1u << 14) - 600);
  }
}

TEST(SpillBuffer, TimingIsReportedPerSpill) {
  SpillBuffer buffer(1 << 16, 0.5);
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      buffer.release(*spill, /*consume_ns=*/12345);
    }
  });
  for (int i = 0; i < 2000; ++i) buffer.put(0, "key", "value");
  buffer.close();
  consumer.join();
  const auto timing = buffer.last_timing();
  ASSERT_TRUE(timing.has_value());
  EXPECT_EQ(timing->consume_ns, 12345u);
  EXPECT_GT(timing->data_bytes, 0u);
}

TEST(SpillBuffer, SequenceNumbersAreConsecutive) {
  SpillBuffer buffer(8192, 0.3);
  std::vector<std::uint64_t> sequences;
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      sequences.push_back(spill->sequence);
      buffer.release(*spill, 1);
    }
  });
  for (int i = 0; i < 2000; ++i) buffer.put(0, "key", "somevalue");
  buffer.close();
  consumer.join();
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], i);
  }
}

TEST(SpillBuffer, PartitionTagsSurvive) {
  SpillBuffer buffer(1 << 16, 0.9);
  std::vector<std::uint32_t> partitions;
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      for (const auto& ref : spill->records) partitions.push_back(ref.partition);
      buffer.release(*spill, 1);
    }
  });
  for (std::uint32_t i = 0; i < 100; ++i) buffer.put(i % 7, "k", "v");
  buffer.close();
  consumer.join();
  ASSERT_EQ(partitions.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(partitions[i], i % 7);
}

TEST(SpillBuffer, StressRandomSizesAllDelivered) {
  SpillBuffer buffer(1 << 15, 0.6);
  std::uint64_t checksum_in = 0;
  std::uint64_t count_in = 0;
  std::uint64_t checksum_out = 0;
  std::uint64_t count_out = 0;
  std::thread consumer([&] {
    while (auto spill = buffer.take()) {
      for (const auto& ref : spill->records) {
        checksum_out += ref.key().size() + 31 * ref.value().size();
        ++count_out;
      }
      buffer.release(*spill, 1);
    }
  });
  Xoshiro256 rng(42);
  for (int i = 0; i < 30000; ++i) {
    const std::string key(1 + rng.next_below(40), 'k');
    const std::string value(rng.next_below(200), 'v');
    checksum_in += key.size() + 31 * value.size();
    ++count_in;
    buffer.put(static_cast<std::uint32_t>(rng.next_below(4)), key, value);
  }
  buffer.close();
  consumer.join();
  EXPECT_EQ(count_out, count_in);
  EXPECT_EQ(checksum_out, checksum_in);
}

}  // namespace
}  // namespace textmr::mr
