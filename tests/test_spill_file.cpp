#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "io/spill_file.hpp"

namespace textmr::io {
namespace {

struct Rec {
  std::uint32_t partition;
  std::string key;
  std::string value;
};

class SpillFileFormatTest : public ::testing::TestWithParam<SpillFormat> {};

TEST_P(SpillFileFormatTest, RoundTripsMultiplePartitions) {
  TempDir dir;
  const auto path = dir.file("run").string();
  const std::vector<Rec> records = {
      {0, "apple", "1"}, {0, "banana", "22"}, {1, "car", ""},
      {2, "dog", "value with spaces"}, {2, "dog", "another"},
  };
  SpillRunWriter writer(path, 3, GetParam());
  for (const auto& r : records) writer.append(r.partition, r.key, r.value);
  const auto info = writer.finish();
  EXPECT_EQ(info.records, records.size());
  EXPECT_EQ(info.partitions.size(), 3u);
  EXPECT_EQ(info.partitions[0].records, 2u);
  EXPECT_EQ(info.partitions[1].records, 1u);
  EXPECT_EQ(info.partitions[2].records, 2u);

  SpillRunReader reader(path, GetParam());
  ASSERT_EQ(reader.num_partitions(), 3u);
  for (std::uint32_t p = 0; p < 3; ++p) {
    auto cursor = reader.open(p);
    for (const auto& r : records) {
      if (r.partition != p) continue;
      auto got = cursor.next();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->key, r.key);
      EXPECT_EQ(got->value, r.value);
    }
    EXPECT_FALSE(cursor.next().has_value());
  }
}

TEST_P(SpillFileFormatTest, EmptyPartitionsAreReadable) {
  TempDir dir;
  const auto path = dir.file("run").string();
  SpillRunWriter writer(path, 4, GetParam());
  writer.append(2, "only", "record");
  writer.finish();

  SpillRunReader reader(path, GetParam());
  for (const std::uint32_t p : {0u, 1u, 3u}) {
    auto cursor = reader.open(p);
    EXPECT_FALSE(cursor.next().has_value()) << p;
  }
  auto cursor = reader.open(2);
  EXPECT_TRUE(cursor.next().has_value());
}

TEST_P(SpillFileFormatTest, CompletelyEmptyRun) {
  TempDir dir;
  const auto path = dir.file("run").string();
  SpillRunWriter writer(path, 2, GetParam());
  const auto info = writer.finish();
  EXPECT_EQ(info.records, 0u);
  SpillRunReader reader(path, GetParam());
  EXPECT_FALSE(reader.open(0).next().has_value());
  EXPECT_FALSE(reader.open(1).next().has_value());
}

TEST_P(SpillFileFormatTest, LargeValuesCrossReadChunks) {
  TempDir dir;
  const auto path = dir.file("run").string();
  Xoshiro256 rng(3);
  std::vector<Rec> records;
  for (int i = 0; i < 50; ++i) {
    std::string value(1 << 15, static_cast<char>('a' + (i % 26)));
    records.push_back({0, "key" + std::to_string(i), std::move(value)});
  }
  SpillRunWriter writer(path, 1, GetParam());
  for (const auto& r : records) writer.append(r.partition, r.key, r.value);
  writer.finish();

  SpillRunReader reader(path, GetParam());
  auto cursor = reader.open(0);
  for (const auto& r : records) {
    auto got = cursor.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->key, r.key);
    EXPECT_EQ(got->value, r.value);
  }
  EXPECT_FALSE(cursor.next().has_value());
}

TEST_P(SpillFileFormatTest, BinaryKeysAndValuesSurvive) {
  TempDir dir;
  const auto path = dir.file("run").string();
  const std::string key("k\0ey\xff", 5);
  const std::string value("\x00\x80\xff", 3);
  SpillRunWriter writer(path, 1, GetParam());
  writer.append(0, key, value);
  writer.finish();
  SpillRunReader reader(path, GetParam());
  auto cursor = reader.open(0);
  auto got = cursor.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->key, key);
  EXPECT_EQ(got->value, value);
}

INSTANTIATE_TEST_SUITE_P(Formats, SpillFileFormatTest,
                         ::testing::Values(SpillFormat::kCompactVarint,
                                           SpillFormat::kFixed32));

TEST(SpillFile, RejectsDecreasingPartitionOrder) {
  TempDir dir;
  SpillRunWriter writer(dir.file("run").string(), 3);
  writer.append(2, "a", "b");
  EXPECT_THROW(writer.append(1, "c", "d"), InternalError);
}

TEST(SpillFile, MultipleConcurrentCursorsOnOneRun) {
  TempDir dir;
  const auto path = dir.file("run").string();
  SpillRunWriter writer(path, 1);
  for (int i = 0; i < 100; ++i) {
    writer.append(0, "k" + std::to_string(i), "v");
  }
  writer.finish();
  SpillRunReader reader(path);
  auto c1 = reader.open(0);
  auto c2 = reader.open(0);
  // Interleave: both cursors see the full stream independently.
  for (int i = 0; i < 100; ++i) {
    auto r1 = c1.next();
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->key, "k" + std::to_string(i));
    if (i % 2 == 0) {
      auto r2 = c2.next();
      ASSERT_TRUE(r2.has_value());
      EXPECT_EQ(r2->key, "k" + std::to_string(i / 2));
    }
  }
}

TEST(SpillFile, ReaderRejectsCorruptMagic) {
  TempDir dir;
  const auto path = dir.file("bad").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[64] = {0};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(SpillRunReader reader(path), FormatError);
}

TEST(SpillFile, ReaderRejectsTinyFile) {
  TempDir dir;
  const auto path = dir.file("tiny").string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fwrite("abc", 1, 3, f);
  std::fclose(f);
  EXPECT_THROW(SpillRunReader reader(path), FormatError);
}

TEST(EncodedRecordSize, MatchesActualEncoding) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::size_t klen = rng.next_below(300);
    const std::size_t vlen = rng.next_below(5000);
    const std::string key(klen, 'k');
    const std::string value(vlen, 'v');
    for (const auto format :
         {SpillFormat::kCompactVarint, SpillFormat::kFixed32}) {
      std::string out;
      encode_record(out, key, value, format);
      EXPECT_EQ(out.size(), encoded_record_size(klen, vlen, format));
    }
  }
}

TEST(SpillFile, InfoByteCountsAreConsistent) {
  TempDir dir;
  const auto path = dir.file("run").string();
  SpillRunWriter writer(path, 2);
  std::uint64_t expected_bytes = 0;
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t p = i < 200 ? 0 : 1;
    const std::string key = "key" + std::to_string(i);
    const std::string value(static_cast<std::size_t>(i % 50), 'x');
    writer.append(p, key, value);
    expected_bytes += encoded_record_size(key.size(), value.size(),
                                          SpillFormat::kCompactVarint);
  }
  const auto info = writer.finish();
  EXPECT_EQ(info.bytes, expected_bytes);
  EXPECT_EQ(info.partitions[0].bytes + info.partitions[1].bytes,
            expected_bytes);
  // Extents must tile the record stream.
  EXPECT_EQ(info.partitions[0].offset, 0u);
  EXPECT_EQ(info.partitions[1].offset, info.partitions[0].bytes);
}

}  // namespace
}  // namespace textmr::io
