#include <gtest/gtest.h>

// Task retry / recovery battery (DESIGN.md §6): every failpoint site,
// injected on the first attempt, must leave the job output byte-identical
// to an uninjected run, with no orphaned scratch files and the recovery
// counters reporting the retry. Exhausted retries must surface a clean
// TaskFailedError without hanging any worker or support thread.

#include <atomic>
#include <fstream>
#include <memory>

#include "common/failpoint.hpp"
#include "helpers.hpp"
#include "mr/report.hpp"

namespace textmr {
namespace {

namespace fp = textmr::failpoint;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  return contents;
}

std::vector<std::string> directory_entries(const std::filesystem::path& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    names.push_back(entry.path().filename().string());
  }
  return names;
}

class TaskRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fp::disarm_all();
    textgen::CorpusSpec corpus_spec;
    corpus_spec.total_words = 20000;
    corpus_spec.vocabulary = 600;
    corpus_spec.seed = 99;
    corpus_ = dir_.file("corpus.txt");
    textgen::generate_corpus(corpus_spec, corpus_.string());
    splits_ = io::make_splits(corpus_.string(), 32 * 1024);
    ASSERT_GE(splits_.size(), 2u);
  }
  void TearDown() override { fp::disarm_all(); }

  /// The acceptance-criteria job: wordcount with frequency buffering and
  /// the spill matcher on, so every failpoint site is actually reached.
  mr::JobSpec make_spec(const std::string& tag) {
    auto spec = test::make_job(apps::wordcount_app(), splits_,
                               dir_.file("s_" + tag), dir_.file("o_" + tag));
    spec.spill_buffer_bytes = 32 * 1024;  // several spills per task
    spec.use_spill_matcher = true;
    spec.freqbuf.enabled = true;
    spec.freqbuf.top_k = 40;
    spec.retry_backoff_base_ms = 0;  // keep the battery fast
    return spec;
  }

  TempDir dir_;
  std::filesystem::path corpus_;
  std::vector<io::InputSplit> splits_;
};

TEST_F(TaskRetryTest, EverySiteRecoversWithByteIdenticalOutput) {
  mr::LocalEngine engine;
  const auto clean_spec = make_spec("clean");
  const auto clean = engine.run(clean_spec);
  std::vector<std::string> clean_parts;
  for (const auto& part : clean.outputs) {
    clean_parts.push_back(read_file(part));
  }
  EXPECT_EQ(clean.metrics.tasks_retried, 0u);
  EXPECT_EQ(clean.metrics.task_attempts,
            clean.metrics.map_tasks + clean.metrics.reduce_tasks);

  const char* kSites[] = {"spill.write",  "spill.read",
                          "dfs.open",     "map.user_code",
                          "reduce.output_rename", "support.sort"};
  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    const auto spec = make_spec(site);
    fp::ScopedFailpoints guard(std::string(site) + ":nth=1");
    const auto result = engine.run(spec);

    EXPECT_GE(result.metrics.tasks_retried, 1u);
    EXPECT_GT(result.metrics.task_attempts,
              result.metrics.map_tasks + result.metrics.reduce_tasks);
    ASSERT_EQ(result.outputs.size(), clean.outputs.size());
    for (std::size_t i = 0; i < result.outputs.size(); ++i) {
      EXPECT_EQ(read_file(result.outputs[i]), clean_parts[i])
          << result.outputs[i];
    }
    // Recovery must not leak attempt files: scratch is empty and the
    // output directory holds only the final part files.
    EXPECT_TRUE(directory_entries(spec.scratch_dir).empty())
        << spec.scratch_dir;
    EXPECT_EQ(directory_entries(spec.output_dir).size(),
              result.outputs.size());
    for (const auto& name : directory_entries(spec.output_dir)) {
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    }
  }
}

TEST_F(TaskRetryTest, ExhaustedAttemptsFailCleanlyOnTheSpillPath) {
  auto spec = make_spec("exhaust_spill");
  spec.max_task_attempts = 2;
  fp::ScopedFailpoints guard("spill.write:always");
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), TaskFailedError);
  // Every dead attempt was cleaned up, and reaching this line at all
  // proves no worker or support thread was left hanging.
  EXPECT_TRUE(directory_entries(spec.scratch_dir).empty());
}

TEST_F(TaskRetryTest, ExhaustedAttemptsFailCleanlyOnTheSupportThread) {
  auto spec = make_spec("exhaust_sort");
  spec.max_task_attempts = 2;
  fp::ScopedFailpoints guard("support.sort:always");
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), TaskFailedError);
  EXPECT_TRUE(directory_entries(spec.scratch_dir).empty());
}

TEST_F(TaskRetryTest, ExhaustionReportsTheSiteAndAttemptCount) {
  auto spec = make_spec("exhaust_msg");
  spec.max_task_attempts = 3;
  fp::ScopedFailpoints guard("map.user_code:always");
  mr::LocalEngine engine;
  try {
    engine.run(spec);
    FAIL() << "job did not fail";
  } catch (const TaskFailedError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("3 attempts"), std::string::npos) << what;
    EXPECT_NE(what.find("map.user_code"), std::string::npos) << what;
  }
}

TEST_F(TaskRetryTest, MaxAttemptsOneFailsFast) {
  auto spec = make_spec("fail_fast");
  spec.max_task_attempts = 1;
  fp::ScopedFailpoints guard("spill.write:nth=1");
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), TaskFailedError);
}

TEST_F(TaskRetryTest, ZeroMaxAttemptsIsRejected) {
  auto spec = make_spec("bad_spec");
  spec.max_task_attempts = 0;
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), ConfigError);
}

TEST_F(TaskRetryTest, RetryCountersAppearInMetricsJsonAndReport) {
  auto spec = make_spec("metrics");
  fp::ScopedFailpoints guard("spill.write:nth=1");
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  ASSERT_GE(result.metrics.tasks_retried, 1u);

  const auto json = mr::format_job_metrics_json(result, spec.name);
  EXPECT_NE(json.find("\"tasks_retried\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"task_attempts\""), std::string::npos);

  const auto report = mr::format_job_report(result, spec.name);
  EXPECT_NE(report.find("recovery:"), std::string::npos) << report;
}

TEST_F(TaskRetryTest, RetriesEmitTraceEvents) {
  auto spec = make_spec("trace");
  spec.trace.enabled = true;
  fp::ScopedFailpoints guard("map.user_code:nth=1");
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  ASSERT_GE(result.metrics.tasks_retried, 1u);
  EXPECT_EQ(obs::count_events(result.trace, "task_retry"),
            result.metrics.task_attempts -
                (result.metrics.map_tasks + result.metrics.reduce_tasks));
}

/// Wraps another mapper and throws IoError on the first map() call of
/// task 0, exactly once per test (shared flag across instances).
class FailTask0Once final : public mr::Mapper {
 public:
  FailTask0Once(std::unique_ptr<mr::Mapper> inner,
                std::shared_ptr<std::atomic<bool>> failed)
      : inner_(std::move(inner)), failed_(std::move(failed)) {}

  void begin_task(const mr::TaskInfo& info) override {
    task_id_ = info.task_id;
    inner_->begin_task(info);
  }

  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override {
    if (task_id_ == 0 && !failed_->exchange(true)) {
      throw IoError("simulated transient map failure");
    }
    inner_->map(offset, line, out);
  }

 private:
  std::unique_ptr<mr::Mapper> inner_;
  std::shared_ptr<std::atomic<bool>> failed_;
  std::uint32_t task_id_ = 0;
};

/// Regression for the worker-drain bug: with 2 workers and 4+ tasks where
/// task 0 fails transiently, the worker that hit the failure must keep
/// claiming queue entries — previously it returned on first error, so
/// half the task queue went unprocessed whenever any retry happened.
TEST_F(TaskRetryTest, WorkersKeepDrainingTheQueueAfterATransientFailure) {
  const auto small_splits = io::make_splits(
      corpus_.string(),
      std::filesystem::file_size(corpus_) / 4 + 1);
  ASSERT_GE(small_splits.size(), 4u);

  const auto app = apps::wordcount_app();
  auto failed = std::make_shared<std::atomic<bool>>(false);
  auto spec = test::make_job(app, small_splits, dir_.file("s_drain"),
                             dir_.file("o_drain"));
  spec.mapper = [inner = app.mapper, failed] {
    return std::make_unique<FailTask0Once>(inner(), failed);
  };
  spec.map_parallelism = 2;
  spec.retry_backoff_base_ms = 0;

  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  EXPECT_EQ(result.metrics.map_tasks, small_splits.size());
  EXPECT_EQ(result.metrics.tasks_retried, 1u);
  EXPECT_EQ(result.metrics.task_attempts,
            small_splits.size() + 1 + result.metrics.reduce_tasks);

  const auto expected = test::reference_wordcount(corpus_.string());
  const auto actual = test::read_outputs(result.outputs);
  ASSERT_EQ(actual.size(), expected.size());
  for (const auto& [word, count] : expected) {
    ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
  }
}

/// Contract violations (InternalError) are not retried: the original
/// typed error must reach the caller unwrapped after a single attempt.
TEST_F(TaskRetryTest, NonRetryableErrorsPropagateImmediately) {
  auto spec = make_spec("nonretry");
  // A combiner that emits under the wrong key trips the engine's
  // key-preservation check, an InternalError.
  spec.combiner = [] {
    return std::make_unique<mr::LambdaReducer>(
        [](std::string_view, mr::ValueStream& values, mr::EmitSink& out) {
          while (values.next()) {
          }
          out.emit("hijacked", "1");
        });
  };
  mr::LocalEngine engine;
  try {
    engine.run(spec);
    FAIL() << "job did not fail";
  } catch (const InternalError&) {
    // expected: not wrapped in TaskFailedError, not retried
  }
}

}  // namespace
}  // namespace textmr
