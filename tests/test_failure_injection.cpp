#include <gtest/gtest.h>

// Failure-injection tests: user-code exceptions, pipeline aborts, and
// malformed data must surface as clean errors without hangs, leaks of
// blocked threads, or partial-output confusion.

#include <atomic>
#include <thread>

#include "helpers.hpp"

namespace textmr {
namespace {

class ThrowAfterN final : public mr::Mapper {
 public:
  explicit ThrowAfterN(std::uint64_t n) : n_(n) {}
  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override {
    if (offset >= n_) throw std::runtime_error("injected map failure");
    std::string scratch;
    apps::for_each_token(line, scratch, [&](std::string_view token) {
      std::string value;
      put_varint(value, 1);
      out.emit(token, value);
    });
  }

 private:
  std::uint64_t n_;
};

struct FailFixture {
  TempDir dir;
  std::filesystem::path corpus;
  std::vector<io::InputSplit> splits;

  FailFixture() {
    textgen::CorpusSpec spec;
    spec.total_words = 20000;
    spec.vocabulary = 500;
    corpus = dir.file("corpus.txt");
    textgen::generate_corpus(spec, corpus.string());
    splits = io::make_splits(corpus.string(), 1 << 20);
  }
};

TEST(FailureInjection, MapFailureAfterManySpillsDoesNotHang) {
  FailFixture fx;
  mr::JobSpec spec = test::make_job(apps::wordcount_app(), fx.splits,
                                    fx.dir.file("s"), fx.dir.file("o"));
  spec.spill_buffer_bytes = 8 * 1024;  // many in-flight spills before failure
  spec.mapper = [] { return std::make_unique<ThrowAfterN>(500); };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), std::runtime_error);
}

TEST(FailureInjection, MapFailureOnFirstRecord) {
  FailFixture fx;
  mr::JobSpec spec = test::make_job(apps::wordcount_app(), fx.splits,
                                    fx.dir.file("s"), fx.dir.file("o"));
  spec.mapper = [] { return std::make_unique<ThrowAfterN>(0); };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), std::runtime_error);
}

TEST(FailureInjection, CombinerFailureSurfacesFromSupportThread) {
  FailFixture fx;
  mr::JobSpec spec = test::make_job(apps::wordcount_app(), fx.splits,
                                    fx.dir.file("s"), fx.dir.file("o"));
  spec.spill_buffer_bytes = 8 * 1024;
  std::atomic<int> calls{0};
  spec.combiner = [&calls] {
    return std::make_unique<mr::LambdaReducer>(
        [&calls](std::string_view key, mr::ValueStream& values,
                 mr::EmitSink& out) {
          if (calls.fetch_add(1) > 50) {
            throw std::runtime_error("injected combine failure");
          }
          std::uint64_t total = 0;
          while (auto v = values.next()) {
            std::size_t pos = 0;
            total += get_varint(*v, pos);
          }
          std::string value;
          put_varint(value, total);
          out.emit(key, value);
        });
  };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), std::runtime_error);
}

TEST(FailureInjection, FreqBufCombinerFailurePropagates) {
  FailFixture fx;
  mr::JobSpec spec = test::make_job(apps::wordcount_app(), fx.splits,
                                    fx.dir.file("s"), fx.dir.file("o"));
  spec.freqbuf.enabled = true;
  spec.freqbuf.top_k = 20;
  spec.freqbuf.sampling_fraction = 0.02;
  spec.freqbuf.per_key_limit_bytes = 8;  // force combine calls in the table
  std::atomic<int> calls{0};
  spec.combiner = [&calls] {
    return std::make_unique<mr::LambdaReducer>(
        [&calls](std::string_view key, mr::ValueStream& values,
                 mr::EmitSink& out) {
          if (calls.fetch_add(1) > 20) {
            throw std::runtime_error("injected table-combine failure");
          }
          std::uint64_t total = 0;
          while (auto v = values.next()) {
            std::size_t pos = 0;
            total += get_varint(*v, pos);
          }
          std::string value;
          put_varint(value, total);
          out.emit(key, value);
        });
  };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), std::runtime_error);
}

TEST(FailureInjection, NonKeyPreservingCombinerIsRejected) {
  FailFixture fx;
  mr::JobSpec spec = test::make_job(apps::wordcount_app(), fx.splits,
                                    fx.dir.file("s"), fx.dir.file("o"));
  spec.combiner = [] {
    return std::make_unique<mr::LambdaReducer>(
        [](std::string_view, mr::ValueStream& values, mr::EmitSink& out) {
          while (values.next()) {
          }
          out.emit("WRONG_KEY", "v");  // violates the contract
        });
  };
  mr::LocalEngine engine;
  EXPECT_THROW(engine.run(spec), InternalError);
}

TEST(FailureInjection, SpillBufferAbortUnblocksProducer) {
  mr::SpillBuffer buffer(8 * 1024, 0.5);
  std::thread producer([&] {
    EXPECT_THROW(
        {
          for (int i = 0; i < 100000; ++i) {
            buffer.put(0, "key", std::string(64, 'v'));
          }
        },
        InternalError);
  });
  // Let the producer fill the buffer and block, then abort.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  buffer.abort();
  producer.join();
  EXPECT_FALSE(buffer.take().has_value());
}

TEST(FailureInjection, SpillBufferAbortUnblocksConsumer) {
  mr::SpillBuffer buffer(8 * 1024, 0.5);
  std::thread consumer([&] { EXPECT_FALSE(buffer.take().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  buffer.abort();
  consumer.join();
}

TEST(FailureInjection, MalformedLogLinesAreSkippedNotFatal) {
  TempDir dir;
  const auto path = dir.file("mixed.log");
  {
    std::ofstream out(path);
    out << "1.2.3.4|http://ok.com|2008-1-1|5.00|ua|US|en|q|10\n";
    out << "garbage line with no separators\n";
    out << "a|b\n";
    out << "ip|url|date|NOTANUMBER|ua|cc|ll|sw|1\n";
    out << "5.6.7.8|http://ok2.com|2008-1-1|2.50|ua|US|en|q|10\n";
  }
  auto spec = test::make_job(apps::access_log_sum_app(),
                             io::make_splits(path.string(), 1 << 20),
                             dir.file("s"), dir.file("o"), 1);
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto outputs = test::read_outputs(result.outputs);
  EXPECT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs.at("http://ok.com"), "5.00");
  EXPECT_EQ(outputs.at("http://ok2.com"), "2.50");
}

TEST(FailureInjection, TruncatedRunFileIsDetected) {
  TempDir dir;
  const auto path = dir.file("run").string();
  {
    io::SpillRunWriter writer(path, 1);
    for (int i = 0; i < 100; ++i) {
      writer.append(0, "key" + std::to_string(i), std::string(100, 'v'));
    }
    writer.finish();
  }
  // Truncate in the middle of the record stream (footer lost).
  std::filesystem::resize_file(path, 500);
  EXPECT_THROW(io::SpillRunReader reader(path), FormatError);
}

TEST(FailureInjection, ReduceTaskMissingMapOutputThrows) {
  TempDir dir;
  mr::ReduceTaskConfig config;
  config.partition = 0;
  config.map_outputs.push_back(
      io::SpillRunInfo{(dir.path() / "missing.run").string(), 0, 0,
                       {io::PartitionExtent{0, 10, 1}}});
  config.reducer = [] { return std::make_unique<apps::WordCountReducer>(); };
  config.output_path = dir.file("part");
  EXPECT_THROW(run_reduce_task(config), IoError);
}

}  // namespace
}  // namespace textmr
