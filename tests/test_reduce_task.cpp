#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "common/tempdir.hpp"
#include "common/varint.hpp"
#include "apps/wordcount.hpp"
#include "mr/reduce_task.hpp"

namespace textmr::mr {
namespace {

std::string varint_value(std::uint64_t v) {
  std::string out;
  put_varint(out, v);
  return out;
}

io::SpillRunInfo write_map_output(
    const std::filesystem::path& path, std::uint32_t partitions,
    const std::vector<std::tuple<std::uint32_t, std::string, std::uint64_t>>&
        records) {
  io::SpillRunWriter writer(path.string(), partitions);
  for (const auto& [p, key, count] : records) {
    writer.append(p, key, varint_value(count));
  }
  return writer.finish();
}

std::map<std::string, std::string> read_part(
    const std::filesystem::path& path) {
  std::map<std::string, std::string> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto tab = line.find('\t');
    out.emplace(line.substr(0, tab), line.substr(tab + 1));
  }
  return out;
}

ReduceTaskConfig base_config(const TempDir& dir,
                             std::vector<io::SpillRunInfo> map_outputs,
                             std::uint32_t partition = 0) {
  ReduceTaskConfig config;
  config.partition = partition;
  config.map_outputs = std::move(map_outputs);
  config.reducer = [] { return std::make_unique<apps::WordCountReducer>(); };
  config.output_path = dir.file("part-r-00000");
  return config;
}

TEST(ReduceTask, MergesAcrossMapOutputsAndSums) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(dir.file("m0"), 2,
                                     {{0, "apple", 2}, {0, "cherry", 1}}));
  outputs.push_back(write_map_output(dir.file("m1"), 2,
                                     {{0, "apple", 3}, {0, "banana", 7}}));
  const auto result = run_reduce_task(base_config(dir, outputs));
  const auto part = read_part(result.output_path);
  EXPECT_EQ(part.size(), 3u);
  EXPECT_EQ(part.at("apple"), "5");
  EXPECT_EQ(part.at("banana"), "7");
  EXPECT_EQ(part.at("cherry"), "1");
}

TEST(ReduceTask, OnlyRequestedPartitionIsRead) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(dir.file("m0"), 2,
                                     {{0, "p0key", 1}, {1, "p1key", 2}}));
  const auto result = run_reduce_task(base_config(dir, outputs, 1));
  const auto part = read_part(result.output_path);
  EXPECT_EQ(part.size(), 1u);
  EXPECT_EQ(part.at("p1key"), "2");
}

TEST(ReduceTask, OutputIsKeySorted) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(
      dir.file("m0"), 1, {{0, "a", 1}, {0, "m", 1}, {0, "z", 1}}));
  outputs.push_back(write_map_output(dir.file("m1"), 1,
                                     {{0, "b", 1}, {0, "n", 1}}));
  const auto result = run_reduce_task(base_config(dir, outputs));
  std::ifstream in(result.output_path);
  std::string line;
  std::string previous;
  while (std::getline(in, line)) {
    const std::string key = line.substr(0, line.find('\t'));
    EXPECT_LT(previous, key);
    previous = key;
  }
}

TEST(ReduceTask, HashGroupingProducesSameAggregates) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(
      dir.file("m0"), 1, {{0, "x", 1}, {0, "y", 2}, {0, "z", 3}}));
  outputs.push_back(write_map_output(dir.file("m1"), 1, {{0, "x", 10}}));

  auto sorted_config = base_config(dir, outputs);
  const auto sorted = run_reduce_task(sorted_config);

  auto hash_config = base_config(dir, outputs);
  hash_config.grouping = Grouping::kHash;
  hash_config.output_path = dir.file("part-hash");
  const auto hashed = run_reduce_task(hash_config);

  EXPECT_EQ(read_part(sorted.output_path), read_part(hashed.output_path));
}

TEST(ReduceTask, EmptyPartitionYieldsEmptyFile) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(dir.file("m0"), 2, {{1, "k", 1}}));
  const auto result = run_reduce_task(base_config(dir, outputs, 0));
  EXPECT_TRUE(read_part(result.output_path).empty());
  EXPECT_TRUE(std::filesystem::exists(result.output_path));
}

TEST(ReduceTask, MetricsCountShuffleAndGroups) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(
      dir.file("m0"), 1, {{0, "a", 1}, {0, "b", 1}, {0, "c", 1}}));
  outputs.push_back(write_map_output(dir.file("m1"), 1, {{0, "a", 1}}));
  const auto result = run_reduce_task(base_config(dir, outputs));
  EXPECT_EQ(result.metrics.reduce_input_records, 4u);
  EXPECT_EQ(result.metrics.reduce_groups, 3u);
  EXPECT_EQ(result.metrics.output_records, 3u);
  EXPECT_GT(result.metrics.shuffled_bytes, 0u);
  EXPECT_GT(result.metrics.op_ns(Op::kShuffle), 0u);
}

TEST(ReduceTask, ReducerSeesValuesFromAllMapOutputs) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  for (int m = 0; m < 5; ++m) {
    outputs.push_back(write_map_output(
        dir.file("m" + std::to_string(m)), 1,
        {{0, "key", static_cast<std::uint64_t>(m + 1)}}));
  }
  ReduceTaskConfig config = base_config(dir, outputs);
  config.reducer = [] {
    return std::make_unique<LambdaReducer>(
        [](std::string_view key, ValueStream& values, EmitSink& out) {
          int n = 0;
          while (values.next()) ++n;
          out.emit(key, std::to_string(n));
        });
  };
  const auto result = run_reduce_task(config);
  EXPECT_EQ(read_part(result.output_path).at("key"), "5");
}

TEST(ReduceTask, ReducerErrorPropagates) {
  TempDir dir;
  std::vector<io::SpillRunInfo> outputs;
  outputs.push_back(write_map_output(dir.file("m0"), 1, {{0, "k", 1}}));
  ReduceTaskConfig config = base_config(dir, outputs);
  config.reducer = [] {
    return std::make_unique<LambdaReducer>(
        [](std::string_view, ValueStream&, EmitSink&) {
          throw std::runtime_error("user reduce bug");
        });
  };
  EXPECT_THROW(run_reduce_task(config), std::runtime_error);
}

}  // namespace
}  // namespace textmr::mr
