#include <gtest/gtest.h>

// Failpoint registry tests (DESIGN.md §6): arming/disarming, determinism
// of the nth-hit and seeded-probability triggers, spec parser round-trip,
// and the zero-cost disarmed path.

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/failpoint.hpp"

namespace textmr {
namespace {

namespace fp = textmr::failpoint;

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fp::disarm_all(); }
  void TearDown() override { fp::disarm_all(); }
};

TEST_F(FailpointTest, DisarmedSiteCostsNothingAndNeverFires) {
  EXPECT_FALSE(fp::enabled());
  for (int i = 0; i < 1000; ++i) {
    TEXTMR_FAILPOINT("some.site");  // must not throw, must not register hits
  }
  EXPECT_EQ(fp::hit_count("some.site"), 0u);
  EXPECT_EQ(fp::fire_count("some.site"), 0u);
}

TEST_F(FailpointTest, ArmedSiteOnlyAffectsItsOwnName) {
  fp::Config config;
  config.nth = 1;
  fp::arm("target.site", config);
  EXPECT_TRUE(fp::enabled());
  EXPECT_NO_THROW(TEXTMR_FAILPOINT("other.site"));
  EXPECT_THROW(TEXTMR_FAILPOINT("target.site"), fp::InjectedFault);
  EXPECT_EQ(fp::hit_count("other.site"), 0u);
  EXPECT_EQ(fp::fire_count("target.site"), 1u);
}

TEST_F(FailpointTest, DisarmRestoresCleanState) {
  fp::arm("a.site", fp::Config{});
  EXPECT_TRUE(fp::enabled());
  fp::disarm("a.site");
  EXPECT_FALSE(fp::enabled());
  EXPECT_NO_THROW(TEXTMR_FAILPOINT("a.site"));
  // Disarming an unknown site is a no-op, not an error.
  fp::disarm("never.armed");
  EXPECT_FALSE(fp::enabled());
}

TEST_F(FailpointTest, NthTriggerFiresExactlyOnTheNthHitOnce) {
  fp::Config config;
  config.nth = 3;
  fp::arm("nth.site", config);
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(fp::consume("nth.site").has_value());
  }
  const std::vector<bool> expected{false, false, true,  false, false,
                                   false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fp::hit_count("nth.site"), 10u);
  EXPECT_EQ(fp::fire_count("nth.site"), 1u);
}

TEST_F(FailpointTest, ProbabilityTriggerIsDeterministicUnderFixedSeed) {
  auto pattern = [](std::uint64_t seed) {
    fp::Config config;
    config.probability = 0.3;
    config.seed = seed;
    fp::arm("p.site", config);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fp::consume("p.site").has_value());
    }
    fp::disarm("p.site");
    return fired;
  };
  const auto first = pattern(42);
  const auto second = pattern(42);
  EXPECT_EQ(first, second);
  // Roughly 30% of 200 hits fire; a fixed seed makes this exact, but the
  // bound only assumes the RNG is not degenerate.
  const auto fires = std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 120);
  EXPECT_NE(first, pattern(43));
}

TEST_F(FailpointTest, TimesCapBoundsTotalFirings) {
  fp::Config config;
  config.times = 2;  // "always" trigger, at most 2 faults
  fp::arm("cap.site", config);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (fp::consume("cap.site").has_value()) ++fires;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(fp::hit_count("cap.site"), 10u);
}

TEST_F(FailpointTest, RearmResetsCountersAndStream) {
  fp::Config config;
  config.nth = 1;
  fp::arm("rearm.site", config);
  EXPECT_TRUE(fp::consume("rearm.site").has_value());
  EXPECT_FALSE(fp::consume("rearm.site").has_value());
  fp::arm("rearm.site", config);  // re-arm: counters reset
  EXPECT_EQ(fp::hit_count("rearm.site"), 0u);
  EXPECT_TRUE(fp::consume("rearm.site").has_value());
}

TEST_F(FailpointTest, DelayActionDoesNotThrow) {
  fp::Config config;
  config.nth = 1;
  config.action.kind = fp::ActionKind::kDelay;
  config.action.delay_ms = 1;
  fp::arm("delay.site", config);
  EXPECT_NO_THROW(TEXTMR_FAILPOINT("delay.site"));
  EXPECT_EQ(fp::fire_count("delay.site"), 1u);
}

TEST_F(FailpointTest, InjectedFaultIsAnIoError) {
  fp::arm("io.site", fp::Config{});
  EXPECT_THROW(TEXTMR_FAILPOINT("io.site"), IoError);
  fp::arm("io.site", fp::Config{});
  try {
    TEXTMR_FAILPOINT("io.site");
    FAIL() << "failpoint did not fire";
  } catch (const fp::InjectedFault& e) {
    EXPECT_NE(std::string(e.what()).find("io.site"), std::string::npos);
  }
}

TEST_F(FailpointTest, SpecParserHandlesTheDocumentedGrammar) {
  const auto entries = fp::parse_spec(
      "spill.write:nth=3,dfs.open:p=0.01@seed=42,"
      "support.sort:always:action=delay:delay_ms=5,"
      "spill.read:action=corrupt:times=2");
  ASSERT_EQ(entries.size(), 4u);

  EXPECT_EQ(entries[0].first, "spill.write");
  EXPECT_EQ(entries[0].second.nth, 3u);
  EXPECT_EQ(entries[0].second.action.kind, fp::ActionKind::kThrow);

  EXPECT_EQ(entries[1].first, "dfs.open");
  EXPECT_DOUBLE_EQ(entries[1].second.probability, 0.01);
  EXPECT_EQ(entries[1].second.seed, 42u);

  EXPECT_EQ(entries[2].first, "support.sort");
  EXPECT_EQ(entries[2].second.nth, 0u);
  EXPECT_EQ(entries[2].second.action.kind, fp::ActionKind::kDelay);
  EXPECT_EQ(entries[2].second.action.delay_ms, 5u);

  EXPECT_EQ(entries[3].first, "spill.read");
  EXPECT_EQ(entries[3].second.action.kind, fp::ActionKind::kCorrupt);
  EXPECT_EQ(entries[3].second.times, 2u);
}

TEST_F(FailpointTest, SpecRoundTripsThroughFormat) {
  const std::string spec =
      "a.site:nth=3,b.site:p=0.25:seed=42:times=2,"
      "c.site:always:action=delay:delay_ms=7,d.site:nth=1:action=shortwrite";
  fp::arm_from_spec(spec);
  const std::string formatted = fp::format_spec();
  const auto original = fp::parse_spec(spec);
  auto round_tripped = fp::parse_spec(formatted);
  ASSERT_EQ(round_tripped.size(), original.size());
  // format_spec() sorts by site name; compare as sets of (site, config).
  std::sort(round_tripped.begin(), round_tripped.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  auto sorted_original = original;
  std::sort(sorted_original.begin(), sorted_original.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < sorted_original.size(); ++i) {
    EXPECT_EQ(round_tripped[i].first, sorted_original[i].first);
    EXPECT_EQ(round_tripped[i].second, sorted_original[i].second) << i;
  }
  // And formatting the re-armed round-trip is a fixed point.
  fp::disarm_all();
  fp::arm_from_spec(formatted);
  EXPECT_EQ(fp::format_spec(), formatted);
}

TEST_F(FailpointTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(fp::parse_spec("site:nth=abc"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:nth=0"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:p=1.5"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:unknown=1"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:action=explode"), ConfigError);
  EXPECT_THROW(fp::parse_spec(":nth=1"), ConfigError);
  EXPECT_THROW(fp::parse_spec("a.site:nth=1,,b.site"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:nth=1:p=0.5"), ConfigError);
  EXPECT_THROW(fp::parse_spec("site:"), ConfigError);
  // A bad spec must not half-arm: parse failures leave the registry empty.
  EXPECT_THROW(fp::arm_from_spec("ok.site:nth=1,bad.site:nth=x"), ConfigError);
  EXPECT_EQ(fp::fire_count("ok.site"), 0u);
  EXPECT_FALSE(fp::enabled());
}

TEST_F(FailpointTest, ArmFromEnvReadsTheEnvironment) {
  ::setenv("TEXTMR_FAILPOINTS", "env.site:nth=2", 1);
  fp::arm_from_env();
  ::unsetenv("TEXTMR_FAILPOINTS");
  EXPECT_TRUE(fp::enabled());
  EXPECT_FALSE(fp::consume("env.site").has_value());
  EXPECT_TRUE(fp::consume("env.site").has_value());
}

TEST_F(FailpointTest, ScopedFailpointsDisarmsOnExit) {
  {
    fp::ScopedFailpoints guard("scoped.site:nth=1");
    EXPECT_TRUE(fp::enabled());
  }
  EXPECT_FALSE(fp::enabled());
}

}  // namespace
}  // namespace textmr
