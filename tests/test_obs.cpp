// Tests for the observability subsystem (src/obs): the JSON writer and
// validity checker, the trace ring buffers and collector, the Chrome
// trace / JSONL exporters, the job-metrics JSON serializer, and the
// engine integration (a traced WordCount run carries a usable timeline).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "helpers.hpp"
#include "mr/report.hpp"
#include "textmr.hpp"

namespace textmr {
namespace {

// ---- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, NestedDocumentIsValid) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "WordCount");
  w.field("tasks", std::uint64_t{6});
  w.field("fraction", 0.125);
  w.field("enabled", true);
  w.key("nothing").null();
  w.key("ops").begin_object();
  w.field("sort", std::uint64_t{123});
  w.field("merge", std::uint64_t{456});
  w.end_object();
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.begin_object().field("k", "v").end_object();
  w.end_array();
  w.end_object();
  const std::string json = w.take();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"sort\":123"), std::string::npos);
  EXPECT_NE(json.find("[1,2,3,{\"k\":\"v\"}]"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
  EXPECT_TRUE(obs::json_valid(w.str()));
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("k\"ey\\", "line1\nline2\ttab\x01" "end");
  w.end_object();
  const std::string json = w.take();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\\\"ey\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(0.0 / 0.0);  // NaN
  w.value(1e308 * 10);  // inf
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, RawSplicesSubdocument) {
  obs::JsonWriter inner;
  inner.begin_object().field("x", 1).end_object();
  obs::JsonWriter w;
  w.begin_object();
  w.key("inner").raw(inner.str());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"inner\":{\"x\":1}}");
  EXPECT_TRUE(obs::json_valid(w.str()));
}

TEST(JsonValid, AcceptsRfc8259Documents) {
  EXPECT_TRUE(obs::json_valid("{}"));
  EXPECT_TRUE(obs::json_valid("[]"));
  EXPECT_TRUE(obs::json_valid("  {\"a\": [1, -2.5, 1e-3, \"s\", null]} "));
  EXPECT_TRUE(obs::json_valid("true"));
  EXPECT_TRUE(obs::json_valid("\"\\u00e9\\n\""));
  EXPECT_TRUE(obs::json_valid("0"));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{\"a\":}"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}"));
  EXPECT_FALSE(obs::json_valid("[1,]"));
  EXPECT_FALSE(obs::json_valid("{} extra"));
  EXPECT_FALSE(obs::json_valid("{'a':1}"));
  EXPECT_FALSE(obs::json_valid("\"unterminated"));
  EXPECT_FALSE(obs::json_valid("\"bad\\q\""));
  EXPECT_FALSE(obs::json_valid("\"raw\ncontrol\""));
  EXPECT_FALSE(obs::json_valid("01"));
  EXPECT_FALSE(obs::json_valid("nul"));
}

// ---- trace buffer / collector ---------------------------------------------

TEST(TraceBuffer, PreservesPerThreadOrder) {
  obs::TraceCollector collector(obs::TraceConfig{true, 1024});
  obs::TraceBuffer* buffer = collector.make_buffer(1, 0, "worker", "task_1");
  obs::record_instant(buffer, "t", "first");
  obs::record_instant(buffer, "t", "second");
  {
    obs::SpanTimer span(buffer, "t", "spanning");
    obs::record_instant(buffer, "t", "inside");
  }
  const auto trace = collector.finish();
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.dropped_events, 0u);
  // Events come back sorted by begin timestamp; the span began before
  // "inside" was recorded, so it sorts ahead of it.
  EXPECT_STREQ(trace.events[0].name, "first");
  EXPECT_STREQ(trace.events[1].name, "second");
  EXPECT_STREQ(trace.events[2].name, "spanning");
  EXPECT_STREQ(trace.events[3].name, "inside");
  EXPECT_EQ(trace.events[2].kind, obs::EventKind::kSpan);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].ts_ns, trace.events[i].ts_ns);
  }
}

TEST(TraceBuffer, DropsOldestOnOverflow) {
  obs::TraceCollector collector(obs::TraceConfig{true, 64});  // min capacity
  obs::TraceBuffer* buffer = collector.make_buffer(1, 0, "worker");
  for (int i = 0; i < 100; ++i) {
    obs::record_instant(buffer, "t", "event", "i", static_cast<double>(i));
  }
  EXPECT_EQ(buffer->dropped(), 36u);
  const auto trace = collector.finish();
  ASSERT_EQ(trace.events.size(), 64u);
  EXPECT_EQ(trace.dropped_events, 36u);
  // The survivors are the newest 64, still in order.
  EXPECT_DOUBLE_EQ(trace.events.front().args[0], 36.0);
  EXPECT_DOUBLE_EQ(trace.events.back().args[0], 99.0);
}

TEST(TraceBuffer, NullBufferIsANoOp) {
  obs::record_instant(nullptr, "t", "nothing");
  obs::record_counter(nullptr, "t", "series", 1.0);
  obs::SpanTimer span(nullptr, "t", "nothing");
  span.arg("x", 1.0);
  span.done();
}

TEST(TraceCollector, ExportsChromeTraceAndJsonl) {
  obs::TraceCollector collector(obs::TraceConfig{true, 1024});
  collector.set_job_name("unit");
  obs::TraceBuffer* buffer = collector.make_buffer(7, 2, "support-1", "map_7");
  obs::record_counter(buffer, "spill", "spill_threshold", 0.8);
  {
    obs::SpanTimer span(buffer, "spill", "spill_sort");
    span.arg("records", 42.0);
  }
  const auto trace = collector.finish();

  const std::string chrome = obs::format_chrome_trace(trace);
  EXPECT_TRUE(obs::json_valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"spill_sort\""), std::string::npos);
  EXPECT_NE(chrome.find("process_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"map_7\""), std::string::npos);
  EXPECT_NE(chrome.find("\"support-1\""), std::string::npos);

  const std::string jsonl = obs::format_trace_jsonl(trace);
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    EXPECT_TRUE(obs::json_valid(jsonl.substr(start, end - start)));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, trace.events.size());

  const auto series = obs::counter_series(trace, "spill_threshold");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].value, 0.8);
  EXPECT_EQ(series[0].pid, 7u);
  EXPECT_EQ(obs::count_events(trace, "spill_sort"), 1u);
}

// ---- op_name exhaustiveness ------------------------------------------------

TEST(OpName, EveryOpHasADistinctName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < mr::kNumOps; ++i) {
    const char* name = mr::op_name(static_cast<mr::Op>(i));
    ASSERT_NE(name, nullptr) << "op " << i;
    EXPECT_STRNE(name, "") << "op " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate op name: " << name;
  }
  EXPECT_EQ(names.size(), mr::kNumOps);
}

// ---- engine integration ----------------------------------------------------

class TracedJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("textmr-obs-test");
    corpus_ = dir_->path() / "corpus.txt";
    textgen::CorpusSpec spec;
    spec.total_words = 120'000;
    spec.vocabulary = 5'000;
    spec.seed = 99;
    textgen::generate_corpus(spec, corpus_.string());
  }

  mr::JobResult run(bool traced) {
    auto spec = test::make_job(
        apps::wordcount_app(),
        io::make_splits(corpus_.string(), 256u << 10),
        dir_->path() / (traced ? "scratch_t" : "scratch"),
        dir_->path() / (traced ? "out_t" : "out"));
    spec.spill_buffer_bytes = 64u << 10;  // force several spills
    spec.use_spill_matcher = true;
    spec.trace.enabled = traced;
    return mr::LocalEngine().run(spec);
  }

  std::unique_ptr<TempDir> dir_;
  std::filesystem::path corpus_;
};

TEST_F(TracedJobTest, DisabledTracingLeavesResultEmpty) {
  const auto result = run(false);
  EXPECT_FALSE(result.trace.enabled);
  EXPECT_TRUE(result.trace.events.empty());
}

TEST_F(TracedJobTest, TracedRunCarriesSpillTimeline) {
  const auto result = run(true);
  ASSERT_TRUE(result.trace.enabled);
  ASSERT_FALSE(result.trace.events.empty());

  EXPECT_GT(obs::count_events(result.trace, "map_phase"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "reduce_phase"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "map_task"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_seal"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_sort"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_write"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "threshold_update"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "shuffle"), 0u);
  EXPECT_FALSE(
      obs::counter_series(result.trace, "spill_threshold").empty());
  EXPECT_FALSE(obs::counter_series(result.trace, "buffer_fill").empty());

  const std::string chrome = obs::format_chrome_trace(result.trace);
  EXPECT_TRUE(obs::json_valid(chrome));

  // Exports land on disk intact.
  const auto path = dir_->path() / "trace.json";
  obs::write_file(path, chrome);
  std::ifstream in(path);
  std::string from_disk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(from_disk, chrome);
}

TEST_F(TracedJobTest, MetricsJsonIsValidAndPopulated) {
  const auto result = run(true);
  const std::string json = mr::format_job_metrics_json(result, "WordCount");
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"job\":\"WordCount\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"sort\""), std::string::npos);
  EXPECT_NE(json.find("\"map_task_details\""), std::string::npos);
  // Non-zero work recorded in the breakdown.
  EXPECT_EQ(json.find("\"total_ns\":0,"), std::string::npos);
}

// ---- report formatting (appendf regression) --------------------------------

TEST(JobReport, LongCounterNamesAreNotTruncated) {
  mr::JobResult result;
  result.metrics.job_wall_ns = 1'000'000;
  const std::string long_name(700, 'k');  // longer than appendf's buffer
  result.counters.increment(long_name, 12345);
  const std::string report = mr::format_job_report(result, "truncation-test");
  EXPECT_NE(report.find(long_name), std::string::npos);
  EXPECT_NE(report.find("12345"), std::string::npos);
}

}  // namespace
}  // namespace textmr
