// Tests for the observability subsystem (src/obs): the JSON writer and
// validity checker, the trace ring buffers and collector, the Chrome
// trace / JSONL exporters, the job-metrics JSON serializer, and the
// engine integration (a traced WordCount run carries a usable timeline).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "helpers.hpp"
#include "mr/report.hpp"
#include "textmr.hpp"

namespace textmr {
namespace {

// ---- JsonWriter -----------------------------------------------------------

TEST(JsonWriter, NestedDocumentIsValid) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "WordCount");
  w.field("tasks", std::uint64_t{6});
  w.field("fraction", 0.125);
  w.field("enabled", true);
  w.key("nothing").null();
  w.key("ops").begin_object();
  w.field("sort", std::uint64_t{123});
  w.field("merge", std::uint64_t{456});
  w.end_object();
  w.key("list").begin_array();
  w.value(1).value(2).value(3);
  w.begin_object().field("k", "v").end_object();
  w.end_array();
  w.end_object();
  const std::string json = w.take();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"sort\":123"), std::string::npos);
  EXPECT_NE(json.find("[1,2,3,{\"k\":\"v\"}]"), std::string::npos);
}

TEST(JsonWriter, EmptyContainers) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("a").begin_array().end_array();
  w.key("o").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":[],\"o\":{}}");
  EXPECT_TRUE(obs::json_valid(w.str()));
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("k\"ey\\", "line1\nline2\ttab\x01" "end");
  w.end_object();
  const std::string json = w.take();
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\\\"ey\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(0.0 / 0.0);  // NaN
  w.value(1e308 * 10);  // inf
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, RawSplicesSubdocument) {
  obs::JsonWriter inner;
  inner.begin_object().field("x", 1).end_object();
  obs::JsonWriter w;
  w.begin_object();
  w.key("inner").raw(inner.str());
  w.end_object();
  EXPECT_EQ(w.str(), "{\"inner\":{\"x\":1}}");
  EXPECT_TRUE(obs::json_valid(w.str()));
}

TEST(JsonValid, AcceptsRfc8259Documents) {
  EXPECT_TRUE(obs::json_valid("{}"));
  EXPECT_TRUE(obs::json_valid("[]"));
  EXPECT_TRUE(obs::json_valid("  {\"a\": [1, -2.5, 1e-3, \"s\", null]} "));
  EXPECT_TRUE(obs::json_valid("true"));
  EXPECT_TRUE(obs::json_valid("\"\\u00e9\\n\""));
  EXPECT_TRUE(obs::json_valid("0"));
}

TEST(JsonValid, RejectsMalformedDocuments) {
  EXPECT_FALSE(obs::json_valid(""));
  EXPECT_FALSE(obs::json_valid("{"));
  EXPECT_FALSE(obs::json_valid("{\"a\":}"));
  EXPECT_FALSE(obs::json_valid("{\"a\":1,}"));
  EXPECT_FALSE(obs::json_valid("[1,]"));
  EXPECT_FALSE(obs::json_valid("{} extra"));
  EXPECT_FALSE(obs::json_valid("{'a':1}"));
  EXPECT_FALSE(obs::json_valid("\"unterminated"));
  EXPECT_FALSE(obs::json_valid("\"bad\\q\""));
  EXPECT_FALSE(obs::json_valid("\"raw\ncontrol\""));
  EXPECT_FALSE(obs::json_valid("01"));
  EXPECT_FALSE(obs::json_valid("nul"));
}

// ---- trace buffer / collector ---------------------------------------------

TEST(TraceBuffer, PreservesPerThreadOrder) {
  obs::TraceCollector collector(obs::TraceConfig{true, 1024});
  obs::TraceBuffer* buffer = collector.make_buffer(1, 0, "worker", "task_1");
  obs::record_instant(buffer, "t", "first");
  obs::record_instant(buffer, "t", "second");
  {
    obs::SpanTimer span(buffer, "t", "spanning");
    obs::record_instant(buffer, "t", "inside");
  }
  const auto trace = collector.finish();
  ASSERT_EQ(trace.events.size(), 4u);
  EXPECT_EQ(trace.dropped_events, 0u);
  // Events come back sorted by begin timestamp; the span began before
  // "inside" was recorded, so it sorts ahead of it.
  EXPECT_STREQ(trace.events[0].name, "first");
  EXPECT_STREQ(trace.events[1].name, "second");
  EXPECT_STREQ(trace.events[2].name, "spanning");
  EXPECT_STREQ(trace.events[3].name, "inside");
  EXPECT_EQ(trace.events[2].kind, obs::EventKind::kSpan);
  for (std::size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].ts_ns, trace.events[i].ts_ns);
  }
}

TEST(TraceBuffer, DropsOldestOnOverflow) {
  obs::TraceCollector collector(obs::TraceConfig{true, 64});  // min capacity
  obs::TraceBuffer* buffer = collector.make_buffer(1, 0, "worker");
  for (int i = 0; i < 100; ++i) {
    obs::record_instant(buffer, "t", "event", "i", static_cast<double>(i));
  }
  EXPECT_EQ(buffer->dropped(), 36u);
  const auto trace = collector.finish();
  ASSERT_EQ(trace.events.size(), 64u);
  EXPECT_EQ(trace.dropped_events, 36u);
  // The survivors are the newest 64, still in order.
  EXPECT_DOUBLE_EQ(trace.events.front().args[0], 36.0);
  EXPECT_DOUBLE_EQ(trace.events.back().args[0], 99.0);
}

TEST(TraceBuffer, NullBufferIsANoOp) {
  obs::record_instant(nullptr, "t", "nothing");
  obs::record_counter(nullptr, "t", "series", 1.0);
  obs::SpanTimer span(nullptr, "t", "nothing");
  span.arg("x", 1.0);
  span.done();
}

TEST(TraceCollector, ExportsChromeTraceAndJsonl) {
  obs::TraceCollector collector(obs::TraceConfig{true, 1024});
  collector.set_job_name("unit");
  obs::TraceBuffer* buffer = collector.make_buffer(7, 2, "support-1", "map_7");
  obs::record_counter(buffer, "spill", "spill_threshold", 0.8);
  {
    obs::SpanTimer span(buffer, "spill", "spill_sort");
    span.arg("records", 42.0);
  }
  const auto trace = collector.finish();

  const std::string chrome = obs::format_chrome_trace(trace);
  EXPECT_TRUE(obs::json_valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"spill_sort\""), std::string::npos);
  EXPECT_NE(chrome.find("process_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"map_7\""), std::string::npos);
  EXPECT_NE(chrome.find("\"support-1\""), std::string::npos);

  const std::string jsonl = obs::format_trace_jsonl(trace);
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    EXPECT_TRUE(obs::json_valid(jsonl.substr(start, end - start)));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, trace.events.size());

  const auto series = obs::counter_series(trace, "spill_threshold");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].value, 0.8);
  EXPECT_EQ(series[0].pid, 7u);
  EXPECT_EQ(obs::count_events(trace, "spill_sort"), 1u);
}

// ---- op_name exhaustiveness ------------------------------------------------

TEST(OpName, EveryOpHasADistinctName) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < mr::kNumOps; ++i) {
    const char* name = mr::op_name(static_cast<mr::Op>(i));
    ASSERT_NE(name, nullptr) << "op " << i;
    EXPECT_STRNE(name, "") << "op " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate op name: " << name;
  }
  EXPECT_EQ(names.size(), mr::kNumOps);
}

// ---- engine integration ----------------------------------------------------

class TracedJobTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<TempDir>("textmr-obs-test");
    corpus_ = dir_->path() / "corpus.txt";
    textgen::CorpusSpec spec;
    spec.total_words = 120'000;
    spec.vocabulary = 5'000;
    spec.seed = 99;
    textgen::generate_corpus(spec, corpus_.string());
  }

  mr::JobResult run(bool traced) {
    auto spec = test::make_job(
        apps::wordcount_app(),
        io::make_splits(corpus_.string(), 256u << 10),
        dir_->path() / (traced ? "scratch_t" : "scratch"),
        dir_->path() / (traced ? "out_t" : "out"));
    spec.spill_buffer_bytes = 64u << 10;  // force several spills
    spec.use_spill_matcher = true;
    spec.trace.enabled = traced;
    return mr::LocalEngine().run(spec);
  }

  std::unique_ptr<TempDir> dir_;
  std::filesystem::path corpus_;
};

TEST_F(TracedJobTest, DisabledTracingLeavesResultEmpty) {
  const auto result = run(false);
  EXPECT_FALSE(result.trace.enabled);
  EXPECT_TRUE(result.trace.events.empty());
}

TEST_F(TracedJobTest, TracedRunCarriesSpillTimeline) {
  const auto result = run(true);
  ASSERT_TRUE(result.trace.enabled);
  ASSERT_FALSE(result.trace.events.empty());

  EXPECT_GT(obs::count_events(result.trace, "map_phase"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "reduce_phase"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "map_task"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_seal"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_sort"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "spill_write"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "threshold_update"), 0u);
  EXPECT_GT(obs::count_events(result.trace, "shuffle"), 0u);
  EXPECT_FALSE(
      obs::counter_series(result.trace, "spill_threshold").empty());
  EXPECT_FALSE(obs::counter_series(result.trace, "buffer_fill").empty());

  const std::string chrome = obs::format_chrome_trace(result.trace);
  EXPECT_TRUE(obs::json_valid(chrome));

  // Exports land on disk intact.
  const auto path = dir_->path() / "trace.json";
  obs::write_file(path, chrome);
  std::ifstream in(path);
  std::string from_disk((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  EXPECT_EQ(from_disk, chrome);
}

TEST_F(TracedJobTest, MetricsJsonIsValidAndPopulated) {
  const auto result = run(true);
  const std::string json = mr::format_job_metrics_json(result, "WordCount");
  EXPECT_TRUE(obs::json_valid(json)) << json;
  EXPECT_NE(json.find("\"job\":\"WordCount\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"sort\""), std::string::npos);
  EXPECT_NE(json.find("\"map_task_details\""), std::string::npos);
  // Non-zero work recorded in the breakdown.
  EXPECT_EQ(json.find("\"total_ns\":0,"), std::string::npos);
}

// ---- report formatting (appendf regression) --------------------------------

TEST(JobReport, LongCounterNamesAreNotTruncated) {
  mr::JobResult result;
  result.metrics.job_wall_ns = 1'000'000;
  const std::string long_name(700, 'k');  // longer than appendf's buffer
  result.counters.increment(long_name, 12345);
  const std::string report = mr::format_job_report(result, "truncation-test");
  EXPECT_NE(report.find(long_name), std::string::npos);
  EXPECT_NE(report.find("12345"), std::string::npos);
}

TEST(JobReport, ClusterSectionAppearsWhenWorkersPresent) {
  mr::JobResult result;
  result.metrics.job_wall_ns = 1'000'000;
  mr::WorkerTelemetry w0;
  w0.worker_id = 0;
  w0.records = 300;
  w0.tasks_completed = 2;
  w0.task_latency_ns.record(5'000'000);
  mr::WorkerTelemetry w1;
  w1.worker_id = 1;
  w1.records = 100;
  w1.tasks_completed = 1;
  w1.telemetry_complete = false;
  result.metrics.workers = {w0, w1};
  result.metrics.telemetry_incomplete = true;
  result.metrics.trace_ring_dropped = 7;

  // Skew: max 300 / mean 200 = 1.5.
  EXPECT_DOUBLE_EQ(result.metrics.worker_records_skew(), 1.5);

  const std::string report = mr::format_job_report(result, "cluster-test");
  EXPECT_NE(report.find("cluster workers"), std::string::npos);
  EXPECT_NE(report.find("telemetry incomplete"), std::string::npos);
  EXPECT_NE(report.find("[partial]"), std::string::npos);
  EXPECT_NE(report.find("7 events dropped"), std::string::npos);

  const std::string json = mr::format_job_metrics_json(result, "cluster-test");
  EXPECT_TRUE(obs::json_valid(json)) << json;
  const auto doc = obs::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get("trace_ring_dropped")->number_or(0), 7.0);
  EXPECT_TRUE(doc->get("telemetry_incomplete")->bool_or(false));
  const obs::JsonValue* cluster = doc->get("cluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->get("worker_records_skew")->number_or(0), 1.5);
  ASSERT_EQ(cluster->get("workers")->array().size(), 2u);
  const obs::JsonValue& worker1 = cluster->get("workers")->array()[1];
  EXPECT_FALSE(worker1.get("telemetry_complete")->bool_or(true));
}

// ---- latency histogram -----------------------------------------------------

TEST(LatencyHistogram, RecordsAndSummarizes) {
  obs::LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0u);
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LatencyHistogram, QuantileBoundsAreLogLinear) {
  obs::LatencyHistogram h;
  for (std::uint64_t v = 0; v < 1000; ++v) h.record(v);
  // Log-linear buckets with 16 sub-buckets per octave: relative error
  // is bounded by 1/16 for values past the first octave.
  const std::uint64_t p50 = h.quantile(0.5);
  EXPECT_GE(p50, 499u);
  EXPECT_LE(p50, 499u + 499u / 16u + 1u);
  const std::uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p99, 989u);
  EXPECT_LE(p99, 989u + 989u / 16u + 1u);
  // q=1 returns a bound covering the true max.
  EXPECT_GE(h.quantile(1.0), 999u);
}

TEST(LatencyHistogram, SmallValuesAreExact) {
  obs::LatencyHistogram h;
  for (std::uint64_t v = 0; v < 16; ++v) h.record(v);
  // The first 16 buckets are unit-width: quantiles are exact.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 15u);
}

TEST(LatencyHistogram, MergeAndClear) {
  obs::LatencyHistogram a;
  obs::LatencyHistogram b;
  a.record(100);
  b.record(1'000'000);
  b.record(2'000'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 2'000'000u);
  EXPECT_EQ(a.sum(), 3'000'100u);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.max(), 0u);
}

TEST(LatencyHistogram, OverflowClampsToTopBucket) {
  obs::LatencyHistogram h;
  h.record(~0ull);  // beyond kMaxExponent: lands in the overflow bucket
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), ~0ull);
  EXPECT_GT(h.quantile(0.5), 1ull << 40);
}

TEST(LatencyHistogram, SerializeRoundTripIsExact) {
  obs::LatencyHistogram h;
  h.record(0);
  h.record(17);
  h.record(4096);
  h.record(123'456'789);
  h.record(~0ull);
  const obs::LatencyHistogram out =
      obs::LatencyHistogram::deserialize(h.serialize());
  EXPECT_EQ(out, h);

  // Empty histograms round-trip too.
  obs::LatencyHistogram empty;
  EXPECT_EQ(obs::LatencyHistogram::deserialize(empty.serialize()), empty);
}

TEST(LatencyHistogram, DeserializeRejectsCorruptBytes) {
  obs::LatencyHistogram h;
  h.record(42);
  std::string bytes = h.serialize();
  EXPECT_THROW((void)obs::LatencyHistogram::deserialize(bytes.substr(0, 5)),
               FormatError);
  EXPECT_THROW((void)obs::LatencyHistogram::deserialize(bytes + "x"),
               FormatError);
}

// ---- drain / chunked shipping ----------------------------------------------

TEST(TraceBuffer, DrainReturnsEventsAndResetsInPlace) {
  obs::TraceCollector collector(obs::TraceConfig{true, 64});
  obs::TraceBuffer* buffer = collector.make_buffer(1, 0, "worker");
  for (int i = 0; i < 100; ++i) {
    obs::record_instant(buffer, "t", "event", "i", static_cast<double>(i));
  }
  auto first = buffer->drain();
  EXPECT_EQ(first.events.size(), 64u);
  EXPECT_EQ(first.dropped, 36u);

  // The ring keeps working after a drain, and the next drain reports
  // only the delta — no double counting, and the wrap detection must
  // not misfire on the fresh (non-wrapped) ring.
  for (int i = 0; i < 10; ++i) {
    obs::record_instant(buffer, "t", "later", "i", static_cast<double>(i));
  }
  auto second = buffer->drain();
  ASSERT_EQ(second.events.size(), 10u);
  EXPECT_EQ(second.dropped, 0u);
  EXPECT_DOUBLE_EQ(second.events.front().args[0], 0.0);
  EXPECT_DOUBLE_EQ(second.events.back().args[0], 9.0);
}

TEST(TraceCollector, DrainThenFinishNeverDuplicates) {
  obs::TraceCollector collector(obs::TraceConfig{true, 64});
  collector.set_job_name("drainer");
  obs::TraceBuffer* buffer = collector.make_buffer(5, 0, "worker", "lane");
  for (int i = 0; i < 100; ++i) {
    obs::record_instant(buffer, "t", "first_batch");
  }
  obs::TraceData chunk = collector.drain();
  EXPECT_EQ(chunk.job_name, "drainer");
  EXPECT_EQ(chunk.events.size(), 64u);
  EXPECT_EQ(chunk.dropped_events, 36u);
  ASSERT_EQ(chunk.ring_drops.size(), 1u);
  EXPECT_EQ(chunk.ring_drops[0].pid, 5u);
  EXPECT_EQ(chunk.ring_drops[0].dropped, 36u);
  // Names ship exactly once, on the first drain.
  ASSERT_EQ(chunk.process_names.size(), 1u);
  ASSERT_EQ(chunk.thread_names.size(), 1u);

  obs::record_instant(buffer, "t", "second_batch");
  obs::TraceData rest = collector.finish();
  EXPECT_EQ(rest.events.size(), 1u);
  EXPECT_EQ(rest.dropped_events, 0u);
  EXPECT_TRUE(rest.ring_drops.empty());
  EXPECT_TRUE(rest.process_names.empty());
  EXPECT_TRUE(rest.thread_names.empty());

  // Merging the chunks reconstructs the complete picture: 65 events,
  // 36 drops attributed to ring (5, 0), one process name.
  obs::TraceData merged;
  obs::merge_trace(merged, std::move(chunk));
  obs::merge_trace(merged, std::move(rest));
  EXPECT_EQ(merged.events.size(), 65u);
  EXPECT_EQ(merged.dropped_events, 36u);
  ASSERT_EQ(merged.ring_drops.size(), 1u);
  EXPECT_EQ(merged.ring_drops[0].dropped, 36u);
  EXPECT_EQ(merged.process_names.size(), 1u);
}

TEST(TraceData, RebaseShiftsTimestampsSaturating) {
  obs::TraceData trace;
  trace.enabled = true;
  trace.epoch_ns = 1000;
  obs::TraceEvent e;
  e.name = "x";
  e.category = "t";
  e.ts_ns = 1500;
  trace.events.push_back(e);
  e.ts_ns = 100;
  trace.events.push_back(e);

  obs::rebase_trace(trace, 500);  // worker clock 500ns ahead
  EXPECT_EQ(trace.events[0].ts_ns, 1000u);
  EXPECT_EQ(trace.events[1].ts_ns, 0u);  // saturates, never wraps
  EXPECT_EQ(trace.epoch_ns, 500u);

  obs::rebase_trace(trace, -250);  // negative offset shifts forward
  EXPECT_EQ(trace.events[0].ts_ns, 1250u);
  EXPECT_EQ(trace.epoch_ns, 750u);
}

TEST(TraceData, MergePropagatesIncompleteAndRingDrops) {
  obs::TraceData into;
  into.enabled = true;
  into.ring_drops.push_back({7, 0, 10});

  obs::TraceData from;
  from.enabled = true;
  from.incomplete = true;
  from.ring_drops.push_back({7, 0, 5});   // same ring: summed
  from.ring_drops.push_back({8, 1, 2});   // new ring: appended
  obs::merge_trace(into, std::move(from));

  EXPECT_TRUE(into.incomplete);
  ASSERT_EQ(into.ring_drops.size(), 2u);
  EXPECT_EQ(into.ring_drops[0].dropped, 15u);
  EXPECT_EQ(into.ring_drops[1].pid, 8u);
  EXPECT_EQ(into.ring_drops[1].dropped, 2u);
}

TEST(ChromeTrace, CarriesIncompleteFlagAndRingDrops) {
  obs::TraceData trace;
  trace.enabled = true;
  trace.job_name = "flagged";
  trace.incomplete = true;
  trace.dropped_events = 3;
  trace.ring_drops.push_back({200001, 0, 3});
  const std::string chrome = obs::format_chrome_trace(trace);
  EXPECT_TRUE(obs::json_valid(chrome)) << chrome;
  EXPECT_NE(chrome.find("\"telemetry_incomplete\":true"), std::string::npos);
  EXPECT_NE(chrome.find("\"dropped_rings\""), std::string::npos);
  EXPECT_NE(chrome.find("\"dropped\":3"), std::string::npos);
}

// ---- JsonValue parser ------------------------------------------------------

TEST(JsonValue, ParsesScalarsAndContainers) {
  const auto doc = obs::JsonValue::parse(
      "{\"a\": 1.5, \"b\": [true, null, \"s\"], \"neg\": -7, "
      "\"nested\": {\"deep\": 2e3}}");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get("a")->number_or(0), 1.5);
  const auto& arr = doc->get("b")->array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].bool_or(false));
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].string_value(), "s");
  EXPECT_EQ(doc->get("neg")->number_or(0), -7.0);
  EXPECT_EQ(doc->get("nested")->get("deep")->number_or(0), 2000.0);
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(JsonValue, ParsesEscapesIncludingUnicode) {
  const auto doc =
      obs::JsonValue::parse("\"a\\n\\t\\\"\\\\\\u0041\\u00e9\"");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_value(), "a\n\t\"\\A\xc3\xa9");
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_FALSE(obs::JsonValue::parse("{").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("01").has_value());
  EXPECT_FALSE(obs::JsonValue::parse("'single'").has_value());
}

TEST(JsonValue, RoundTripsJsonWriterOutput) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "job \"x\"\n");
  w.field("count", std::uint64_t{42});
  w.key("list").begin_array().value(1).value(2).end_array();
  w.end_object();
  const std::string json = w.take();
  const auto doc = obs::JsonValue::parse(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get("name")->string_value(), "job \"x\"\n");
  EXPECT_EQ(doc->get("count")->number_or(0), 42.0);
  EXPECT_EQ(doc->get("list")->array().size(), 2u);
}

}  // namespace
}  // namespace textmr
