#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/varint.hpp"
#include "apps/access_log.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pagerank.hpp"
#include "apps/syntext.hpp"
#include "apps/tokenizer.hpp"
#include "apps/wordcount.hpp"

namespace textmr::apps {
namespace {

class RecordingSink final : public mr::EmitSink {
 public:
  void emit(std::string_view key, std::string_view value) override {
    records.emplace_back(std::string(key), std::string(value));
  }
  std::vector<std::pair<std::string, std::string>> records;
};

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> out;
  std::string scratch;
  for_each_token(line, scratch, [&](std::string_view t) {
    out.emplace_back(t);
  });
  return out;
}

TEST(Tokenizer, SplitsAndLowercases) {
  EXPECT_EQ(tokens_of("Hello, World!"),
            (std::vector<std::string>{"hello", "world"}));
  EXPECT_EQ(tokens_of("  a  b  "), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(tokens_of(""), (std::vector<std::string>{}));
  EXPECT_EQ(tokens_of("...!!!"), (std::vector<std::string>{}));
  EXPECT_EQ(tokens_of("don't stop"),
            (std::vector<std::string>{"don", "t", "stop"}));
  EXPECT_EQ(tokens_of("abc123 42"),
            (std::vector<std::string>{"abc123", "42"}));
}

TEST(Tokenizer, FieldsSplitOnSeparator) {
  std::vector<std::string> fields;
  const std::size_t n =
      for_each_field("a|b||c", '|', [&](std::size_t, std::string_view f) {
        fields.emplace_back(f);
      });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(WordCount, MapperEmitsOnePerToken) {
  WordCountMapper mapper;
  RecordingSink sink;
  mapper.map(0, "the cat and the hat", sink);
  ASSERT_EQ(sink.records.size(), 5u);
  EXPECT_EQ(sink.records[0].first, "the");
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(sink.records[0].second, pos), 1u);
}

TEST(WordCount, CombinerAndReducerSum) {
  WordCountCombiner combiner;
  std::vector<std::string> values;
  for (const std::uint64_t v : {3ull, 4ull, 5ull}) {
    std::string s;
    put_varint(s, v);
    values.push_back(s);
  }
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  combiner.reduce("word", stream, sink);
  ASSERT_EQ(sink.records.size(), 1u);
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(sink.records[0].second, pos), 12u);

  mr::VectorValueStream<std::vector<std::string>> stream2(values);
  RecordingSink sink2;
  WordCountReducer reducer;
  reducer.reduce("word", stream2, sink2);
  EXPECT_EQ(sink2.records[0].second, "12");
}

TEST(Postings, EncodeDecodeRoundTrip) {
  const std::vector<std::uint64_t> locations = {3, 17, 17, 400, 1ull << 45};
  std::string encoded;
  postings::encode(encoded, locations);
  std::vector<std::uint64_t> decoded;
  postings::decode_into(encoded, decoded);
  EXPECT_EQ(decoded, locations);
}

TEST(Postings, LocationPacksTaskAndOrdinal) {
  const std::uint64_t loc = postings::make_location(7, 123456);
  EXPECT_EQ(loc >> 40, 7u);
  EXPECT_EQ(loc & ((1ull << 40) - 1), 123456u);
}

TEST(InvertedIndex, MapperUsesTaskAndOffset) {
  InvertedIndexMapper mapper;
  mapper.begin_task(mr::TaskInfo{3});
  RecordingSink sink;
  mapper.map(9, "hello hello", sink);
  ASSERT_EQ(sink.records.size(), 2u);
  std::vector<std::uint64_t> locations;
  postings::decode_into(sink.records[0].second, locations);
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0], postings::make_location(3, 9));
}

TEST(InvertedIndex, CombinerMergesAndSorts) {
  InvertedIndexCombiner combiner;
  std::vector<std::string> values(2);
  postings::encode(values[0], {50, 100});
  postings::encode(values[1], {10, 75});
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  combiner.reduce("w", stream, sink);
  ASSERT_EQ(sink.records.size(), 1u);
  std::vector<std::uint64_t> merged;
  postings::decode_into(sink.records[0].second, merged);
  EXPECT_EQ(merged, (std::vector<std::uint64_t>{10, 50, 75, 100}));
}

TEST(AccessLog, ParsesValidVisit) {
  const auto visit = parse_user_visit(
      "1.2.3.4|http://u.example.com/p.html|2008-3-4|123.45|Mozilla/5.0|USA|"
      "en|map|37");
  ASSERT_TRUE(visit.has_value());
  EXPECT_EQ(visit->source_ip, "1.2.3.4");
  EXPECT_EQ(visit->dest_url, "http://u.example.com/p.html");
  EXPECT_EQ(visit->ad_revenue_cents, 12345u);
}

TEST(AccessLog, RejectsMalformedVisits) {
  EXPECT_FALSE(parse_user_visit("").has_value());
  EXPECT_FALSE(parse_user_visit("a|b|c").has_value());
  EXPECT_FALSE(
      parse_user_visit("ip|url|d|notanumber|ua|c|l|s|1").has_value());
  EXPECT_FALSE(parse_user_visit("too|few|fields|here").has_value());
}

TEST(AccessLog, ParsesRanking) {
  const auto ranking = parse_ranking("http://u.example.com|42|300");
  ASSERT_TRUE(ranking.has_value());
  EXPECT_EQ(ranking->page_url, "http://u.example.com");
  EXPECT_EQ(ranking->page_rank, 42u);
  EXPECT_FALSE(parse_ranking("only|two").has_value());
}

TEST(AccessLog, RevenueParsingHandlesCents) {
  EXPECT_EQ(parse_user_visit("i|u|d|0.01|a|c|l|s|1")->ad_revenue_cents, 1u);
  EXPECT_EQ(parse_user_visit("i|u|d|10|a|c|l|s|1")->ad_revenue_cents, 1000u);
  EXPECT_EQ(parse_user_visit("i|u|d|1.5|a|c|l|s|1")->ad_revenue_cents, 150u);
}

TEST(AccessLogJoin, MapperTagsBothInputs) {
  AccessLogJoinMapper mapper;
  RecordingSink sink;
  mapper.map(0, "1.1.1.1|http://x.com|2008-1-1|5.00|ua|US|en|q|10", sink);
  mapper.map(1, "http://x.com|77|60", sink);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[0].first, "http://x.com");
  EXPECT_EQ(sink.records[0].second[0], 'V');
  EXPECT_EQ(sink.records[1].first, "http://x.com");
  EXPECT_EQ(sink.records[1].second[0], 'R');
}

TEST(AccessLogJoin, ReducerJoinsRegardlessOfValueOrder) {
  AccessLogJoinMapper mapper;
  for (const bool rank_first : {true, false}) {
    RecordingSink mapped;
    mapper.map(0, "9.9.9.9|http://x.com|2008-1-1|2.50|ua|US|en|q|10", mapped);
    mapper.map(1, "http://x.com|77|60", mapped);
    std::vector<std::string> values;
    if (rank_first) {
      values = {mapped.records[1].second, mapped.records[0].second};
    } else {
      values = {mapped.records[0].second, mapped.records[1].second};
    }
    mr::VectorValueStream<std::vector<std::string>> stream(values);
    RecordingSink joined;
    AccessLogJoinReducer reducer;
    reducer.reduce("http://x.com", stream, joined);
    ASSERT_EQ(joined.records.size(), 1u) << rank_first;
    EXPECT_EQ(joined.records[0].first, "9.9.9.9");
    EXPECT_EQ(joined.records[0].second, "2.50|77");
  }
}

TEST(AccessLogJoin, VisitsWithoutRankingAreDropped) {
  std::vector<std::string> values = {"V1.1.1.1|\x05"};  // visit only
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  AccessLogJoinReducer reducer;
  reducer.reduce("http://orphan.com", stream, sink);
  EXPECT_TRUE(sink.records.empty());
}

TEST(PageRank, MapperSplitsRankAcrossLinks) {
  PageRankMapper mapper;
  RecordingSink sink;
  mapper.map(0, "www.a.org\t1.000000\twww.b.org,www.c.org", sink);
  ASSERT_EQ(sink.records.size(), 3u);
  EXPECT_EQ(sink.records[0].first, "www.a.org");
  EXPECT_EQ(sink.records[0].second, "Gwww.b.org,www.c.org");
  EXPECT_EQ(sink.records[1].first, "www.b.org");
  EXPECT_EQ(sink.records[1].second.substr(0, 1), "R");
  EXPECT_NEAR(std::stod(sink.records[1].second.substr(1)), 0.5, 1e-6);
}

TEST(PageRank, CombinerSumsSharesAndForwardsGraph) {
  PageRankCombiner combiner;
  std::vector<std::string> values = {"R0.250000", "Glinks,here", "R0.125000"};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  combiner.reduce("www.x.org", stream, sink);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[0].second, "Glinks,here");
  EXPECT_NEAR(std::stod(sink.records[1].second.substr(1)), 0.375, 1e-6);
}

TEST(PageRank, ReducerAppliesDamping) {
  PageRankReducer reducer;
  std::vector<std::string> values = {"R1.000000", "Gwww.y.org"};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  reducer.reduce("www.x.org", stream, sink);
  ASSERT_EQ(sink.records.size(), 1u);
  const auto& out = sink.records[0].second;
  const auto tab = out.find('\t');
  EXPECT_NEAR(std::stod(out.substr(0, tab)), 0.15 + 0.85 * 1.0, 1e-6);
  EXPECT_EQ(out.substr(tab + 1), "www.y.org");
}

TEST(PageRank, DanglingTargetGetsEmptyAdjacency) {
  PageRankReducer reducer;
  std::vector<std::string> values = {"R0.500000"};
  mr::VectorValueStream<std::vector<std::string>> stream(values);
  RecordingSink sink;
  reducer.reduce("www.only-linked.org", stream, sink);
  ASSERT_EQ(sink.records.size(), 1u);
  const auto& out = sink.records[0].second;
  EXPECT_EQ(out.back(), '\t');  // rank followed by empty link list
}

TEST(SynText, CombineOutputSizeTracksStorageIntensity) {
  for (const double sigma : {0.0, 0.5, 1.0}) {
    SynTextParams params;
    params.storage_intensity = sigma;
    params.base_value_bytes = 10;
    SynTextCombiner combiner(params);
    std::vector<std::string> values = {std::string(10, 'a'),
                                       std::string(10, 'b'),
                                       std::string(10, 'c')};
    mr::VectorValueStream<std::vector<std::string>> stream(values);
    RecordingSink sink;
    combiner.reduce("k", stream, sink);
    ASSERT_EQ(sink.records.size(), 1u);
    const std::size_t expected =
        10 + static_cast<std::size_t>(sigma * (30 - 10));
    EXPECT_EQ(sink.records[0].second.size(), expected) << sigma;
  }
}

TEST(SynText, MapperRespectsValueSize) {
  SynTextParams params;
  params.base_value_bytes = 24;
  SynTextMapper mapper(params);
  RecordingSink sink;
  mapper.map(0, "one two", sink);
  ASSERT_EQ(sink.records.size(), 2u);
  EXPECT_EQ(sink.records[0].second.size(), 24u);
  EXPECT_EQ(sink.records[1].second.size(), 24u);
}

TEST(SynText, MapperIsDeterministic) {
  SynTextParams params;
  params.cpu_intensity = 2.0;
  SynTextMapper a(params);
  SynTextMapper b(params);
  RecordingSink sa;
  RecordingSink sb;
  a.map(0, "same input line", sa);
  b.map(0, "same input line", sb);
  EXPECT_EQ(sa.records, sb.records);
}

}  // namespace
}  // namespace textmr::apps
