#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cluster.hpp"

namespace textmr::sim {
namespace {

/// A WordCount-ish profile (hand-written, in the ballpark of real
/// measurements): ~1.6 bytes of map output per input byte, combine
/// shrinks spills ~6x, cheap map, sort-heavy support.
AppProfile wordcount_like() {
  AppProfile p;
  p.map_output_bytes = 1.6;
  p.spill_input_bytes = 1.6;
  p.spilled_bytes = 0.25;
  p.merged_bytes = 0.12;
  p.output_bytes = 0.05;
  p.produce_cpu_ns_per_input_byte = 40.0;
  p.consume_cpu_ns_per_spill_byte = 35.0;
  p.merge_cpu_ns_per_spilled_byte = 25.0;
  p.reduce_cpu_ns_per_shuffled_byte = 30.0;
  return p;
}

/// A WordPOSTag-ish profile: map() dominates everything.
AppProfile postag_like() {
  AppProfile p = wordcount_like();
  p.produce_cpu_ns_per_input_byte = 1500.0;  // CPU-bound map
  return p;
}

SimJobConfig job_8gb() {
  SimJobConfig job;
  job.input_bytes = 8.52e9;
  job.split_bytes = 128.0 * 1024 * 1024;
  job.num_reducers = 12;
  job.spill_buffer_bytes = 100.0 * 1024 * 1024;
  return job;
}

TEST(SimCluster, BasicShapeOfAJob) {
  const auto result = simulate_job(wordcount_like(), ClusterSpec{}, job_8gb());
  EXPECT_GT(result.total_s, 0.0);
  EXPECT_EQ(result.map_tasks, 64u);  // ceil(8.52e9 / 128MiB)
  EXPECT_EQ(result.map_waves, 6u);   // 64 tasks over 12 slots
  EXPECT_NEAR(result.total_s,
              ClusterSpec{}.job_overhead_s + result.map_phase_s +
                  result.reduce_phase_s,
              1e-9);
  EXPECT_GT(result.spills_per_task, 1u);
}

TEST(SimCluster, MoreNodesFinishFaster) {
  const auto profile = wordcount_like();
  ClusterSpec small;
  small.nodes = 6;
  ClusterSpec large;
  large.nodes = 20;
  const auto small_result = simulate_job(profile, small, job_8gb());
  const auto large_result = simulate_job(profile, large, job_8gb());
  EXPECT_LT(large_result.total_s, small_result.total_s);
}

TEST(SimCluster, SpillMatcherHelpsWordCountShape) {
  // Table III shape: SpillOpt alone gives WordCount a real speedup.
  auto job = job_8gb();
  const auto base = simulate_job(wordcount_like(), ClusterSpec{}, job);
  job.use_spill_matcher = true;
  const auto opt = simulate_job(wordcount_like(), ClusterSpec{}, job);
  EXPECT_LT(opt.total_s, base.total_s * 0.95);
}

TEST(SimCluster, SpillMatcherBarelyMattersWhenMapBound) {
  // WordPOSTag shape: map() dominates, support idles regardless; the
  // matcher cannot create work to overlap.
  auto job = job_8gb();
  const auto base = simulate_job(postag_like(), ClusterSpec{}, job);
  job.use_spill_matcher = true;
  const auto opt = simulate_job(postag_like(), ClusterSpec{}, job);
  EXPECT_GT(opt.total_s, base.total_s * 0.98);
  EXPECT_GT(base.support_idle_fraction, 0.8);
}

TEST(SimCluster, FreqBufferingProfileShrinkageSpeedsJob) {
  // FreqOpt enters the simulator as a measured-profile change: fewer
  // spill-input bytes and spilled bytes (absorbed by the table), at a
  // small produce-side overhead. The simulated job must get faster.
  auto base_profile = wordcount_like();
  auto freq_profile = base_profile;
  freq_profile.spill_input_bytes *= 0.35;  // 65% absorbed
  freq_profile.spilled_bytes *= 0.6;
  freq_profile.produce_cpu_ns_per_input_byte *= 1.1;  // hashing overhead

  auto job = job_8gb();
  const auto base = simulate_job(base_profile, ClusterSpec{}, job);
  auto freq_job = job;
  freq_job.freq_table_fraction = 0.3;
  const auto freq = simulate_job(freq_profile, ClusterSpec{}, freq_job);
  EXPECT_LT(freq.total_s, base.total_s * 0.95);
}

TEST(SimCluster, ShuffleVolumeDrivesReducePhase) {
  auto light = wordcount_like();
  auto heavy = wordcount_like();
  heavy.merged_bytes = 1.2;  // InvertedIndex-like shuffle volume
  heavy.spilled_bytes = 1.4;
  const auto light_result = simulate_job(light, ClusterSpec{}, job_8gb());
  const auto heavy_result = simulate_job(heavy, ClusterSpec{}, job_8gb());
  EXPECT_GT(heavy_result.reduce_phase_s, light_result.reduce_phase_s * 3);
}

TEST(SimCluster, IdleFractionsFollowRateBalance) {
  // Support-bound profile: map idles; map-bound profile: support idles.
  auto support_bound = wordcount_like();
  support_bound.consume_cpu_ns_per_spill_byte = 200.0;
  const auto a = simulate_job(support_bound, ClusterSpec{}, job_8gb());
  EXPECT_GT(a.map_idle_fraction, 0.3);

  const auto b = simulate_job(postag_like(), ClusterSpec{}, job_8gb());
  EXPECT_LT(b.map_idle_fraction, 0.05);
  EXPECT_GT(b.support_idle_fraction, 0.8);
}

TEST(SimCluster, TaskStartupDominatesTinyJobs) {
  auto job = job_8gb();
  job.input_bytes = 1e6;  // single tiny map task
  const auto result = simulate_job(wordcount_like(), ClusterSpec{}, job);
  EXPECT_GT(ClusterSpec{}.task_startup_s / result.map_task_wall_s, 0.5);
}

TEST(SimCluster, RejectsEmptyJob) {
  SimJobConfig job;
  job.input_bytes = 0;
  EXPECT_THROW(simulate_job(wordcount_like(), ClusterSpec{}, job),
               InternalError);
}

TEST(SimCluster, CpuScaleScalesComputeBoundJobs) {
  ClusterSpec fast;
  fast.cpu_scale = 1.0;
  ClusterSpec slow;
  slow.cpu_scale = 4.0;
  const auto fast_result = simulate_job(postag_like(), fast, job_8gb());
  const auto slow_result = simulate_job(postag_like(), slow, job_8gb());
  // WordPOSTag is compute-bound: 4x slower CPU ~ 4x slower map phase.
  EXPECT_GT(slow_result.map_phase_s, fast_result.map_phase_s * 3.0);
}

}  // namespace
}  // namespace textmr::sim
