#pragma once

// Shared test utilities: sequential reference implementations of the
// benchmark applications and helpers to run jobs / read outputs.

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "textmr.hpp"

namespace textmr::test {

/// Reads every part file of a job result into an ordered key -> value map.
/// Duplicate keys across partitions would indicate a partitioner bug, so
/// the helper asserts uniqueness via ::testing::AssertionFailure-free
/// logic (the caller checks size).
inline std::map<std::string, std::string> read_outputs(
    const std::vector<std::filesystem::path>& parts) {
  std::map<std::string, std::string> result;
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      if (tab == std::string::npos) continue;
      result.emplace(line.substr(0, tab), line.substr(tab + 1));
    }
  }
  return result;
}

/// Checks that keys within each part file appear in sorted order.
inline bool part_files_sorted(
    const std::vector<std::filesystem::path>& parts) {
  for (const auto& part : parts) {
    std::ifstream in(part);
    std::string line;
    std::string previous;
    bool first = true;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      std::string key = line.substr(0, tab);
      if (!first && key < previous) return false;
      previous = std::move(key);
      first = false;
    }
  }
  return true;
}

/// Sequential WordCount over a file, the oracle for the MR version.
inline std::map<std::string, std::uint64_t> reference_wordcount(
    const std::string& path) {
  std::map<std::string, std::uint64_t> counts;
  std::ifstream in(path);
  std::string line;
  std::string scratch;
  while (std::getline(in, line)) {
    apps::for_each_token(line, scratch, [&](std::string_view token) {
      counts[std::string(token)] += 1;
    });
  }
  return counts;
}

/// Sequential inverted index: word -> sorted locations, using the same
/// location scheme as the MR app for a given split <-> task mapping.
inline std::map<std::string, std::vector<std::uint64_t>>
reference_inverted_index(const std::vector<io::InputSplit>& splits) {
  std::map<std::string, std::vector<std::uint64_t>> index;
  std::string scratch;
  for (std::uint32_t task = 0; task < splits.size(); ++task) {
    io::LineReader reader(splits[task]);
    std::uint64_t ordinal = 0;
    while (auto line = reader.next_line()) {
      const std::uint64_t location =
          apps::postings::make_location(task, ordinal);
      apps::for_each_token(*line, scratch, [&](std::string_view token) {
        index[std::string(token)].push_back(location);
      });
      ++ordinal;
    }
  }
  for (auto& [word, locations] : index) {
    std::sort(locations.begin(), locations.end());
  }
  return index;
}

/// Sequential AccessLogSum: destURL -> total ad revenue in cents.
inline std::map<std::string, std::uint64_t> reference_access_log_sum(
    const std::string& path) {
  std::map<std::string, std::uint64_t> totals;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    auto visit = apps::parse_user_visit(line);
    if (!visit.has_value()) continue;
    totals[std::string(visit->dest_url)] += visit->ad_revenue_cents;
  }
  return totals;
}

/// A ready-to-run JobSpec for an AppBundle over prepared splits.
inline mr::JobSpec make_job(const apps::AppBundle& app,
                            std::vector<io::InputSplit> splits,
                            const std::filesystem::path& scratch,
                            const std::filesystem::path& output,
                            std::uint32_t num_reducers = 3) {
  mr::JobSpec spec;
  spec.name = app.name;
  spec.inputs = std::move(splits);
  spec.mapper = app.mapper;
  spec.reducer = app.reducer;
  spec.combiner = app.combiner;
  spec.num_reducers = num_reducers;
  spec.scratch_dir = scratch;
  spec.output_dir = output;
  spec.spill_buffer_bytes = 1u << 20;  // small, to force multiple spills
  return spec;
}

}  // namespace textmr::test
