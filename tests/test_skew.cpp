#include <gtest/gtest.h>

// Skew-aware partitioning battery (DESIGN.md §12): seeded fuzz over the
// kSkewPlan wire codec and the segment-file format (empty keys, embedded
// NULs, >64 KiB keys/blobs, truncation), unit coverage of the
// SkewAwarePartitioner routing rules (placement, split round-robin,
// hash fallback), determinism and threshold behavior of
// build_skew_plan, the split-merge end-to-end invariant (byte-identical
// to a hash-partitioner run, validated against the ExactCounter
// oracle), bin-packing of input files, and JobSpec validation. Fuzz
// iterations derive from a fixed base seed so failures replay
// deterministically; TEXTMR_FUZZ_ITERS multiplies the counts.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/protocol.hpp"
#include "common/rng.hpp"
#include "helpers.hpp"
#include "mr/task_runner.hpp"

namespace textmr {
namespace {

std::size_t fuzz_scale() {
  if (const char* env = std::getenv("TEXTMR_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v > 100 ? 100 : v);
  }
  return 1;
}

constexpr std::uint64_t kBaseSeed = 0x736b657732303134ull;  // "skew2014"

/// Adversarial key: empty, NUL-laden binary, 8-byte, >64 KiB (a heavy
/// key is arbitrary user data — nothing bounds its length), or plain.
std::string fuzz_key(Xoshiro256& rng) {
  switch (rng.next_below(6)) {
    case 0:
      return "";
    case 1: {
      std::string key(1 + rng.next_below(12), '\0');
      for (char& c : key) c = static_cast<char>(rng.next_below(256));
      return key;
    }
    case 2: {
      std::string key(8, 'p');
      key[7] = static_cast<char>(rng.next_below(256));
      return key;
    }
    case 3: {
      // Larger than the segment reader's 64 KiB read chunk.
      std::string key((1u << 16) + 1 + rng.next_below(4096), 'K');
      for (std::size_t i = 0; i < key.size(); i += 997) {
        key[i] = static_cast<char>(rng.next_below(256));
      }
      return key;
    }
    case 4: {
      std::string key(9 + rng.next_below(200), 'k');
      for (char& c : key) c = static_cast<char>('a' + rng.next_below(26));
      return key;
    }
    default:
      return "w" + std::to_string(rng.next_below(64));
  }
}

std::string fuzz_blob(Xoshiro256& rng, bool allow_huge) {
  std::size_t size = 0;
  switch (rng.next_below(allow_huge ? 4 : 3)) {
    case 0:
      return "";
    case 1:
      size = 1 + rng.next_below(32);
      break;
    case 2:
      size = 1 + rng.next_below(2048);
      break;
    default:
      size = (1u << 16) + 1 + rng.next_below(1u << 13);
      break;
  }
  std::string blob(size, '\0');
  for (std::size_t i = 0; i < size; i += 1 + rng.next_below(9)) {
    blob[i] = static_cast<char>(rng.next_below(256));
  }
  return blob;
}

// ---- kSkewPlan wire codec --------------------------------------------------

mr::SkewPlan decode_payload(std::string_view payload) {
  cluster::WireReader r(payload);
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(cluster::MsgType::kSkewPlan));
  return cluster::decode_skew_plan(r);
}

TEST(SkewPlanCodec, RoundTripAdversarialPlans) {
  for (std::size_t iter = 0; iter < 8 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + iter);
    mr::SkewPlan plan;
    plan.num_canonical = static_cast<std::uint32_t>(1 + rng.next_below(16));
    const std::size_t n = rng.next_below(24);  // 0 = empty plan
    std::uint32_t next_physical = plan.num_canonical;
    for (std::size_t i = 0; i < n; ++i) {
      mr::SkewPlan::Entry entry;
      entry.key = fuzz_key(rng);
      entry.mode = rng.next_below(2) == 0 ? mr::SkewPlan::Mode::kPlace
                                          : mr::SkewPlan::Mode::kSplit;
      entry.num_shares = entry.mode == mr::SkewPlan::Mode::kPlace
                             ? 1
                             : static_cast<std::uint32_t>(2 + rng.next_below(6));
      entry.first_physical = next_physical;
      next_physical += entry.num_shares;
      plan.entries.push_back(std::move(entry));
    }

    const std::string payload = cluster::encode_skew_plan(plan);
    const mr::SkewPlan decoded = decode_payload(payload);
    ASSERT_EQ(decoded.num_canonical, plan.num_canonical);
    ASSERT_EQ(decoded.entries.size(), plan.entries.size());
    for (std::size_t i = 0; i < plan.entries.size(); ++i) {
      ASSERT_EQ(decoded.entries[i].key, plan.entries[i].key) << i;
      ASSERT_EQ(decoded.entries[i].mode, plan.entries[i].mode) << i;
      ASSERT_EQ(decoded.entries[i].first_physical,
                plan.entries[i].first_physical)
          << i;
      ASSERT_EQ(decoded.entries[i].num_shares, plan.entries[i].num_shares)
          << i;
    }
    // Re-encoding the decoded plan must reproduce the payload bit-for-bit
    // (the broadcast is the cross-engine determinism contract).
    EXPECT_EQ(cluster::encode_skew_plan(decoded), payload);
  }
}

TEST(SkewPlanCodec, EveryTruncatedPrefixThrows) {
  mr::SkewPlan plan;
  plan.num_canonical = 3;
  plan.entries.push_back({"heavy", mr::SkewPlan::Mode::kPlace, 3, 1});
  plan.entries.push_back({std::string("\x00key", 4), mr::SkewPlan::Mode::kSplit,
                          4, 2});
  const std::string payload = cluster::encode_skew_plan(plan);

  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(decode_payload(std::string_view(payload.data(), cut)),
                 FormatError)
        << "cut=" << cut;
  }
}

TEST(SkewPlanCodec, BadEntryModeThrows) {
  cluster::WireWriter w;
  w.u8(static_cast<std::uint8_t>(cluster::MsgType::kSkewPlan));
  w.u32(2);  // num_canonical
  w.u32(1);  // entries
  w.str("heavy");
  w.u8(7);  // invalid mode
  w.u32(2);
  w.u32(1);
  EXPECT_THROW(decode_payload(w.take()), FormatError);
}

TEST(SkewPlanCodec, TrailingBytesThrow) {
  mr::SkewPlan plan;
  plan.num_canonical = 2;
  plan.entries.push_back({"heavy", mr::SkewPlan::Mode::kPlace, 2, 1});
  std::string payload = cluster::encode_skew_plan(plan);
  payload.push_back('\0');
  EXPECT_THROW(decode_payload(payload), FormatError);
}

// ---- SkewAwarePartitioner routing -----------------------------------------

TEST(SkewPartitioner, NullAndEmptyPlansAreExactlyHashPartitioning) {
  const std::string keys[] = {"", std::string("\x00\x01", 2), "the",
                              "prefix08", std::string(70000, 'K'), "zzz"};
  mr::HashPartitioner hash(5);
  mr::SkewAwarePartitioner null_plan(5, nullptr, 3);
  mr::SkewPlan empty;
  empty.num_canonical = 5;
  mr::SkewAwarePartitioner empty_plan(5, &empty, 3);

  EXPECT_EQ(null_plan.num_partitions(), 5u);
  EXPECT_EQ(empty_plan.num_partitions(), 5u);
  for (const auto& key : keys) {
    const std::uint32_t expected = hash(key);
    EXPECT_EQ(null_plan(key), expected) << key.size();
    EXPECT_EQ(empty_plan(key), expected) << key.size();
  }
}

mr::SkewPlan two_entry_plan() {
  mr::SkewPlan plan;
  plan.num_canonical = 4;
  plan.entries.push_back({"apple", mr::SkewPlan::Mode::kPlace, 4, 1});
  plan.entries.push_back({"zebra", mr::SkewPlan::Mode::kSplit, 5, 3});
  return plan;
}

TEST(SkewPartitioner, PlacedKeysRouteToTheirDedicatedPartition) {
  const mr::SkewPlan plan = two_entry_plan();
  EXPECT_EQ(plan.num_physical(), 8u);
  for (const std::uint32_t task : {0u, 1u, 7u}) {
    mr::SkewAwarePartitioner part(4, &plan, task);
    EXPECT_EQ(part.num_partitions(), 8u);
    // Placement ignores the task id — one dedicated partition, always.
    EXPECT_EQ(part("apple"), 4u) << task;
    EXPECT_EQ(part("apple"), 4u) << task;
  }
}

TEST(SkewPartitioner, SplitKeysRoundRobinSeededByTaskId) {
  const mr::SkewPlan plan = two_entry_plan();
  {
    mr::SkewAwarePartitioner part(4, &plan, /*task_id=*/0);
    EXPECT_EQ(part("zebra"), 5u);
    EXPECT_EQ(part("zebra"), 6u);
    EXPECT_EQ(part("zebra"), 7u);
    EXPECT_EQ(part("zebra"), 5u);  // wraps
  }
  {
    // task 1 starts one share later, so shares fill evenly across tasks.
    mr::SkewAwarePartitioner part(4, &plan, /*task_id=*/1);
    EXPECT_EQ(part("zebra"), 6u);
    EXPECT_EQ(part("zebra"), 7u);
    EXPECT_EQ(part("zebra"), 5u);
  }
}

TEST(SkewPartitioner, NonHeavyKeysFallBackToHash) {
  const mr::SkewPlan plan = two_entry_plan();
  mr::HashPartitioner hash(4);
  mr::SkewAwarePartitioner part(4, &plan, 2);
  for (const std::string key : {"banana", "zeb", "zebras", "appl", ""}) {
    EXPECT_EQ(part(key), hash(key)) << key;
    EXPECT_LT(part(key), 4u) << key;
  }
}

TEST(SkewPartitioner, PlanLookupHelpers) {
  const mr::SkewPlan plan = two_entry_plan();
  ASSERT_NE(plan.find("zebra"), nullptr);
  EXPECT_EQ(plan.find("zebra")->mode, mr::SkewPlan::Mode::kSplit);
  EXPECT_EQ(plan.find("aardvark"), nullptr);
  EXPECT_EQ(plan.entry_for_partition(3), nullptr);  // canonical
  ASSERT_NE(plan.entry_for_partition(4), nullptr);
  EXPECT_EQ(plan.entry_for_partition(4)->key, "apple");
  for (const std::uint32_t p : {5u, 6u, 7u}) {
    ASSERT_NE(plan.entry_for_partition(p), nullptr) << p;
    EXPECT_EQ(plan.entry_for_partition(p)->key, "zebra") << p;
  }
}

// ---- build_skew_plan -------------------------------------------------------

mr::JobSpec corpus_job(const TempDir& dir, double alpha,
                       std::uint32_t num_reducers,
                       const apps::AppBundle& app) {
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 15000;
  corpus_spec.vocabulary = 500;
  corpus_spec.alpha = alpha;
  corpus_spec.seed = 4242;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(app, io::make_splits(corpus.string(), 48 * 1024),
                             dir.file("s"), dir.file("o"), num_reducers);
  spec.skew.enabled = true;
  spec.skew.top_k = 32;
  spec.skew.sample_bytes = 1u << 20;
  spec.skew.place_threshold = 0.3;
  spec.skew.split_threshold = 0.8;
  spec.skew.max_split_shares = 3;
  return spec;
}

TEST(SkewPlanBuild, DeterministicWithSplitOnSkewedCorpus) {
  TempDir dir;
  const auto spec = corpus_job(dir, /*alpha=*/1.5, 3, apps::wordcount_app());
  const mr::SkewPlan plan = mr::build_skew_plan(spec);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan.num_canonical, 3u);

  bool has_split = false;
  // Which modes touch each dedicated partition: split shares must own
  // their partition exclusively; placed keys may share a bin.
  std::map<std::uint32_t, std::vector<mr::SkewPlan::Mode>> hosted;
  for (std::size_t i = 0; i < plan.entries.size(); ++i) {
    const auto& entry = plan.entries[i];
    // Entries are key-sorted; every dedicated partition id sits in
    // [num_canonical, num_physical).
    if (i > 0) {
      EXPECT_LT(plan.entries[i - 1].key, entry.key);
    }
    EXPECT_GE(entry.first_physical, plan.num_canonical);
    EXPECT_LE(entry.first_physical + entry.num_shares, plan.num_physical());
    for (std::uint32_t s = 0; s < entry.num_shares; ++s) {
      hosted[entry.first_physical + s].push_back(entry.mode);
    }
    if (entry.mode == mr::SkewPlan::Mode::kSplit) {
      has_split = true;
      EXPECT_GE(entry.num_shares, 2u);
      EXPECT_LE(entry.num_shares, 3u);
    } else {
      EXPECT_EQ(entry.num_shares, 1u);
    }
  }
  for (const auto& [partition, modes] : hosted) {
    if (std::count(modes.begin(), modes.end(), mr::SkewPlan::Mode::kSplit) >
        0) {
      EXPECT_EQ(modes.size(), 1u) << "split share shares partition "
                                  << partition;
    }
    // entry_for_partition resolves every hosted partition to some entry.
    EXPECT_NE(plan.entry_for_partition(partition), nullptr) << partition;
  }
  // α=1.5's top word carries ~40% of the mass: weight ≈ 1.2 with three
  // reducers, past the 0.8 split bar.
  EXPECT_TRUE(has_split);

  // Same spec => byte-identical plan (the determinism contract).
  const mr::SkewPlan again = mr::build_skew_plan(spec);
  EXPECT_EQ(cluster::encode_skew_plan(again), cluster::encode_skew_plan(plan));
}

TEST(SkewPlanBuild, FlatCorpusYieldsEmptyPlan) {
  TempDir dir;
  const auto spec = corpus_job(dir, /*alpha=*/0.7, 3, apps::wordcount_app());
  const mr::SkewPlan plan = mr::build_skew_plan(spec);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.num_physical(), 3u);
}

TEST(SkewPlanBuild, SplitDemotedToPlacementWithoutCombiner) {
  TempDir dir;
  auto app = apps::wordcount_app();
  app.combiner = nullptr;  // and no skew.merge_combiner either
  const auto spec = corpus_job(dir, /*alpha=*/1.5, 3, app);
  const mr::SkewPlan plan = mr::build_skew_plan(spec);
  ASSERT_FALSE(plan.empty());
  for (const auto& entry : plan.entries) {
    EXPECT_EQ(entry.mode, mr::SkewPlan::Mode::kPlace) << entry.key;
    EXPECT_EQ(entry.num_shares, 1u) << entry.key;
  }
}

TEST(SkewPlanBuild, MergeCombinerEnablesSplitting) {
  TempDir dir;
  auto app = apps::wordcount_app();
  app.combiner = nullptr;
  auto spec = corpus_job(dir, /*alpha=*/1.5, 3, app);
  spec.skew.merge_combiner = [] {
    return std::make_unique<apps::WordCountCombiner>();
  };
  const mr::SkewPlan plan = mr::build_skew_plan(spec);
  ASSERT_FALSE(plan.empty());
  bool has_split = false;
  for (const auto& entry : plan.entries) {
    has_split |= entry.mode == mr::SkewPlan::Mode::kSplit;
  }
  EXPECT_TRUE(has_split);
}

TEST(SkewPlanBuild, DedicatedPartitionBudgetCapsAllHeavyCorpus) {
  // A tiny uniform vocabulary with a near-zero placement bar makes every
  // word heavy; the dedicated-partition budget (= num_reducers by
  // default) must cap the fan-out instead of growing without bound.
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 6000;
  corpus_spec.vocabulary = 12;
  corpus_spec.alpha = 0.1;
  corpus_spec.seed = 99;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 48 * 1024),
                             dir.file("s"), dir.file("o"), 4);
  spec.skew.enabled = true;
  spec.skew.place_threshold = 0.05;
  spec.skew.split_threshold = 10.0;  // placement only
  const mr::SkewPlan plan = mr::build_skew_plan(spec);
  ASSERT_FALSE(plan.empty());
  EXPECT_LE(plan.num_physical() - plan.num_canonical, 4u);
}

TEST(SkewPlanBuild, SingleReducerDisablesSkew) {
  TempDir dir;
  const auto spec = corpus_job(dir, /*alpha=*/1.5, 1, apps::wordcount_app());
  EXPECT_TRUE(mr::build_skew_plan(spec).empty());
}

// ---- segment files ---------------------------------------------------------

TEST(SkewSegmentFile, RoundTripAdversarialEntries) {
  for (std::size_t iter = 0; iter < 6 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + 500 + iter);
    TempDir dir("textmr-skew-fuzz");
    const std::string path = dir.file("seg").string();

    std::vector<std::pair<std::string, std::string>> expected;
    std::vector<mr::SegmentKind> kinds;
    mr::SegmentWriter writer(path);
    const std::size_t n = 1 + rng.next_below(120);
    for (std::size_t i = 0; i < n; ++i) {
      const auto kind = rng.next_below(2) == 0 ? mr::SegmentKind::kOutput
                                               : mr::SegmentKind::kPartial;
      std::string key = fuzz_key(rng);
      std::string blob = fuzz_blob(rng, /*allow_huge=*/i % 29 == 0);
      writer.add(kind, key, blob);
      kinds.push_back(kind);
      expected.emplace_back(std::move(key), std::move(blob));
    }
    // A final entry with a non-empty blob, so the truncation pass below
    // always cuts inside a payload rather than at an entry boundary.
    writer.add(mr::SegmentKind::kOutput, "sentinel", "tail");
    kinds.push_back(mr::SegmentKind::kOutput);
    expected.emplace_back("sentinel", "tail");
    const std::uint64_t bytes = writer.finish();
    EXPECT_GT(bytes, 0u);

    mr::SegmentReader reader(path);
    std::size_t i = 0;
    while (auto entry = reader.next()) {
      ASSERT_LT(i, expected.size());
      ASSERT_EQ(entry->kind, kinds[i]) << i;
      ASSERT_EQ(entry->key, expected[i].first) << i;
      ASSERT_EQ(entry->blob, expected[i].second) << i;
      ++i;
    }
    ASSERT_EQ(i, expected.size());

    // Truncating the final blob must throw, never silently decode.
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_EQ(data.size(), bytes);
    const std::string cut_path = dir.file("cut").string();
    std::ofstream(cut_path, std::ios::binary)
        << std::string_view(data.data(), data.size() - 1);
    EXPECT_THROW(
        {
          mr::SegmentReader cut(cut_path);
          while (cut.next()) {
          }
        },
        FormatError);
  }
}

TEST(SkewSegmentFile, BadEntryKindThrows) {
  TempDir dir;
  const std::string path = dir.file("seg").string();
  std::ofstream(path, std::ios::binary) << "\x07rest";
  mr::SegmentReader reader(path);
  EXPECT_THROW(reader.next(), FormatError);
}

TEST(SkewSegmentFile, PartialValueBlobRoundTrip) {
  for (std::size_t iter = 0; iter < 8 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + 900 + iter);
    std::string blob;
    std::vector<std::string> expected;
    const std::size_t n = rng.next_below(40);
    for (std::size_t i = 0; i < n; ++i) {
      std::string value = fuzz_blob(rng, /*allow_huge=*/i % 13 == 0);
      mr::append_partial_value(blob, value);
      expected.push_back(std::move(value));
    }
    mr::append_partial_value(blob, "tail");  // non-empty terminator
    expected.emplace_back("tail");

    const auto values = mr::decode_partial_values(blob);
    ASSERT_EQ(values.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(values[i], expected[i]) << i;
    }
    EXPECT_THROW(
        mr::decode_partial_values(
            std::string_view(blob.data(), blob.size() - 1)),
        FormatError);
  }
}

// ---- split-merge end-to-end ------------------------------------------------

TEST(SkewEndToEnd, SplitMergeMatchesHashRunAndExactOracle) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 20000;
  corpus_spec.vocabulary = 500;
  corpus_spec.alpha = 1.5;
  corpus_spec.seed = 77;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  const auto splits = io::make_splits(corpus.string(), 32 * 1024);

  // No map-side combiner: the split shares and the finalize merge run on
  // the dedicated merge_combiner alone — the skew battery configuration.
  auto app = apps::wordcount_app();
  app.combiner = nullptr;

  auto hash_spec = test::make_job(app, splits, dir.file("hs"), dir.file("ho"));
  auto skew_spec = test::make_job(app, splits, dir.file("ss"), dir.file("so"));
  skew_spec.skew.enabled = true;
  skew_spec.skew.top_k = 32;
  skew_spec.skew.place_threshold = 0.3;
  skew_spec.skew.split_threshold = 0.8;
  skew_spec.skew.max_split_shares = 3;
  skew_spec.skew.merge_combiner = [] {
    return std::make_unique<apps::WordCountCombiner>();
  };

  // Sanity: this corpus really exercises the split path.
  const mr::SkewPlan plan = mr::build_skew_plan(skew_spec);
  ASSERT_FALSE(plan.empty());
  bool has_split = false;
  for (const auto& entry : plan.entries) {
    has_split |= entry.mode == mr::SkewPlan::Mode::kSplit;
  }
  ASSERT_TRUE(has_split);

  mr::LocalEngine engine;
  const auto hash_result = engine.run(hash_spec);
  const auto skew_result = engine.run(skew_spec);

  // The layout invariant: canonical part files, byte for byte.
  ASSERT_EQ(skew_result.outputs.size(), hash_result.outputs.size());
  for (std::size_t i = 0; i < hash_result.outputs.size(); ++i) {
    std::ifstream a(hash_result.outputs[i], std::ios::binary);
    std::ifstream b(skew_result.outputs[i], std::ios::binary);
    std::string bytes_a((std::istreambuf_iterator<char>(a)),
                        std::istreambuf_iterator<char>());
    std::string bytes_b((std::istreambuf_iterator<char>(b)),
                        std::istreambuf_iterator<char>());
    ASSERT_EQ(bytes_b, bytes_a) << "part " << i;
  }
  EXPECT_TRUE(test::part_files_sorted(skew_result.outputs));

  // The skew run really ran extra physical reduce tasks and recorded the
  // per-partition byte statistics the analyzer consumes.
  EXPECT_EQ(hash_result.metrics.reduce_tasks, 3u);
  EXPECT_EQ(skew_result.metrics.reduce_tasks, plan.num_physical());
  EXPECT_GT(skew_result.metrics.reduce_tasks, 3u);
  EXPECT_GT(skew_result.metrics.partition_bytes_max, 0u);
  EXPECT_GE(skew_result.metrics.partition_skew_ratio(), 1.0);

  // Ground truth: the ExactCounter oracle over the raw token stream.
  sketch::ExactCounter counter;
  std::ifstream in(corpus);
  std::string line;
  std::string scratch;
  while (std::getline(in, line)) {
    apps::for_each_token(line, scratch,
                         [&](std::string_view token) { counter.offer(token); });
  }
  const auto actual = test::read_outputs(skew_result.outputs);
  ASSERT_EQ(actual.size(), counter.distinct());
  for (const auto& [word, count] : actual) {
    EXPECT_EQ(count, std::to_string(counter.count(word))) << word;
  }
}

// ---- bin-packing of input files --------------------------------------------

std::filesystem::path write_file(const TempDir& dir, const std::string& name,
                                 std::size_t bytes) {
  const auto path = dir.file(name);
  std::ofstream out(path, std::ios::binary);
  out << std::string(bytes, 'x');
  return path;
}

TEST(PackInputFiles, RejectsZeroTasksAndMissingFiles) {
  TempDir dir;
  const auto a = write_file(dir, "a", 100);
  EXPECT_THROW(mr::pack_input_files({a.string()}, 0), ConfigError);
  EXPECT_THROW(mr::pack_input_files({dir.file("missing").string()}, 2),
               IoError);
}

TEST(PackInputFiles, EmptyFilesGetOneEmptySplitEach) {
  TempDir dir;
  const auto a = write_file(dir, "a", 0);
  const auto b = write_file(dir, "b", 0);
  const auto splits = mr::pack_input_files({a.string(), b.string()}, 4);
  ASSERT_EQ(splits.size(), 2u);
  for (const auto& split : splits) {
    EXPECT_EQ(split.offset, 0u);
    EXPECT_EQ(split.length, 0u);
  }
}

TEST(PackInputFiles, ProportionalChunksCoverEachFileContiguously) {
  TempDir dir;
  const auto big = write_file(dir, "big", 100000);
  const auto small = write_file(dir, "small", 10000);
  const auto splits =
      mr::pack_input_files({big.string(), small.string()}, 4);

  // target = 110000/4 = 27500: the big file splits into ~4 chunks, the
  // small one stays whole — bigger files get more tasks.
  std::map<std::string, std::vector<io::InputSplit>> by_file;
  for (const auto& split : splits) by_file[split.path].push_back(split);
  ASSERT_EQ(by_file.size(), 2u);
  EXPECT_GT(by_file[big.string()].size(), by_file[small.string()].size());
  EXPECT_EQ(by_file[small.string()].size(), 1u);

  const std::map<std::string, std::uint64_t> sizes = {
      {big.string(), 100000}, {small.string(), 10000}};
  for (auto& [path, file_splits] : by_file) {
    std::sort(file_splits.begin(), file_splits.end(),
              [](const io::InputSplit& x, const io::InputSplit& y) {
                return x.offset < y.offset;
              });
    std::uint64_t next = 0;
    for (const auto& split : file_splits) {
      EXPECT_EQ(split.offset, next) << path;
      EXPECT_GT(split.length, 0u) << path;
      next = split.offset + split.length;
    }
    EXPECT_EQ(next, sizes.at(path)) << path;
  }
}

TEST(PackInputFiles, MoreFilesThanTasksDegradesToOneSplitPerFile) {
  TempDir dir;
  std::vector<std::string> paths;
  for (int i = 0; i < 3; ++i) {
    paths.push_back(write_file(dir, "f" + std::to_string(i), 5000).string());
  }
  const auto splits = mr::pack_input_files(paths, 1);
  ASSERT_EQ(splits.size(), 3u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(splits[i].path, paths[i]);
    EXPECT_EQ(splits[i].offset, 0u);
    EXPECT_EQ(splits[i].length, 5000u);
  }
}

// ---- JobSpec validation ----------------------------------------------------

TEST(SkewValidate, RejectsInvalidSkewConfigs) {
  TempDir dir;
  const auto base = corpus_job(dir, 1.1, 3, apps::wordcount_app());
  EXPECT_NO_THROW(mr::validate_job(base));

  auto hash_grouping = base;
  hash_grouping.grouping = mr::Grouping::kHash;
  EXPECT_THROW(mr::validate_job(hash_grouping), ConfigError);

  auto zero_place = base;
  zero_place.skew.place_threshold = 0.0;
  EXPECT_THROW(mr::validate_job(zero_place), ConfigError);

  auto inverted = base;
  inverted.skew.place_threshold = 0.9;
  inverted.skew.split_threshold = 0.5;
  EXPECT_THROW(mr::validate_job(inverted), ConfigError);

  auto one_share = base;
  one_share.skew.max_split_shares = 1;
  EXPECT_THROW(mr::validate_job(one_share), ConfigError);
}

}  // namespace
}  // namespace textmr
