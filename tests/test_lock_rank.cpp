// Lock-rank checker tests (DESIGN.md section 7): correct-order
// acquisition passes, inversions and self-locks abort deterministically
// with a report naming both locks, and every rank band in the hierarchy
// has a name. The death tests only exist when the checker is compiled in
// (TEXTMR_LOCK_RANK_CHECK=ON, the default outside Release builds).

#include "common/mutex.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/logging.hpp"

namespace textmr {
namespace {

// Deliberately acquires `mu` twice so the runtime checker aborts; the
// static analysis would (correctly) reject this at compile time, which is
// exactly why it needs the escape hatch.
void double_lock(Mutex& mu) TEXTMR_NO_THREAD_SAFETY_ANALYSIS {
  mu.lock();
  mu.lock();
}

TEST(LockRankTest, EveryRankBandHasAName) {
  const LockRank all[] = {
      LockRank::kEngine,      LockRank::kCluster,   LockRank::kMapTask,
      LockRank::kFreqBuf,     LockRank::kSpillBuffer, LockRank::kTempDir,
      LockRank::kFailpoint,   LockRank::kTrace,     LockRank::kLogging,
  };
  std::set<std::uint32_t> seen;
  for (LockRank rank : all) {
    EXPECT_STRNE(lock_rank_name(rank), "unknown")
        << "rank " << static_cast<std::uint32_t>(rank);
    EXPECT_TRUE(seen.insert(static_cast<std::uint32_t>(rank)).second)
        << "duplicate rank value";
  }
  EXPECT_STREQ(lock_rank_name(static_cast<LockRank>(1)), "unknown");
}

TEST(LockRankTest, IncreasingOrderPasses) {
  Mutex outer(LockRank::kEngine, "test.outer");
  Mutex inner(LockRank::kSpillBuffer, "test.inner");
  Mutex leaf(LockRank::kLogging, "test.leaf");
  {
    MutexLock a(outer);
    MutexLock b(inner);
    MutexLock c(leaf);
  }
  // Re-acquiring after release is fine, as is skipping bands.
  {
    MutexLock c(leaf);
  }
  {
    MutexLock a(outer);
    MutexLock c(leaf);
  }
}

TEST(LockRankTest, CondVarWaitKeepsHeldStackConsistent) {
  Mutex mu(LockRank::kSpillBuffer, "test.cv_mu");
  CondVar cv;
  bool ready = false;
  std::thread signaller([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  }
  signaller.join();
  // After the wait re-acquired and the scope released, nothing is held.
  EXPECT_EQ(held_lock_count(), 0u);
}

#if TEXTMR_LOCK_RANK_CHECKS

TEST(LockRankTest, RegistryTracksLiveMutexes) {
  const std::size_t before = lock_rank_registry().size();
  {
    Mutex mu(LockRank::kTempDir, "test.registered");
    const auto live = lock_rank_registry();
    ASSERT_EQ(live.size(), before + 1);
    EXPECT_EQ(live.back().name, "test.registered");
    EXPECT_EQ(live.back().rank, LockRank::kTempDir);
  }
  EXPECT_EQ(lock_rank_registry().size(), before);
}

TEST(LockRankTest, EveryLiveMutexHasANamedRank) {
  // Touch the global singletons so their mutexes exist, then require that
  // everything currently registered sits in a named band.
  Logger::instance().level();
  TEXTMR_LOG(kDebug) << "registry probe";
  const auto live = lock_rank_registry();
  ASSERT_FALSE(live.empty());
  for (const auto& info : live) {
    EXPECT_STRNE(lock_rank_name(info.rank), "unknown") << info.name;
    EXPECT_FALSE(info.name.empty());
  }
}

TEST(LockRankDeathTest, InvertedOrderAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex outer(LockRank::kEngine, "test.outer");
  Mutex inner(LockRank::kSpillBuffer, "test.inner");
  EXPECT_DEATH(
      {
        MutexLock b(inner);
        MutexLock a(outer);
      },
      "lock-rank violation.*test\\.outer");
}

TEST(LockRankDeathTest, EqualRankAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex first(LockRank::kTrace, "test.first");
  Mutex second(LockRank::kTrace, "test.second");
  EXPECT_DEATH(
      {
        MutexLock a(first);
        MutexLock b(second);
      },
      "lock-rank violation.*test\\.second");
}

TEST(LockRankDeathTest, SelfLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex mu(LockRank::kFailpoint, "test.recursive");
  EXPECT_DEATH(double_lock(mu), "self-deadlock.*test\\.recursive");
}

TEST(LockRankDeathTest, ReportListsHeldLocks) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex outer(LockRank::kMapTask, "test.held_one");
  Mutex middle(LockRank::kFreqBuf, "test.held_two");
  Mutex wrong(LockRank::kEngine, "test.acquired");
  EXPECT_DEATH(
      {
        MutexLock a(outer);
        MutexLock b(middle);
        MutexLock c(wrong);
      },
      "held: \"test\\.held_one\".*held: \"test\\.held_two\"");
}

#else

TEST(LockRankTest, CheckerCompiledOut) {
  // Release builds: the registry is empty and inversions are not policed.
  EXPECT_TRUE(lock_rank_registry().empty());
  EXPECT_EQ(held_lock_count(), 0u);
}

#endif  // TEXTMR_LOCK_RANK_CHECKS

}  // namespace
}  // namespace textmr
