#include <gtest/gtest.h>

#include <fstream>
#include <map>

#include "common/tempdir.hpp"
#include "common/varint.hpp"
#include "apps/wordcount.hpp"
#include "mr/map_task.hpp"
#include "mr/partitioner.hpp"

namespace textmr::mr {
namespace {

std::uint64_t varint_of(std::string_view bytes) {
  std::size_t pos = 0;
  return get_varint(bytes, pos);
}

io::InputSplit write_corpus(const TempDir& dir, const std::string& name,
                            int lines) {
  const auto path = dir.file(name);
  std::ofstream out(path);
  std::uint64_t size = 0;
  for (int i = 0; i < lines; ++i) {
    const std::string line =
        "alpha beta gamma alpha delta alpha beta line" + std::to_string(i);
    out << line << "\n";
    size += line.size() + 1;
  }
  out.close();
  return io::InputSplit{path.string(), 0, size};
}

MapTaskConfig base_config(const TempDir& dir, io::InputSplit split) {
  MapTaskConfig config;
  config.task_id = 0;
  config.split = std::move(split);
  config.num_partitions = 2;
  config.mapper = [] { return std::make_unique<apps::WordCountMapper>(); };
  config.combiner = [] { return std::make_unique<apps::WordCountCombiner>(); };
  config.spill_buffer_bytes = 64 * 1024;  // small: forces several spills
  config.scratch_dir = dir.file("scratch");
  return config;
}

std::map<std::string, std::uint64_t> read_output_counts(
    const io::SpillRunInfo& output, std::uint32_t partitions) {
  std::map<std::string, std::uint64_t> counts;
  io::SpillRunReader reader(output.path);
  for (std::uint32_t p = 0; p < partitions; ++p) {
    auto cursor = reader.open(p);
    while (auto record = cursor.next()) {
      counts[std::string(record->key)] += varint_of(record->value);
    }
  }
  return counts;
}

TEST(MapTask, ProducesCombinedSortedOutput) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 3000));
  const auto result = run_map_task(config);

  const auto counts = read_output_counts(result.output, 2);
  EXPECT_EQ(counts.at("alpha"), 9000u);
  EXPECT_EQ(counts.at("beta"), 6000u);
  EXPECT_EQ(counts.at("gamma"), 3000u);
  EXPECT_EQ(counts.at("delta"), 3000u);
  EXPECT_EQ(counts.at("line42"), 1u);

  EXPECT_GT(result.spills, 1u);
  EXPECT_EQ(result.map_thread.input_records, 3000u);
  EXPECT_EQ(result.map_thread.map_output_records, 8u * 3000u);
  EXPECT_GT(result.map_thread.op_ns(Op::kMapUser), 0u);
  EXPECT_GT(result.support_thread.op_ns(Op::kSort), 0u);
}

TEST(MapTask, OutputKeysAreSortedWithinPartitions) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 2000));
  const auto result = run_map_task(config);
  io::SpillRunReader reader(result.output.path);
  for (std::uint32_t p = 0; p < 2; ++p) {
    auto cursor = reader.open(p);
    std::string previous;
    bool first = true;
    while (auto record = cursor.next()) {
      if (!first) { EXPECT_LT(previous, record->key); }  // sorted and combined
      previous.assign(record->key);
      first = false;
    }
  }
}

TEST(MapTask, PartitionAssignmentMatchesPartitioner) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 200));
  const auto result = run_map_task(config);
  HashPartitioner partitioner(2);
  io::SpillRunReader reader(result.output.path);
  for (std::uint32_t p = 0; p < 2; ++p) {
    auto cursor = reader.open(p);
    while (auto record = cursor.next()) {
      EXPECT_EQ(partitioner(record->key), p) << record->key;
    }
  }
}

TEST(MapTask, SingleSpillIsAdoptedWithoutMerge) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 50));
  config.spill_buffer_bytes = 4 << 20;  // everything fits in one spill
  const auto result = run_map_task(config);
  EXPECT_EQ(result.spills, 1u);
  EXPECT_EQ(result.map_thread.op_ns(Op::kMerge), 0u);
  const auto counts = read_output_counts(result.output, 2);
  EXPECT_EQ(counts.at("alpha"), 150u);
}

TEST(MapTask, WithoutCombinerEveryRecordSurvives) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 500));
  config.combiner = nullptr;
  const auto result = run_map_task(config);
  EXPECT_EQ(result.output.records, 8u * 500u);
}

TEST(MapTask, FreqBufferingReducesSpilledRecords) {
  TempDir dir;
  const auto split = write_corpus(dir, "in.txt", 4000);

  auto baseline_config = base_config(dir, split);
  const auto baseline = run_map_task(baseline_config);

  auto freq_config = base_config(dir, split);
  freq_config.scratch_dir = dir.file("scratch2");
  freq_config.freqbuf.enabled = true;
  freq_config.freqbuf.top_k = 8;
  freq_config.freqbuf.sampling_fraction = 0.05;
  freq_config.freqbuf.share_across_tasks = false;
  freq_config.freq_table_budget_bytes = 16 * 1024;
  const auto freq = run_map_task(freq_config);

  // Same final answer...
  EXPECT_EQ(read_output_counts(baseline.output, 2),
            read_output_counts(freq.output, 2));
  // ...but far fewer records entered the sort-spill machinery.
  EXPECT_LT(freq.map_thread.spill_input_records,
            baseline.map_thread.spill_input_records / 2);
  EXPECT_GT(freq.map_thread.freq_hits, 0u);
}

TEST(MapTask, SpillMatcherKeepsAnswerIdentical) {
  TempDir dir;
  const auto split = write_corpus(dir, "in.txt", 3000);
  auto fixed_config = base_config(dir, split);
  const auto fixed = run_map_task(fixed_config);

  auto adaptive_config = base_config(dir, split);
  adaptive_config.scratch_dir = dir.file("scratch3");
  adaptive_config.spill_policy = [] {
    return std::make_unique<spillmatch::SpillMatcher>();
  };
  const auto adaptive = run_map_task(adaptive_config);
  EXPECT_EQ(read_output_counts(fixed.output, 2),
            read_output_counts(adaptive.output, 2));
  // The matcher must actually have moved the threshold off the default.
  EXPECT_NE(adaptive.final_spill_threshold, 0.8);
}

TEST(MapTask, EmptyInputYieldsEmptyOutputRun) {
  TempDir dir;
  const auto path = dir.file("empty.txt");
  std::ofstream(path).close();
  auto config = base_config(dir, io::InputSplit{path.string(), 0, 0});
  const auto result = run_map_task(config);
  EXPECT_EQ(result.output.records, 0u);
  io::SpillRunReader reader(result.output.path);
  EXPECT_FALSE(reader.open(0).next().has_value());
}

TEST(MapTask, MapperErrorPropagates) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 10));
  config.mapper = [] {
    return std::make_unique<LambdaMapper>(
        [](std::uint64_t, std::string_view, EmitSink&) {
          throw std::runtime_error("user map bug");
        });
  };
  EXPECT_THROW(run_map_task(config), std::runtime_error);
}

TEST(MapTask, CombinerErrorInSupportThreadPropagates) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 2000));
  config.combiner = [] {
    return std::make_unique<LambdaReducer>(
        [](std::string_view, ValueStream&, EmitSink&) {
          throw std::runtime_error("user combine bug");
        });
  };
  EXPECT_THROW(run_map_task(config), std::runtime_error);
}

TEST(MapTask, IdleTimeIsMeasured) {
  TempDir dir;
  auto config = base_config(dir, write_corpus(dir, "in.txt", 3000));
  const auto result = run_map_task(config);
  // At least one of the two threads must have waited at some point (the
  // pipeline cannot be perfectly matched), and wall clock covers both.
  EXPECT_GT(result.map_thread.op_ns(Op::kMapIdle) +
                result.support_thread.op_ns(Op::kSupportIdle),
            0u);
  EXPECT_GT(result.wall_ns, 0u);
  EXPECT_GE(result.wall_ns, result.pipeline_wall_ns);
}

}  // namespace
}  // namespace textmr::mr
