#include <gtest/gtest.h>

// Seeded fuzz battery for the packed record codec and the zero-copy
// record path (ISSUE 4): adversarial keys/values — empty, embedded NULs,
// shared 8-byte prefixes (the prefix-comparator tie path), >64 KiB
// payloads that straddle the RunCursor read-chunk boundary, ring-wrap
// straddling records — through frame/unframe, the spill ring, sort +
// spill write, bulk read + index, and the k-way merge. Every iteration
// derives from a fixed base seed, so failures replay deterministically;
// the failing seed is printed via SCOPED_TRACE. TEXTMR_FUZZ_ITERS
// multiplies the iteration counts (the `pressure` ctest label sets 10).

#include <cstdlib>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "io/spill_file.hpp"
#include "mr/merger.hpp"
#include "mr/record_arena.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/spill_sorter.hpp"

namespace textmr::mr {
namespace {

std::size_t fuzz_scale() {
  if (const char* env = std::getenv("TEXTMR_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::size_t>(v > 100 ? 100 : v);
  }
  return 1;
}

constexpr std::uint64_t kBaseSeed = 0x7465787432303134ull;  // "text2014"

/// Adversarial key: empty, tiny binary (embedded NULs), exactly-8-byte,
/// long with a shared prefix (forces the full compare past the 8-byte
/// prefix), or plain words.
std::string fuzz_key(Xoshiro256& rng) {
  switch (rng.next_below(6)) {
    case 0:
      return "";
    case 1: {
      std::string key(1 + rng.next_below(8), '\0');
      for (char& c : key) c = static_cast<char>(rng.next_below(256));
      return key;
    }
    case 2: {
      std::string key(8, 'p');
      key[7] = static_cast<char>(rng.next_below(256));
      return key;
    }
    case 3: {
      // 8-byte common prefix + divergent binary tail: the prefix integer
      // ties and record_ref_less / record_key_equal must read the tail.
      std::string key = "prefix08";
      const std::size_t tail = 1 + rng.next_below(24);
      for (std::size_t i = 0; i < tail; ++i) {
        key.push_back(static_cast<char>(rng.next_below(256)));
      }
      return key;
    }
    case 4: {
      std::string key(9 + rng.next_below(292), 'k');
      for (char& c : key) c = static_cast<char>('a' + rng.next_below(26));
      return key;
    }
    default:
      return "w" + std::to_string(rng.next_below(40));
  }
}

/// Adversarial value: empty, NUL-laden binary, or — occasionally — larger
/// than the 64 KiB RunCursor read chunk, so one framed record straddles
/// several buffered reads.
std::string fuzz_value(Xoshiro256& rng, bool allow_huge) {
  const std::uint64_t kind = rng.next_below(allow_huge ? 5 : 4);
  std::size_t size = 0;
  switch (kind) {
    case 0:
      return "";
    case 1:
      size = 1 + rng.next_below(16);
      break;
    case 2:
      size = 1 + rng.next_below(512);
      break;
    case 3:
      size = (1u << 16) - 4 + rng.next_below(8);  // hugs the chunk boundary
      break;
    default:
      size = (1u << 16) + 1 + rng.next_below(1u << 14);  // > one read chunk
      break;
  }
  std::string value(size, '\0');
  for (std::size_t i = 0; i < size; i += 1 + rng.next_below(7)) {
    value[i] = static_cast<char>(rng.next_below(256));
  }
  return value;
}

using RecordTuple = std::tuple<std::uint32_t, std::string, std::string>;

TEST(RecordFuzz, FrameHeaderRoundTripAndTruncationSafety) {
  const std::size_t sizes[] = {0,     1,     7,      8,     9,     127,
                               128,   16383, 16384,  65535, 65536, 70001};
  for (const auto format :
       {io::SpillFormat::kCompactVarint, io::SpillFormat::kFixed32}) {
    for (const std::size_t klen : sizes) {
      for (const std::size_t vlen : sizes) {
        char header[io::kMaxFrameHeaderBytes];
        const std::size_t header_size =
            io::encode_frame_header(header, klen, vlen, format);
        ASSERT_LE(header_size, io::kMaxFrameHeaderBytes);

        std::string frame(header, header_size);
        frame.append(klen, 'k');
        frame.append(vlen, 'v');
        const io::FrameHeader decoded = io::decode_frame_header(frame, format);
        EXPECT_EQ(decoded.key_size, klen);
        EXPECT_EQ(decoded.value_size, vlen);
        EXPECT_EQ(decoded.header_size, header_size);

        // Every strict prefix must be rejected: either the header varint
        // is cut short or the declared payload overruns the buffer.
        for (const std::size_t cut :
             {std::size_t{0}, header_size / 2, header_size,
              frame.size() - 1}) {
          if (cut >= frame.size()) continue;
          EXPECT_THROW(io::decode_frame_header(
                           std::string_view(frame.data(), cut), format),
                       FormatError)
              << "format=" << static_cast<int>(format) << " klen=" << klen
              << " vlen=" << vlen << " cut=" << cut;
        }
      }
    }
  }
}

TEST(RecordFuzz, ArenaRoundTripAdversarialRecords) {
  for (std::size_t iter = 0; iter < 4 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + iter);
    const auto format = iter % 2 == 0 ? io::SpillFormat::kCompactVarint
                                      : io::SpillFormat::kFixed32;
    RecordArena arena(format);
    std::vector<RecordTuple> expected;
    for (int i = 0; i < 400; ++i) {
      const auto partition = static_cast<std::uint32_t>(rng.next_below(4));
      std::string key = fuzz_key(rng);
      std::string value = fuzz_value(rng, /*allow_huge=*/i % 67 == 0);
      arena.append(partition, key, value);
      expected.emplace_back(partition, std::move(key), std::move(value));
    }
    ASSERT_EQ(arena.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      const RecordRef& ref = arena.records()[i];
      const auto& [partition, key, value] = expected[i];
      ASSERT_EQ(ref.partition, partition) << i;
      ASSERT_EQ(ref.key(), key) << i;
      ASSERT_EQ(ref.value(), value) << i;
      ASSERT_EQ(ref.key_prefix, key_prefix8(key)) << i;
    }
    // The denormalized comparators must agree with the plain tuple order
    // on random pairs, including prefix ties and embedded NULs.
    for (int pair = 0; pair < 2000; ++pair) {
      const auto& a = arena.records()[rng.next_below(expected.size())];
      const auto& b = arena.records()[rng.next_below(expected.size())];
      const bool expect_less = std::make_pair(a.partition, a.key()) <
                               std::make_pair(b.partition, b.key());
      ASSERT_EQ(record_ref_less(a, b), expect_less);
      ASSERT_EQ(record_key_equal(a, b), a.key() == b.key());
    }
  }
}

TEST(RecordFuzz, SpillBufferRingWrapRoundTrip) {
  // A small ring forces records to straddle the wrap point; the framed
  // representation must survive wrap padding, empty keys/values and NULs.
  for (std::size_t iter = 0; iter < 2 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + 100 + iter);
    const auto format = iter % 2 == 0 ? io::SpillFormat::kCompactVarint
                                      : io::SpillFormat::kFixed32;
    SpillBuffer buffer(1 << 14, 0.5, /*max_outstanding=*/1, format);
    std::vector<RecordTuple> collected;
    std::thread consumer([&] {
      while (auto spill = buffer.take()) {
        for (const RecordRef& ref : spill->records) {
          collected.emplace_back(ref.partition, std::string(ref.key()),
                                 std::string(ref.value()));
        }
        buffer.release(*spill, 1);
      }
    });
    std::vector<RecordTuple> expected;
    for (int i = 0; i < 2000; ++i) {
      const auto partition = static_cast<std::uint32_t>(rng.next_below(3));
      std::string key = fuzz_key(rng);
      std::string value = fuzz_value(rng, /*allow_huge=*/false);
      if (value.size() > 2048) value.resize(2048);  // stay well under capacity
      buffer.put(partition, key, value);
      expected.emplace_back(partition, std::move(key), std::move(value));
    }
    buffer.close();
    consumer.join();
    ASSERT_EQ(collected, expected);
  }
}

TEST(RecordFuzz, SortSpillReadAndIndexRoundTrip) {
  for (std::size_t iter = 0; iter < 3 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + 200 + iter);
    TempDir dir("textmr-record-fuzz");
    // Arena/ring format and run-file format drawn independently: equal
    // formats exercise the verbatim frame blit, unequal the re-encode.
    const auto arena_format = rng.next_below(2) == 0
                                  ? io::SpillFormat::kCompactVarint
                                  : io::SpillFormat::kFixed32;
    const auto run_format = rng.next_below(2) == 0
                                ? io::SpillFormat::kCompactVarint
                                : io::SpillFormat::kFixed32;
    const auto partitions = static_cast<std::uint32_t>(1 + rng.next_below(3));

    RecordArena arena(arena_format);
    Spill spill;
    spill.format = arena_format;
    std::multiset<RecordTuple> expected;
    for (int i = 0; i < 250; ++i) {
      const auto partition =
          static_cast<std::uint32_t>(rng.next_below(partitions));
      const std::string key = fuzz_key(rng);
      // Every iteration gets a few >64 KiB values so framed records span
      // multiple RunCursor read chunks.
      const std::string value = fuzz_value(rng, /*allow_huge=*/i % 50 == 0);
      spill.records.push_back(arena.append(partition, key, value));
      spill.data_bytes += key.size() + value.size();
      expected.emplace(partition, key, value);
    }

    TaskMetrics metrics;
    const auto info =
        sort_and_spill(spill, nullptr, dir.file("run").string(), partitions,
                       run_format, metrics);
    ASSERT_EQ(info.records, expected.size());

    // Pass 1: the streaming cursor (the merge input path).
    io::SpillRunReader reader(info.path, run_format);
    std::multiset<RecordTuple> streamed;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      auto cursor = reader.open(p);
      std::string previous;
      bool first = true;
      while (auto record = cursor.next()) {
        streamed.emplace(p, std::string(record->key),
                         std::string(record->value));
        if (!first) ASSERT_LE(previous, record->key);
        previous.assign(record->key);
        first = false;
      }
    }
    ASSERT_EQ(streamed, expected);

    // Pass 2: bulk read + in-place index (the zero-copy shuffle path).
    std::multiset<RecordTuple> indexed;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      const std::string bytes = reader.read_partition(p);
      ASSERT_EQ(bytes.size(), reader.extent(p).bytes);
      const auto refs = index_frames(bytes, p, run_format);
      ASSERT_EQ(refs.size(), reader.extent(p).records);
      for (const RecordRef& ref : refs) {
        indexed.emplace(p, std::string(ref.key()), std::string(ref.value()));
        ASSERT_EQ(ref.key_prefix, key_prefix8(ref.key()));
      }
      // A stream cut inside the final frame must be rejected, never
      // silently decoded.
      if (!bytes.empty()) {
        EXPECT_THROW(index_frames(std::string_view(bytes.data(),
                                                   bytes.size() - 1),
                                  p, run_format),
                     FormatError);
      }
    }
    ASSERT_EQ(indexed, expected);
  }
}

TEST(RecordFuzz, MultiRunMergeRoundTrip) {
  for (std::size_t iter = 0; iter < 2 * fuzz_scale(); ++iter) {
    SCOPED_TRACE("iter=" + std::to_string(iter));
    Xoshiro256 rng(kBaseSeed + 300 + iter);
    TempDir dir("textmr-merge-fuzz");
    const auto format = iter % 2 == 0 ? io::SpillFormat::kCompactVarint
                                      : io::SpillFormat::kFixed32;
    const std::uint32_t partitions = 2;

    std::vector<io::SpillRunInfo> runs;
    std::multiset<RecordTuple> expected;
    RecordArena arena(format);
    for (int run = 0; run < 4; ++run) {
      arena.clear();
      Spill spill;
      spill.format = format;
      for (int i = 0; i < 120; ++i) {
        const auto partition =
            static_cast<std::uint32_t>(rng.next_below(partitions));
        const std::string key = fuzz_key(rng);
        const std::string value = fuzz_value(rng, /*allow_huge=*/i % 60 == 0);
        spill.records.push_back(arena.append(partition, key, value));
        spill.data_bytes += key.size() + value.size();
        expected.emplace(partition, key, value);
      }
      TaskMetrics metrics;
      runs.push_back(sort_and_spill(spill, nullptr,
                                    dir.file("run" + std::to_string(run))
                                        .string(),
                                    partitions, format, metrics));
    }

    TaskMetrics merge_metrics;
    const auto merged = merge_runs(runs, nullptr, dir.file("merged").string(),
                                   partitions, format, merge_metrics);
    ASSERT_EQ(merged.records, expected.size());

    io::SpillRunReader reader(merged.path, format);
    std::multiset<RecordTuple> actual;
    for (std::uint32_t p = 0; p < partitions; ++p) {
      auto cursor = reader.open(p);
      std::string previous;
      bool first = true;
      while (auto record = cursor.next()) {
        actual.emplace(p, std::string(record->key), std::string(record->value));
        if (!first) ASSERT_LE(previous, record->key);
        previous.assign(record->key);
        first = false;
      }
    }
    ASSERT_EQ(actual, expected);
  }
}

}  // namespace
}  // namespace textmr::mr
