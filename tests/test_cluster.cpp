#include <gtest/gtest.h>

// Process-level battery for the multi-process ClusterEngine (DESIGN.md
// §10): correctness vs the LocalEngine oracle, straggler detection and
// speculative execution, worker-death recovery (SIGKILL), duplicate
// first-writer-wins commits, and the persisted per-node NodeKeyCache.
//
// These tests fork real worker processes. Failpoints armed in the parent
// are inherited by every worker; per-worker asymmetry (one slow worker)
// goes through ClusterConfig::worker_init, which runs in the child after
// fork.

#include <signal.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/failpoint.hpp"
#include "helpers.hpp"
#include "mr/task_runner.hpp"

namespace textmr {
namespace {

struct ClusterCorpus {
  TempDir dir;
  std::filesystem::path corpus;
  std::vector<io::InputSplit> splits;
  std::map<std::string, std::uint64_t> expected;

  // Defaults give a ~30 KB corpus cut into ~10 splits: enough map tasks
  // that fast workers establish the straggler median while a slow worker
  // holds its first task.
  explicit ClusterCorpus(std::uint32_t total_words = 12000,
                         std::size_t split_bytes = 3 * 1024) {
    textgen::CorpusSpec spec;
    spec.total_words = total_words;
    spec.vocabulary = 400;
    spec.seed = 77;
    corpus = dir.file("corpus.txt");
    textgen::generate_corpus(spec, corpus.string());
    splits = io::make_splits(corpus.string(), split_bytes);
    expected = test::reference_wordcount(corpus.string());
  }

  mr::JobSpec job(const std::string& tag, std::uint32_t reducers = 3) {
    auto spec = test::make_job(apps::wordcount_app(), splits,
                               dir.file("s-" + tag), dir.file("o-" + tag),
                               reducers);
    spec.retry_backoff_base_ms = 0;
    return spec;
  }

  void check(const mr::JobResult& result) const {
    const auto actual = test::read_outputs(result.outputs);
    ASSERT_EQ(actual.size(), expected.size());
    for (const auto& [word, count] : expected) {
      ASSERT_EQ(actual.at(word), std::to_string(count)) << word;
    }
  }
};

TEST(ClusterEngine, WordCountMatchesReference) {
  ClusterCorpus corpus;
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  const auto result = engine.run(corpus.job("basic"));
  corpus.check(result);
  EXPECT_EQ(result.metrics.map_tasks, corpus.splits.size());
  EXPECT_EQ(result.metrics.reduce_tasks, 3u);
  EXPECT_GE(result.metrics.task_attempts,
            corpus.splits.size() + 3u);  // one attempt per task at least
  EXPECT_GT(result.metrics.work.input_records, 0u);
}

TEST(ClusterEngine, SingleWorkerDegeneratesToSerialExecution) {
  ClusterCorpus corpus(6000);
  cluster::ClusterConfig config;
  config.num_workers = 1;
  cluster::ClusterEngine engine(config);
  corpus.check(engine.run(corpus.job("one")));
}

TEST(ClusterEngine, ZeroWorkersIsAConfigError) {
  ClusterCorpus corpus(1000);
  cluster::ClusterConfig config;
  config.num_workers = 0;
  cluster::ClusterEngine engine(config);
  auto spec = corpus.job("zero");
  EXPECT_THROW(engine.run(spec), ConfigError);
}

TEST(ClusterEngine, InvalidSpecFailsBeforeForking) {
  cluster::ClusterEngine engine;
  mr::JobSpec spec;  // no inputs, no factories, no dirs
  EXPECT_THROW(engine.run(spec), ConfigError);
}

// ---- straggler detection + speculative execution --------------------------

/// Worker 0 sleeps `delay_ms` at every task dispatch (the
/// `cluster.dispatch` failpoint runs in the worker before the task body);
/// the other workers run at full speed. This models the paper's §II-A
/// straggler: one slow node holding the job hostage.
cluster::ClusterConfig slow_worker_config(std::uint32_t workers,
                                          std::uint64_t delay_ms) {
  cluster::ClusterConfig config;
  config.num_workers = workers;
  config.heartbeat_interval_ms = 10;
  config.straggler.heartbeat_timeout_ms = 10000;  // median path only
  config.straggler.slowness_factor = 4.0;
  config.straggler.min_completed_for_median = 2;
  config.worker_init = [delay_ms](std::uint32_t worker_id) {
    if (worker_id != 0) return;
    failpoint::arm_from_spec("cluster.dispatch:always:action=delay:delay_ms=" +
                             std::to_string(delay_ms));
  };
  return config;
}

TEST(ClusterSpeculation, SlowWorkerIsRescuedBySpeculativeAttempt) {
  ClusterCorpus corpus;
  auto config = slow_worker_config(3, 2500);
  config.speculation = true;
  cluster::ClusterEngine engine(config);

  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(corpus.job("spec"));
  const auto wall = std::chrono::steady_clock::now() - start;

  corpus.check(result);
  EXPECT_GE(result.counters.value("cluster.speculative_attempts"), 1u);
  // The 2.5s-per-task worker must not gate the job: its flagged attempts
  // are duplicated onto fast workers and the losers are killed. Without
  // speculation the job would take >= 2.5s per task worker 0 received.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall),
            std::chrono::milliseconds(2400))
      << "speculation failed to rescue the job from the slow worker";
}

TEST(ClusterSpeculation, WithoutSpeculationSlowWorkerGatesTheJob) {
  ClusterCorpus corpus(4000, 64 * 1024);  // few tasks, fast baseline
  auto config = slow_worker_config(2, 1200);
  config.speculation = false;
  cluster::ClusterEngine engine(config);

  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(corpus.job("nospec", 2));
  const auto wall = std::chrono::steady_clock::now() - start;

  corpus.check(result);
  EXPECT_EQ(result.counters.value("cluster.speculative_attempts"), 0u);
  // Worker 0 received at least one task and held it for the full delay.
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(wall),
            std::chrono::milliseconds(1200));
}

TEST(ClusterSpeculation, HeartbeatStarvationTriggersSpeculation) {
  ClusterCorpus corpus;
  cluster::ClusterConfig config;
  config.num_workers = 3;
  config.heartbeat_interval_ms = 10;
  config.straggler.heartbeat_timeout_ms = 150;
  config.straggler.slowness_factor = 1e9;  // heartbeat path only
  // Worker 0: beats stop flowing (each delayed far past the timeout) and
  // its tasks stall, so the coordinator must flag it via staleness.
  config.worker_init = [](std::uint32_t worker_id) {
    if (worker_id != 0) return;
    failpoint::arm_from_spec(
        "worker.heartbeat:always:action=delay:delay_ms=10000,"
        "cluster.dispatch:always:action=delay:delay_ms=2500");
  };
  cluster::ClusterEngine engine(config);

  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(corpus.job("hb"));
  const auto wall = std::chrono::steady_clock::now() - start;

  corpus.check(result);
  EXPECT_GE(result.counters.value("cluster.speculative_attempts"), 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall),
            std::chrono::milliseconds(2400));
}

// ---- TCP transport, forked workers (DESIGN.md §14) ------------------------

cluster::ClusterConfig tcp_config(std::uint32_t workers) {
  cluster::ClusterConfig config;
  config.num_workers = workers;
  config.transport = cluster::TransportKind::kTcp;
  config.io_timeout_ms = 10000;
  return config;
}

/// Reads a part file's exact bytes (byte-identity, not equivalence).
std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

TEST(ClusterTcp, ForkedWorkersOverLoopbackMatchReference) {
  ClusterCorpus corpus;
  cluster::ClusterEngine engine(tcp_config(3));
  const auto result = engine.run(corpus.job("tcp"));
  corpus.check(result);
  // Shuffle data really crossed sockets, not the shared filesystem.
  EXPECT_GT(result.metrics.work.shuffled_wire_bytes, 0u);
}

TEST(ClusterTcp, OutputBytesIdenticalToSocketpairRun) {
  ClusterCorpus corpus(8000);
  cluster::ClusterConfig sp_config;
  sp_config.num_workers = 2;
  cluster::ClusterEngine sp_engine(sp_config);
  const auto sp = sp_engine.run(corpus.job("sp"));

  cluster::ClusterEngine tcp_engine(tcp_config(2));
  const auto tcp = tcp_engine.run(corpus.job("tcp-vs-sp"));

  ASSERT_EQ(tcp.outputs.size(), sp.outputs.size());
  for (std::size_t i = 0; i < tcp.outputs.size(); ++i) {
    EXPECT_EQ(slurp(tcp.outputs[i]), slurp(sp.outputs[i]));
  }
  EXPECT_EQ(sp.metrics.work.shuffled_wire_bytes, 0u);
  EXPECT_GT(tcp.metrics.work.shuffled_wire_bytes, 0u);
}

TEST(ClusterTcp, NetworkShuffleCanBeDisabledPerConfig) {
  ClusterCorpus corpus(6000);
  auto config = tcp_config(2);
  config.network_shuffle = false;  // TCP control plane, filesystem shuffle
  cluster::ClusterEngine engine(config);
  const auto result = engine.run(corpus.job("tcp-fs"));
  corpus.check(result);
  EXPECT_EQ(result.metrics.work.shuffled_wire_bytes, 0u);
  EXPECT_GT(result.metrics.work.shuffled_bytes, 0u);
}

TEST(ClusterTcp, ChaosNetAndShuffleFaultsStillProduceCorrectBytes) {
  // Every worker's first shuffle fetch is injected to fail (burning a
  // client attempt), worker 0 additionally drops the first connection
  // its shuffle *server* receives mid-serve, and worker 1's first
  // control-channel send is delayed. The job must complete with correct
  // output through retries and the filesystem fallback.
  ClusterCorpus corpus;
  auto config = tcp_config(3);
  config.worker_init = [](std::uint32_t worker_id) {
    std::string spec = "shuffle.fetch:nth=1";
    if (worker_id == 0) spec += ",shuffle.serve:nth=1";
    if (worker_id == 1) spec += ",net.send:nth=1:action=delay:delay_ms=50";
    failpoint::arm_from_spec(spec);
  };
  cluster::ClusterEngine engine(config);
  const auto result = engine.run(corpus.job("tcp-chaos"));
  corpus.check(result);
}

TEST(ClusterTcp, SigkilledWorkerOverTcpIsRecoveredAndShuffleFallsBack) {
  // SIGKILL a worker mid-job on the TCP transport: its in-flight tasks
  // are reassigned, and reducers needing map output the dead worker's
  // shuffle server owned fall back to the shared-filesystem read
  // (DESIGN.md §14 documents why the fallback must exist).
  ClusterCorpus corpus;
  std::atomic<int> victim_pid{0};
  auto config = tcp_config(3);
  config.on_worker_spawn = [&victim_pid](std::uint32_t worker_id, int pid) {
    if (worker_id == 1) victim_pid.store(pid);
  };
  config.worker_init = [](std::uint32_t) {
    failpoint::arm_from_spec("cluster.dispatch:always:action=delay:delay_ms=30");
  };
  cluster::ClusterEngine engine(config);
  std::thread killer([&victim_pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const int pid = victim_pid.load();
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
  });
  const auto result = engine.run(corpus.job("tcp-kill"));
  killer.join();
  corpus.check(result);
}

TEST(ClusterTcp, LivenessTimeoutKillsSilentWorker) {
  // Worker 0 stalls: heartbeats stop (10s delay each) and its task sits
  // in a 10s dispatch delay. With speculation off, only the liveness
  // tracker can save the job — silence past the deadline must be treated
  // as worker death, the task reassigned, and the job finish promptly.
  ClusterCorpus corpus(6000, 16 * 1024);
  auto config = tcp_config(2);
  config.speculation = false;
  config.heartbeat_interval_ms = 10;
  config.liveness_timeout_ms = 300;
  config.worker_init = [](std::uint32_t worker_id) {
    if (worker_id != 0) return;
    failpoint::arm_from_spec(
        "worker.heartbeat:always:action=delay:delay_ms=10000,"
        "cluster.dispatch:always:action=delay:delay_ms=10000");
  };
  cluster::ClusterEngine engine(config);
  const auto start = std::chrono::steady_clock::now();
  const auto result = engine.run(corpus.job("tcp-liveness"));
  const auto wall = std::chrono::steady_clock::now() - start;
  corpus.check(result);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall),
            std::chrono::milliseconds(8000))
      << "liveness tracker failed to declare the silent worker dead";
}

// ---- worker-death recovery ------------------------------------------------

TEST(ClusterFaults, SigkilledWorkerTasksAreReassignedAndJobSucceeds) {
  ClusterCorpus corpus;
  std::atomic<int> victim_pid{0};
  cluster::ClusterConfig config;
  config.num_workers = 3;
  config.on_worker_spawn = [&victim_pid](std::uint32_t worker_id, int pid) {
    if (worker_id == 1) victim_pid.store(pid);
  };
  // Slow every task slightly so the kill lands mid-job, not after it.
  config.worker_init = [](std::uint32_t) {
    failpoint::arm_from_spec("cluster.dispatch:always:action=delay:delay_ms=30");
  };
  cluster::ClusterEngine engine(config);

  std::thread killer([&victim_pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const int pid = victim_pid.load();
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
  });
  const auto result = engine.run(corpus.job("kill"));
  killer.join();

  corpus.check(result);
  // The dead worker's in-flight task was re-queued with a fresh attempt,
  // not charged against max_task_attempts — so the job succeeded even
  // with max_task_attempts=1.
}

TEST(ClusterFaults, WorkerDeathIsNotChargedAgainstTaskAttempts) {
  ClusterCorpus corpus(6000);
  std::atomic<int> victim_pid{0};
  cluster::ClusterConfig config;
  config.num_workers = 2;
  config.on_worker_spawn = [&victim_pid](std::uint32_t worker_id, int pid) {
    if (worker_id == 0) victim_pid.store(pid);
  };
  config.worker_init = [](std::uint32_t) {
    failpoint::arm_from_spec("cluster.dispatch:always:action=delay:delay_ms=40");
  };
  cluster::ClusterEngine engine(config);

  auto spec = corpus.job("charge");
  spec.max_task_attempts = 1;  // any charged failure would doom the job
  std::thread killer([&victim_pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    ::kill(victim_pid.load(), SIGKILL);
  });
  const auto result = engine.run(spec);
  killer.join();
  corpus.check(result);
}

TEST(ClusterFaults, AllWorkersDeadFailsTheJob) {
  ClusterCorpus corpus(2000);
  std::vector<int> pids;
  cluster::ClusterConfig config;
  config.num_workers = 2;
  config.on_worker_spawn = [&pids](std::uint32_t, int pid) {
    pids.push_back(pid);
  };
  // Park every worker in a long dispatch delay so the job cannot finish
  // before the kills land.
  config.worker_init = [](std::uint32_t) {
    failpoint::arm_from_spec(
        "cluster.dispatch:always:action=delay:delay_ms=10000");
  };
  cluster::ClusterEngine engine(config);

  std::thread killer([&pids] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    for (int pid : pids) ::kill(pid, SIGKILL);
  });
  EXPECT_THROW(engine.run(corpus.job("dead")), TaskFailedError);
  killer.join();
}

TEST(ClusterFaults, RetryableTaskFailureIsReExecuted) {
  ClusterCorpus corpus;
  // Inherited by every worker at fork: the first spill in each worker
  // process fails (InjectedFault derives from IoError -> retryable).
  failpoint::ScopedFailpoints failpoints("spill.write:nth=1");
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  const auto result = engine.run(corpus.job("retry"));
  corpus.check(result);
  EXPECT_GE(result.metrics.tasks_retried, 1u);
  EXPECT_GT(result.metrics.task_attempts,
            result.metrics.map_tasks + result.metrics.reduce_tasks);
}

TEST(ClusterFaults, ExhaustedAttemptsFailTheJob) {
  ClusterCorpus corpus(3000);
  // Every spill in every worker fails, forever.
  failpoint::ScopedFailpoints failpoints("spill.write:always");
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  auto spec = corpus.job("doom");
  spec.max_task_attempts = 2;
  EXPECT_THROW(engine.run(spec), TaskFailedError);
}

// ---- duplicate-commit race ------------------------------------------------

TEST(ClusterCommit, DuplicateReduceCommitsLeaveExactlyOneOutput) {
  // Drive the commit protocol directly: two attempts of the same reduce
  // partition run to completion (the losing speculative attempt is not
  // always killed in time), and both rename onto the same final path.
  // First-writer-wins with byte-identical content: one part file, no
  // temp litter.
  ClusterCorpus corpus(4000);
  auto spec = corpus.job("commit", 1);
  std::filesystem::create_directories(spec.scratch_dir);
  std::filesystem::create_directories(spec.output_dir);

  const mr::MemorySplit mem = mr::split_memory(spec);
  freqbuf::NodeKeyCache cache;
  std::vector<io::SpillRunInfo> map_outputs;
  for (std::uint32_t task = 0; task < spec.inputs.size(); ++task) {
    auto config =
        mr::make_map_task_config(spec, mem, task, 0, &cache, nullptr);
    map_outputs.push_back(mr::run_map_task(config).output);
  }

  const auto first = mr::run_reduce_task(
      mr::make_reduce_task_config(spec, 0, 0, map_outputs, nullptr));
  const auto second = mr::run_reduce_task(
      mr::make_reduce_task_config(spec, 0, 1, map_outputs, nullptr));
  EXPECT_EQ(first.output_path, second.output_path);

  std::size_t entries = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(spec.output_dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "part-r-00000");
  }
  EXPECT_EQ(entries, 1u);
  mr::JobResult wrapped;
  wrapped.outputs = {first.output_path};
  corpus.check(wrapped);
}

// ---- NodeKeyCache persistence ---------------------------------------------

TEST(ClusterNodeCache, KeyCacheFilePersistedOncePerWorkerAndReused) {
  ClusterCorpus corpus(20000, 6 * 1024);  // many map tasks per worker
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);

  auto spec = corpus.job("cache");
  spec.freqbuf.enabled = true;
  spec.freqbuf.top_k = 50;
  spec.freqbuf.sampling_fraction = 0.05;
  ASSERT_TRUE(spec.freqbuf.share_across_tasks);
  corpus.check(engine.run(spec));

  // Each worker persisted its node-local frozen key set exactly once.
  std::vector<std::string> persisted;
  for (std::uint32_t w = 0; w < config.num_workers; ++w) {
    const auto path =
        spec.scratch_dir / ("node-" + std::to_string(w) + ".keycache");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    persisted.push_back(std::move(buf).str());
    const auto keys = freqbuf::NodeKeyCache::decode_keys(persisted.back());
    ASSERT_TRUE(keys.has_value()) << "corrupt cache file " << path;
    EXPECT_FALSE(keys->empty());
    EXPECT_LE(keys->size(), spec.freqbuf.top_k);
  }

  // A re-run over the same scratch dir (same node ids) reloads the
  // persisted sets instead of re-profiling: first-writer-wins leaves the
  // files byte-identical, and the job output is unchanged.
  auto rerun = corpus.job("cache2");
  rerun.scratch_dir = spec.scratch_dir;  // same node-local cache files
  rerun.freqbuf = spec.freqbuf;
  cluster::ClusterEngine engine2(config);
  corpus.check(engine2.run(rerun));
  for (std::uint32_t w = 0; w < config.num_workers; ++w) {
    const auto path =
        spec.scratch_dir / ("node-" + std::to_string(w) + ".keycache");
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), persisted[w]) << "cache file rewritten: " << path;
  }
}

TEST(ClusterNodeCache, CorruptCacheFileIsIgnored) {
  TempDir dir;
  const auto path = dir.file("node-0.keycache");
  {
    std::ofstream out(path, std::ios::binary);
    out << "BOGUS-not-a-cache-file";
  }
  freqbuf::NodeKeyCache cache;
  cache.attach_file(path);
  EXPECT_FALSE(cache.get().has_value());
  // And put() still persists over it.
  cache.put({"alpha", "beta"});
  ASSERT_TRUE(cache.get().has_value());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto keys = freqbuf::NodeKeyCache::decode_keys(buf.str());
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(*keys, (std::vector<std::string>{"alpha", "beta"}));
}

// ---- trace merging --------------------------------------------------------

TEST(ClusterTrace, WorkerTimelinesMergeIntoJobTrace) {
  ClusterCorpus corpus(6000);
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  auto spec = corpus.job("trace");
  spec.trace.enabled = true;
  const auto result = engine.run(spec);
  corpus.check(result);

  ASSERT_TRUE(result.trace.enabled);
  // Worker-scoped rows (pid = 200000 + worker id) made it into the
  // merged timeline alongside the coordinator's phase spans.
  bool saw_worker_event = false;
  for (const auto& event : result.trace.events) {
    if (event.pid >= 200000) saw_worker_event = true;
  }
  EXPECT_TRUE(saw_worker_event);
  EXPECT_GE(obs::count_events(result.trace, "map_dispatch"),
            corpus.splits.size());
  EXPECT_EQ(obs::count_events(result.trace, "map_phase"), 1u);
  EXPECT_EQ(obs::count_events(result.trace, "reduce_phase"), 1u);
  bool named_worker = false;
  for (const auto& [pid, name] : result.trace.process_names) {
    if (name.rfind("worker-", 0) == 0) named_worker = true;
  }
  EXPECT_TRUE(named_worker);
  // Worker-side exec spans cover every map attempt, and the coordinator
  // recorded one clock_sync handshake per worker.
  EXPECT_GE(obs::count_events(result.trace, "map_exec"), corpus.splits.size());
  EXPECT_EQ(obs::count_events(result.trace, "clock_sync"), 2u);
  // A clean run ships complete telemetry from every worker.
  EXPECT_FALSE(result.trace.incomplete);
  EXPECT_FALSE(result.metrics.telemetry_incomplete);
  // Events arrive sorted by timestamp after the merge.
  for (std::size_t i = 1; i < result.trace.events.size(); ++i) {
    ASSERT_LE(result.trace.events[i - 1].ts_ns, result.trace.events[i].ts_ns);
  }
}

// ---- cluster telemetry ----------------------------------------------------

TEST(ClusterTelemetry, PerWorkerMetricsAggregateIntoJobMetrics) {
  ClusterCorpus corpus(6000);
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  // Tracing stays OFF: worker metrics ride heartbeats and the final
  // (always-sent) trace chunk, independent of trace collection.
  const auto result = engine.run(corpus.job("telemetry"));
  corpus.check(result);

  ASSERT_EQ(result.metrics.workers.size(), 2u);
  EXPECT_FALSE(result.metrics.telemetry_incomplete);
  std::uint64_t total_records = 0;
  std::uint64_t total_tasks = 0;
  for (const auto& w : result.metrics.workers) {
    EXPECT_TRUE(w.telemetry_complete) << "worker " << w.worker_id;
    EXPECT_EQ(w.task_failures, 0u) << "worker " << w.worker_id;
    // Every completed task recorded exactly one latency sample.
    EXPECT_EQ(w.task_latency_ns.count(), w.tasks_completed);
    total_records += w.records;
    total_tasks += w.tasks_completed;
  }
  // Both map and reduce attempts landed somewhere: at least one task per
  // split plus one per reduce partition across the cluster.
  EXPECT_GE(total_tasks, corpus.splits.size() + 3);
  EXPECT_GT(total_records, 0u);
  EXPECT_GE(result.metrics.worker_records_skew(), 1.0);
}

TEST(ClusterTelemetry, SigkilledWorkerMarksTelemetryIncomplete) {
  ClusterCorpus corpus;
  std::atomic<int> victim_pid{0};
  cluster::ClusterConfig config;
  config.num_workers = 3;
  config.on_worker_spawn = [&victim_pid](std::uint32_t worker_id, int pid) {
    if (worker_id == 1) victim_pid.store(pid);
  };
  config.worker_init = [](std::uint32_t) {
    failpoint::arm_from_spec("cluster.dispatch:always:action=delay:delay_ms=30");
  };
  cluster::ClusterEngine engine(config);

  auto spec = corpus.job("kill-telemetry");
  spec.trace.enabled = true;
  std::thread killer([&victim_pid] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const int pid = victim_pid.load();
    ASSERT_GT(pid, 0);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
  });
  const auto result = engine.run(spec);
  killer.join();

  // The job itself recovers (tasks reassigned) — but the dead worker
  // never shipped its final trace chunk, so the job is explicitly marked
  // as having partial telemetry instead of silently pretending the
  // merged timeline is whole.
  corpus.check(result);
  EXPECT_TRUE(result.metrics.telemetry_incomplete);
  EXPECT_TRUE(result.trace.incomplete);
  ASSERT_EQ(result.metrics.workers.size(), 3u);
  bool saw_partial = false;
  for (const auto& w : result.metrics.workers) {
    if (w.worker_id == 1) {
      EXPECT_FALSE(w.telemetry_complete);
      saw_partial = true;
    } else {
      EXPECT_TRUE(w.telemetry_complete) << "worker " << w.worker_id;
    }
  }
  EXPECT_TRUE(saw_partial);
}

// ---- chaos soak ------------------------------------------------------------

// Repeated cluster jobs with randomly-timed SIGKILLs of up to workers-1
// workers per job; every run must still match the LocalEngine-independent
// wordcount oracle. Odd iterations run with the skew-aware partitioner
// enabled (worker death during segment writes and the finalize merge).
// One iteration runs in the default suite as a sanity pass; the pressure
// tier sets TEXTMR_CLUSTER_SOAK_SECONDS=60 (see tests/CMakeLists.txt) to
// loop until the deadline. Kill times and victim counts come from a
// per-iteration seeded Xoshiro256, so a failing iteration is
// reproducible from its logged seed.
TEST(ClusterSoak, RandomWorkerKillsNeverCorruptOutput) {
  double soak_seconds = 0;
  if (const char* env = std::getenv("TEXTMR_CLUSTER_SOAK_SECONDS")) {
    soak_seconds = std::strtod(env, nullptr);
  }
  ClusterCorpus corpus;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(soak_seconds);
  constexpr std::uint32_t kWorkers = 3;

  for (std::uint64_t iteration = 0;; ++iteration) {
    if (iteration > 0 && std::chrono::steady_clock::now() >= deadline) break;
    const std::uint64_t seed = 0x50a5ull + iteration;
    SCOPED_TRACE("soak iteration " + std::to_string(iteration) + " seed " +
                 std::to_string(seed));
    Xoshiro256 rng(seed);
    // 1..workers-1 victims; the engine does not respawn dead workers, so
    // at least one survivor must remain for the job to finish.
    const std::uint64_t kills = 1 + rng.next_below(kWorkers - 1);
    std::vector<std::uint64_t> kill_delays_ms;
    for (std::uint64_t k = 0; k < kills; ++k) {
      kill_delays_ms.push_back(20 + rng.next_below(200));
    }

    std::mutex pid_mu;
    std::vector<int> pids(kWorkers, 0);
    cluster::ClusterConfig config;
    config.num_workers = kWorkers;
    // Every third iteration soaks the TCP transport + network shuffle, so
    // SIGKILLs also land while shuffle fetches are in flight over sockets.
    if (iteration % 3 == 2) {
      config.transport = cluster::TransportKind::kTcp;
      config.io_timeout_ms = 10000;
    }
    config.on_worker_spawn = [&](std::uint32_t worker_id, int pid) {
      std::lock_guard<std::mutex> lock(pid_mu);
      pids[worker_id] = pid;
    };
    // Mild per-task delay so the kills land while work is in flight.
    config.worker_init = [](std::uint32_t) {
      failpoint::arm_from_spec(
          "cluster.dispatch:always:action=delay:delay_ms=15");
    };
    cluster::ClusterEngine engine(config);

    // Victims are distinct workers chosen by the seeded rng.
    std::vector<std::uint32_t> victims;
    while (victims.size() < kills) {
      const auto candidate =
          static_cast<std::uint32_t>(rng.next_below(kWorkers));
      if (std::find(victims.begin(), victims.end(), candidate) ==
          victims.end()) {
        victims.push_back(candidate);
      }
    }
    std::thread killer([&] {
      for (std::size_t k = 0; k < victims.size(); ++k) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(kill_delays_ms[k]));
        int pid = 0;
        {
          std::lock_guard<std::mutex> lock(pid_mu);
          pid = pids[victims[k]];
        }
        // The job may already be done and the worker cleanly gone; a
        // failed kill is not an error, only a no-op chaos step.
        if (pid > 0) ::kill(pid, SIGKILL);
      }
    });
    auto spec = corpus.job("soak-" + std::to_string(iteration));
    // Odd iterations cross the chaos with the skew-aware partitioner
    // (DESIGN.md §12): worker kills and task re-execution must not
    // corrupt the segment files or the split-merge finalize either.
    // Thresholds sized for the 400-word vocabulary so the plan both
    // places and splits keys at 3 reducers.
    if (iteration % 2 == 1) {
      spec.skew.enabled = true;
      spec.skew.place_threshold = 0.2;
      spec.skew.split_threshold = 0.4;
      spec.skew.max_split_shares = 3;
    }
    // Even iterations soak the sharded hash-combine path (DESIGN.md §15)
    // with a tiny watermark, so SIGKILLs also land mid hash-flush and
    // mid-demotion; the restarted task must rebuild identical output.
    if (iteration % 2 == 0) {
      spec.combine_mode = mr::CombineMode::kHash;
      spec.hash_combine_shards = 4;
      spec.hash_combine_watermark_bytes = 4096;
      spec.hash_combine_demote_flushes = 2;
    }
    const auto result = engine.run(spec);
    killer.join();
    corpus.check(result);
    if (soak_seconds <= 0) break;  // default suite: single sanity iteration
  }
}

}  // namespace
}  // namespace textmr
