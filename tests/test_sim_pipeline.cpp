#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/pipeline.hpp"

namespace textmr::sim {
namespace {

PipelineConfig base(double p, double c, double total = 1e9,
                    double buffer = 1e8, double x = 0.8,
                    SimSpillPolicy policy = SimSpillPolicy::kFixed) {
  PipelineConfig config;
  config.produce_rate = p;
  config.consume_rate = c;
  config.total_bytes = total;
  config.buffer_bytes = buffer;
  config.threshold = x;
  config.policy = policy;
  return config;
}

TEST(SimPipeline, WallIsAtLeastBothLowerBounds) {
  // Processing everything takes at least total/p and at least total/c.
  for (const double p : {1e6, 1e7, 1e8}) {
    for (const double c : {1e6, 1e7, 1e8}) {
      const auto result = simulate_map_pipeline(base(p, c));
      EXPECT_GE(result.wall_s, 1e9 / p - 1e-6);
      EXPECT_GE(result.wall_s, 1e9 / c - 1e-6);
      // And at most the fully serialized execution.
      EXPECT_LE(result.wall_s, 1e9 / p + 1e9 / c + 1e-6);
    }
  }
}

TEST(SimPipeline, EmptyInputIsZero) {
  auto config = base(1e6, 1e6);
  config.total_bytes = 0;
  const auto result = simulate_map_pipeline(config);
  EXPECT_EQ(result.wall_s, 0.0);
  EXPECT_EQ(result.spills, 0u);
}

TEST(SimPipeline, WorkConservation) {
  // wall = active_produce + map_idle at the map thread's end; for the
  // support thread, wall = active_consume + support_idle.
  const auto result = simulate_map_pipeline(base(2e7, 1e7));
  const double produce_active = 1e9 / 2e7;
  const double consume_active = 1e9 / 1e7;
  // Support finishes last; its busy+idle spans the wall exactly.
  EXPECT_NEAR(result.support_idle_s + consume_active, result.wall_s, 1e-6);
  // The map thread's busy+idle is at most the wall.
  EXPECT_LE(produce_active + result.map_idle_s, result.wall_s + 1e-6);
}

TEST(SimPipeline, MatcherNeverSlowerThanFixedDefault) {
  for (const double ratio : {0.1, 0.3, 1.0, 3.0, 10.0}) {
    const double p = 1e7 * ratio;
    const double c = 1e7;
    const auto fixed = simulate_map_pipeline(base(p, c, 1e9, 1e8, 0.8));
    const auto matched = simulate_map_pipeline(
        base(p, c, 1e9, 1e8, 0.8, SimSpillPolicy::kMatcher));
    EXPECT_LE(matched.wall_s, fixed.wall_s * 1.001) << "ratio=" << ratio;
  }
}

TEST(SimPipeline, MatcherRemovesSlowerThreadWaitTime) {
  // The paper's core claim (§V-C): with the matched threshold, the slower
  // of the two threads stops waiting (~90% of its wait removed for
  // WordCount-like rate ratios).
  const double p = 1.5e7;
  const double c = 1e7;  // support is slower
  const auto fixed = simulate_map_pipeline(base(p, c, 2e9, 1e8, 0.8));
  const auto matched = simulate_map_pipeline(
      base(p, c, 2e9, 1e8, 0.8, SimSpillPolicy::kMatcher));
  EXPECT_GT(fixed.support_idle_s, 0.0);
  EXPECT_LT(matched.support_idle_s, fixed.support_idle_s * 0.25);
}

TEST(SimPipeline, MatcherConvergesToEquationOneThreshold) {
  const double p = 1e7;
  const double c = 3e7;  // map slower: x* = c/(p+c) = 0.75
  const auto result = simulate_map_pipeline(
      base(p, c, 5e9, 1e8, 0.8, SimSpillPolicy::kMatcher));
  EXPECT_NEAR(result.final_threshold, 0.75, 0.02);

  const double p2 = 3e7;
  const double c2 = 1e7;  // support slower: x* = 1/2
  const auto result2 = simulate_map_pipeline(
      base(p2, c2, 5e9, 1e8, 0.8, SimSpillPolicy::kMatcher));
  EXPECT_NEAR(result2.final_threshold, 0.5, 0.02);
}

TEST(SimPipeline, BalancedRatesApproachPerfectOverlap) {
  // p == c with the matched threshold: wall tends to total/p + small
  // startup transient, i.e. near-perfect pipelining.
  const double rate = 1e7;
  const auto result = simulate_map_pipeline(
      base(rate, rate, 5e9, 1e8, 0.8, SimSpillPolicy::kMatcher));
  const double ideal = 5e9 / rate;
  EXPECT_LT(result.wall_s, ideal * 1.05);
}

TEST(SimPipeline, HighFixedThresholdStallsBalancedPipeline) {
  // With x = 0.8 and p ~ c, the §IV-C recurrence predicts both threads
  // wait (Hadoop's Table II behaviour). The simulated idle fractions must
  // be substantial.
  const double rate = 1e7;
  const auto result = simulate_map_pipeline(base(rate, rate, 5e9, 1e8, 0.8));
  const double ideal = 5e9 / rate;
  EXPECT_GT(result.wall_s, ideal * 1.3);
  EXPECT_GT(result.map_idle_s, 0.0);
  EXPECT_GT(result.support_idle_s, 0.0);
}

TEST(SimPipeline, SpillCountTracksThreshold) {
  // Smaller threshold -> more, smaller spills.
  const auto small = simulate_map_pipeline(base(1e7, 2e7, 1e9, 1e8, 0.1));
  const auto large = simulate_map_pipeline(base(1e7, 2e7, 1e9, 1e8, 0.9));
  EXPECT_GT(small.spills, large.spills);
}

TEST(SimPipeline, VerySlowConsumerDegeneratesToSerial) {
  // c << p: wall ~ total/c (consumer-bound), map idles most of the time.
  const auto result = simulate_map_pipeline(base(1e8, 1e6, 1e9, 1e8, 0.8));
  EXPECT_NEAR(result.wall_s, 1e9 / 1e6, 1e9 / 1e6 * 0.15);
  EXPECT_GT(result.map_idle_s, result.wall_s * 0.8);
}

TEST(SimPipeline, VerySlowProducerKeepsConsumerIdle) {
  const auto result = simulate_map_pipeline(base(1e6, 1e8, 1e9, 1e8, 0.8));
  EXPECT_NEAR(result.wall_s, 1e9 / 1e6, 1e9 / 1e6 * 0.15);
  EXPECT_GT(result.support_idle_s, result.wall_s * 0.8);
}

TEST(SimPipeline, RejectsNonPositiveRates) {
  auto config = base(0.0, 1e6);
  EXPECT_THROW(simulate_map_pipeline(config), InternalError);
}

}  // namespace
}  // namespace textmr::sim
