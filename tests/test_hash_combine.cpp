#include <gtest/gtest.h>

// Unit battery for the map-side sharded hash-combine path (ISSUE 10):
// combine-equivalence against an exact oracle, adversarial prefix-
// collision keys (equal 8-byte prefixes, short keys that prefix longer
// ones, embedded NULs), watermark flushes and mid-stream demotion — all
// checked for exact record_ref_less run order and byte-identical map-task
// output against the sort-spill baseline.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tempdir.hpp"
#include "io/spill_file.hpp"
#include "mr/hash_combine.hpp"
#include "mr/map_task.hpp"
#include "mr/record_arena.hpp"
#include "mr/types.hpp"

namespace textmr::mr {
namespace {

/// Counting combiner: sums decimal values per key (WordCount's shape).
std::unique_ptr<Reducer> make_summing_combiner() {
  return std::make_unique<LambdaReducer>(
      [](std::string_view key, ValueStream& values, EmitSink& out) {
        std::uint64_t total = 0;
        while (auto v = values.next()) {
          total += std::strtoull(std::string(*v).c_str(), nullptr, 10);
        }
        out.emit(key, std::to_string(total));
      });
}

struct FlatRecord {
  std::uint32_t partition;
  std::string key;
  std::string value;

  friend bool operator==(const FlatRecord&, const FlatRecord&) = default;
};

/// Reads every record of a run, partition by partition, in file order.
std::vector<FlatRecord> read_run(const io::SpillRunInfo& info,
                                 io::SpillFormat format) {
  std::vector<FlatRecord> records;
  io::SpillRunReader reader(info.path, format);
  for (std::uint32_t p = 0; p < reader.num_partitions(); ++p) {
    io::RunCursor cursor = reader.open(p);
    while (auto record = cursor.next()) {
      records.push_back(
          FlatRecord{p, std::string(record->key), std::string(record->value)});
    }
  }
  return records;
}

/// Asserts the run respects spill order: within each partition keys are
/// nondecreasing (record_ref_less order projected onto files).
void expect_run_sorted(const std::vector<FlatRecord>& records) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].partition == records[i - 1].partition) {
      EXPECT_LE(records[i - 1].key, records[i].key)
          << "run order violated at record " << i;
    } else {
      EXPECT_LT(records[i - 1].partition, records[i].partition);
    }
  }
}

struct TableHarness {
  TempDir dir;
  TaskMetrics metrics;
  std::unique_ptr<Reducer> combiner;
  std::unique_ptr<HashCombineShards> table;
  io::SpillFormat format = io::SpillFormat::kCompactVarint;

  explicit TableHarness(HashCombineConfig config, bool with_combiner = true) {
    config.format = format;
    if (with_combiner) combiner = make_summing_combiner();
    table = std::make_unique<HashCombineShards>(
        config, combiner.get(),
        [this](std::uint64_t sequence) {
          return (dir.path() / ("run" + std::to_string(sequence) + ".run"))
              .string();
        },
        metrics, nullptr);
  }
};

TEST(HashCombine, CombineEquivalenceVsExactOracle) {
  // A zipf-ish word stream: the table must produce exactly the oracle's
  // per-key totals, in one globally sorted run (no watermark pressure).
  HashCombineConfig config;
  config.num_shards = 4;
  config.num_partitions = 3;
  TableHarness h(config);

  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> oracle;
  Xoshiro256 rng(0x68617368ULL);  // "hash"
  for (std::size_t i = 0; i < 20000; ++i) {
    const std::string word = "w" + std::to_string(rng.next_below(700));
    const std::uint32_t partition =
        static_cast<std::uint32_t>(rng.next_below(3));
    const std::uint64_t weight = 1 + rng.next_below(3);
    h.table->insert(partition, word, std::to_string(weight));
    oracle[{partition, word}] += weight;
  }

  const auto runs = h.table->finish();
  ASSERT_EQ(runs.size(), 1u) << "no-pressure case must emit exactly one run";
  const auto records = read_run(runs[0], h.format);
  expect_run_sorted(records);
  ASSERT_EQ(records.size(), oracle.size());
  std::size_t i = 0;
  for (const auto& [pk, total] : oracle) {
    EXPECT_EQ(records[i].partition, pk.first);
    EXPECT_EQ(records[i].key, pk.second);
    EXPECT_EQ(records[i].value, std::to_string(total));
    ++i;
  }
  EXPECT_GT(h.table->stats().hits, 0u);
  EXPECT_EQ(h.table->stats().records, 20000u);
  EXPECT_EQ(h.table->stats().demotions, 0u);
  EXPECT_EQ(h.metrics.hash_combine_hits, h.table->stats().hits);
  EXPECT_EQ(h.metrics.spilled_records, records.size());
}

TEST(HashCombine, PrefixCollisionAdversarialKeys) {
  // Keys engineered to tie on the 8-byte big-endian prefix: identical
  // first 8 bytes with divergent tails (including NULs), short keys that
  // are prefixes of longer ones, and empty keys. Equality must confirm on
  // the full key; the radix fallback must order the tails correctly.
  HashCombineConfig config;
  config.num_shards = 2;
  config.num_partitions = 1;
  TableHarness h(config);

  std::vector<std::string> keys = {
      "",
      std::string(1, '\0'),
      std::string("prefix00", 8),
      std::string("prefix00a", 9),
      std::string("prefix00b", 9),
      std::string("prefix00\0x", 10),
      std::string("prefix00\0y", 10),
      "prefix00aaaaaaaaaaaaaaaa",
      "pre",
      "prefix",
      "prefix0",
  };
  std::map<std::string, std::uint64_t> oracle;
  for (std::size_t round = 0; round < 7; ++round) {
    for (const auto& key : keys) {
      h.table->insert(0, key, "1");
      oracle[key] += 1;
    }
  }
  const auto runs = h.table->finish();
  ASSERT_EQ(runs.size(), 1u);
  const auto records = read_run(runs[0], h.format);
  ASSERT_EQ(records.size(), oracle.size())
      << "prefix-colliding keys must not merge";
  std::size_t i = 0;
  for (const auto& [key, total] : oracle) {
    EXPECT_EQ(records[i].key, key) << "at " << i;
    EXPECT_EQ(records[i].value, std::to_string(total));
    ++i;
  }
}

TEST(HashCombine, NoCombinerChainsAllValues) {
  // Without a combiner the table degrades to grouping: every value
  // survives, chained per key in insertion order.
  HashCombineConfig config;
  config.num_shards = 2;
  config.num_partitions = 1;
  TableHarness h(config, /*with_combiner=*/false);
  for (int i = 0; i < 5; ++i) {
    h.table->insert(0, "alpha", "a" + std::to_string(i));
    h.table->insert(0, "beta", "b" + std::to_string(i));
  }
  const auto runs = h.table->finish();
  ASSERT_EQ(runs.size(), 1u);
  const auto records = read_run(runs[0], h.format);
  ASSERT_EQ(records.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[static_cast<std::size_t>(i)].key, "alpha");
    EXPECT_EQ(records[static_cast<std::size_t>(i)].value,
              "a" + std::to_string(i));
    EXPECT_EQ(records[static_cast<std::size_t>(5 + i)].key, "beta");
    EXPECT_EQ(records[static_cast<std::size_t>(5 + i)].value,
              "b" + std::to_string(i));
  }
}

TEST(HashCombine, WatermarkFlushesAndDemotes) {
  // A tiny watermark forces mid-stream flushes; demote_after_flushes=1
  // demotes every pressured shard to the sort-spill path. The records
  // must all survive across hash runs + demoted runs, with correct
  // per-key totals after re-aggregation.
  HashCombineConfig config;
  config.num_shards = 2;
  config.num_partitions = 2;
  config.watermark_bytes = 4096;
  config.demote_after_flushes = 1;
  TableHarness h(config);

  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> oracle;
  Xoshiro256 rng(0x64656d6fULL);  // "demo"
  for (std::size_t i = 0; i < 30000; ++i) {
    const std::string word = "key" + std::to_string(rng.next_below(4000));
    const std::uint32_t partition =
        static_cast<std::uint32_t>(rng.next_below(2));
    h.table->insert(partition, word, "1");
    oracle[{partition, word}] += 1;
  }
  const auto runs = h.table->finish();
  ASSERT_GT(runs.size(), 1u) << "pressure must produce several runs";
  EXPECT_GT(h.table->stats().flushes, 0u);
  EXPECT_GT(h.table->stats().demotions, 0u);
  EXPECT_EQ(h.metrics.hash_combine_demotions, h.table->stats().demotions);

  std::map<std::pair<std::uint32_t, std::string>, std::uint64_t> totals;
  for (const auto& run : runs) {
    const auto records = read_run(run, h.format);
    expect_run_sorted(records);
    for (const auto& r : records) {
      totals[{r.partition, r.key}] +=
          std::strtoull(r.value.c_str(), nullptr, 10);
    }
  }
  EXPECT_EQ(totals, oracle);
}

TEST(HashCombine, FinishedTwiceThrows) {
  HashCombineConfig config;
  TableHarness h(config);
  h.table->insert(0, "k", "1");
  (void)h.table->finish();
  EXPECT_THROW((void)h.table->finish(), InternalError);
}

// ---- whole-map-task byte-identity ----------------------------------------

/// Runs one map task over `input` in the given combine mode and returns
/// the raw bytes of its output run file.
std::string map_output_bytes(const std::filesystem::path& input,
                             const std::filesystem::path& scratch,
                             CombineMode mode, std::size_t watermark_bytes,
                             std::uint32_t demote_flushes) {
  MapTaskConfig config;
  config.task_id = 0;
  config.split = io::InputSplit{input.string(), 0,
                                std::filesystem::file_size(input)};
  config.num_partitions = 4;
  config.mapper = [] {
    return std::make_unique<LambdaMapper>(
        [](std::uint64_t, std::string_view line, EmitSink& out) {
          // Whitespace word splitter with per-word unit counts.
          std::size_t start = 0;
          while (start < line.size()) {
            const std::size_t end = line.find(' ', start);
            const std::string_view word = line.substr(
                start, end == std::string_view::npos ? std::string_view::npos
                                                     : end - start);
            if (!word.empty()) out.emit(word, "1");
            if (end == std::string_view::npos) break;
            start = end + 1;
          }
        });
  };
  config.combiner = [] { return make_summing_combiner(); };
  config.spill_buffer_bytes = 64u << 10;  // small: forces sort-path spills
  config.scratch_dir = scratch;
  config.combine_mode = mode;
  config.hash_combine_shards = 4;
  config.hash_combine_watermark_bytes = watermark_bytes;
  config.hash_combine_demote_flushes = demote_flushes;
  const MapTaskResult result = run_map_task(config);
  std::ifstream in(result.output.path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(HashCombine, MapTaskByteIdenticalAcrossModes) {
  TempDir dir;
  const std::filesystem::path input = dir.path() / "input.txt";
  {
    std::ofstream out(input);
    Xoshiro256 rng(0x62797465ULL);  // "byte"
    for (int line = 0; line < 4000; ++line) {
      for (int w = 0; w < 8; ++w) {
        out << "word" << rng.next_below(900) << (w == 7 ? '\n' : ' ');
      }
    }
  }
  const std::string sorted = map_output_bytes(
      input, dir.path() / "s", CombineMode::kSort, 0, 4);
  const std::string hashed = map_output_bytes(
      input, dir.path() / "h", CombineMode::kHash, 0, 4);
  // Forced pressure: a 2 KiB watermark + demote-after-one-flush pushes
  // every shard through flush AND demotion mid-stream.
  const std::string demoted = map_output_bytes(
      input, dir.path() / "d", CombineMode::kHash, 2048, 1);
  ASSERT_FALSE(sorted.empty());
  EXPECT_EQ(sorted, hashed) << "hash-combine output differs from sort path";
  EXPECT_EQ(sorted, demoted)
      << "watermark/demotion path output differs from sort path";
}

}  // namespace
}  // namespace textmr::mr
