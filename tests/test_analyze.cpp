// Tests for the offline trace analyzer (ISSUE 6): phase partition,
// critical-path decomposition, straggler attribution, worker lanes, and
// the Chrome/JSONL file loaders — all on hand-built synthetic traces
// with exactly known timings, so every expected number is derivable by
// hand from the event list.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "textmr.hpp"

namespace textmr {
namespace {

obs::TraceEvent span(const char* name, std::uint64_t ts_ns,
                     std::uint64_t dur_ns, std::uint32_t pid,
                     std::uint32_t tid = 0) {
  obs::TraceEvent e;
  e.name = name;
  e.category = "test";
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.pid = pid;
  e.tid = tid;
  e.kind = obs::EventKind::kSpan;
  return e;
}

obs::TraceEvent instant(const char* name, std::uint64_t ts_ns,
                        std::uint32_t pid, std::uint32_t tid = 0) {
  obs::TraceEvent e;
  e.name = name;
  e.category = "test";
  e.ts_ns = ts_ns;
  e.pid = pid;
  e.tid = tid;
  e.kind = obs::EventKind::kInstant;
  return e;
}

/// A synthetic 20µs cluster job with exactly known structure:
///
///   [0, 1000)      startup (first event at ts 0, map_phase starts 1000)
///   [1000, 10000)  map_phase; tasks 0 (4000ns), 1 (8000ns, gating) and a
///                  speculative loser 2 that ends at 11000 — after the
///                  phase, so it must NOT be picked as the gating task
///   [10000, 12000) barrier
///   [12000, 18000) reduce_phase; partitions 0 (5000ns, gating), 1 (3000)
///   [18000, 20000) finalize (output_close driver span)
///
/// Worker lanes: worker 0 (pid 200000) runs map 0, the loser attempt and
/// reduce 0; worker 1 (pid 200001) runs map 1 and reduce 1. All
/// timestamps are multiples of 1000ns so the Chrome µs round-trip below
/// is exact.
obs::TraceData synthetic_cluster_trace() {
  obs::TraceData t;
  t.enabled = true;
  t.job_name = "synthetic";
  t.epoch_ns = 0;
  t.events.push_back(instant("map_dispatch", 0, obs::kDriverPid));
  t.events.push_back(span("map_phase", 1000, 9000, obs::kDriverPid));
  t.events.push_back(span("map_task", 1000, 4000, obs::map_task_pid(0)));
  t.events.push_back(span("map_exec", 1000, 4000, obs::worker_pid(0)));
  t.events.push_back(span("map_task", 1500, 8000, obs::map_task_pid(1)));
  t.events.push_back(span("map_exec", 1500, 8000, obs::worker_pid(1)));
  t.events.push_back(span("map_task", 2000, 9000, obs::map_task_pid(2)));
  t.events.push_back(span("map_exec", 2000, 9000, obs::worker_pid(0)));
  t.events.push_back(span("spill_sort", 2000, 300, obs::map_task_pid(0), 1));
  t.events.push_back(span("spill_sort", 3000, 200, obs::map_task_pid(1), 1));
  t.events.push_back(span("reduce_phase", 12000, 6000, obs::kDriverPid));
  t.events.push_back(span("reduce_task", 12000, 5000, obs::reduce_task_pid(0)));
  t.events.push_back(span("reduce_exec", 12000, 5000, obs::worker_pid(0)));
  t.events.push_back(span("reduce_task", 12500, 3000, obs::reduce_task_pid(1)));
  t.events.push_back(span("reduce_exec", 12500, 3000, obs::worker_pid(1)));
  t.events.push_back(span("shuffle", 13000, 400, obs::reduce_task_pid(0)));
  t.events.push_back(span("output_close", 18000, 2000, obs::kDriverPid));
  t.process_names.emplace_back(obs::worker_pid(0), "worker-0");
  t.process_names.emplace_back(obs::worker_pid(1), "worker-1");
  return t;
}

TEST(Analyze, PhasesPartitionTheWallExactly) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  EXPECT_EQ(a.job_name, "synthetic");
  EXPECT_EQ(a.num_events, 17u);
  EXPECT_EQ(a.wall_ns, 20000u);
  EXPECT_FALSE(a.telemetry_incomplete);
  EXPECT_TRUE(a.unknown_event_names.empty());

  ASSERT_EQ(a.phases.size(), 5u);
  const char* expected_names[] = {"startup", "map_phase", "barrier",
                                  "reduce_phase", "finalize"};
  const std::uint64_t expected_start[] = {0, 1000, 10000, 12000, 18000};
  const std::uint64_t expected_dur[] = {1000, 9000, 2000, 6000, 2000};
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.phases[i].name, expected_names[i]) << i;
    EXPECT_EQ(a.phases[i].start_ns, expected_start[i]) << i;
    EXPECT_EQ(a.phases[i].dur_ns, expected_dur[i]) << i;
    // Contiguous partition: each phase starts where the previous ended.
    EXPECT_EQ(a.phases[i].start_ns, covered) << i;
    covered += a.phases[i].dur_ns;
  }
  EXPECT_EQ(covered, a.wall_ns);
}

TEST(Analyze, CriticalPathCoversTheWallAndSkipsSpeculativeLosers) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  // The map phase decomposes around task 1 (ends 9500, inside the
  // phase), NOT task 2 (the longest attempt, but it ends at 11000 —
  // after the phase closed, so it lost the speculative race and cannot
  // be what released the barrier).
  ASSERT_EQ(a.critical_path.size(), 9u);
  EXPECT_EQ(a.critical_path[0].label, "startup");
  EXPECT_EQ(a.critical_path[0].dur_ns, 1000u);
  EXPECT_EQ(a.critical_path[1].label, "map waves before critical task 1");
  EXPECT_EQ(a.critical_path[1].dur_ns, 500u);
  EXPECT_EQ(a.critical_path[2].label, "map critical task 1");
  EXPECT_EQ(a.critical_path[2].dur_ns, 8000u);
  EXPECT_EQ(a.critical_path[3].label, "map completion tail");
  EXPECT_EQ(a.critical_path[3].dur_ns, 500u);
  EXPECT_EQ(a.critical_path[4].label, "barrier");
  EXPECT_EQ(a.critical_path[4].dur_ns, 2000u);
  EXPECT_EQ(a.critical_path[5].label, "reduce waves before critical task 0");
  EXPECT_EQ(a.critical_path[5].dur_ns, 0u);
  EXPECT_EQ(a.critical_path[6].label, "reduce critical task 0");
  EXPECT_EQ(a.critical_path[6].dur_ns, 5000u);
  EXPECT_EQ(a.critical_path[7].label, "reduce completion tail");
  EXPECT_EQ(a.critical_path[7].dur_ns, 1000u);
  EXPECT_EQ(a.critical_path[8].label, "finalize");
  EXPECT_EQ(a.critical_path[8].dur_ns, 2000u);

  // Exhaustive phase partition + exhaustive phase decomposition =>
  // the path accounts for every wall nanosecond.
  EXPECT_EQ(a.critical_path_ns, a.wall_ns);
  EXPECT_DOUBLE_EQ(a.critical_path_coverage(), 1.0);
}

TEST(Analyze, StragglersAndMediansFromTaskSpans) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  // Map durations {4000, 8000, 9000}: median (upper) 8000, slowest first.
  EXPECT_EQ(a.median_map_task_ns, 8000u);
  ASSERT_EQ(a.slowest_map_tasks.size(), 3u);
  EXPECT_EQ(a.slowest_map_tasks[0].id, 2u);
  EXPECT_EQ(a.slowest_map_tasks[0].dur_ns, 9000u);
  EXPECT_EQ(a.slowest_map_tasks[1].id, 1u);
  EXPECT_EQ(a.slowest_map_tasks[2].id, 0u);

  // Reduce durations {5000, 3000}: upper median 5000.
  EXPECT_EQ(a.median_reduce_task_ns, 5000u);
  ASSERT_EQ(a.slowest_reduce_tasks.size(), 2u);
  EXPECT_EQ(a.slowest_reduce_tasks[0].id, 0u);
  EXPECT_EQ(a.slowest_reduce_tasks[0].dur_ns, 5000u);
}

TEST(Analyze, ReduceStragglersAttributeHeavyKeysAndShuffleBytes) {
  // A skew-partitioned run leaves two pieces of evidence in the trace: a
  // driver "partition_bytes" instant per physical partition and a
  // "reduce_<p> key=<k>" process name for each dedicated partition. The
  // straggler table must fold both onto the reduce task spans so a slow
  // reducer is named by the heavy key it served, not just its id.
  obs::TraceData t = synthetic_cluster_trace();
  const auto volume = [](std::uint32_t partition, double bytes) {
    obs::TraceEvent e = instant("partition_bytes", 17000, obs::kDriverPid);
    e.num_args = 2;
    e.arg_names[0] = "partition";
    e.args[0] = partition;
    e.arg_names[1] = "bytes";
    e.args[1] = bytes;
    return e;
  };
  t.events.push_back(volume(0, 48.0 * 1024));
  t.events.push_back(volume(1, 4.0 * 1024));
  t.process_names.emplace_back(obs::reduce_task_pid(0), "reduce_0 key=the");
  // Malformed variants must be ignored, not crash or misattribute.
  t.process_names.emplace_back(obs::reduce_task_pid(1), "reduce_x key=bogus");
  t.process_names.emplace_back(obs::worker_pid(1), "reduce_nokey");

  const obs::TraceAnalysis a = obs::analyze_trace(t);
  ASSERT_EQ(a.slowest_reduce_tasks.size(), 2u);
  EXPECT_EQ(a.slowest_reduce_tasks[0].id, 0u);
  EXPECT_EQ(a.slowest_reduce_tasks[0].heavy_key, "the");
  EXPECT_EQ(a.slowest_reduce_tasks[0].shuffled_bytes, 48u * 1024);
  EXPECT_EQ(a.slowest_reduce_tasks[1].id, 1u);
  EXPECT_EQ(a.slowest_reduce_tasks[1].heavy_key, "");
  EXPECT_EQ(a.slowest_reduce_tasks[1].shuffled_bytes, 4u * 1024);
  // partition_bytes is a known instant, not an unknown-name complaint.
  EXPECT_TRUE(a.unknown_event_names.empty());

  const std::string text = obs::format_analysis(a);
  EXPECT_NE(text.find("reduce stragglers:"), std::string::npos);
  EXPECT_NE(text.find("heavy key \"the\""), std::string::npos);
  EXPECT_NE(text.find("48.0 KB shuffled"), std::string::npos);

  const auto parsed = obs::JsonValue::parse(obs::format_analysis_json(a));
  ASSERT_TRUE(parsed.has_value());
  const auto& stragglers = parsed->get("slowest_reduce_tasks")->array();
  ASSERT_EQ(stragglers.size(), 2u);
  EXPECT_EQ(stragglers[0].get("heavy_key")->string_value(), "the");
  EXPECT_DOUBLE_EQ(stragglers[0].get("shuffled_bytes")->number_or(0.0),
                   48.0 * 1024);
}

TEST(Analyze, StragglerTableOmittedWithoutSkewEvidence) {
  // A plain hash-partitioner trace has neither partition_bytes instants
  // nor key-annotated reduce rings: the text report keeps the one-line
  // "slowest partition" summary and skips the per-straggler table.
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());
  for (const auto& task : a.slowest_reduce_tasks) {
    EXPECT_TRUE(task.heavy_key.empty());
    EXPECT_EQ(task.shuffled_bytes, 0u);
  }
  const std::string text = obs::format_analysis(a);
  EXPECT_NE(text.find("slowest partition"), std::string::npos);
  EXPECT_EQ(text.find("reduce stragglers:"), std::string::npos);
}

TEST(Analyze, WorkerLanesUseExecSpansAndProcessNames) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  // Window = [map_phase start 1000, reduce_phase end 18000) = 17000ns.
  ASSERT_EQ(a.workers.size(), 2u);
  const auto& w0 = a.workers[0];
  EXPECT_EQ(w0.pid, obs::worker_pid(0));
  EXPECT_EQ(w0.name, "worker-0");
  EXPECT_EQ(w0.window_ns, 17000u);
  // Busy 4000 + 9000 + 5000 = 18000, clamped to the window => idle 0.
  EXPECT_EQ(w0.busy_ns, 18000u);
  EXPECT_EQ(w0.tasks, 3u);
  EXPECT_DOUBLE_EQ(w0.idle_fraction, 0.0);

  const auto& w1 = a.workers[1];
  EXPECT_EQ(w1.pid, obs::worker_pid(1));
  EXPECT_EQ(w1.name, "worker-1");
  EXPECT_EQ(w1.busy_ns, 11000u);
  EXPECT_EQ(w1.tasks, 2u);
  EXPECT_DOUBLE_EQ(w1.idle_fraction, 6000.0 / 17000.0);
}

TEST(Analyze, OpTotalsExcludeContainerSpans) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  // output_close (2000), spill_sort (300 + 200), shuffle (400) — the
  // driver's output_close span is leaf work too, just on pid 0.
  ASSERT_EQ(a.op_totals.size(), 3u);
  EXPECT_EQ(a.op_totals[0].name, "output_close");
  EXPECT_EQ(a.op_totals[0].total_ns, 2000u);
  EXPECT_EQ(a.op_totals[1].name, "spill_sort");
  EXPECT_EQ(a.op_totals[1].total_ns, 500u);
  EXPECT_EQ(a.op_totals[1].count, 2u);
  EXPECT_EQ(a.op_totals[2].name, "shuffle");
  EXPECT_EQ(a.op_totals[2].total_ns, 400u);
  EXPECT_EQ(a.op_totals[2].count, 1u);
  for (const auto& op : a.op_totals) {
    EXPECT_NE(op.name, "map_phase");
    EXPECT_NE(op.name, "map_task");
    EXPECT_NE(op.name, "map_exec");
  }
}

TEST(Analyze, UnknownEventNamesSurface) {
  obs::TraceData t = synthetic_cluster_trace();
  t.events.push_back(instant("mystery_op", 5000, obs::kDriverPid));
  const obs::TraceAnalysis a = obs::analyze_trace(t);
  ASSERT_EQ(a.unknown_event_names.size(), 1u);
  EXPECT_EQ(a.unknown_event_names[0], "mystery_op");
}

TEST(Analyze, TraceWithoutPhaseSpansFallsBackToUntracked) {
  obs::TraceData t;
  t.enabled = true;
  t.events.push_back(span("spill_sort", 100, 400, 1, 1));
  t.events.push_back(span("spill_write", 600, 900, 1, 1));
  const obs::TraceAnalysis a = obs::analyze_trace(t);

  EXPECT_EQ(a.wall_ns, 1400u);  // [100, 1500)
  ASSERT_EQ(a.phases.size(), 1u);
  EXPECT_EQ(a.phases[0].name, "untracked");
  EXPECT_EQ(a.phases[0].dur_ns, 1400u);
  ASSERT_EQ(a.critical_path.size(), 1u);
  EXPECT_DOUBLE_EQ(a.critical_path_coverage(), 1.0);
}

TEST(Analyze, EmptyTraceYieldsEmptyAnalysis) {
  const obs::TraceAnalysis a = obs::analyze_trace(obs::TraceData{});
  EXPECT_EQ(a.num_events, 0u);
  EXPECT_EQ(a.wall_ns, 0u);
  EXPECT_TRUE(a.phases.empty());
  EXPECT_TRUE(a.critical_path.empty());
  EXPECT_DOUBLE_EQ(a.critical_path_coverage(), 0.0);
}

TEST(Analyze, FormatsMentionTheHeadlineNumbers) {
  const obs::TraceAnalysis a = obs::analyze_trace(synthetic_cluster_trace());

  const std::string text = obs::format_analysis(a);
  EXPECT_NE(text.find("synthetic"), std::string::npos);
  EXPECT_NE(text.find("map_phase"), std::string::npos);
  EXPECT_NE(text.find("critical path (100.0% of wall)"), std::string::npos);
  EXPECT_NE(text.find("worker-1"), std::string::npos);

  const std::string json = obs::format_analysis_json(a);
  const auto parsed = obs::JsonValue::parse(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("job")->string_value(), "synthetic");
  EXPECT_EQ(parsed->get("phases")->array().size(), 5u);
  EXPECT_DOUBLE_EQ(parsed->get("critical_path_coverage")->number_or(0.0), 1.0);
}

// ---- file loaders ---------------------------------------------------------

class AnalyzeFileTest : public ::testing::Test {
 protected:
  TempDir dir_{"textmr-analyze-test"};
};

TEST_F(AnalyzeFileTest, ChromeTraceRoundTripsThroughLoadTraceFile) {
  obs::TraceData original = synthetic_cluster_trace();
  original.dropped_events = 7;
  original.incomplete = true;
  original.ring_drops.push_back({obs::map_task_pid(0), 1, 7});

  const auto path = dir_.file("job.trace.json");
  obs::write_file(path, obs::format_chrome_trace(original));
  const obs::TraceData loaded = obs::load_trace_file(path);

  EXPECT_EQ(loaded.job_name, "synthetic");
  EXPECT_EQ(loaded.dropped_events, 7u);
  EXPECT_TRUE(loaded.incomplete);
  ASSERT_EQ(loaded.ring_drops.size(), 1u);
  EXPECT_EQ(loaded.ring_drops[0].pid, obs::map_task_pid(0));
  EXPECT_EQ(loaded.ring_drops[0].dropped, 7u);
  ASSERT_EQ(loaded.events.size(), original.events.size());

  // Every synthetic timestamp is a multiple of 1000ns, so the µs Chrome
  // encoding is lossless and the reloaded analysis must be identical.
  const obs::TraceAnalysis before = obs::analyze_trace(original);
  const obs::TraceAnalysis after = obs::analyze_trace(loaded);
  EXPECT_EQ(after.wall_ns, before.wall_ns);
  EXPECT_EQ(after.critical_path_ns, before.critical_path_ns);
  ASSERT_EQ(after.phases.size(), before.phases.size());
  for (std::size_t i = 0; i < before.phases.size(); ++i) {
    EXPECT_EQ(after.phases[i].name, before.phases[i].name);
    EXPECT_EQ(after.phases[i].dur_ns, before.phases[i].dur_ns);
  }
  ASSERT_EQ(after.workers.size(), 2u);
  EXPECT_EQ(after.workers[0].name, "worker-0");  // M-event metadata survived
  EXPECT_TRUE(after.unknown_event_names.empty());
}

TEST_F(AnalyzeFileTest, JsonlTraceRoundTripsThroughLoadTraceFile) {
  const obs::TraceData original = synthetic_cluster_trace();
  const auto path = dir_.file("job.trace.jsonl");
  obs::write_file(path, obs::format_trace_jsonl(original));
  const obs::TraceData loaded = obs::load_trace_file(path);

  ASSERT_EQ(loaded.events.size(), original.events.size());
  for (std::size_t i = 0; i < original.events.size(); ++i) {
    EXPECT_STREQ(loaded.events[i].name, original.events[i].name) << i;
    EXPECT_EQ(loaded.events[i].ts_ns, original.events[i].ts_ns) << i;
    EXPECT_EQ(loaded.events[i].dur_ns, original.events[i].dur_ns) << i;
    EXPECT_EQ(loaded.events[i].pid, original.events[i].pid) << i;
    EXPECT_EQ(loaded.events[i].kind, original.events[i].kind) << i;
  }

  // JSONL carries no process-name metadata, so lanes fall back to pid
  // labels — but the timings are exact.
  const obs::TraceAnalysis before = obs::analyze_trace(original);
  const obs::TraceAnalysis after = obs::analyze_trace(loaded);
  EXPECT_EQ(after.wall_ns, before.wall_ns);
  EXPECT_EQ(after.critical_path_ns, before.critical_path_ns);
  EXPECT_EQ(after.median_map_task_ns, before.median_map_task_ns);
}

TEST_F(AnalyzeFileTest, LoadRejectsMissingAndMalformedFiles) {
  EXPECT_THROW((void)obs::load_trace_file(dir_.file("absent.json")), IoError);
  const auto bad = dir_.file("bad.json");
  obs::write_file(bad, "{\"traceEvents\": [{\"ph\": ");
  EXPECT_THROW((void)obs::load_trace_file(bad), FormatError);
}

// ---- merge / rebase determinism -------------------------------------------

/// Builds the per-worker chunk traces a cluster run would ship: the
/// driver's own trace plus two worker traces whose clocks run ahead of
/// the coordinator's by a known offset.
std::vector<obs::TraceData> synthetic_chunks() {
  std::vector<obs::TraceData> chunks;
  obs::TraceData w0;
  w0.enabled = true;
  w0.events.push_back(span("map_exec", 5000, 400, obs::worker_pid(0)));
  w0.events.push_back(
      instant("spill_seal", 5200, obs::worker_pid(0)));
  w0.process_names.emplace_back(obs::worker_pid(0), "worker-0");
  chunks.push_back(std::move(w0));

  obs::TraceData w1;
  w1.enabled = true;
  w1.events.push_back(span("reduce_exec", 6000, 300, obs::worker_pid(1)));
  w1.ring_drops.push_back({obs::worker_pid(1), 0, 2});
  w1.dropped_events = 2;
  w1.process_names.emplace_back(obs::worker_pid(1), "worker-1");
  chunks.push_back(std::move(w1));
  return chunks;
}

TEST(Analyze, MergedTraceIsByteIdenticalAcrossRuns) {
  // Same chunk set, merged twice in the same order, must render to the
  // exact same bytes — the determinism the golden CI artifacts rely on.
  std::string rendered[2];
  for (auto& out : rendered) {
    obs::TraceData job = synthetic_cluster_trace();
    for (auto& chunk : synthetic_chunks()) {
      obs::merge_trace(job, std::move(chunk));
    }
    out = obs::format_chrome_trace(job);
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_FALSE(rendered[0].empty());
}

TEST(Analyze, RebaseAlignsWorkerClocksBeforeMerge) {
  // Worker 0's clock runs 2000ns ahead of the coordinator: its events
  // carry worker timestamps that must be rebased by the handshake offset
  // before merging, after which its exec span lines up with the
  // coordinator timeline exactly.
  obs::TraceData job = synthetic_cluster_trace();
  auto chunks = synthetic_chunks();
  obs::rebase_trace(chunks[0], 2000);   // worker-minus-coordinator offset
  obs::rebase_trace(chunks[1], -1000);  // and one running behind
  for (auto& chunk : chunks) obs::merge_trace(job, std::move(chunk));

  std::vector<std::uint64_t> w0_exec_ts;
  std::vector<std::uint64_t> w1_exec_ts;
  for (const auto& e : job.events) {
    if (e.pid == obs::worker_pid(0) &&
        std::string_view(e.name) == "map_exec") {
      w0_exec_ts.push_back(e.ts_ns);
    }
    if (e.pid == obs::worker_pid(1) &&
        std::string_view(e.name) == "reduce_exec") {
      w1_exec_ts.push_back(e.ts_ns);
    }
  }
  // The base trace has exec spans of its own; the chunk events land at
  // their rebased timestamps among them.
  EXPECT_NE(std::find(w0_exec_ts.begin(), w0_exec_ts.end(), 3000u),
            w0_exec_ts.end());  // 5000 - 2000
  EXPECT_NE(std::find(w1_exec_ts.begin(), w1_exec_ts.end(), 7000u),
            w1_exec_ts.end());  // 6000 - (-1000)
  EXPECT_EQ(job.dropped_events, 2u);

  // The merged trace analyzes cleanly: worker lanes for both workers,
  // with the rebased busy time intact (durations are offset-invariant).
  const obs::TraceAnalysis a = obs::analyze_trace(job);
  bool saw_w0 = false;
  for (const auto& lane : a.workers) {
    if (lane.pid == obs::worker_pid(0)) {
      saw_w0 = true;
      EXPECT_EQ(lane.busy_ns, 18000u + 400u);
    }
  }
  EXPECT_TRUE(saw_w0);
}

}  // namespace
}  // namespace textmr
