#include <gtest/gtest.h>

// Unit tests for the cluster control protocol (wire codecs, framing) and
// the straggler detector's threshold arithmetic under a ManualClock. The
// process-level battery lives in test_cluster.cpp; everything here is
// in-process and deterministic.

#include <sys/socket.h>
#include <unistd.h>

#include "cluster/liveness.hpp"
#include "textmr.hpp"

namespace textmr::cluster {
namespace {

WireReader reader_skipping_type(const std::string& frame, MsgType expected) {
  WireReader r(frame);
  EXPECT_EQ(static_cast<MsgType>(r.u8()), expected);
  return r;
}

TEST(WireCodec, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.f64(-1.5);
  w.str("hello\0world");  // embedded NUL is cut by the literal, still fine
  w.str("");
  const std::string buf = w.take();

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1.5);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WireCodec, LittleEndianLayout) {
  WireWriter w;
  w.u32(0x01020304);
  const std::string buf = w.take();
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<std::uint8_t>(buf[3]), 0x01);
}

TEST(WireCodec, TruncatedReadsThrowFormatError) {
  WireWriter w;
  w.u32(7);
  const std::string buf = w.take();
  WireReader r(buf);
  r.u32();
  EXPECT_THROW(r.u8(), FormatError);

  WireReader r2(buf);
  EXPECT_THROW(r2.u64(), FormatError);

  // A string whose declared length exceeds the remaining bytes.
  WireWriter w3;
  w3.u32(1000);
  const std::string buf3 = w3.take();
  WireReader r3(buf3);
  EXPECT_THROW(r3.str(), FormatError);
}

TEST(WireCodec, TrailingBytesDetected) {
  WireWriter w;
  w.u32(1);
  w.u8(9);
  const std::string buf = w.take();
  WireReader r(buf);
  r.u32();
  EXPECT_THROW(r.expect_done(), FormatError);
}

TEST(ProtocolCodec, RunTaskRoundTrip) {
  const std::string frame =
      encode_run_task(MsgType::kRunMap, RunTaskMsg{42, 3});
  auto r = reader_skipping_type(frame, MsgType::kRunMap);
  const RunTaskMsg msg = decode_run_task(r);
  EXPECT_EQ(msg.id, 42u);
  EXPECT_EQ(msg.attempt, 3u);
}

TEST(ProtocolCodec, RunReduceRoundTripCarriesMapOutputs) {
  RunReduceMsg msg;
  msg.partition = 2;
  msg.attempt = 1;
  for (int i = 0; i < 3; ++i) {
    io::SpillRunInfo run;
    run.path = "/scratch/map" + std::to_string(i) + "_final";
    run.bytes = 1000 + i;
    run.records = 50 + i;
    for (int p = 0; p < 2; ++p) {
      io::PartitionExtent extent;
      extent.offset = p * 512;
      extent.bytes = 512;
      extent.records = 25;
      run.partitions.push_back(extent);
    }
    msg.map_outputs.push_back(run);
  }
  const std::string frame = encode_run_reduce(msg);
  auto r = reader_skipping_type(frame, MsgType::kRunReduce);
  const RunReduceMsg out = decode_run_reduce(r);
  EXPECT_EQ(out.partition, 2u);
  EXPECT_EQ(out.attempt, 1u);
  ASSERT_EQ(out.map_outputs.size(), 3u);
  EXPECT_EQ(out.map_outputs[1].path, "/scratch/map1_final");
  EXPECT_EQ(out.map_outputs[1].bytes, 1001u);
  ASSERT_EQ(out.map_outputs[2].partitions.size(), 2u);
  EXPECT_EQ(out.map_outputs[2].partitions[1].offset, 512u);
  EXPECT_EQ(out.map_outputs[2].partitions[1].records, 25u);
}

TEST(ProtocolCodec, HeartbeatRoundTrip) {
  HeartbeatMsg msg;
  msg.worker_id = 5;
  msg.kind = TaskKind::kMap;
  msg.id = 17;
  msg.attempt = 2;
  msg.progress = 0.625;
  const std::string frame = encode_heartbeat(msg);
  auto r = reader_skipping_type(frame, MsgType::kHeartbeat);
  const HeartbeatMsg out = decode_heartbeat(r);
  EXPECT_EQ(out.worker_id, 5u);
  EXPECT_EQ(out.kind, TaskKind::kMap);
  EXPECT_EQ(out.id, 17u);
  EXPECT_EQ(out.attempt, 2u);
  EXPECT_EQ(out.progress, 0.625);
  EXPECT_TRUE(out.stats.task_latency_ns.empty());
}

TEST(ProtocolCodec, HeartbeatCarriesWorkerMetrics) {
  HeartbeatMsg msg;
  msg.worker_id = 1;
  msg.stats.records = 1000;
  msg.stats.bytes = 65536;
  msg.stats.spills = 7;
  msg.stats.tasks_completed = 4;
  msg.stats.task_failures = 1;
  msg.stats.trace_dropped = 12;
  msg.stats.task_latency_ns.record(1500);
  msg.stats.task_latency_ns.record(2500000);
  msg.stats.task_latency_ns.record(2500000);

  const std::string frame = encode_heartbeat(msg);
  auto r = reader_skipping_type(frame, MsgType::kHeartbeat);
  const HeartbeatMsg out = decode_heartbeat(r);
  EXPECT_EQ(out.stats.records, 1000u);
  EXPECT_EQ(out.stats.bytes, 65536u);
  EXPECT_EQ(out.stats.spills, 7u);
  EXPECT_EQ(out.stats.tasks_completed, 4u);
  EXPECT_EQ(out.stats.task_failures, 1u);
  EXPECT_EQ(out.stats.trace_dropped, 12u);
  EXPECT_EQ(out.stats.task_latency_ns, msg.stats.task_latency_ns);
  EXPECT_EQ(out.stats.task_latency_ns.count(), 3u);
}

TEST(ProtocolCodec, ClockProbeAndSyncRoundTrip) {
  const std::string probe_frame = encode_clock_probe(ClockProbeMsg{987654321});
  auto pr = reader_skipping_type(probe_frame, MsgType::kClockProbe);
  EXPECT_EQ(decode_clock_probe(pr).t_send, 987654321u);

  ClockSyncMsg sync;
  sync.worker_id = 3;
  sync.t_probe = 987654321;
  sync.t_worker = 999999999;
  const std::string sync_frame = encode_clock_sync(sync);
  auto sr = reader_skipping_type(sync_frame, MsgType::kClockSync);
  const ClockSyncMsg out = decode_clock_sync(sr);
  EXPECT_EQ(out.worker_id, 3u);
  EXPECT_EQ(out.t_probe, 987654321u);
  EXPECT_EQ(out.t_worker, 999999999u);
}

TEST(ProtocolCodec, EstimateClockOffsetMidpointMath) {
  // Worker clock reads 1500 when the coordinator's midpoint is 1000.
  EXPECT_EQ(estimate_clock_offset(900, 1100, 1500), 500);
  // Negative offsets (worker clock behind) work too.
  EXPECT_EQ(estimate_clock_offset(900, 1100, 400), -600);
  // Odd sum: midpoint of (3, 4) rounds to 3 by the halves-plus-carry form.
  EXPECT_EQ(estimate_clock_offset(3, 4, 10), 7);
  // Huge timestamps must not overflow the midpoint computation.
  const std::uint64_t big = 0xfffffffffffffff0ull;
  EXPECT_EQ(estimate_clock_offset(big, big, big), 0);
}

TEST(ProtocolCodec, MsgTypeNamesAreExhaustive) {
  for (MsgType type :
       {MsgType::kRunMap, MsgType::kRunReduce, MsgType::kShutdown,
        MsgType::kClockProbe, MsgType::kHeartbeat, MsgType::kMapDone,
        MsgType::kReduceDone, MsgType::kTaskFailed, MsgType::kClockSync,
        MsgType::kTraceChunk}) {
    EXPECT_STRNE(msg_type_name(type), "unknown")
        << static_cast<int>(type);
  }
  EXPECT_STREQ(msg_type_name(static_cast<MsgType>(200)), "unknown");
}

TEST(ProtocolCodec, TaskFailedRoundTrip) {
  TaskFailedMsg msg;
  msg.kind = TaskKind::kReduce;
  msg.id = 9;
  msg.attempt = 4;
  msg.retryable = false;
  msg.message = "io error: disk on fire";
  const std::string frame = encode_task_failed(msg);
  auto r = reader_skipping_type(frame, MsgType::kTaskFailed);
  const TaskFailedMsg out = decode_task_failed(r);
  EXPECT_EQ(out.kind, TaskKind::kReduce);
  EXPECT_EQ(out.id, 9u);
  EXPECT_EQ(out.attempt, 4u);
  EXPECT_FALSE(out.retryable);
  EXPECT_EQ(out.message, "io error: disk on fire");
}

TEST(ProtocolCodec, MapDoneRoundTripPreservesMetricsAndCounters) {
  mr::MapTaskResult result;
  result.output.path = "/scratch/map7_a0_final";
  result.output.bytes = 4096;
  result.output.records = 123;
  io::PartitionExtent extent;
  extent.offset = 0;
  extent.bytes = 4096;
  extent.records = 123;
  result.output.partitions.push_back(extent);
  result.map_thread.op_ns(mr::Op::kMapUser) = 111;
  result.map_thread.input_records = 1000;
  result.support_thread.op_ns(mr::Op::kSort) = 222;
  result.support_thread.spilled_bytes = 9999;
  result.counters.increment("tokens", 1000);
  result.counters.increment("skipped", 3);
  result.wall_ns = 5555;
  result.pipeline_wall_ns = 4444;
  result.spills = 6;
  result.final_spill_threshold = 0.42;
  result.freq_sampling_fraction = 0.0625;

  const std::string frame = encode_map_done(7, 1, result);
  auto r = reader_skipping_type(frame, MsgType::kMapDone);
  std::uint32_t task = 0;
  std::uint32_t attempt = 0;
  mr::MapTaskResult out;
  decode_map_done(r, task, attempt, out);
  EXPECT_EQ(task, 7u);
  EXPECT_EQ(attempt, 1u);
  EXPECT_EQ(out.output.path, result.output.path);
  EXPECT_EQ(out.output.records, 123u);
  EXPECT_EQ(out.map_thread.op_ns(mr::Op::kMapUser), 111u);
  EXPECT_EQ(out.map_thread.input_records, 1000u);
  EXPECT_EQ(out.support_thread.op_ns(mr::Op::kSort), 222u);
  EXPECT_EQ(out.support_thread.spilled_bytes, 9999u);
  EXPECT_EQ(out.counters.value("tokens"), 1000u);
  EXPECT_EQ(out.counters.value("skipped"), 3u);
  EXPECT_EQ(out.wall_ns, 5555u);
  EXPECT_EQ(out.pipeline_wall_ns, 4444u);
  EXPECT_EQ(out.spills, 6u);
  EXPECT_EQ(out.final_spill_threshold, 0.42);
  EXPECT_EQ(out.freq_sampling_fraction, 0.0625);
}

TEST(ProtocolCodec, ReduceDoneRoundTrip) {
  mr::ReduceTaskResult result;
  result.output_path = "/out/part-r-00002";
  result.metrics.op_ns(mr::Op::kReduceUser) = 777;
  result.metrics.output_records = 88;
  result.counters.increment("groups", 88);
  result.wall_ns = 3141;

  const std::string frame = encode_reduce_done(2, 0, result);
  auto r = reader_skipping_type(frame, MsgType::kReduceDone);
  std::uint32_t partition = 0;
  std::uint32_t attempt = 99;
  mr::ReduceTaskResult out;
  decode_reduce_done(r, partition, attempt, out);
  EXPECT_EQ(partition, 2u);
  EXPECT_EQ(attempt, 0u);
  EXPECT_EQ(out.output_path, result.output_path);
  EXPECT_EQ(out.metrics.op_ns(mr::Op::kReduceUser), 777u);
  EXPECT_EQ(out.metrics.output_records, 88u);
  EXPECT_EQ(out.counters.value("groups"), 88u);
  EXPECT_EQ(out.wall_ns, 3141u);
}

TEST(ProtocolCodec, TraceChunkRoundTripOwnsStrings) {
  TraceChunkMsg msg;
  msg.worker_id = 1;
  msg.final_chunk = true;
  msg.stats.records = 42;
  msg.stats.task_latency_ns.record(777);
  obs::TraceData& trace = msg.trace;
  trace.enabled = true;
  trace.job_name = "wc";
  trace.epoch_ns = 100;
  trace.dropped_events = 2;
  trace.ring_drops.push_back({200001, 0, 2});
  trace.process_names.emplace_back(200001, "worker-1");
  trace.thread_names.push_back({200001, 0, "task-loop"});
  std::vector<std::string> frames;
  {
    // Build events whose strings die before decoding reads them — the
    // decoder must intern copies, not rely on the encoder's storage.
    // Encoding happens inside this scope (the encoder is allowed to
    // read the event's borrowed pointers); the events are then dropped
    // so decode cannot lean on their storage even by accident.
    const std::string name = "map_dispatch";
    const std::string category = "cluster";
    obs::TraceEvent e;
    e.name = name.c_str();
    e.category = category.c_str();
    e.ts_ns = 500;
    e.kind = obs::EventKind::kInstant;
    e.num_args = 1;
    e.arg_names[0] = "task";
    e.args[0] = 3.0;
    trace.events.push_back(e);
    e.ts_ns = 600;
    e.args[0] = 4.0;
    trace.events.push_back(e);
    frames = encode_trace_chunks(msg);
    trace.events.clear();
  }
  ASSERT_EQ(frames.size(), 1u);

  auto r = reader_skipping_type(frames[0], MsgType::kTraceChunk);
  const TraceChunkMsg out = decode_trace_chunk(r);
  EXPECT_EQ(out.worker_id, 1u);
  EXPECT_TRUE(out.final_chunk);
  EXPECT_EQ(out.stats.records, 42u);
  EXPECT_EQ(out.stats.task_latency_ns.count(), 1u);
  EXPECT_TRUE(out.trace.enabled);
  EXPECT_EQ(out.trace.job_name, "wc");
  EXPECT_EQ(out.trace.epoch_ns, 100u);
  EXPECT_EQ(out.trace.dropped_events, 2u);
  ASSERT_EQ(out.trace.ring_drops.size(), 1u);
  EXPECT_EQ(out.trace.ring_drops[0].pid, 200001u);
  EXPECT_EQ(out.trace.ring_drops[0].dropped, 2u);
  ASSERT_EQ(out.trace.process_names.size(), 1u);
  EXPECT_EQ(out.trace.process_names[0].second, "worker-1");
  ASSERT_EQ(out.trace.events.size(), 2u);
  EXPECT_STREQ(out.trace.events[0].name, "map_dispatch");
  EXPECT_STREQ(out.trace.events[0].category, "cluster");
  EXPECT_EQ(out.trace.events[0].args[0], 3.0);
  EXPECT_EQ(out.trace.events[1].args[0], 4.0);
  // Dedupe interning: both events share the same pooled pointer.
  EXPECT_EQ(out.trace.events[0].name, out.trace.events[1].name);
}

TEST(ProtocolCodec, TraceChunkSplitsUnderPayloadBudget) {
  TraceChunkMsg msg;
  msg.worker_id = 2;
  msg.final_chunk = true;
  obs::TraceData& trace = msg.trace;
  trace.enabled = true;
  trace.job_name = "chunky";
  trace.epoch_ns = 10;
  trace.dropped_events = 5;
  trace.ring_drops.push_back({200002, 0, 5});
  trace.process_names.emplace_back(200002, "worker-2");
  for (int i = 0; i < 100; ++i) {
    obs::TraceEvent e;
    e.name = "spill_write";
    e.category = "spill";
    e.ts_ns = 1000 + static_cast<std::uint64_t>(i);
    e.dur_ns = 10;
    e.pid = 200002;
    e.kind = obs::EventKind::kSpan;
    trace.events.push_back(e);
  }

  // A tiny budget forces many frames; each must decode standalone.
  const std::vector<std::string> frames = encode_trace_chunks(msg, 256);
  ASSERT_GT(frames.size(), 1u);

  obs::TraceData merged;
  WorkerMetrics last_stats;
  std::size_t finals = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto r = reader_skipping_type(frames[i], MsgType::kTraceChunk);
    TraceChunkMsg out = decode_trace_chunk(r);
    EXPECT_EQ(out.worker_id, 2u);
    if (out.final_chunk) {
      ++finals;
      EXPECT_EQ(i, frames.size() - 1);
    }
    last_stats = out.stats;
    obs::merge_trace(merged, std::move(out.trace));
  }
  // The final flag rides only on the last frame; metadata only on the
  // first — so the merge reconstructs the original exactly once.
  EXPECT_EQ(finals, 1u);
  EXPECT_EQ(merged.job_name, "chunky");
  EXPECT_EQ(merged.dropped_events, 5u);
  ASSERT_EQ(merged.ring_drops.size(), 1u);
  EXPECT_EQ(merged.ring_drops[0].dropped, 5u);
  ASSERT_EQ(merged.process_names.size(), 1u);
  ASSERT_EQ(merged.events.size(), 100u);
  for (std::size_t i = 0; i < merged.events.size(); ++i) {
    EXPECT_EQ(merged.events[i].ts_ns, 1000 + i);
  }
}

TEST(FrameDecoderTest, ReassemblesFramesAcrossArbitrarySplits) {
  const std::string a = encode_run_task(MsgType::kRunMap, RunTaskMsg{1, 0});
  const std::string b = encode_heartbeat(HeartbeatMsg{});
  std::string stream;
  for (const std::string* payload : {&a, &b}) {
    const std::uint32_t len = static_cast<std::uint32_t>(payload->size());
    for (int i = 0; i < 4; ++i) {
      stream.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
    }
    stream += *payload;
  }

  // Feed one byte at a time: frames must come out whole and in order.
  FrameDecoder decoder;
  std::vector<std::string> frames;
  for (char c : stream) {
    decoder.feed(&c, 1);
    while (auto frame = decoder.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], a);
  EXPECT_EQ(frames[1], b);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoderTest, EmptyFrameIsDelivered) {
  FrameDecoder decoder;
  const char header[4] = {0, 0, 0, 0};
  decoder.feed(header, 4);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(FrameDecoderTest, OversizedLengthPrefixThrows) {
  // A desynchronized stream whose next 4 bytes decode to ~4 GiB must be
  // rejected as a protocol error, not turned into a giant allocation.
  FrameDecoder decoder;
  const char header[4] = {'\xff', '\xff', '\xff', '\xff'};
  decoder.feed(header, 4);
  EXPECT_THROW(decoder.next(), IoError);
}

TEST(FrameIo, RecvOversizedLengthPrefixThrows) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const char header[4] = {'\xff', '\xff', '\xff', '\xff'};
  ASSERT_EQ(::send(sv[0], header, 4, 0), 4);
  EXPECT_THROW(recv_frame(sv[1]), IoError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(FrameIo, SendRecvOverSocketpair) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  HeartbeatMsg beat;
  beat.worker_id = 7;
  const std::string payload = encode_heartbeat(beat);
  ASSERT_TRUE(send_frame(sv[0], payload));
  const auto got = recv_frame(sv[1]);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  ::close(sv[0]);
  EXPECT_FALSE(recv_frame(sv[1]).has_value());  // clean EOF
  ::close(sv[1]);
}

// ---- transport/shuffle wire surface (DESIGN.md §14) -----------------------

TEST(ProtocolCodec, RunReduceRoundTripCarriesShuffleSources) {
  RunReduceMsg msg;
  msg.partition = 1;
  for (int i = 0; i < 2; ++i) {
    io::SpillRunInfo run;
    run.path = "/scratch/map" + std::to_string(i) + "_final";
    run.bytes = 64;
    io::PartitionExtent extent;
    extent.bytes = 64;
    extent.records = 4;
    run.partitions.push_back(extent);
    msg.map_outputs.push_back(run);
    Endpoint source;
    source.host = "10.0.0." + std::to_string(i + 1);
    source.port = static_cast<std::uint16_t>(9000 + i);
    msg.sources.push_back(source);
  }
  const std::string frame = encode_run_reduce(msg);
  auto r = reader_skipping_type(frame, MsgType::kRunReduce);
  const RunReduceMsg out = decode_run_reduce(r);
  ASSERT_EQ(out.sources.size(), 2u);
  EXPECT_EQ(out.sources[0].host, "10.0.0.1");
  EXPECT_EQ(out.sources[0].port, 9000);
  EXPECT_EQ(out.sources[1].host, "10.0.0.2");
  EXPECT_EQ(out.sources[1].port, 9001);

  // No sources at all (socketpair shuffle-through-filesystem) is legal.
  msg.sources.clear();
  auto r2_frame = encode_run_reduce(msg);
  auto r2 = reader_skipping_type(r2_frame, MsgType::kRunReduce);
  EXPECT_TRUE(decode_run_reduce(r2).sources.empty());

  // A sources count that disagrees with the runs count is a protocol
  // violation, not a silently misaligned shuffle.
  msg.sources.push_back(Endpoint{});
  auto r3_frame = encode_run_reduce(msg);
  auto r3 = reader_skipping_type(r3_frame, MsgType::kRunReduce);
  EXPECT_THROW(decode_run_reduce(r3), FormatError);
}

TEST(ProtocolCodec, WelcomeAndHelloRoundTrip) {
  const std::string welcome = encode_welcome(WelcomeMsg{7, 40});
  auto wr = reader_skipping_type(welcome, MsgType::kWelcome);
  const WelcomeMsg wout = decode_welcome(wr);
  EXPECT_EQ(wout.worker_id, 7u);
  EXPECT_EQ(wout.heartbeat_interval_ms, 40u);

  HelloMsg hello;
  hello.worker_id = 3;
  hello.shuffle.host = "192.168.1.42";
  hello.shuffle.port = 31337;
  const std::string frame = encode_hello(hello);
  auto hr = reader_skipping_type(frame, MsgType::kHello);
  const HelloMsg hout = decode_hello(hr);
  EXPECT_EQ(hout.worker_id, 3u);
  EXPECT_EQ(hout.shuffle.host, "192.168.1.42");
  EXPECT_EQ(hout.shuffle.port, 31337);
}

TEST(ProtocolCodec, ShuffleFetchRoundTrip) {
  ShuffleFetchMsg msg;
  msg.run_path = "/scratch/job/map3_a1_final";
  msg.partition = 5;
  const std::string frame = encode_shuffle_fetch(msg);
  auto r = reader_skipping_type(frame, MsgType::kShuffleFetch);
  const ShuffleFetchMsg out = decode_shuffle_fetch(r);
  EXPECT_EQ(out.run_path, msg.run_path);
  EXPECT_EQ(out.partition, 5u);
}

TEST(ProtocolCodec, ShuffleDataRoundTripUnframedTail) {
  // The partition bytes ride as the frame's unframed tail (no inner
  // length prefix), so they may contain anything — including bytes that
  // look like length prefixes or NULs.
  ShuffleDataMsg msg;
  msg.records = 3;
  msg.bytes = std::string("\x00\x01\xff length-lookalike \x40\x00\x00\x00", 25);
  const std::string frame = encode_shuffle_data(msg);
  auto r = reader_skipping_type(frame, MsgType::kShuffleData);
  const ShuffleDataMsg out = decode_shuffle_data(r);
  EXPECT_EQ(out.records, 3u);
  EXPECT_EQ(out.bytes, msg.bytes);

  // Empty partitions are common (a map task may emit nothing for a
  // reducer) and must round-trip as genuinely empty.
  ShuffleDataMsg empty;
  auto e_frame = encode_shuffle_data(empty);
  auto er = reader_skipping_type(e_frame, MsgType::kShuffleData);
  EXPECT_TRUE(decode_shuffle_data(er).bytes.empty());

  // Large payloads survive (1 MiB of pseudo-random bytes).
  ShuffleDataMsg big;
  big.records = 1u << 16;
  big.bytes.reserve(1u << 20);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < (1u << 20); ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    big.bytes.push_back(static_cast<char>(state & 0xff));
  }
  auto b_frame = encode_shuffle_data(big);
  auto br = reader_skipping_type(b_frame, MsgType::kShuffleData);
  EXPECT_EQ(decode_shuffle_data(br).bytes, big.bytes);
}

TEST(ProtocolCodec, ShuffleErrorRoundTrip) {
  ShuffleErrorMsg msg;
  msg.retryable = false;
  msg.message = "partition 9 out of range";
  const std::string frame = encode_shuffle_error(msg);
  auto r = reader_skipping_type(frame, MsgType::kShuffleError);
  const ShuffleErrorMsg out = decode_shuffle_error(r);
  EXPECT_FALSE(out.retryable);
  EXPECT_EQ(out.message, "partition 9 out of range");
}

TEST(ProtocolCodec, NewMsgTypeNamesAreKnown) {
  for (MsgType type :
       {MsgType::kWelcome, MsgType::kHello, MsgType::kShuffleFetch,
        MsgType::kShuffleData, MsgType::kShuffleError}) {
    EXPECT_STRNE(msg_type_name(type), "unknown") << static_cast<int>(type);
  }
}

TEST(ChecksummedFrames, Crc32KnownVectors) {
  // The standard IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(crc32(""), 0u);
  // Incremental property sanity: different inputs, different sums.
  EXPECT_NE(crc32("a"), crc32("b"));
}

// Builds the wire bytes of one checksummed frame:
// [u32 len][u32 crc32(payload)][payload], little-endian.
std::string checksummed_wire(const std::string& payload) {
  std::string wire;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return wire + payload;
}

TEST(ChecksummedFrames, SendRecvRoundTrip) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const std::string payload = encode_heartbeat(HeartbeatMsg{});
  ASSERT_TRUE(send_frame(sv[0], payload, FrameFormat::kChecksummed, -1));
  const auto got = recv_frame(sv[1], FrameFormat::kChecksummed, -1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  ::close(sv[0]);
  EXPECT_FALSE(recv_frame(sv[1], FrameFormat::kChecksummed, -1).has_value());
  ::close(sv[1]);
}

TEST(ChecksummedFrames, RecvTruncatedAtEveryOffsetNeverSucceeds) {
  const std::string wire = checksummed_wire(
      encode_shuffle_fetch(ShuffleFetchMsg{"/scratch/run", 2}));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    if (cut > 0) {
      ASSERT_EQ(::send(sv[0], wire.data(), cut, 0),
                static_cast<ssize_t>(cut));
    }
    ::close(sv[0]);  // peer dies mid-frame
    if (cut == 0) {
      // Nothing sent at all: a clean EOF, not an error.
      EXPECT_FALSE(recv_frame(sv[1], FrameFormat::kChecksummed, -1)
                       .has_value());
    } else {
      // A torn frame is always an error — never a short "success".
      EXPECT_THROW(recv_frame(sv[1], FrameFormat::kChecksummed, -1), IoError)
          << "cut at byte " << cut;
    }
    ::close(sv[1]);
  }
}

TEST(ChecksummedFrames, RecvCorruptedAtEveryByteNeverYieldsWrongBytes) {
  const std::string payload =
      encode_shuffle_fetch(ShuffleFetchMsg{"/scratch/run", 2});
  const std::string wire = checksummed_wire(payload);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_EQ(::send(sv[0], bad.data(), bad.size(), 0),
              static_cast<ssize_t>(bad.size()));
    ::close(sv[0]);
    // Three legal outcomes: IoError (bad length/crc mismatch/torn frame)
    // — never the corrupted payload delivered as-if-valid. (A flip in
    // the length prefix may also leave the reader waiting for bytes that
    // never come; the closed peer turns that into a torn-frame IoError.)
    try {
      const auto got = recv_frame(sv[1], FrameFormat::kChecksummed, -1);
      ADD_FAILURE() << "corrupt byte " << i << " slipped through: "
                    << (got.has_value() ? "frame delivered" : "EOF");
    } catch (const IoError&) {
      // expected
    }
    ::close(sv[1]);
  }
}

TEST(ChecksummedFrames, RecvOversizedLengthPrefixThrows) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const char header[8] = {'\xff', '\xff', '\xff', '\xff', 0, 0, 0, 0};
  ASSERT_EQ(::send(sv[0], header, 8, 0), 8);
  EXPECT_THROW(recv_frame(sv[1], FrameFormat::kChecksummed, -1), IoError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ChecksummedFrames, RecvTimesOutOnSilentPeer) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // No bytes at all: the deadline must fire instead of blocking forever.
  EXPECT_THROW(recv_frame(sv[1], FrameFormat::kChecksummed, 50), IoError);
  // A partial preamble then silence must also time out (torn frame that
  // never completes, peer still alive).
  const char partial[3] = {9, 0, 0};
  ASSERT_EQ(::send(sv[0], partial, 3, 0), 3);
  EXPECT_THROW(recv_frame(sv[1], FrameFormat::kChecksummed, 50), IoError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ChecksummedFrames, SendTimesOutWhenPeerStopsDraining) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Shrink both socket buffers so a large frame cannot be absorbed.
  const int small = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  const std::string big(4u << 20, 'x');
  // The peer never reads: send must hit the deadline, not block forever.
  EXPECT_THROW(send_frame(sv[0], big, FrameFormat::kChecksummed, 50), IoError);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(ChecksummedFrames, DecoderReassemblesAtEveryBoundaryOffset) {
  const std::string a = encode_shuffle_fetch(ShuffleFetchMsg{"/r", 0});
  const std::string b = encode_shuffle_error(ShuffleErrorMsg{true, "busy"});
  const std::string stream = checksummed_wire(a) + checksummed_wire(b);
  // Split the stream at every offset; both frames must always come out
  // whole, in order, bit-exact.
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder(FrameFormat::kChecksummed);
    decoder.feed(stream.data(), split);
    std::vector<std::string> frames;
    while (auto f = decoder.next()) frames.push_back(*f);
    decoder.feed(stream.data() + split, stream.size() - split);
    while (auto f = decoder.next()) frames.push_back(*f);
    ASSERT_EQ(frames.size(), 2u) << "split at " << split;
    EXPECT_EQ(frames[0], a);
    EXPECT_EQ(frames[1], b);
  }
}

TEST(ChecksummedFrames, DecoderRejectsCorruptedPayload) {
  const std::string payload = encode_shuffle_fetch(ShuffleFetchMsg{"/r", 0});
  std::string wire = checksummed_wire(payload);
  wire[wire.size() - 1] = static_cast<char>(wire.back() ^ 0x01);
  FrameDecoder decoder(FrameFormat::kChecksummed);
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW(decoder.next(), IoError);
}

// Seeded structural fuzz of the shuffle codecs: random mutations of
// valid frames must decode cleanly or throw FormatError — never crash,
// hang, or return garbage silently. (ASan/TSan tiers run this too.)
TEST(ShuffleCodecFuzz, MutatedFramesNeverCrash) {
  std::uint64_t state = 0x243f6a8885a308d3ull;  // fixed seed: reproducible
  const auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<std::string> seeds = {
      encode_shuffle_fetch(ShuffleFetchMsg{"/scratch/jobX/map0_a0_final", 3}),
      encode_shuffle_data(ShuffleDataMsg{12, std::string(100, 'z')}),
      encode_shuffle_error(ShuffleErrorMsg{true, "transient"}),
      encode_welcome(WelcomeMsg{1, 25}),
      encode_hello(HelloMsg{2, Endpoint{"127.0.0.1", 4242}}),
  };
  int decoded = 0;
  int rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string frame = seeds[rng() % seeds.size()];
    switch (rng() % 3) {
      case 0:  // truncate
        frame.resize(rng() % (frame.size() + 1));
        break;
      case 1:  // flip 1-4 bytes
        for (std::uint64_t flips = 1 + rng() % 4; flips > 0 && !frame.empty();
             --flips) {
          frame[rng() % frame.size()] ^= static_cast<char>(1 + rng() % 255);
        }
        break;
      case 2:  // append junk
        for (std::uint64_t extra = 1 + rng() % 16; extra > 0; --extra) {
          frame.push_back(static_cast<char>(rng() & 0xff));
        }
        break;
    }
    try {
      WireReader r(frame);
      const MsgType type = static_cast<MsgType>(r.u8());
      switch (type) {
        case MsgType::kShuffleFetch: decode_shuffle_fetch(r); break;
        case MsgType::kShuffleData: decode_shuffle_data(r); break;
        case MsgType::kShuffleError: decode_shuffle_error(r); break;
        case MsgType::kWelcome: decode_welcome(r); break;
        case MsgType::kHello: decode_hello(r); break;
        default: ++rejected; continue;  // type byte mutated away
      }
      ++decoded;
    } catch (const FormatError&) {
      ++rejected;
    }
  }
  // Both outcomes must actually occur or the fuzz is not exercising
  // anything (e.g. every mutation dodged the parser).
  EXPECT_GT(decoded, 0);
  EXPECT_GT(rejected, 0);
}

// ---- LivenessTracker under a ManualClock ----------------------------------

TEST(LivenessTrackerTest, SilenceBeyondTimeoutExpiresWorker) {
  common::ManualClock clock(1000 * 1000000ull);
  LivenessTracker tracker(100, &clock);
  ASSERT_TRUE(tracker.enabled());

  tracker.note_activity(0);
  clock.advance_ms(99);
  EXPECT_FALSE(tracker.expired(0));
  clock.advance_ms(2);
  EXPECT_TRUE(tracker.expired(0));

  // Activity resets the deadline.
  tracker.note_activity(0);
  EXPECT_FALSE(tracker.expired(0));
  clock.advance_ms(101);
  EXPECT_TRUE(tracker.expired(0));
}

TEST(LivenessTrackerTest, NeverSeenAndForgottenWorkersAreNotExpired) {
  common::ManualClock clock;
  LivenessTracker tracker(100, &clock);
  clock.advance_ms(10000);
  EXPECT_FALSE(tracker.expired(7));  // never seen: spawn/beat order races

  tracker.note_activity(7);
  clock.advance_ms(10000);
  EXPECT_TRUE(tracker.expired(7));
  tracker.forget(7);
  EXPECT_FALSE(tracker.expired(7));
}

TEST(LivenessTrackerTest, ZeroTimeoutDisablesTracking) {
  common::ManualClock clock;
  LivenessTracker tracker(0, &clock);
  EXPECT_FALSE(tracker.enabled());
  tracker.note_activity(1);
  clock.advance_ms(1u << 30);
  EXPECT_FALSE(tracker.expired(1));
}

// ---- StragglerDetector under a ManualClock --------------------------------

constexpr std::uint64_t kMs = 1000000ull;

TEST(StragglerDetectorTest, StaleHeartbeatFlagsAttemptOnceAndOnlyOnce) {
  common::ManualClock clock(1000 * kMs);
  StragglerPolicy policy;
  policy.heartbeat_timeout_ms = 100;
  policy.slowness_factor = 1e9;  // isolate the heartbeat path
  StragglerDetector detector(policy, &clock);

  detector.on_dispatch(TaskKind::kMap, 0, 0);
  clock.advance_ms(99);
  EXPECT_TRUE(detector.take_stragglers().empty());  // not stale yet

  clock.advance_ms(2);  // 101ms since the dispatch-time implicit beat
  auto flagged = detector.take_stragglers();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].kind, TaskKind::kMap);
  EXPECT_EQ(flagged[0].id, 0u);
  EXPECT_EQ(flagged[0].attempt, 0u);

  // Latched: the same attempt is never reported twice.
  clock.advance_ms(1000);
  EXPECT_TRUE(detector.take_stragglers().empty());
}

TEST(StragglerDetectorTest, HeartbeatRefreshesStaleness) {
  common::ManualClock clock;
  StragglerPolicy policy;
  policy.heartbeat_timeout_ms = 100;
  policy.slowness_factor = 1e9;
  StragglerDetector detector(policy, &clock);

  detector.on_dispatch(TaskKind::kMap, 3, 1);
  for (int i = 0; i < 5; ++i) {
    clock.advance_ms(80);
    detector.on_beat(TaskKind::kMap, 3, 1, 0.1 * i);
    EXPECT_TRUE(detector.take_stragglers().empty()) << i;
  }
  clock.advance_ms(101);  // beats stop
  EXPECT_EQ(detector.take_stragglers().size(), 1u);
}

TEST(StragglerDetectorTest, SlownessNeedsMedianBaseline) {
  common::ManualClock clock;
  StragglerPolicy policy;
  policy.heartbeat_timeout_ms = 1u << 30;  // isolate the slowness path
  policy.slowness_factor = 4.0;
  policy.min_completed_for_median = 2;
  StragglerDetector detector(policy, &clock);

  detector.on_dispatch(TaskKind::kMap, 9, 0);
  clock.advance_ms(500);
  // No completions yet: runtime alone never flags.
  EXPECT_TRUE(detector.take_stragglers().empty());

  detector.note_completed(TaskKind::kMap, 10 * kMs);
  EXPECT_TRUE(detector.take_stragglers().empty());  // below min_completed

  detector.note_completed(TaskKind::kMap, 20 * kMs);
  // Median 20ms, factor 4 -> threshold 80ms; the attempt is 500ms old.
  auto flagged = detector.take_stragglers();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].id, 9u);
}

TEST(StragglerDetectorTest, SlownessComparesAgainstOwnKindsMedian) {
  common::ManualClock clock;
  StragglerPolicy policy;
  policy.heartbeat_timeout_ms = 1u << 30;
  policy.slowness_factor = 4.0;
  policy.min_completed_for_median = 2;
  StragglerDetector detector(policy, &clock);

  // Fast *map* completions must not flag a running *reduce* attempt.
  detector.note_completed(TaskKind::kMap, 1 * kMs);
  detector.note_completed(TaskKind::kMap, 1 * kMs);
  detector.on_dispatch(TaskKind::kReduce, 0, 0);
  clock.advance_ms(500);
  // A fresh beat keeps the heartbeat path quiet.
  detector.on_beat(TaskKind::kReduce, 0, 0, 0.5);
  EXPECT_TRUE(detector.take_stragglers().empty());

  detector.note_completed(TaskKind::kReduce, 10 * kMs);
  detector.note_completed(TaskKind::kReduce, 10 * kMs);
  detector.on_beat(TaskKind::kReduce, 0, 0, 0.6);
  EXPECT_EQ(detector.take_stragglers().size(), 1u);
}

TEST(StragglerDetectorTest, OnFinishReturnsDurationAndStopsTracking) {
  common::ManualClock clock;
  StragglerDetector detector(StragglerPolicy{}, &clock);
  detector.on_dispatch(TaskKind::kMap, 1, 0);
  EXPECT_EQ(detector.running(), 1u);
  clock.advance_ms(42);
  EXPECT_EQ(detector.on_finish(TaskKind::kMap, 1, 0), 42 * kMs);
  EXPECT_EQ(detector.running(), 0u);
  // Finishing an unknown attempt is a no-op reporting zero duration.
  EXPECT_EQ(detector.on_finish(TaskKind::kMap, 1, 0), 0u);
}

TEST(StragglerDetectorTest, MedianIsPerKind) {
  common::ManualClock clock;
  StragglerDetector detector(StragglerPolicy{}, &clock);
  detector.note_completed(TaskKind::kMap, 10);
  detector.note_completed(TaskKind::kMap, 30);
  detector.note_completed(TaskKind::kMap, 20);
  detector.note_completed(TaskKind::kReduce, 500);
  EXPECT_EQ(detector.median_duration_ns(TaskKind::kMap), 20u);
  EXPECT_EQ(detector.median_duration_ns(TaskKind::kReduce), 500u);
}

}  // namespace
}  // namespace textmr::cluster
