#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mr/report.hpp"

namespace textmr {
namespace {

TEST(Counters, BasicIncrementAndMerge) {
  mr::Counters a;
  a.increment("x");
  a.increment("x", 4);
  a.increment("y", 2);
  EXPECT_EQ(a.value("x"), 5u);
  EXPECT_EQ(a.value("y"), 2u);
  EXPECT_EQ(a.value("missing"), 0u);

  mr::Counters b;
  b.increment("x", 10);
  b.increment("z");
  a += b;
  EXPECT_EQ(a.value("x"), 15u);
  EXPECT_EQ(a.value("z"), 1u);
  EXPECT_EQ(a.all().size(), 3u);
}

TEST(Counters, EmptyByDefault) {
  mr::Counters counters;
  EXPECT_TRUE(counters.empty());
  counters.increment("a");
  EXPECT_FALSE(counters.empty());
}

TEST(Counters, AggregatedAcrossMapAndReduceTasks) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 10000;
  corpus_spec.vocabulary = 200;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 64 * 1024),
                             dir.file("s"), dir.file("o"));
  // Counting mapper + counting reducer via lambdas.
  spec.mapper = [] {
    class CountingMapper final : public mr::Mapper {
     public:
      void begin_task(const mr::TaskInfo& info) override {
        counters_ = info.counters;
      }
      void map(std::uint64_t, std::string_view line,
               mr::EmitSink& out) override {
        counters_->increment("lines_seen");
        std::string scratch;
        apps::for_each_token(line, scratch, [&](std::string_view token) {
          std::string value;
          put_varint(value, 1);
          out.emit(token, value);
        });
      }

     private:
      mr::Counters* counters_ = nullptr;
    };
    return std::make_unique<CountingMapper>();
  };
  spec.reducer = [] {
    class CountingReducer final : public mr::Reducer {
     public:
      void begin_task(const mr::TaskInfo& info) override {
        counters_ = info.counters;
      }
      void reduce(std::string_view key, mr::ValueStream& values,
                  mr::EmitSink& out) override {
        counters_->increment("groups_reduced");
        std::uint64_t total = 0;
        while (auto v = values.next()) {
          std::size_t pos = 0;
          total += get_varint(*v, pos);
        }
        out.emit(key, std::to_string(total));
      }

     private:
      mr::Counters* counters_ = nullptr;
    };
    return std::make_unique<CountingReducer>();
  };
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  EXPECT_EQ(result.counters.value("lines_seen"),
            result.metrics.work.input_records);
  EXPECT_EQ(result.counters.value("groups_reduced"),
            result.metrics.work.output_records);
}

TEST(Counters, AccessLogAppsCountMalformedAndJoinedRows) {
  TempDir dir;
  const auto path = dir.file("mixed.log");
  {
    std::ofstream out(path);
    out << "1.2.3.4|http://a.com|2008-1-1|5.00|ua|US|en|q|10\n";
    out << "1.2.3.5|http://a.com|2008-1-1|1.00|ua|US|en|q|10\n";
    out << "definitely not a record\n";
    out << "http://a.com|42|60\n";                          // ranking
    out << "9.9.9.9|http://orphan.com|2008-1-1|1.00|ua|US|en|q|10\n";
  }
  auto spec = test::make_job(apps::access_log_join_app(),
                             io::make_splits(path.string(), 1 << 20),
                             dir.file("s"), dir.file("o"), 1);
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  EXPECT_EQ(result.counters.value(apps::log_counters::kVisits), 3u);
  EXPECT_EQ(result.counters.value(apps::log_counters::kRankings), 1u);
  EXPECT_EQ(result.counters.value(apps::log_counters::kMalformed), 1u);
  EXPECT_EQ(result.counters.value(apps::log_counters::kJoinedRows), 2u);
  EXPECT_EQ(result.counters.value(apps::log_counters::kOrphanVisits), 1u);
}

TEST(Counters, CombinerCountersAreMergedFromBothThreads) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 30000;
  corpus_spec.vocabulary = 100;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.spill_buffer_bytes = 16 * 1024;  // several spills -> support combines
  spec.combiner = [] {
    class CountingCombiner final : public mr::Reducer {
     public:
      void begin_task(const mr::TaskInfo& info) override {
        counters_ = info.counters;
      }
      void reduce(std::string_view key, mr::ValueStream& values,
                  mr::EmitSink& out) override {
        if (counters_ != nullptr) counters_->increment("combines");
        std::uint64_t total = 0;
        while (auto v = values.next()) {
          std::size_t pos = 0;
          total += get_varint(*v, pos);
        }
        std::string value;
        put_varint(value, total);
        out.emit(key, value);
      }

     private:
      mr::Counters* counters_ = nullptr;
    };
    return std::make_unique<CountingCombiner>();
  };
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  EXPECT_GT(result.counters.value("combines"), 0u);
}

TEST(Report, ContainsKeySections) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 5000;
  corpus_spec.vocabulary = 100;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  mr::LocalEngine engine;
  const auto result = engine.run(spec);

  const auto report = mr::format_job_report(result, "unit-test-job");
  EXPECT_NE(report.find("unit-test-job"), std::string::npos);
  EXPECT_NE(report.find("serialized work by operation"), std::string::npos);
  EXPECT_NE(report.find("map_user"), std::string::npos);
  EXPECT_NE(report.find("[user code]"), std::string::npos);
  EXPECT_NE(report.find("abstraction cost"), std::string::npos);
  EXPECT_NE(report.find("volumes:"), std::string::npos);

  const auto summary = mr::format_job_summary(result);
  EXPECT_NE(summary.find("wall"), std::string::npos);
  EXPECT_NE(summary.find("map + "), std::string::npos);
}

TEST(Report, ShowsFreqTableHitsWhenEnabled) {
  TempDir dir;
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 20000;
  corpus_spec.vocabulary = 100;
  const auto corpus = dir.file("c.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  auto spec = test::make_job(apps::wordcount_app(),
                             io::make_splits(corpus.string(), 1 << 20),
                             dir.file("s"), dir.file("o"));
  spec.freqbuf.enabled = true;
  spec.freqbuf.top_k = 20;
  spec.freqbuf.sampling_fraction = 0.05;
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  const auto report = mr::format_job_report(result);
  EXPECT_NE(report.find("freq-table hits"), std::string::npos);
}

}  // namespace
}  // namespace textmr
