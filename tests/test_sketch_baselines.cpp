#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/lru_tracker.hpp"

namespace textmr::sketch {
namespace {

TEST(ExactCounter, CountsExactly) {
  ExactCounter counter;
  for (int i = 0; i < 7; ++i) counter.offer("x");
  for (int i = 0; i < 3; ++i) counter.offer("y");
  EXPECT_EQ(counter.count("x"), 7u);
  EXPECT_EQ(counter.count("y"), 3u);
  EXPECT_EQ(counter.count("z"), 0u);
  EXPECT_EQ(counter.observed(), 10u);
  EXPECT_EQ(counter.distinct(), 2u);
}

TEST(ExactCounter, TopKOrderedWithDeterministicTies) {
  ExactCounter counter;
  for (const char* k : {"b", "a", "c"}) {
    counter.offer(k);
    counter.offer(k);
  }
  counter.offer("d");
  const auto top = counter.top(4);
  ASSERT_EQ(top.size(), 4u);
  // Ties (a,b,c at 2) break lexicographically.
  EXPECT_EQ(top[0].first, "a");
  EXPECT_EQ(top[1].first, "b");
  EXPECT_EQ(top[2].first, "c");
  EXPECT_EQ(top[3].first, "d");
}

TEST(ExactCounter, TopKLargerThanDistinctIsClamped) {
  ExactCounter counter;
  counter.offer("only");
  EXPECT_EQ(counter.top(100).size(), 1u);
}

TEST(LruTracker, HitsAndEvictions) {
  LruTracker lru(2);
  EXPECT_FALSE(lru.offer("a"));  // miss, insert
  EXPECT_FALSE(lru.offer("b"));  // miss, insert
  EXPECT_TRUE(lru.offer("a"));   // hit, refresh
  EXPECT_FALSE(lru.offer("c"));  // miss, evicts b (LRU)
  EXPECT_TRUE(lru.offer("a"));   // still resident
  EXPECT_FALSE(lru.offer("b"));  // was evicted
  EXPECT_EQ(lru.evictions(), 2u);
  EXPECT_EQ(lru.hits(), 2u);
  EXPECT_EQ(lru.observed(), 6u);
}

TEST(LruTracker, RecencyOrderIsMaintained) {
  LruTracker lru(3);
  lru.offer("a");
  lru.offer("b");
  lru.offer("c");
  lru.offer("a");   // a becomes MRU; LRU is b
  lru.offer("d");   // evicts b
  EXPECT_TRUE(lru.offer("a"));
  EXPECT_TRUE(lru.offer("c"));
  EXPECT_TRUE(lru.offer("d"));
  EXPECT_FALSE(lru.offer("b"));
}

TEST(LruTracker, HitRateOnSkewedStreamBeatsUniform) {
  // Sanity for the Fig. 7 comparison: LRU benefits from skew.
  auto run = [](double alpha) {
    LruTracker lru(100);
    Xoshiro256 rng(1);
    ZipfDistribution zipf(10000, alpha);
    for (int i = 0; i < 100000; ++i) {
      lru.offer("k" + std::to_string(zipf(rng)));
    }
    return lru.hit_rate();
  };
  const double skewed = run(1.2);
  const double uniform = run(0.0);
  EXPECT_GT(skewed, uniform + 0.2);
}

TEST(LruTracker, SizeNeverExceedsCapacity) {
  LruTracker lru(5);
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    lru.offer("k" + std::to_string(rng.next_below(50)));
    ASSERT_LE(lru.size(), 5u);
  }
}

}  // namespace
}  // namespace textmr::sketch
