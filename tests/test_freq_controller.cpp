#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "common/varint.hpp"
#include "common/zipf.hpp"
#include "apps/wordcount.hpp"
#include "freqbuf/controller.hpp"
#include "textgen/corpus_gen.hpp"

namespace textmr::freqbuf {
namespace {

class RecordingSink final : public mr::EmitSink {
 public:
  void emit(std::string_view key, std::string_view value) override {
    records.emplace_back(std::string(key), std::string(value));
  }
  std::vector<std::pair<std::string, std::string>> records;
};

std::string varint_value(std::uint64_t v) {
  std::string out;
  put_varint(out, v);
  return out;
}

std::uint64_t varint_of(std::string_view bytes) {
  std::size_t pos = 0;
  return get_varint(bytes, pos);
}

FreqBufConfig basic_config() {
  FreqBufConfig config;
  config.enabled = true;
  config.top_k = 10;
  config.sampling_fraction = 0.1;  // fixed s, no pre-profiling
  config.share_across_tasks = false;
  return config;
}

/// Streams a Zipf-distributed key sequence through the controller,
/// simulating the map task's progress callbacks.
struct StreamResult {
  std::uint64_t absorbed = 0;
  std::uint64_t passed = 0;
};

StreamResult stream_keys(FreqBufferController& controller, int n,
                         double alpha, std::uint64_t seed,
                         std::uint64_t vocab = 1000) {
  Xoshiro256 rng(seed);
  ZipfDistribution zipf(vocab, alpha);
  StreamResult result;
  for (int i = 0; i < n; ++i) {
    controller.set_progress(static_cast<double>(i) / n);
    const std::string key = textgen::word_for_rank(zipf(rng));
    if (controller.offer(key, varint_value(1))) {
      ++result.absorbed;
    } else {
      ++result.passed;
    }
  }
  return result;
}

TEST(FreqBufferController, TransitionsThroughStages) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  auto config = basic_config();
  FreqBufferController controller(config, 1 << 16, &combiner, sink, metrics);
  EXPECT_EQ(controller.stage(), FreqBufferController::Stage::kProfile);

  controller.set_progress(0.05);
  EXPECT_EQ(controller.stage(), FreqBufferController::Stage::kProfile);
  controller.offer("x", varint_value(1));
  controller.set_progress(0.11);
  EXPECT_EQ(controller.stage(), FreqBufferController::Stage::kOptimize);
}

TEST(FreqBufferController, FixedSamplingSkipsPreProfile) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  auto config = basic_config();
  FreqBufferController controller(config, 1 << 16, nullptr, sink, metrics);
  EXPECT_EQ(controller.effective_sampling_fraction(), 0.1);
  EXPECT_FALSE(controller.zipf_fit().has_value());
}

TEST(FreqBufferController, AbsorbsFrequentKeysAfterProfiling) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  auto config = basic_config();
  FreqBufferController controller(config, 1 << 16, &combiner, sink, metrics);
  const auto result = stream_keys(controller, 50000, 1.2, 99);
  // With alpha=1.2 the top-10 keys carry a large share of the stream; a
  // large portion of post-profiling records must be absorbed.
  EXPECT_GT(result.absorbed, 10000u);
  controller.finish();
  // Flushed aggregates re-enter the spill path.
  EXPECT_FALSE(sink.records.empty());
  EXPECT_LE(sink.records.size(), 10u + 5u);
}

TEST(FreqBufferController, ConservationThroughFlush) {
  // Every emitted count appears exactly once downstream: either passed
  // through during profiling/misses, or in a flushed aggregate.
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  auto config = basic_config();
  FreqBufferController controller(config, 1 << 16, &combiner, sink, metrics);

  std::map<std::string, std::uint64_t> expected;
  Xoshiro256 rng(7);
  ZipfDistribution zipf(500, 1.0);
  constexpr int kN = 30000;
  std::map<std::string, std::uint64_t> passed_through;
  for (int i = 0; i < kN; ++i) {
    controller.set_progress(static_cast<double>(i) / kN);
    const std::string key = textgen::word_for_rank(zipf(rng));
    expected[key] += 1;
    if (!controller.offer(key, varint_value(1))) {
      passed_through[key] += 1;
    }
  }
  controller.finish();
  std::map<std::string, std::uint64_t> total = passed_through;
  for (const auto& [key, value] : sink.records) {
    total[key] += varint_of(value);
  }
  EXPECT_EQ(total, expected);
}

TEST(FreqBufferController, AutoTunerFitsAlphaAndPicksSamplingFraction) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FreqBufConfig config;
  config.enabled = true;
  config.top_k = 20;
  config.sampling_fraction = 0.0;  // auto-tune
  config.pre_profile_fraction = 0.01;
  config.share_across_tasks = false;
  FreqBufferController controller(config, 1 << 16, &combiner, sink, metrics);
  EXPECT_EQ(controller.stage(), FreqBufferController::Stage::kPreProfile);

  stream_keys(controller, 100000, 1.0, 42, /*vocab=*/2000);
  ASSERT_TRUE(controller.zipf_fit().has_value());
  EXPECT_NEAR(controller.zipf_fit()->alpha, 1.0, 0.35);
  EXPECT_GE(controller.effective_sampling_fraction(),
            config.pre_profile_fraction);
  EXPECT_EQ(controller.stage(), FreqBufferController::Stage::kOptimize);
}

TEST(FreqBufferController, NodeCacheSharesKeySetAcrossTasks) {
  NodeKeyCache cache;
  RecordingSink sink1;
  mr::TaskMetrics metrics1;
  apps::WordCountCombiner combiner;
  auto config = basic_config();
  config.share_across_tasks = true;

  FreqBufferController first(config, 1 << 16, &combiner, sink1, metrics1,
                             &cache);
  EXPECT_EQ(first.stage(), FreqBufferController::Stage::kProfile);
  stream_keys(first, 20000, 1.2, 1);
  first.finish();
  ASSERT_TRUE(cache.get().has_value());
  EXPECT_FALSE(cache.get()->empty());

  // Second task on the same node starts directly in kOptimize.
  RecordingSink sink2;
  mr::TaskMetrics metrics2;
  FreqBufferController second(config, 1 << 16, &combiner, sink2, metrics2,
                              &cache);
  EXPECT_EQ(second.stage(), FreqBufferController::Stage::kOptimize);
  EXPECT_TRUE(second.offer(cache.get()->front(), varint_value(1)));
}

TEST(NodeKeyCache, FirstWriterWins) {
  NodeKeyCache cache;
  cache.put({"a"});
  cache.put({"b"});
  ASSERT_TRUE(cache.get().has_value());
  EXPECT_EQ(cache.get()->front(), "a");
}

TEST(FreqBufferController, TinyInputEndingDuringPreProfileStillFreezes) {
  NodeKeyCache cache;
  RecordingSink sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  FreqBufConfig config;
  config.enabled = true;
  config.top_k = 5;
  config.sampling_fraction = 0.0;
  config.share_across_tasks = true;
  FreqBufferController controller(config, 1 << 16, &combiner, sink, metrics,
                                  &cache);
  controller.offer("a", varint_value(1));
  controller.offer("a", varint_value(1));
  controller.offer("b", varint_value(1));
  controller.finish();  // still in kPreProfile; must not crash
  ASSERT_TRUE(cache.get().has_value());
  EXPECT_FALSE(cache.get()->empty());
}

TEST(FreqBufferController, ProfileTimeIsAccounted) {
  RecordingSink sink;
  mr::TaskMetrics metrics;
  auto config = basic_config();
  FreqBufferController controller(config, 1 << 16, nullptr, sink, metrics);
  stream_keys(controller, 20000, 1.0, 3);
  EXPECT_GT(metrics.op_ns(mr::Op::kProfile), 0u);
  EXPECT_GT(metrics.op_ns(mr::Op::kFreqTable), 0u);
}

}  // namespace
}  // namespace textmr::freqbuf
