#include <gtest/gtest.h>

#include "spillmatch/spill_matcher.hpp"

namespace textmr::spillmatch {
namespace {

TEST(MatchedThreshold, EqualRatesGiveHalf) {
  EXPECT_DOUBLE_EQ(matched_threshold(1000, 1000), 0.5);
}

TEST(MatchedThreshold, SupportSlowerCapsAtHalf) {
  // p > c  <=>  T_p < T_c  =>  x = 1/2 (paper §IV-C case 2).
  EXPECT_DOUBLE_EQ(matched_threshold(100, 900), 0.5);
  EXPECT_DOUBLE_EQ(matched_threshold(1, 1000000), 0.5);
}

TEST(MatchedThreshold, MapSlowerRaisesThreshold) {
  // p < c  <=>  T_p > T_c  =>  x = c/(p+c) = T_p/(T_p+T_c) > 1/2.
  EXPECT_DOUBLE_EQ(matched_threshold(900, 100), 0.9);
  EXPECT_DOUBLE_EQ(matched_threshold(3000, 1000), 0.75);
}

TEST(MatchedThreshold, DegenerateZeroTimesFallBackToHalf) {
  EXPECT_DOUBLE_EQ(matched_threshold(0, 0), 0.5);
}

TEST(MatchedThreshold, AlwaysInHalfOpenUnitRange) {
  for (std::uint64_t tp : {1ull, 10ull, 1000ull, 1000000ull}) {
    for (std::uint64_t tc : {1ull, 10ull, 1000ull, 1000000ull}) {
      const double x = matched_threshold(tp, tc);
      EXPECT_GE(x, 0.5);
      EXPECT_LT(x, 1.0);
    }
  }
}

TEST(MatchedThreshold, WaitFreeInvariantFromTheDerivation) {
  // The derivation's two sufficient conditions:
  //   p < c:  x <= c/(p+c)   (map thread never blocks on a full buffer)
  //   p >= c: x <= 1/2       (support thread finds the next spill ready)
  // matched_threshold must sit exactly on the boundary.
  for (double p : {0.5, 1.0, 2.0, 10.0}) {
    for (double c : {0.5, 1.0, 2.0, 10.0}) {
      const auto tp = static_cast<std::uint64_t>(1e9 / p);
      const auto tc = static_cast<std::uint64_t>(1e9 / c);
      const double x = matched_threshold(tp, tc);
      if (p < c) {
        EXPECT_NEAR(x, c / (p + c), 1e-9) << p << " " << c;
      } else {
        EXPECT_DOUBLE_EQ(x, 0.5) << p << " " << c;
      }
    }
  }
}

TEST(FixedSpillPolicy, NeverChanges) {
  FixedSpillPolicy policy(0.8);
  EXPECT_DOUBLE_EQ(policy.initial_threshold(), 0.8);
  EXPECT_DOUBLE_EQ(policy.next_threshold({100, 900, 4096}), 0.8);
  EXPECT_DOUBLE_EQ(policy.next_threshold({900, 100, 4096}), 0.8);
  EXPECT_STREQ(policy.name(), "fixed");
}

TEST(SpillMatcherPolicy, AppliesEquationOne) {
  SpillMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.initial_threshold(), 0.8);
  EXPECT_DOUBLE_EQ(matcher.next_threshold({1000, 1000, 0}), 0.5);
  EXPECT_DOUBLE_EQ(matcher.next_threshold({9000, 1000, 0}), 0.9);
  EXPECT_DOUBLE_EQ(matcher.next_threshold({1000, 9000, 0}), 0.5);
}

TEST(SpillMatcherPolicy, ClampsExtremeMeasurements) {
  SpillMatcher matcher(SpillMatcher::Options{0.8, 0.2, 0.85});
  // T_p >> T_c would give ~1.0; clamp to max.
  EXPECT_DOUBLE_EQ(matcher.next_threshold({1000000000, 1, 0}), 0.85);
}

TEST(SpillMatcherPolicy, TracksAlternatingWorkloads) {
  // The policy is purely last-spill-driven (paper's adjacent-spill
  // hypothesis); alternating inputs alternate outputs.
  SpillMatcher matcher;
  EXPECT_DOUBLE_EQ(matcher.next_threshold({3000, 1000, 0}), 0.75);
  EXPECT_DOUBLE_EQ(matcher.next_threshold({1000, 3000, 0}), 0.5);
  EXPECT_DOUBLE_EQ(matcher.next_threshold({3000, 1000, 0}), 0.75);
}

}  // namespace
}  // namespace textmr::spillmatch
