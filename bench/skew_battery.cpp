// skew_battery — reduce-side skew under a Zipf(1.2) wordcount, the
// workload where one reducer inherits "the" and stalls the job. Runs the
// same 8-partition job with the plain hash partitioner and with the
// skew-aware partitioner (DESIGN.md §12), on both the LocalEngine and a
// 2-worker ClusterEngine, and reports two ratios per run:
//
//   wall ratio   = slowest reduce task wall / median reduce task wall
//   bytes ratio  = max partition shuffled bytes / median (JobMetrics
//                  partition_skew_ratio)
//
// The job runs without a map-side combiner so the full token volume
// shuffles (SkewConfig::merge_combiner carries the wordcount combiner for
// the split shares instead) — with a combiner every key collapses to one
// record per map task and there is no skew left to fix.
//
// CI gates on the emitted BENCH_skew_battery.json: the skew-aware cluster
// run must show both ratios <= 1.5 while the hash baseline in the same
// artifact measures ~3x. The binary itself exits non-zero if the gate
// fails, if skew mode never split a key, or if the skew-aware outputs are
// not byte-identical to the hash run.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mr/report.hpp"

using namespace textmr;

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) ++g_failures;
}

constexpr std::uint32_t kReducers = 8;

/// Slowest / (upper) median reduce-task wall, over every physical
/// partition the run executed (skew mode adds dedicated partitions; they
/// are reduce tasks like any other and belong in the distribution).
double reduce_wall_ratio(const mr::JobResult& result) {
  std::vector<std::uint64_t> walls;
  for (const auto& task : result.reduce_tasks) walls.push_back(task.wall_ns);
  if (walls.empty()) return 0.0;
  std::sort(walls.begin(), walls.end());
  const std::uint64_t median = walls[walls.size() / 2];
  return median == 0 ? 0.0
                     : static_cast<double>(walls.back()) /
                           static_cast<double>(median);
}

std::vector<std::string> read_raw_parts(const mr::JobResult& result) {
  std::vector<std::string> raw;
  for (const auto& part : result.outputs) {
    std::ifstream in(part, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    raw.push_back(std::move(buffer).str());
  }
  return raw;
}

struct RunOutcome {
  double wall_ratio = 0.0;
  double bytes_ratio = 0.0;
  std::vector<std::string> parts;
};

RunOutcome run_case(const std::filesystem::path& corpus, const TempDir& dir,
                    const std::string& tag, bool skew,
                    std::uint32_t cluster_workers, bench::JsonReport& report) {
  mr::JobSpec spec;
  spec.name = "WordCount";
  const auto app = apps::wordcount_app();
  spec.inputs = io::make_splits(corpus.string(), 1u << 20);
  spec.mapper = app.mapper;
  spec.reducer = app.reducer;
  // No map-side combiner: the full Zipf token volume reaches the shuffle.
  spec.num_reducers = kReducers;
  spec.spill_buffer_bytes = 512u << 10;
  if (skew) {
    spec.skew.enabled = true;
    spec.skew.merge_combiner = app.combiner;
    // Lower bars than the defaults: at alpha=1.2 the second-tier words
    // ("c".."h", 1.5-5% of records each) sit under the default 0.5
    // placement bar yet still lump whichever hash partition they land
    // on. The plan builder bin-packs them onto shared dedicated
    // partitions, so a low bar costs no extra stragglers.
    spec.skew.place_threshold = 0.12;
    spec.skew.split_threshold = 0.8;
  }
  spec.scratch_dir = dir.path() / (tag + "-scratch");
  spec.output_dir = dir.path() / (tag + "-out");

  mr::JobResult result;
  if (cluster_workers > 0) {
    cluster::ClusterConfig config;
    config.num_workers = cluster_workers;
    result = cluster::ClusterEngine(config).run(spec);
  } else {
    result = mr::LocalEngine().run(spec);
  }
  report.add_job("WordCount", tag, result);

  RunOutcome outcome;
  outcome.wall_ratio = reduce_wall_ratio(result);
  outcome.bytes_ratio = result.metrics.partition_skew_ratio();
  outcome.parts = read_raw_parts(result);
  report.add_note(tag + "_reduce_wall_ratio", outcome.wall_ratio);
  report.add_note(tag + "_partition_bytes_ratio", outcome.bytes_ratio);
  std::printf("%-14s wall ratio %5.2fx  bytes ratio %5.2fx  (%zu tasks)\n",
              tag.c_str(), outcome.wall_ratio, outcome.bytes_ratio,
              result.reduce_tasks.size());
  expect(result.outputs.size() == kReducers, "canonical part-file count");
  if (skew) {
    // The plan must have actually split at least one ultra-heavy key —
    // an empty plan would make the comparison vacuous.
    expect(result.metrics.reduce_tasks > kReducers,
           "skew plan produced dedicated partitions");
  }
  return outcome;
}

}  // namespace

int main() {
  bench::JsonReport report("skew_battery");
  TempDir dir("textmr-skew-battery");

  // Zipf(1.2), the alpha the paper's skew experiments single out: the top
  // word alone carries ~1.5 average partitions' worth of the shuffle at 8
  // reducers, past the default split threshold.
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 8'000'000;
  corpus_spec.vocabulary = 30'000;
  corpus_spec.alpha = 1.2;
  corpus_spec.seed = 4242;
  const auto corpus = dir.file("corpus-a1.2.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());
  report.add_note("alpha", 1.2);
  report.add_note("num_partitions", static_cast<double>(kReducers));

  bench::print_rule();
  std::printf("skew battery: wordcount alpha=1.2, %u partitions, no "
              "map-side combiner\n",
              kReducers);
  bench::print_rule();

  const auto local_hash = run_case(corpus, dir, "local_hash", false, 0, report);
  const auto local_skew = run_case(corpus, dir, "local_skew", true, 0, report);
  const auto cluster_hash =
      run_case(corpus, dir, "cluster_hash", false, 2, report);
  const auto cluster_skew =
      run_case(corpus, dir, "cluster_skew", true, 2, report);

  bench::print_rule();
  // Layout invariant: every mode and engine produces the same bytes.
  expect(local_skew.parts == local_hash.parts,
         "local skew output byte-identical to hash run");
  expect(cluster_hash.parts == local_hash.parts,
         "cluster hash output byte-identical to local run");
  expect(cluster_skew.parts == local_hash.parts,
         "cluster skew output byte-identical to local run");

  // The headline gate (ISSUE 7): skew-aware partitioning holds the
  // slowest-reducer/median ratios at <= 1.5 where the hash baseline
  // shows the full Zipf imbalance. Bytes ratios are deterministic; the
  // wall ratio rides actual reduce execution. The bytes ratio understates
  // the record-count skew roughly 2:1 because the generator gives low
  // Zipf ranks short words (rank 1 is "a"), exactly like real text — the
  // baseline's reduce *wall*, driven by records, shows the gap plainly.
  expect(local_hash.bytes_ratio > 1.8, "hash baseline is actually skewed");
  expect(cluster_hash.bytes_ratio > 1.8,
         "cluster hash baseline is actually skewed");
  expect(local_hash.wall_ratio > 1.8,
         "hash baseline reduce wall shows the straggler");
  report.add_note("wall_ratio_improvement",
                  local_skew.wall_ratio > 0
                      ? local_hash.wall_ratio / local_skew.wall_ratio
                      : 0.0);
  expect(local_skew.bytes_ratio <= 1.5, "local skew bytes ratio <= 1.5");
  expect(cluster_skew.bytes_ratio <= 1.5, "cluster skew bytes ratio <= 1.5");
  expect(local_skew.wall_ratio <= 1.5, "local skew wall ratio <= 1.5");
  expect(cluster_skew.wall_ratio <= 1.5, "cluster skew wall ratio <= 1.5");

  if (g_failures > 0) {
    std::printf("\n%d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("\nskew battery ok\n");
  return 0;
}
