// Reproduces Table IV: runtimes on a 20-node EC2 cluster with scaled
// inputs (50 GB corpus for WordCount/InvertedIndex, 145 GB crawl for
// PageRank), baseline vs combined optimizations.
//
// Paper shape: WordCount and PageRank savings persist at 20 nodes;
// InvertedIndex improves less than on the local cluster because the
// shuffle transfers more data between more nodes.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("table4_ec2");
  std::printf(
      "Table IV — simulated 20-node EC2 runtimes (baseline vs combined)\n\n");
  std::printf("%-14s | %-12s %-12s %-10s\n", "Application", "Baseline",
              "Combined", "ratio");
  bench::print_rule();

  sim::ClusterSpec cluster;
  cluster.nodes = 20;
  cluster.map_slots_per_node = 2;
  cluster.reduce_slots_per_node = 2;
  // EC2-era instances: slower effective disks and shared network.
  cluster.disk_read_mbps = 70.0;
  cluster.disk_write_mbps = 55.0;
  cluster.network_mbps_per_node = 60.0;

  for (const auto& app : bench::bench_apps()) {
    if (app.name != "WordCount" && app.name != "InvertedIndex" &&
        app.name != "PageRank") {
      continue;  // Table IV covers these three
    }
    const auto [base_profile, freq_profile] = bench::measure_profiles(app);

    sim::SimJobConfig job;
    job.input_bytes = bench::ec2_input_bytes(app);
    job.num_reducers = 40;

    auto base_job = job;
    const double baseline =
        sim::simulate_job(base_profile, cluster, base_job).total_s;
    auto combined_job = job;
    combined_job.use_spill_matcher = true;
    combined_job.freq_table_fraction = 0.3;
    const double combined =
        sim::simulate_job(freq_profile, cluster, combined_job).total_s;

    std::printf("%-14s | %11.0fs %11.0fs %10s\n", app.name.c_str(), baseline,
                combined, bench::pct(combined / baseline).c_str());
  }
  std::printf(
      "\nPaper shape: WordCount/PageRank savings similar to the local\n"
      "cluster; InvertedIndex improves less (shuffle-heavier at 20 nodes).\n");
  return 0;
}
