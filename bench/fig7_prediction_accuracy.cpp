// Reproduces Figure 7: the percentage of intermediate data values that
// frequency-buffering can remove (combine in memory instead of sorting
// and spilling), as a function of the frequent-key buffer size k, with
// the profiling fraction s = 0.1 — compared against the Ideal predictor
// (oracle knowledge of key frequencies) and the LRU baseline, on both the
// text corpus (WordCount keys) and the access log (AccessLogSum keys).
//
// Paper shape: Space-Saving within ~6% of Ideal on the corpus and ~10%
// on the access log; LRU clearly worse at small k.

#include <cstdio>
#include <fstream>
#include <functional>
#include <set>

#include "bench_util.hpp"

using namespace textmr;

namespace {

using KeyStream = std::function<void(const std::function<void(std::string_view)>&)>;

/// Ideal: buffered keys are the exact top-k; every occurrence beyond the
/// one aggregate record per key is removed.
double ideal_removed(const sketch::ExactCounter& counts, std::size_t k) {
  const auto top = counts.top(k);
  std::uint64_t covered = 0;
  for (const auto& [key, count] : top) covered += count;
  const std::uint64_t removed =
      covered > top.size() ? covered - top.size() : 0;
  return static_cast<double>(removed) /
         static_cast<double>(counts.observed());
}

/// Frequency-buffering: Space-Saving profile over the first s*n records
/// (which all flow through unremoved), then a frozen top-k set absorbs
/// hits for the rest of the stream.
double freqbuf_removed(const KeyStream& stream, std::uint64_t n,
                       std::size_t k, double s) {
  sketch::SpaceSaving sketch(4 * k);  // realistic sub-guarantee budget (§V-B1)
  const std::uint64_t profile_until =
      static_cast<std::uint64_t>(s * static_cast<double>(n));
  std::set<std::string> frozen;
  std::uint64_t seen = 0;
  std::uint64_t removed = 0;
  stream([&](std::string_view key) {
    ++seen;
    if (seen <= profile_until) {
      sketch.offer(key);
      if (seen == profile_until) {
        for (auto& entry : sketch.top(k)) frozen.insert(std::move(entry.key));
      }
      return;
    }
    if (frozen.count(std::string(key)) > 0) ++removed;
  });
  const std::uint64_t kept_aggregates = frozen.size();
  removed = removed > kept_aggregates ? removed - kept_aggregates : 0;
  return static_cast<double>(removed) / static_cast<double>(seen);
}

/// LRU baseline: every arriving tuple enters the buffer; hits are
/// removed, evicted aggregates are written out.
double lru_removed(const KeyStream& stream, std::size_t k) {
  sketch::LruTracker lru(k);
  stream([&](std::string_view key) { lru.offer(key); });
  return lru.hit_rate();
}

void run_dataset(const char* title, const KeyStream& stream) {
  sketch::ExactCounter counts;
  stream([&](std::string_view key) { counts.offer(key); });
  std::printf("%s: %llu values, %llu distinct keys\n", title,
              static_cast<unsigned long long>(counts.observed()),
              static_cast<unsigned long long>(counts.distinct()));
  std::printf("%-10s %-10s %-14s %-10s\n", "k", "Ideal", "FreqBuf(s=.1)",
              "LRU");
  bench::print_rule();
  for (const std::size_t k : {10, 30, 100, 300, 1000, 3000, 10000}) {
    std::printf("%-10zu %-10s %-14s %-10s\n", k,
                bench::pct(ideal_removed(counts, k)).c_str(),
                bench::pct(freqbuf_removed(stream, counts.observed(), k, 0.1))
                    .c_str(),
                bench::pct(lru_removed(stream, k)).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::JsonReport report("fig7_prediction_accuracy");
  std::printf("Figure 7 — removable intermediate values vs buffer size k\n\n");
  const auto& data = bench::datasets();

  const KeyStream corpus_keys = [&](const std::function<void(std::string_view)>& fn) {
    std::ifstream in(data.corpus);
    std::string line, scratch;
    while (std::getline(in, line)) {
      apps::for_each_token(line, scratch, fn);
    }
  };
  const KeyStream url_keys = [&](const std::function<void(std::string_view)>& fn) {
    std::ifstream in(data.user_visits);
    std::string line;
    while (std::getline(in, line)) {
      auto visit = apps::parse_user_visit(line);
      if (visit.has_value()) fn(visit->dest_url);
    }
  };

  run_dataset("Text corpus (WordCount keys)", corpus_keys);
  run_dataset("Access log (AccessLogSum keys)", url_keys);
  std::printf(
      "Paper shape: FreqBuf within ~6%% of Ideal on the corpus and ~10%% on\n"
      "the access log; LRU clearly below both at small k.\n");
  return 0;
}
