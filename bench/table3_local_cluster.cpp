// Reproduces Table III: overall job runtimes on the paper's local
// cluster (6 worker nodes, 12 mappers + 12 reducers) under the four
// settings, at the paper's input scales (8.52 GB corpus, 18.68 GB logs,
// 22.89 GB crawl).
//
// Method (DESIGN.md §2): each app × {baseline, freqbuf} is *measured* on
// the real engine at MB scale to extract a per-byte AppProfile, then the
// cluster simulator composes that profile over the 6-node cluster; the
// spill-matcher settings replay the same profiles through the §IV-C
// pipeline model with the adaptive threshold. Absolute seconds depend on
// the cpu_scale calibration constant; the *ratios* are the reproduction
// target.
//
// Paper: Combined = 60.8% of baseline for WordCount (571s -> 347s, the
// headline "up to 39.1%"), 65.7% InvertedIndex, 98.1% WordPOSTag,
// 95.4%/96.0% AccessLogSum/Join, 88.2% PageRank.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("table3_local_cluster");
  std::printf(
      "Table III — simulated local-cluster runtimes (4 settings x 6 apps)\n"
      "cluster: 6 nodes x (2 map + 2 reduce slots), profile-calibrated\n\n");
  std::printf("%-14s | %-16s %-16s %-16s %-16s\n", "Application", "Baseline",
              "FreqOpt", "SpillOpt", "Combined");
  bench::print_rule('-', 86);

  sim::ClusterSpec cluster;  // defaults model the paper's local cluster

  for (const auto& app : bench::bench_apps()) {
    // Two real measurement runs: baseline and frequency-buffering.
    const auto [base_profile, freq_profile] = bench::measure_profiles(app);

    sim::SimJobConfig job;
    job.input_bytes = bench::paper_input_bytes(app);
    job.num_reducers = 12;

    double seconds[4];
    int column = 0;
    for (const auto& setting : bench::kAllSettings) {
      auto config = job;
      config.use_spill_matcher = setting.matcher;
      config.freq_table_fraction = setting.freq ? 0.3 : 0.0;
      const auto& profile = setting.freq ? freq_profile : base_profile;
      seconds[column++] = sim::simulate_job(profile, cluster, config).total_s;
    }

    std::printf("%-14s |", app.name.c_str());
    for (int i = 0; i < 4; ++i) {
      std::printf(" %7.0fs (%5s) ", seconds[i],
                  bench::pct(seconds[i] / seconds[0]).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper (Table III, %% of baseline): WordCount 78.4/78.7/60.8,\n"
      "InvertedIndex 77.8/78.0/65.7, WordPOSTag 99.4/100.0/98.1,\n"
      "AccessLogSum 97.4/96.6/95.4, AccessLogJoin 100.3/92.7/96.0,\n"
      "PageRank 92.9/96.3/88.2 (FreqOpt/SpillOpt/Combined).\n");
  return 0;
}
