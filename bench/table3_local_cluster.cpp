// Reproduces Table III: overall job runtimes on the paper's local
// cluster (6 worker nodes, 12 mappers + 12 reducers) under the four
// settings, at the paper's input scales (8.52 GB corpus, 18.68 GB logs,
// 22.89 GB crawl).
//
// Method (DESIGN.md §2): each app × {baseline, freqbuf} is *measured* on
// the real engine at MB scale to extract a per-byte AppProfile, then the
// cluster simulator composes that profile over the 6-node cluster; the
// spill-matcher settings replay the same profiles through the §IV-C
// pipeline model with the adaptive threshold. Absolute seconds depend on
// the cpu_scale calibration constant; the *ratios* are the reproduction
// target.
//
// Paper: Combined = 60.8% of baseline for WordCount (571s -> 347s, the
// headline "up to 39.1%"), 65.7% InvertedIndex, 98.1% WordPOSTag,
// 95.4%/96.0% AccessLogSum/Join, 88.2% PageRank.

// `--real [workers]` switches from the calibrated simulator to *actual*
// multi-process execution: every app x setting runs on the ClusterEngine
// (forked workers, heartbeats, speculative execution) at bench scale,
// next to a LocalEngine run of the identical spec, so the abstraction
// cost of process isolation + file shuffle is measured rather than
// modeled. Absolute seconds are bench-scale; ratios are the signal.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"

using namespace textmr;

namespace {

int run_real_cluster(std::uint32_t workers) {
  bench::JsonReport report("table3_real_cluster");
  report.add_note("mode", "real multi-process execution");
  std::printf(
      "Table III (real-execution mode) — ClusterEngine, %u forked workers\n"
      "per cell: cluster wall | local wall (same spec on the thread "
      "engine)\n\n",
      workers);
  std::printf("%-14s | %-22s %-22s %-22s %-22s\n", "Application", "Baseline",
              "FreqOpt", "SpillOpt", "Combined");
  bench::print_rule('-', 110);

  for (const auto& app : bench::bench_apps()) {
    std::printf("%-14s |", app.name.c_str());
    for (const auto& setting : bench::kAllSettings) {
      TempDir scratch("textmr-bench-cluster");
      auto spec = bench::make_bench_job(app, setting, scratch.path());

      cluster::ClusterConfig config;
      config.num_workers = workers;
      Stopwatch cluster_watch;
      cluster_watch.start();
      const auto cluster_result = cluster::ClusterEngine(config).run(spec);
      cluster_watch.stop();
      const double cluster_s = cluster_watch.total_seconds();
      report.add_job(app.name, std::string(setting.name) + "/cluster",
                     cluster_result);

      TempDir local_scratch("textmr-bench-local");
      auto local_spec =
          bench::make_bench_job(app, setting, local_scratch.path());
      Stopwatch local_watch;
      local_watch.start();
      const auto local_result = mr::LocalEngine().run(local_spec);
      local_watch.stop();
      const double local_s = local_watch.total_seconds();
      report.add_job(app.name, std::string(setting.name) + "/local",
                     local_result);

      std::printf(" %6.2fs | %6.2fs     ", cluster_s, local_s);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe cluster column prices the multi-process abstraction: fork,\n"
      "socketpair control traffic, heartbeats and a file-system shuffle\n"
      "instead of shared memory. Output bytes are engine-independent\n"
      "(enforced by the cross-engine differential battery).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--real") == 0) {
    const std::uint32_t workers =
        argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
                 : 4u;
    return run_real_cluster(workers == 0 ? 4u : workers);
  }
  bench::JsonReport report("table3_local_cluster");
  std::printf(
      "Table III — simulated local-cluster runtimes (4 settings x 6 apps)\n"
      "cluster: 6 nodes x (2 map + 2 reduce slots), profile-calibrated\n\n");
  std::printf("%-14s | %-16s %-16s %-16s %-16s\n", "Application", "Baseline",
              "FreqOpt", "SpillOpt", "Combined");
  bench::print_rule('-', 86);

  sim::ClusterSpec cluster;  // defaults model the paper's local cluster

  for (const auto& app : bench::bench_apps()) {
    // Two real measurement runs: baseline and frequency-buffering.
    const auto [base_profile, freq_profile] = bench::measure_profiles(app);

    sim::SimJobConfig job;
    job.input_bytes = bench::paper_input_bytes(app);
    job.num_reducers = 12;

    double seconds[4];
    int column = 0;
    for (const auto& setting : bench::kAllSettings) {
      auto config = job;
      config.use_spill_matcher = setting.matcher;
      config.freq_table_fraction = setting.freq ? 0.3 : 0.0;
      const auto& profile = setting.freq ? freq_profile : base_profile;
      seconds[column++] = sim::simulate_job(profile, cluster, config).total_s;
    }

    std::printf("%-14s |", app.name.c_str());
    for (int i = 0; i < 4; ++i) {
      std::printf(" %7.0fs (%5s) ", seconds[i],
                  bench::pct(seconds[i] / seconds[0]).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper (Table III, %% of baseline): WordCount 78.4/78.7/60.8,\n"
      "InvertedIndex 77.8/78.0/65.7, WordPOSTag 99.4/100.0/98.1,\n"
      "AccessLogSum 97.4/96.6/95.4, AccessLogJoin 100.3/92.7/96.0,\n"
      "PageRank 92.9/96.3/88.2 (FreqOpt/SpillOpt/Combined).\n");
  return 0;
}
