// Observability smoke check, run in CI: executes WordCount under the
// baseline and combined settings with tracing enabled, then asserts that
// the exported artifacts are usable — the Chrome trace parses as JSON and
// contains the spill lifecycle events (seal, sort, write) plus the
// spill-matcher's threshold updates, and the bench JSON artifact carries
// non-zero wall/work numbers. Exits non-zero on any failure so CI fails
// loudly rather than shipping a broken exporter.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "mr/report.hpp"

using namespace textmr;

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) ++g_failures;
}

mr::JobResult run_traced(const apps::AppBundle& app,
                         const bench::Setting& setting) {
  TempDir scratch("textmr-smoke");
  auto spec = bench::make_bench_job(app, setting, scratch.path());
  spec.trace.enabled = true;
  mr::LocalEngine engine;
  auto result = engine.run(spec);
  if (auto* report = bench::JsonReport::active()) {
    report->add_job(app.name, setting.name, result);
  }
  return result;
}

void check_trace(const mr::JobResult& result, const bench::Setting& setting) {
  const auto& trace = result.trace;
  std::printf("-- %s: %zu trace events\n", setting.name, trace.events.size());
  expect(trace.enabled, "trace data present");
  expect(!trace.events.empty(), "trace has events");

  const std::string chrome = obs::format_chrome_trace(trace);
  expect(obs::json_valid(chrome), "chrome trace is valid JSON");
  const std::string jsonl = obs::format_trace_jsonl(trace);
  expect(!jsonl.empty(), "jsonl export non-empty");

  expect(obs::count_events(trace, "map_task") > 0, "map_task spans");
  expect(obs::count_events(trace, "spill_seal") > 0, "spill_seal events");
  expect(obs::count_events(trace, "spill_sort") > 0, "spill_sort spans");
  expect(obs::count_events(trace, "spill_write") > 0, "spill_write spans");
  expect(obs::count_events(trace, "reduce_task") > 0, "reduce_task spans");
  expect(obs::count_events(trace, "shuffle") > 0, "shuffle spans");
  expect(!obs::counter_series(trace, "spill_threshold").empty(),
         "spill_threshold counter series");
  if (setting.matcher) {
    expect(obs::count_events(trace, "threshold_update") > 0,
           "spill-matcher threshold updates");
  }
  if (setting.freq) {
    expect(obs::count_events(trace, "freq_profile_begin") > 0,
           "freq profile begin");
  }

  const std::string metrics = mr::format_job_metrics_json(result, "smoke");
  expect(obs::json_valid(metrics), "metrics JSON is valid");
  expect(result.metrics.job_wall_ns > 0, "non-zero job wall");
  expect(result.metrics.work.total_ns() > 0, "non-zero total work");
}

}  // namespace

int main() {
  bench::JsonReport report("smoke_observability");
  const auto app = apps::wordcount_app();

  check_trace(run_traced(app, bench::kBaseline), bench::kBaseline);
  check_trace(run_traced(app, bench::kCombined), bench::kCombined);

  report.add_note("failures", static_cast<double>(g_failures));
  if (g_failures > 0) {
    std::printf("\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall observability checks passed\n");
  return 0;
}
