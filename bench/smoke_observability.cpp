// Observability smoke check, run in CI: executes WordCount under the
// baseline and combined settings with tracing enabled, then asserts that
// the exported artifacts are usable — the Chrome trace parses as JSON and
// contains the spill lifecycle events (seal, sort, write) plus the
// spill-matcher's threshold updates, and the bench JSON artifact carries
// non-zero wall/work numbers. A final cluster-mode pass (ISSUE 6) runs
// the same job across forked workers and checks the merged cross-process
// trace, the per-worker telemetry, and the critical-path analyzer on the
// real artifact. Exits non-zero on any failure so CI fails loudly rather
// than shipping a broken exporter.
//
// Set TEXTMR_SMOKE_TRACE_OUT to a path to also write the merged cluster
// Chrome trace there (CI feeds it to textmr-analyze and uploads it).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hpp"
#include "mr/report.hpp"

using namespace textmr;

namespace {

int g_failures = 0;

void expect(bool ok, const char* what) {
  std::printf("%s %s\n", ok ? "ok  " : "FAIL", what);
  if (!ok) ++g_failures;
}

mr::JobResult run_traced(const apps::AppBundle& app,
                         const bench::Setting& setting) {
  TempDir scratch("textmr-smoke");
  auto spec = bench::make_bench_job(app, setting, scratch.path());
  spec.trace.enabled = true;
  mr::LocalEngine engine;
  auto result = engine.run(spec);
  if (auto* report = bench::JsonReport::active()) {
    report->add_job(app.name, setting.name, result);
  }
  return result;
}

void check_trace(const mr::JobResult& result, const bench::Setting& setting) {
  const auto& trace = result.trace;
  std::printf("-- %s: %zu trace events\n", setting.name, trace.events.size());
  expect(trace.enabled, "trace data present");
  expect(!trace.events.empty(), "trace has events");

  const std::string chrome = obs::format_chrome_trace(trace);
  expect(obs::json_valid(chrome), "chrome trace is valid JSON");
  const std::string jsonl = obs::format_trace_jsonl(trace);
  expect(!jsonl.empty(), "jsonl export non-empty");

  expect(obs::count_events(trace, "map_task") > 0, "map_task spans");
  expect(obs::count_events(trace, "spill_seal") > 0, "spill_seal events");
  expect(obs::count_events(trace, "spill_sort") > 0, "spill_sort spans");
  expect(obs::count_events(trace, "spill_write") > 0, "spill_write spans");
  expect(obs::count_events(trace, "reduce_task") > 0, "reduce_task spans");
  expect(obs::count_events(trace, "shuffle") > 0, "shuffle spans");
  expect(!obs::counter_series(trace, "spill_threshold").empty(),
         "spill_threshold counter series");
  if (setting.matcher) {
    expect(obs::count_events(trace, "threshold_update") > 0,
           "spill-matcher threshold updates");
  }
  if (setting.freq) {
    expect(obs::count_events(trace, "freq_profile_begin") > 0,
           "freq profile begin");
  }

  const std::string metrics = mr::format_job_metrics_json(result, "smoke");
  expect(obs::json_valid(metrics), "metrics JSON is valid");
  expect(result.metrics.job_wall_ns > 0, "non-zero job wall");
  expect(result.metrics.work.total_ns() > 0, "non-zero total work");
}

// Cluster-mode pass: the same job forked across two workers must come
// back with one coherent timeline (worker rows merged and clock-aligned),
// complete per-worker telemetry, and an analyzer critical path that
// accounts for (nearly) the whole wall.
void check_cluster_trace(const apps::AppBundle& app) {
  TempDir scratch("textmr-smoke-cluster");
  auto spec = bench::make_bench_job(app, bench::kBaseline, scratch.path());
  spec.trace.enabled = true;
  cluster::ClusterConfig config;
  config.num_workers = 2;
  cluster::ClusterEngine engine(config);
  const auto result = engine.run(spec);
  if (auto* report = bench::JsonReport::active()) {
    report->add_job(app.name, "Cluster2", result);
  }
  const auto& trace = result.trace;
  std::printf("-- Cluster2: %zu trace events\n", trace.events.size());
  expect(trace.enabled, "cluster trace data present");

  bool worker0 = false;
  bool worker1 = false;
  for (const auto& event : trace.events) {
    if (event.pid == obs::worker_pid(0)) worker0 = true;
    if (event.pid == obs::worker_pid(1)) worker1 = true;
  }
  expect(worker0 && worker1, "events from every worker pid");
  expect(obs::count_events(trace, "map_exec") > 0, "worker map_exec spans");
  expect(obs::count_events(trace, "clock_sync") == 2,
         "one clock handshake per worker");
  expect(!trace.incomplete, "telemetry complete");
  expect(result.metrics.workers.size() == 2, "per-worker telemetry entries");
  std::uint64_t worker_tasks = 0;
  for (const auto& w : result.metrics.workers) {
    worker_tasks += w.tasks_completed;
  }
  expect(worker_tasks > 0, "workers reported completed tasks");

  const std::string metrics = mr::format_job_metrics_json(result, "smoke");
  expect(obs::json_valid(metrics), "cluster metrics JSON is valid");
  expect(metrics.find("\"cluster\"") != std::string::npos,
         "metrics JSON has cluster section");

  const obs::TraceAnalysis analysis = obs::analyze_trace(trace);
  std::printf("-- analyzer: wall %.3fs, critical path %.1f%%\n",
              static_cast<double>(analysis.wall_ns) * 1e-9,
              100.0 * analysis.critical_path_coverage());
  expect(analysis.critical_path_coverage() >= 0.95,
         "critical path covers >=95% of wall");
  expect(analysis.unknown_event_names.empty(), "no unknown event names");

  const char* trace_out = std::getenv("TEXTMR_SMOKE_TRACE_OUT");
  if (trace_out != nullptr && trace_out[0] != '\0') {
    obs::write_file(trace_out, obs::format_chrome_trace(trace));
    std::printf("-- merged cluster trace written to %s\n", trace_out);
  }
}

}  // namespace

int main() {
  bench::JsonReport report("smoke_observability");
  const auto app = apps::wordcount_app();

  check_trace(run_traced(app, bench::kBaseline), bench::kBaseline);
  check_trace(run_traced(app, bench::kCombined), bench::kCombined);
  check_cluster_trace(app);

  report.add_note("failures", static_cast<double>(g_failures));
  if (g_failures > 0) {
    std::printf("\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::printf("\nall observability checks passed\n");
  return 0;
}
