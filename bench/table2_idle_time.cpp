// Reproduces Table II: percentage of time the map-phase map and support
// threads are idle, per application, under baseline Hadoop settings
// (fixed spill threshold 0.8).
//
// Two views are printed:
//  * measured — real engine runs on this machine, idle = time blocked on
//    the spill buffer relative to the pipeline wall (on a single-core
//    host the absolute numbers skew, but the ordering across apps holds);
//  * modeled — the §IV-C fluid recurrence evaluated at the measured
//    produce/consume rates, which is host-independent.
//
// Paper shape: WordCount both threads ~1/3 idle; WordPOSTag map 0%,
// support ~95%; relational apps support-idle >> map-idle.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("table2_idle_time");
  std::printf("Table II — map/support thread idle time (baseline, x = 0.8)\n\n");
  std::printf("%-14s | %-9s %-9s | %-9s %-9s\n", "Application",
              "Map,meas", "Sup,meas", "Map,model", "Sup,model");
  bench::print_rule();

  for (const auto& app : bench::bench_apps()) {
    const auto result = bench::run_bench_job(app, bench::kBaseline);
    const auto& m = result.metrics;

    // Modeled: rates from measured work quantities (see sim::AppProfile),
    // evaluated at cluster-node task scale (256 MB split, 64 MB buffer).
    const auto profile = sim::AppProfile::from_job(m);
    sim::PipelineConfig pipe;
    const double input = 256.0 * 1024 * 1024;
    const double spill_in = input * profile.spill_input_bytes;
    sim::PipelineResult modeled;
    if (spill_in > 0 && profile.produce_cpu_ns_per_input_byte > 0 &&
        profile.consume_cpu_ns_per_spill_byte > 0) {
      pipe.produce_rate =
          spill_in / (input * profile.produce_cpu_ns_per_input_byte * 1e-9);
      pipe.consume_rate = 1.0 / (profile.consume_cpu_ns_per_spill_byte * 1e-9);
      pipe.total_bytes = spill_in;
      pipe.buffer_bytes = 64.0 * 1024 * 1024;
      pipe.threshold = 0.8;
      modeled = sim::simulate_map_pipeline(pipe);
    }
    const double model_map =
        modeled.wall_s > 0 ? modeled.map_idle_s / modeled.wall_s : 0.0;
    const double model_sup =
        modeled.wall_s > 0 ? modeled.support_idle_s / modeled.wall_s : 1.0;

    std::printf("%-14s | %-9s %-9s | %-9s %-9s\n", app.name.c_str(),
                bench::pct(m.map_idle_fraction()).c_str(),
                bench::pct(m.support_idle_fraction()).c_str(),
                bench::pct(model_map).c_str(),
                bench::pct(model_sup).c_str());
  }
  std::printf(
      "\nPaper (Table II): WordCount 38.0/34.3, InvertedIndex 34.9/34.0,\n"
      "WordPOSTag 0.0/95.1, AccessLogSum 19.1/58.3, AccessLogJoin 19.4/54.4,\n"
      "PageRank 39.8/29.3 (map%%/support%%).\n");
  return 0;
}
