#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "mr/report.hpp"

namespace textmr::bench {
namespace {

JsonReport* g_active_report = nullptr;

}  // namespace

JsonReport* JsonReport::active() { return g_active_report; }

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {
  std::filesystem::path dir = ".";
  if (const char* env = std::getenv("TEXTMR_BENCH_OUT")) dir = env;
  path_ = dir / ("BENCH_" + name_ + ".json");
  g_active_report = this;
}

JsonReport::~JsonReport() {
  if (g_active_report == this) g_active_report = nullptr;
  obs::JsonWriter w;
  w.begin_object();
  w.field("bench", name_);
  w.key("jobs").begin_array();
  for (const auto& job : jobs_) {
    w.begin_object();
    w.field("app", job.app);
    w.field("setting", job.setting);
    w.field("wall_ns", job.wall_ns);
    w.field("work_ns", job.work_ns);
    w.key("metrics").raw(job.metrics_json);
    w.end_object();
  }
  w.end_array();
  w.key("notes").begin_object();
  for (const auto& [key, rendered] : notes_) {
    w.key(key).raw(rendered);
  }
  w.end_object();
  w.end_object();
  try {
    obs::write_file(path_, w.take());
    std::fprintf(stderr, "bench artifact: %s\n", path_.string().c_str());
  } catch (const std::exception& e) {
    // A bench run should not fail because the artifact directory is
    // read-only; the tables already went to stdout.
    std::fprintf(stderr, "bench artifact write failed: %s\n", e.what());
  }
}

void JsonReport::add_job(const std::string& app, const std::string& setting,
                         const mr::JobResult& result) {
  jobs_.push_back(JobEntry{app, setting, result.metrics.job_wall_ns,
                           result.metrics.work.total_ns(),
                           mr::format_job_metrics_json(result, app)});
}

void JsonReport::add_note(const std::string& key, const std::string& value) {
  std::string rendered = "\"";
  obs::append_json_escaped(rendered, value);
  rendered += '"';
  notes_.emplace_back(key, std::move(rendered));
}

void JsonReport::add_note(const std::string& key, double value) {
  obs::JsonWriter w;
  w.value(value);
  notes_.emplace_back(key, w.take());
}

namespace {

std::filesystem::path cache_dir() {
  if (const char* env = std::getenv("TEXTMR_BENCH_DATA")) {
    return env;
  }
  return std::filesystem::temp_directory_path() / "textmr_bench_data";
}

constexpr std::uint64_t kCorpusWords = 2'200'000;      // ~12.5 MB
constexpr std::uint64_t kCorpusVocab = 120'000;
constexpr std::uint64_t kPosCorpusWords = 450'000;     // ~2.6 MB
constexpr std::uint64_t kVisits = 120'000;             // ~14 MB
constexpr std::uint64_t kUrls = 20'000;
constexpr std::uint64_t kGraphPages = 90'000;          // ~12 MB

}  // namespace

const Datasets& datasets() {
  static const Datasets sets = [] {
    Datasets d;
    d.dir = cache_dir();
    std::filesystem::create_directories(d.dir);
    d.corpus = d.dir / ("corpus_" + std::to_string(kCorpusWords) + ".txt");
    d.pos_corpus =
        d.dir / ("corpus_" + std::to_string(kPosCorpusWords) + ".txt");
    d.user_visits = d.dir / ("visits_" + std::to_string(kVisits) + ".log");
    d.rankings = d.dir / ("rankings_" + std::to_string(kUrls) + ".txt");
    d.web_graph = d.dir / ("graph_" + std::to_string(kGraphPages) + ".txt");

    if (!std::filesystem::exists(d.corpus)) {
      textgen::CorpusSpec spec;
      spec.total_words = kCorpusWords;
      spec.vocabulary = kCorpusVocab;
      spec.alpha = 1.0;
      spec.seed = 20080101;
      textgen::generate_corpus(spec, d.corpus.string());
    }
    if (!std::filesystem::exists(d.pos_corpus)) {
      textgen::CorpusSpec spec;
      spec.total_words = kPosCorpusWords;
      spec.vocabulary = kCorpusVocab / 4;
      spec.alpha = 1.0;
      spec.seed = 20080102;
      textgen::generate_corpus(spec, d.pos_corpus.string());
    }
    if (!std::filesystem::exists(d.user_visits) ||
        !std::filesystem::exists(d.rankings)) {
      textgen::AccessLogSpec spec;
      spec.num_visits = kVisits;
      spec.num_urls = kUrls;
      spec.url_alpha = 0.8;
      spec.seed = 19;
      textgen::generate_access_log(spec, d.user_visits.string(),
                                   d.rankings.string());
    }
    if (!std::filesystem::exists(d.web_graph)) {
      textgen::WebGraphSpec spec;
      spec.num_pages = kGraphPages;
      spec.link_alpha = 1.0;
      spec.seed = 23;
      textgen::generate_web_graph(spec, d.web_graph.string());
    }
    return d;
  }();
  return sets;
}

std::vector<apps::AppBundle> bench_apps() {
  return apps::paper_apps(kPosWorkPasses);
}

std::vector<io::InputSplit> bench_inputs(const apps::AppBundle& app) {
  const auto& d = datasets();
  constexpr std::uint64_t kSplit = 2u << 20;  // ~6 map tasks per dataset
  switch (app.dataset) {
    case apps::Dataset::kCorpus: {
      // WordPOSTag and the SynText sweep (up to 64x CPU intensity) use
      // the smaller corpus to keep per-point measurement time bounded;
      // profiles are per-byte, so the simulator is scale-agnostic.
      const bool cpu_heavy =
          app.name == "WordPOSTag" || app.name == "SynText";
      const auto& path = cpu_heavy ? d.pos_corpus : d.corpus;
      return io::make_splits(path.string(), kSplit);
    }
    case apps::Dataset::kAccessLog:
      return io::make_splits(d.user_visits.string(), kSplit);
    case apps::Dataset::kAccessLogWithRankings: {
      auto splits = io::make_splits(d.user_visits.string(), kSplit);
      const auto rankings = io::make_splits(d.rankings.string(), kSplit);
      splits.insert(splits.end(), rankings.begin(), rankings.end());
      return splits;
    }
    case apps::Dataset::kWebGraph:
      return io::make_splits(d.web_graph.string(), kSplit);
  }
  return {};
}

std::uint64_t bench_input_bytes(const apps::AppBundle& app) {
  std::uint64_t total = 0;
  for (const auto& split : bench_inputs(app)) total += split.length;
  return total;
}

double paper_input_bytes(const apps::AppBundle& app) {
  // §V-A2: 8.52 GB corpus; 18.68 GB UserVisits (+34 MB Rankings);
  // 22.89 GB crawl.
  switch (app.dataset) {
    case apps::Dataset::kCorpus: return 8.52e9;
    case apps::Dataset::kAccessLog: return 18.68e9;
    case apps::Dataset::kAccessLogWithRankings: return 18.71e9;
    case apps::Dataset::kWebGraph: return 22.89e9;
  }
  return 0.0;
}

double ec2_input_bytes(const apps::AppBundle& app) {
  // §V-A2 EC2 scaling: 50 GB corpus, 110 GB logs, 145 GB crawl.
  switch (app.dataset) {
    case apps::Dataset::kCorpus: return 50e9;
    case apps::Dataset::kAccessLog: return 110e9;
    case apps::Dataset::kAccessLogWithRankings: return 110e9;
    case apps::Dataset::kWebGraph: return 145e9;
  }
  return 0.0;
}

mr::JobSpec make_bench_job(const apps::AppBundle& app, const Setting& setting,
                           const std::filesystem::path& scratch_root) {
  mr::JobSpec spec;
  spec.name = app.name;
  spec.inputs = bench_inputs(app);
  spec.mapper = app.mapper;
  spec.reducer = app.reducer;
  spec.combiner = app.combiner;
  spec.num_reducers = 2;
  // Sized against the 2 MB splits the way the simulator's 64 MB buffer is
  // sized against its 256 MB splits: several spills per map task.
  spec.spill_buffer_bytes = 512u << 10;
  spec.spill_threshold = 0.8;  // Hadoop default (paper §V-C)
  spec.use_spill_matcher = setting.matcher;
  if (setting.freq) {
    spec.freqbuf.enabled = true;
    // Mass-equivalent scaling of the paper's k to bench-scale vocabularies
    // (Zipf-1 mass of top-k ~ ln k / ln V): k=3000 against the 24.7M-word
    // Wikipedia vocabulary covers the same share as ~250 against our 120k
    // generator vocabulary; k=10000 against 600k URLs ~ 1000 against 20k.
    spec.freqbuf.top_k = app.freq_top_k >= 10000 ? 1000 : 250;
    spec.freqbuf.sampling_fraction = app.freq_sampling_fraction;
    spec.freqbuf.table_budget_fraction = 0.3;  // §V-B2
  }
  spec.scratch_dir = scratch_root / "scratch";
  spec.output_dir = scratch_root / "out";
  return spec;
}

mr::JobResult run_bench_job(const apps::AppBundle& app,
                            const Setting& setting) {
  TempDir scratch("textmr-bench");
  const auto spec = make_bench_job(app, setting, scratch.path());
  mr::LocalEngine engine;
  auto result = engine.run(spec);
  if (JsonReport* report = JsonReport::active()) {
    report->add_job(app.name, setting.name, result);
  }
  return result;
}

CalibratedProfiles measure_profiles(const apps::AppBundle& app) {
  const auto base_run = run_bench_job(app, kBaseline);
  const auto freq_run = run_bench_job(app, kFreqOpt);
  CalibratedProfiles profiles;
  profiles.base = sim::AppProfile::from_job(base_run.metrics);
  profiles.freq = sim::AppProfile::from_job(freq_run.metrics);
  // Normalize the freq profile's map_user share to the baseline's.
  const double base_user =
      static_cast<double>(base_run.metrics.map_work.op_ns(mr::Op::kMapUser)) /
      static_cast<double>(base_run.metrics.map_work.input_bytes);
  const double freq_user =
      static_cast<double>(freq_run.metrics.map_work.op_ns(mr::Op::kMapUser)) /
      static_cast<double>(freq_run.metrics.map_work.input_bytes);
  profiles.freq.produce_cpu_ns_per_input_byte += base_user - freq_user;
  return profiles;
}

void print_rule(char c, int width) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fs", s);
  return buf;
}

std::vector<std::pair<const char*, double>> op_shares(
    const mr::TaskMetrics& work, bool include_idle) {
  const double total = static_cast<double>(work.total_ns(include_idle));
  std::vector<std::pair<const char*, double>> shares;
  for (std::size_t i = 0; i < mr::kNumOps; ++i) {
    const auto op = static_cast<mr::Op>(i);
    if (!include_idle &&
        (op == mr::Op::kMapIdle || op == mr::Op::kSupportIdle)) {
      continue;
    }
    const double ns = static_cast<double>(work.op_ns(op));
    if (ns == 0.0) continue;
    shares.emplace_back(mr::op_name(op), total > 0 ? ns / total : 0.0);
  }
  return shares;
}

}  // namespace textmr::bench
