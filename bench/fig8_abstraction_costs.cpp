// Reproduces Figure 8: per-operation abstraction-cost breakdown for each
// application, baseline vs. frequency-buffering (k and s per §V-B2, 30%
// of the spill buffer devoted to the frequent-key table).
//
// Paper shape: ~40% of abstraction cost removed for WordCount, ~30% for
// InvertedIndex, ~45% for WordPOSTag; ≤7% for the relational apps (whose
// emit cost *rises* slightly from profiling/hashing overhead); PageRank
// in between.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("fig8_abstraction_costs");
  std::printf(
      "Figure 8 — abstraction costs: baseline vs frequency-buffering\n"
      "(absolute seconds of serialized framework work; user code excluded)\n\n");

  for (const auto& app : bench::bench_apps()) {
    const auto base = bench::run_bench_job(app, bench::kBaseline);
    const auto freq = bench::run_bench_job(app, bench::kFreqOpt);
    const auto& base_work = base.metrics.work;
    const auto& freq_work = freq.metrics.work;

    std::printf("%-14s  k=%zu s=%.2f\n", app.name.c_str(), app.freq_top_k,
                app.freq_sampling_fraction);
    bench::print_rule();
    std::printf("  %-13s %12s %12s\n", "operation", "baseline", "freqbuf");
    for (std::size_t i = 0; i < mr::kNumOps; ++i) {
      const auto op = static_cast<mr::Op>(i);
      if (op == mr::Op::kMapIdle || op == mr::Op::kSupportIdle) continue;
      if (mr::is_user_code(op)) continue;
      const double b = static_cast<double>(base_work.op_ns(op)) * 1e-9;
      const double f = static_cast<double>(freq_work.op_ns(op)) * 1e-9;
      if (b == 0.0 && f == 0.0) continue;
      std::printf("  %-13s %11.3fs %11.3fs\n", mr::op_name(op), b, f);
    }
    const double base_abs =
        static_cast<double>(base_work.abstraction_ns()) * 1e-9;
    const double freq_abs =
        static_cast<double>(freq_work.abstraction_ns()) * 1e-9;
    std::printf("  %-13s %11.3fs %11.3fs   -> %s of abstraction cost removed\n",
                "TOTAL abstr.", base_abs, freq_abs,
                bench::pct(base_abs > 0 ? (base_abs - freq_abs) / base_abs : 0)
                    .c_str());
    std::printf(
        "  spill-path records: %llu -> %llu (%s absorbed by the table)\n\n",
        static_cast<unsigned long long>(base_work.spill_input_records),
        static_cast<unsigned long long>(freq_work.spill_input_records),
        bench::pct(base_work.spill_input_records > 0
                       ? 1.0 - static_cast<double>(
                                   freq_work.spill_input_records) /
                                   static_cast<double>(
                                       base_work.spill_input_records)
                       : 0.0)
            .c_str());
  }
  return 0;
}
