// google-benchmark microbenchmarks for the framework's hot components:
// the Space-Saving sketch, the frequent-key table, the spill buffer, the
// spill sorter+combiner, the tokenizer and the Zipf sampler. These back
// the per-operation costs that the figure-level harnesses measure.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "textmr.hpp"

using namespace textmr;

namespace {

std::vector<std::string> zipf_keys(std::size_t n, double alpha,
                                   std::uint64_t vocab = 50000) {
  Xoshiro256 rng(42);
  ZipfDistribution zipf(vocab, alpha);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(textgen::word_for_rank(zipf(rng)));
  }
  return keys;
}

void BM_SpaceSavingOffer(benchmark::State& state) {
  const auto keys = zipf_keys(1 << 16, 1.0);
  sketch::SpaceSaving sketch(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    sketch.offer(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingOffer)->Arg(1000)->Arg(12000)->Arg(40000);

void BM_ExactCounterOffer(benchmark::State& state) {
  const auto keys = zipf_keys(1 << 16, 1.0);
  sketch::ExactCounter counter;
  std::size_t i = 0;
  for (auto _ : state) {
    counter.offer(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactCounterOffer);

void BM_LruOffer(benchmark::State& state) {
  const auto keys = zipf_keys(1 << 16, 1.0);
  sketch::LruTracker lru(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    lru.offer(keys[i++ & (keys.size() - 1)]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruOffer)->Arg(1000)->Arg(10000);

void BM_FrequentKeyTableHit(benchmark::State& state) {
  class NullSink final : public mr::EmitSink {
    void emit(std::string_view, std::string_view) override {}
  } sink;
  mr::TaskMetrics metrics;
  apps::WordCountCombiner combiner;
  std::vector<std::string> hot;
  for (int i = 1; i <= 3000; ++i) hot.push_back(textgen::word_for_rank(i));
  freqbuf::FrequentKeyTable table(hot, {}, &combiner, sink, metrics);
  const auto keys = zipf_keys(1 << 16, 1.0);
  std::string value;
  put_varint(value, 1);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.offer(keys[i++ & (keys.size() - 1)], value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrequentKeyTableHit);

void BM_SpillBufferPipeline(benchmark::State& state) {
  // Producer/consumer throughput of the circular buffer at a given spill
  // threshold; the consumer just releases.
  const double threshold = static_cast<double>(state.range(0)) / 100.0;
  const auto keys = zipf_keys(1 << 14, 1.0);
  for (auto _ : state) {
    mr::SpillBuffer buffer(1 << 20, threshold);
    std::thread consumer([&] {
      while (auto spill = buffer.take()) {
        benchmark::DoNotOptimize(spill->records.size());
        buffer.release(*spill, 1000);
      }
    });
    for (int rep = 0; rep < 4; ++rep) {
      for (const auto& key : keys) buffer.put(0, key, "12345678");
    }
    buffer.close();
    consumer.join();
  }
  state.SetItemsProcessed(state.iterations() * 4 * keys.size());
}
BENCHMARK(BM_SpillBufferPipeline)->Arg(20)->Arg(50)->Arg(80);

void BM_SortAndSpill(benchmark::State& state) {
  const auto keys = zipf_keys(static_cast<std::size_t>(state.range(0)), 1.0);
  TempDir dir("textmr-microbench");
  apps::WordCountCombiner combiner;
  std::string value;
  put_varint(value, 1);
  int run_id = 0;
  mr::RecordArena arena;
  for (auto _ : state) {
    state.PauseTiming();
    // Rebuild the spill (framed records live in the reused arena).
    arena.clear();
    mr::Spill spill;
    spill.records.reserve(keys.size());
    for (const auto& key : keys) {
      spill.records.push_back(arena.append(0, key, value));
    }
    mr::TaskMetrics metrics;
    const auto path = dir.file("run" + std::to_string(run_id++)).string();
    state.ResumeTiming();
    auto info = sort_and_spill(spill, &combiner, path, 1,
                               io::SpillFormat::kCompactVarint, metrics);
    benchmark::DoNotOptimize(info.records);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_SortAndSpill)->Arg(10000)->Arg(100000);

void BM_Tokenizer(benchmark::State& state) {
  textgen::CorpusSpec spec;
  spec.total_words = 2000;
  textgen::CorpusStream stream(spec);
  std::string text;
  std::string line;
  while (stream.next_line(line)) {
    text += line;
    text.push_back('\n');
  }
  std::string scratch;
  for (auto _ : state) {
    std::uint64_t tokens = 0;
    apps::for_each_token(text, scratch, [&](std::string_view) { ++tokens; });
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_Tokenizer);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution zipf(static_cast<std::uint64_t>(state.range(0)), 1.0);
  Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(1000000)->Arg(1000000000);

void BM_PosTaggerSentence(benchmark::State& state) {
  apps::PosTagger tagger(static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::string> tokens;
  for (int i = 1; i <= 12; ++i) tokens.push_back(textgen::word_for_rank(i * 7));
  std::vector<apps::PosTag> tags;
  for (auto _ : state) {
    tagger.tag_sentence(tokens, tags);
    benchmark::DoNotOptimize(tags.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens.size());
}
BENCHMARK(BM_PosTaggerSentence)->Arg(1)->Arg(16)->Arg(64);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults the JSON artifact so every bench
// harness in this repo leaves a BENCH_<name>.json behind. Explicit
// --benchmark_out flags still win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_components.json";
  if (const char* dir = std::getenv("TEXTMR_BENCH_OUT")) {
    out_flag = std::string("--benchmark_out=") + dir +
               "/BENCH_micro_components.json";
  }
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
