#pragma once

// Shared infrastructure for the per-table / per-figure reproduction
// harnesses: dataset caching, standard job construction for the paper's
// four optimization settings, and table printing.

#include <filesystem>
#include <string>
#include <vector>

#include "textmr.hpp"

namespace textmr::bench {

/// Measurement-scale datasets (MBs, not the paper's GBs — the cluster
/// simulator rescales volumes; see DESIGN.md §2). Generated once into a
/// cache directory shared by every bench binary, keyed by generator
/// parameters in the file name.
struct Datasets {
  std::filesystem::path dir;
  std::filesystem::path corpus;       // ~12 MB Zipf(1.0) text
  std::filesystem::path pos_corpus;   // ~2.5 MB (WordPOSTag is CPU-bound)
  std::filesystem::path user_visits;  // ~14 MB access log
  std::filesystem::path rankings;
  std::filesystem::path web_graph;    // ~12 MB crawl
};

/// Generates (or reuses) the cached datasets.
const Datasets& datasets();

/// The paper's four experimental settings (Table III columns).
struct Setting {
  const char* name;
  bool freq;
  bool matcher;
};

inline constexpr Setting kBaseline{"Baseline", false, false};
inline constexpr Setting kFreqOpt{"FreqOpt", true, false};
inline constexpr Setting kSpillOpt{"SpillOpt", false, true};
inline constexpr Setting kCombined{"Combined", true, true};
inline constexpr Setting kAllSettings[] = {kBaseline, kFreqOpt, kSpillOpt,
                                           kCombined};

/// Number of contextual passes for the POS tagger at bench scale (the
/// paper's OpenNLP tagger is ~35x WordCount per word; this matches that
/// order of magnitude without exploding single-core bench time).
inline constexpr std::uint32_t kPosWorkPasses = 16;

/// Machine-readable bench artifact. Each harness opens one JsonReport at
/// the top of main(); while it is alive every run_bench_job() call
/// auto-records its JobResult into it, and the destructor writes
/// `BENCH_<name>.json` (into $TEXTMR_BENCH_OUT, or the working directory)
/// with per-job wall/work totals, the full per-Op metrics document, and
/// any harness-specific notes. Not thread-safe; one instance at a time.
class JsonReport {
 public:
  explicit JsonReport(std::string name);
  ~JsonReport();

  /// Records one finished job. Called automatically by run_bench_job();
  /// call directly for jobs run through other paths.
  void add_job(const std::string& app, const std::string& setting,
               const mr::JobResult& result);

  /// Attaches a free-form key/value to the artifact's "notes" object.
  void add_note(const std::string& key, const std::string& value);
  void add_note(const std::string& key, double value);

  /// Path the artifact will be written to.
  const std::filesystem::path& path() const { return path_; }

  /// The report currently open in this process, or nullptr.
  static JsonReport* active();

 private:
  struct JobEntry {
    std::string app;
    std::string setting;
    std::uint64_t wall_ns;
    std::uint64_t work_ns;
    std::string metrics_json;  // format_job_metrics_json output
  };

  std::string name_;
  std::filesystem::path path_;
  std::vector<JobEntry> jobs_;
  std::vector<std::pair<std::string, std::string>> notes_;  // pre-rendered
};

/// Iteration-count steady-state measurement: runs `sample` `warmup`
/// times unrecorded (caches, page tables and the allocator reach steady
/// state), then `measured` times, and returns the sample minimizing
/// `cost(sample)` — the min filters scheduler noise. Deterministic
/// iteration counts replace wall-clock warmup deadlines, which made
/// bench numbers (and the CI regression gate) depend on transient
/// machine load.
template <typename Sample, typename Cost>
auto run_until_steady(Sample&& sample, Cost&& cost, int warmup = 1,
                      int measured = 3) {
  for (int i = 0; i < warmup; ++i) (void)sample();
  auto best = sample();
  for (int i = 1; i < measured; ++i) {
    auto next = sample();
    if (cost(next) < cost(best)) best = std::move(next);
  }
  return best;
}

/// Builds the standard bench JobSpec for one app under one setting.
/// `scratch_root` must outlive the run.
mr::JobSpec make_bench_job(const apps::AppBundle& app, const Setting& setting,
                           const std::filesystem::path& scratch_root);

/// Runs one app under one setting and returns the result.
mr::JobResult run_bench_job(const apps::AppBundle& app,
                            const Setting& setting);

/// Baseline + frequency-buffering profiles for one app, measured on the
/// real engine. The freq profile's user-map() component is normalized to
/// the baseline's (identical user code; any difference is measurement
/// noise that would otherwise be amplified by the simulator — dominant
/// for the CPU-bound WordPOSTag).
struct CalibratedProfiles {
  sim::AppProfile base;
  sim::AppProfile freq;
};
CalibratedProfiles measure_profiles(const apps::AppBundle& app);

/// All six paper apps at bench scale.
std::vector<apps::AppBundle> bench_apps();

/// Input splits for an app's dataset at bench scale.
std::vector<io::InputSplit> bench_inputs(const apps::AppBundle& app);

/// Total input bytes of an app's bench dataset.
std::uint64_t bench_input_bytes(const apps::AppBundle& app);

/// The paper's full-scale input sizes, for the cluster simulator.
double paper_input_bytes(const apps::AppBundle& app);
double ec2_input_bytes(const apps::AppBundle& app);

/// Pretty-printing helpers.
void print_rule(char c = '-', int width = 78);
std::string pct(double fraction);       // "12.3%"
std::string secs(double s);             // "571.2s"

/// Fraction of total serialized work in each op, over a metrics object.
std::vector<std::pair<const char*, double>> op_shares(
    const mr::TaskMetrics& work, bool include_idle = false);

}  // namespace textmr::bench
