// Reproduces Figure 9: map-phase busy and wait time of the map and
// support threads under the four settings (Baseline / FreqOpt / SpillOpt
// / Combined).
//
// Two views per app: the measured single-machine engine (real blocking
// time), and the §IV-C fluid model evaluated at the measured rates —
// the latter is what a multi-core cluster node would see.
//
// Paper shape: spill-matcher removes ~90% of the slower thread's wait
// for WordCount, ~89% InvertedIndex, ~77-83%% AccessLog*, ~0 for
// WordPOSTag (nothing to remove), ~42%% for PageRank (p ~ c).

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

namespace {

struct ModelResult {
  double busy_map_s = 0, idle_map_s = 0, busy_sup_s = 0, idle_sup_s = 0;
};

ModelResult model(const mr::JobMetrics& m, bool matcher) {
  const auto profile = sim::AppProfile::from_job(m);
  ModelResult out;
  // Evaluated at cluster-node task scale (256 MB split, 64 MB buffer).
  const double input = 256.0 * 1024 * 1024;
  const double spill_in = input * profile.spill_input_bytes;
  out.busy_map_s = input * profile.produce_cpu_ns_per_input_byte * 1e-9;
  out.busy_sup_s = spill_in * profile.consume_cpu_ns_per_spill_byte * 1e-9;
  if (spill_in <= 0 || out.busy_map_s <= 0 || out.busy_sup_s <= 0) {
    return out;
  }
  sim::PipelineConfig pipe;
  pipe.produce_rate = spill_in / out.busy_map_s;
  pipe.consume_rate = spill_in / out.busy_sup_s;
  pipe.total_bytes = spill_in;
  pipe.buffer_bytes = 64.0 * 1024 * 1024;
  pipe.threshold = 0.8;
  pipe.policy =
      matcher ? sim::SimSpillPolicy::kMatcher : sim::SimSpillPolicy::kFixed;
  const auto sim_result = sim::simulate_map_pipeline(pipe);
  out.idle_map_s = sim_result.map_idle_s;
  out.idle_sup_s = sim_result.support_idle_s;
  return out;
}

}  // namespace

int main() {
  bench::JsonReport report("fig9_wait_time");
  std::printf(
      "Figure 9 — map/support thread busy + wait time, four settings\n\n");
  for (const auto& app : bench::bench_apps()) {
    std::printf("%s\n", app.name.c_str());
    bench::print_rule();
    std::printf("  %-9s | measured busy/idle (s)      | modeled busy/idle (s)\n",
                "setting");
    std::printf("  %-9s | %-8s %-6s %-8s %-6s | %-8s %-6s %-8s %-6s\n", "",
                "map", "idle", "support", "idle", "map", "idle", "support",
                "idle");
    double baseline_slower_idle_meas = -1.0;
    double baseline_slower_idle_model = -1.0;
    for (const auto& setting : bench::kAllSettings) {
      const auto result = bench::run_bench_job(app, setting);
      const auto& m = result.metrics;
      const double meas_busy_map =
          static_cast<double>(m.map_thread_wall_ns - m.map_thread_idle_ns) *
          1e-9;
      const double meas_idle_map =
          static_cast<double>(m.map_thread_idle_ns) * 1e-9;
      const double meas_busy_sup =
          static_cast<double>(m.support_work.total_ns()) * 1e-9;
      const double meas_idle_sup =
          static_cast<double>(m.support_thread_idle_ns) * 1e-9;
      const auto modeled = model(m, setting.matcher);
      std::printf(
          "  %-9s | %7.2f %6.2f %7.2f %6.2f | %7.2f %6.2f %7.2f %6.2f\n",
          setting.name, meas_busy_map, meas_idle_map, meas_busy_sup,
          meas_idle_sup, modeled.busy_map_s, modeled.idle_map_s,
          modeled.busy_sup_s, modeled.idle_sup_s);
      // Wait-time-removed summary for the slower thread (paper's metric).
      const bool map_slower = modeled.busy_map_s > modeled.busy_sup_s;
      const double meas_slower_idle =
          map_slower ? meas_idle_map : meas_idle_sup;
      const double model_slower_idle =
          map_slower ? modeled.idle_map_s : modeled.idle_sup_s;
      if (setting.name == bench::kBaseline.name) {
        baseline_slower_idle_meas = meas_slower_idle;
        baseline_slower_idle_model = model_slower_idle;
      } else if (setting.name == bench::kSpillOpt.name) {
        // Only meaningful when the slower thread actually waited at
        // baseline (>2% of its busy time); with a produce-bound profile
        // (e.g. WordPOSTag) there is nothing to remove, as in the paper.
        const double threshold_s =
            0.02 * std::max(modeled.busy_map_s, modeled.busy_sup_s);
        if (baseline_slower_idle_model > threshold_s) {
          std::printf(
              "            -> slower-thread wait removed: modeled %s, "
              "measured %s\n",
              bench::pct(1.0 - model_slower_idle / baseline_slower_idle_model)
                  .c_str(),
              baseline_slower_idle_meas > 1e-9
                  ? bench::pct(1.0 -
                               meas_slower_idle / baseline_slower_idle_meas)
                        .c_str()
                  : "n/a");
        } else {
          std::printf(
              "            -> slower thread already wait-free at baseline "
              "(nothing to remove)\n");
        }
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Paper: ~90%% of slower-thread wait removed for WordCount, 89%% for\n"
      "InvertedIndex, 77%%/83%% for AccessLogSum/Join, ~0 for WordPOSTag,\n"
      "42%% for PageRank.\n");
  return 0;
}
