// Ablation harness for the design choices DESIGN.md calls out (§5/§7):
//
//  A. spill-run serialization format — compact varint framing vs fixed32
//     (the paper's §VII "more efficient on-disk data representations");
//  B. reduce-side grouping — required sort vs hash grouping (the §VII
//     "different post-map() grouping procedures");
//  C. frequent-key table budget — sensitivity of FreqOpt to the fraction
//     of the spill buffer devoted to the table (the paper fixes 30%);
//  D. sampling fraction s — fixed paper values vs the §III-C auto-tuner.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

namespace {

double run_seconds(mr::JobSpec spec) {
  mr::LocalEngine engine;
  const auto result = engine.run(spec);
  return static_cast<double>(result.metrics.work.total_ns()) * 1e-9;
}

}  // namespace

int main() {
  bench::JsonReport report("ablation_design_choices");
  std::printf("Ablations over WordCount (serialized work seconds)\n\n");
  const auto app = apps::wordcount_app();

  {
    std::printf("A. spill format: varint vs fixed32 framing\n");
    for (const auto format :
         {io::SpillFormat::kCompactVarint, io::SpillFormat::kFixed32}) {
      TempDir dir("textmr-ablation");
      auto spec = bench::make_bench_job(app, bench::kBaseline, dir.path());
      spec.spill_format = format;
      std::printf("   %-16s %s\n",
                  format == io::SpillFormat::kCompactVarint ? "varint"
                                                            : "fixed32",
                  bench::secs(run_seconds(std::move(spec))).c_str());
    }
  }

  {
    std::printf("\nB. reduce grouping: sorted merge vs hash table\n");
    for (const auto grouping : {mr::Grouping::kSorted, mr::Grouping::kHash}) {
      TempDir dir("textmr-ablation");
      auto spec = bench::make_bench_job(app, bench::kBaseline, dir.path());
      spec.grouping = grouping;
      std::printf("   %-16s %s\n",
                  grouping == mr::Grouping::kSorted ? "sorted" : "hash",
                  bench::secs(run_seconds(std::move(spec))).c_str());
    }
  }

  {
    std::printf("\nC. frequent-key table budget (fraction of spill buffer)\n");
    for (const double fraction : {0.1, 0.3, 0.5, 0.7}) {
      TempDir dir("textmr-ablation");
      auto spec = bench::make_bench_job(app, bench::kFreqOpt, dir.path());
      spec.freqbuf.table_budget_fraction = fraction;
      std::printf("   %-16.1f %s\n", fraction,
                  bench::secs(run_seconds(std::move(spec))).c_str());
    }
  }

  {
    std::printf("\nE. support threads per map task (consume-bound app:\n"
                "   InvertedIndex; extra threads overlap several spills)\n");
    const auto index_app = apps::inverted_index_app();
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      TempDir dir("textmr-ablation");
      auto spec = bench::make_bench_job(index_app, bench::kBaseline,
                                        dir.path());
      spec.support_threads = threads;
      mr::LocalEngine engine;
      const auto result = engine.run(spec);
      std::printf("   %u thread(s):     work %-9s support idle %.2fs\n",
                  threads,
                  bench::secs(static_cast<double>(
                                  result.metrics.work.total_ns()) *
                              1e-9)
                      .c_str(),
                  static_cast<double>(result.metrics.support_thread_idle_ns) *
                      1e-9);
    }
  }

  {
    std::printf("\nD. sampling fraction s: fixed vs auto-tuned (0 = auto)\n");
    mr::LocalEngine engine;
    for (const double s : {0.01, 0.1, 0.3, 0.0}) {
      TempDir dir("textmr-ablation");
      auto spec = bench::make_bench_job(app, bench::kFreqOpt, dir.path());
      spec.freqbuf.sampling_fraction = s;
      const auto result = engine.run(spec);
      double effective_s = 0.0;
      for (const auto& task : result.map_tasks) {
        effective_s = std::max(effective_s, task.freq_sampling_fraction);
      }
      std::printf("   s=%-5.2f (eff %.3f) work %-9s freq hits %llu\n", s,
                  effective_s,
                  bench::secs(static_cast<double>(
                                  result.metrics.work.total_ns()) *
                              1e-9)
                      .c_str(),
                  static_cast<unsigned long long>(
                      result.metrics.work.freq_hits));
    }
  }
  return 0;
}
