// Reproduces Figure 10: percentage of job time saved by the combined
// optimizations on SynText across the (CPU-intensity x storage-intensity)
// plane.
//
// Paper shape: savings are largest at moderate CPU intensity and low
// storage intensity (combine collapses data and the pipeline has slack),
// and fall off toward high CPU intensity (user map() dominates — the
// WordPOSTag corner) and high storage intensity (combine cannot shrink
// data — the InvertedIndex corner).

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

namespace {

double simulated_saving(const apps::AppBundle& app) {
  const auto [base_profile, freq_profile] = bench::measure_profiles(app);

  sim::ClusterSpec cluster;
  sim::SimJobConfig job;
  job.input_bytes = 8.52e9;
  job.num_reducers = 12;

  const double baseline = sim::simulate_job(base_profile, cluster, job).total_s;
  auto combined_job = job;
  combined_job.use_spill_matcher = true;
  combined_job.freq_table_fraction = 0.3;
  const double combined =
      sim::simulate_job(freq_profile, cluster, combined_job).total_s;
  return 1.0 - combined / baseline;
}

}  // namespace

int main() {
  bench::JsonReport report("fig10_syntext_grid");
  std::printf(
      "Figure 10 — SynText: %% time saved by combined optimizations over\n"
      "the CPU-intensity x storage-intensity plane\n\n");

  const double cpu_levels[] = {1.0, 4.0, 16.0, 64.0};
  const double storage_levels[] = {0.0, 0.33, 0.66, 1.0};

  std::printf("%-18s", "cpu \\ storage");
  for (const double storage : storage_levels) {
    std::printf("%10.2f", storage);
  }
  std::printf("\n");
  bench::print_rule();

  for (const double cpu : cpu_levels) {
    std::printf("%-18.0fx", cpu);
    for (const double storage : storage_levels) {
      apps::SynTextParams params;
      params.cpu_intensity = cpu;
      params.storage_intensity = storage;
      params.base_value_bytes = 8;
      const double saving = simulated_saving(apps::syntext_app(params));
      std::printf("%10s", bench::pct(saving).c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nReference points: WordCount sits near (1x, 0.0) — the paper's\n"
      "lower-left, largest-gain corner; InvertedIndex near (1x, 1.0);\n"
      "WordPOSTag near (64x, 0.0) where map() dominates and gains vanish.\n");
  return 0;
}
