// Reproduces Figure 2: "where does the time go" — the serialized view of
// all work performed by each benchmark application, grouped by the
// Table I operation taxonomy and normalized to 100%.
//
// Paper shape to verify: user code (map_user + combine + reduce_user) is
// below ~50% for every application except WordPOSTag (map-dominated) and
// AccessLogJoin (borderline); post-map operations scale with intermediate
// volume.

#include <cstdio>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("fig2_time_breakdown");
  std::printf("Figure 2 — serialized work breakdown per operation (baseline)\n");
  std::printf("All threads, all tasks; normalized per app. Idle excluded, as\n");
  std::printf("in the paper (Fig. 2 shows work volume, not parallelism).\n\n");

  for (const auto& app : bench::bench_apps()) {
    const auto result = bench::run_bench_job(app, bench::kBaseline);
    const auto& work = result.metrics.work;
    std::printf("%-14s (input %.1f MB, %llu map tasks)\n", app.name.c_str(),
                static_cast<double>(work.input_bytes) / 1e6,
                static_cast<unsigned long long>(result.metrics.map_tasks));
    bench::print_rule();
    for (const auto& [name, share] : bench::op_shares(work)) {
      const int bar = static_cast<int>(share * 60);
      std::printf("  %-13s %6s |", name, bench::pct(share).c_str());
      for (int i = 0; i < bar; ++i) std::putchar('#');
      std::putchar('\n');
    }
    const double user =
        static_cast<double>(work.user_ns()) /
        static_cast<double>(work.total_ns());
    std::printf("  => user code %s, framework abstraction cost %s\n\n",
                bench::pct(user).c_str(), bench::pct(1.0 - user).c_str());
  }
  return 0;
}
