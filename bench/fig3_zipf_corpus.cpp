// Reproduces Figure 3: the word-frequency distribution of the text
// corpus on log-log axes — a straight line of slope ~ -1 (Zipf's law),
// which is the empirical fact frequency-buffering exploits.
//
// The paper plots the 2008 Wikipedia dump (1.45B words, 24.7M distinct);
// we plot our generator's output and fit alpha to confirm the shape.

#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench_util.hpp"

using namespace textmr;

int main() {
  bench::JsonReport report("fig3_zipf_corpus");
  const auto& data = bench::datasets();
  sketch::ExactCounter counter;
  {
    std::ifstream in(data.corpus);
    std::string line, scratch;
    while (std::getline(in, line)) {
      apps::for_each_token(line, scratch, [&](std::string_view token) {
        counter.offer(token);
      });
    }
  }
  auto top = counter.top(counter.distinct());
  std::vector<std::uint64_t> freqs;
  freqs.reserve(top.size());
  for (const auto& [word, count] : top) freqs.push_back(count);
  const auto fit = sketch::fit_zipf(freqs);

  std::printf("Figure 3 — corpus word-frequency distribution (log-log)\n");
  std::printf("corpus: %llu words, %llu distinct\n",
              static_cast<unsigned long long>(counter.observed()),
              static_cast<unsigned long long>(counter.distinct()));
  std::printf("fitted Zipf alpha = %.3f (R^2 = %.4f); paper's corpus: ~1\n\n",
              fit.alpha, fit.r_squared);

  std::printf("%-10s %-14s %-12s %s\n", "rank", "word", "frequency",
              "log10(f) bar");
  bench::print_rule();
  // Log-spaced ranks, like the published figure's axis.
  std::vector<std::size_t> ranks;
  for (double r = 1; r < static_cast<double>(freqs.size()); r *= 2.1544347) {
    ranks.push_back(static_cast<std::size_t>(r));
  }
  for (const std::size_t rank : ranks) {
    const auto& [word, count] = top[rank - 1];
    const int bar = static_cast<int>(std::log10(static_cast<double>(count)) * 8);
    std::printf("%-10zu %-14s %-12llu |", rank, word.c_str(),
                static_cast<unsigned long long>(count));
    for (int i = 0; i < bar; ++i) std::putchar('#');
    std::putchar('\n');
  }
  return 0;
}
