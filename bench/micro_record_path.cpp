// Record-path microbenchmark (DESIGN.md §8): per-record cost of the
// map-side pipeline — emit -> spill ring -> sort -> combine -> spill write
// -> merge — on WordCount over a Zipf(1.0) corpus, the workload the
// paper's Fig. 2 identifies as dominated by serialization/buffering
// abstraction costs.
//
// Emits BENCH_micro_record_path.json with ns/record notes; the CI build
// job fails if the artifact is missing (see .github/workflows/ci.yml).
// Compare the map_side_ns_per_record note across builds to quantify
// record-path changes.

#include <cstdio>
#include <string>

#include "bench_util.hpp"

using namespace textmr;

namespace {

struct MapSideRun {
  std::uint64_t records = 0;
  std::uint64_t framework_ns = 0;  // emit+sort+combine+write+merge
  std::uint64_t wall_ns = 0;       // framework + user map + read
};

/// One full map task on the corpus; the framework component is the record
/// path proper — everything except user map() code, input read and idle
/// time. In kSort mode the task runs map thread + support thread (sort /
/// combine / write land on the support metrics); in kHash mode the
/// sharded hash-combine runs everything on the map thread (flush time
/// lands in its kSort/kSpillWrite buckets) — summing the op buckets over
/// both structs measures the two modes with one formula.
MapSideRun run_map_side(const std::filesystem::path& corpus,
                        const TempDir& scratch, mr::CombineMode mode,
                        int round) {
  auto splits = io::make_splits(corpus.string(), 64u << 20);
  mr::MapTaskConfig config;
  config.split = splits.front();
  config.num_partitions = 4;
  config.mapper = [] { return std::make_unique<apps::WordCountMapper>(); };
  config.combiner = [] { return std::make_unique<apps::WordCountCombiner>(); };
  config.spill_buffer_bytes = 1u << 20;  // many spills + a deep final merge
  config.combine_mode = mode;
  config.scratch_dir =
      scratch.file((mode == mr::CombineMode::kHash ? "hmap-" : "map-") +
                   std::to_string(round));

  const auto result = mr::run_map_task(config);
  const auto framework = [](const mr::TaskMetrics& m) {
    return m.op_ns(mr::Op::kEmit) + m.op_ns(mr::Op::kSort) +
           m.op_ns(mr::Op::kCombine) + m.op_ns(mr::Op::kSpillWrite) +
           m.op_ns(mr::Op::kMerge) + m.op_ns(mr::Op::kMergeCombine);
  };
  MapSideRun run;
  run.records = result.map_thread.map_output_records;
  run.framework_ns =
      framework(result.map_thread) + framework(result.support_thread);
  run.wall_ns = result.wall_ns;
  return run;
}

double ns_per(std::uint64_t ns, std::uint64_t n) {
  return n == 0 ? 0.0 : static_cast<double>(ns) / static_cast<double>(n);
}

}  // namespace

int main() {
  bench::JsonReport report("micro_record_path");

  TempDir dir("textmr-micro-record");
  textgen::CorpusSpec corpus_spec;
  corpus_spec.total_words = 400'000;
  corpus_spec.vocabulary = 20'000;
  corpus_spec.alpha = 1.0;  // the paper's text-typical Zipf exponent
  corpus_spec.seed = 7;
  const auto corpus = dir.file("corpus.txt");
  textgen::generate_corpus(corpus_spec, corpus.string());

  // ---- map-side pipeline: sort-spill baseline vs hash-combine ----------
  // Steady-state: 1 warmup run, min of 3 measured (see run_until_steady).
  const auto cost = [](const MapSideRun& r) { return r.framework_ns; };
  const auto measure = [&](mr::CombineMode mode) {
    int round = 0;
    return bench::run_until_steady(
        [&] { return run_map_side(corpus, dir, mode, round++); }, cost);
  };
  const MapSideRun best = measure(mr::CombineMode::kSort);
  const double fw_ns = ns_per(best.framework_ns, best.records);
  const double wall_ns = ns_per(best.wall_ns, best.records);
  std::printf("map-side record path: %llu records\n",
              static_cast<unsigned long long>(best.records));
  std::printf("  sort  framework %8.1f ns/record "
              "(emit+sort+combine+write+merge)\n",
              fw_ns);
  std::printf("  sort  wall      %8.1f ns/record (incl. user map + read)\n",
              wall_ns);
  report.add_note("map_side_records", static_cast<double>(best.records));
  report.add_note("map_side_ns_per_record", fw_ns);
  report.add_note("map_side_wall_ns_per_record", wall_ns);

  const MapSideRun hash = measure(mr::CombineMode::kHash);
  const double hash_fw_ns = ns_per(hash.framework_ns, hash.records);
  const double hash_wall_ns = ns_per(hash.wall_ns, hash.records);
  std::printf("  hash  framework %8.1f ns/record "
              "(emit+combine-on-insert+flush)\n",
              hash_fw_ns);
  std::printf("  hash  wall      %8.1f ns/record (incl. user map + read)\n",
              hash_wall_ns);
  report.add_note("hash_map_side_ns_per_record", hash_fw_ns);
  report.add_note("hash_map_side_wall_ns_per_record", hash_wall_ns);

  // ---- packed-record primitives in isolation ---------------------------
  {
    constexpr int kN = 1'000'000;
    mr::RecordArena arena;
    std::string key = "benchmark";
    const std::string value = "12345678";
    const std::uint64_t t0 = monotonic_ns();
    for (int i = 0; i < kN; ++i) {
      key[0] = static_cast<char>('a' + (i & 15));
      arena.append(static_cast<std::uint32_t>(i & 3), key, value);
    }
    const std::uint64_t append_ns = monotonic_ns() - t0;

    const std::uint64_t t1 = monotonic_ns();
    std::uint64_t payload = 0;
    for (const mr::RecordRef& ref : arena.records()) {
      payload += ref.key().size() + ref.value().size();
    }
    const std::uint64_t iterate_ns = monotonic_ns() - t1;
    std::printf("arena: append %.1f ns/record, iterate %.1f ns/record "
                "(%llu payload bytes)\n",
                ns_per(append_ns, kN), ns_per(iterate_ns, kN),
                static_cast<unsigned long long>(payload));
    report.add_note("arena_append_ns_per_record", ns_per(append_ns, kN));
    report.add_note("arena_iterate_ns_per_record", ns_per(iterate_ns, kN));
  }

  // ---- one end-to-end job so the artifact carries a full JobResult ------
  const apps::AppBundle app = apps::wordcount_app();
  mr::JobSpec spec;
  spec.name = "micro_record_path";
  spec.inputs = io::make_splits(corpus.string(), 1u << 20);
  spec.mapper = app.mapper;
  spec.reducer = app.reducer;
  spec.combiner = app.combiner;
  spec.num_reducers = 4;
  spec.spill_buffer_bytes = 1u << 20;
  spec.scratch_dir = dir.file("scratch");
  spec.output_dir = dir.file("out");
  mr::LocalEngine engine;
  report.add_job(app.name, "Baseline", engine.run(spec));

  std::printf("wrote %s\n", report.path().string().c_str());
  return 0;
}
