#!/usr/bin/env python3
"""Repo lint: project invariants clang-tidy cannot express (DESIGN.md §7).

Checks (all on by default):
  pragma-once    every header starts with `#pragma once`
  raw-threading  no std::mutex / std::lock_guard / std::unique_lock /
                 std::condition_variable / std::scoped_lock /
                 std::shared_mutex / std::recursive_mutex outside the
                 annotated wrapper (src/common/mutex.*); everything else
                 must use textmr::Mutex so it participates in the
                 thread-safety analysis and the lock-rank checker
  banned-calls   no system() / rand() / srand() / gets() / tmpnam() /
                 strtok() — non-reentrant, non-deterministic, or unsafe
  op-names       every mr::Op enumerator is covered by op_name()
  msg-names      every cluster::MsgType enumerator is covered by
                 msg_type_name()
  event-names    every trace event name literal recorded anywhere in
                 src/ appears in the analyzer's kKnownEventNames table
                 (and vice versa), so textmr-analyze classification
                 cannot silently rot

`--format-check` additionally runs clang-format in dry-run mode over the
C++ tree (requires clang-format on PATH; skipped with a warning
otherwise, or a failure under --strict).

A line can opt out of a content check with a trailing `// lint:allow`.

Exit status: 0 clean, 1 violations, 2 internal/usage error.
"""

from __future__ import annotations

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CXX_DIRS = ("src", "tests", "bench", "examples", "tools")
HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

# The annotated wrapper is the only place raw primitives may live.
RAW_THREADING_ALLOWLIST = {
    "src/common/mutex.hpp",
    "src/common/mutex.cpp",
    "src/common/thread_annotations.hpp",
}

RAW_THREADING_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b"
)

BANNED_CALL_RE = re.compile(r"(?<![\w:.])(system|rand|srand|gets|tmpnam|strtok)\s*\(")

ALLOW_MARKER = "// lint:allow"


def cxx_files(suffixes) -> list[Path]:
    files = []
    for top in CXX_DIRS:
        root = REPO / top
        if not root.is_dir():
            continue
        files.extend(
            p for p in sorted(root.rglob("*")) if p.suffix in suffixes and p.is_file()
        )
    return files


RAW_STRING_OPEN_RE = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


def strip_noncode_text(text: str) -> list[str]:
    """Returns `text` split into lines with comments and string/char
    literal *contents* removed (literals collapse to ""/''), for the
    content checks. A real scanner, not per-line regexes: `/* ... */`
    block comments and raw strings (R"delim(...)delim") may span lines,
    and both used to leak into (or hide from) the checks. Line count
    and numbering are preserved exactly."""
    lines: list[str] = []
    cur: list[str] = []
    i, n = 0, len(text)

    def emit_span_newlines(start: int, end: int) -> None:
        for ch in text[start:end]:
            if ch == "\n":
                lines.append("".join(cur))
                cur.clear()

    while i < n:
        c = text[i]
        if c == "\n":
            lines.append("".join(cur))
            cur.clear()
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
            continue
        if text.startswith("/*", i):
            close = text.find("*/", i + 2)
            end = n if close < 0 else close + 2
            emit_span_newlines(i, end)
            i = end
            continue
        if c == "R" and text.startswith('R"', i):
            m = RAW_STRING_OPEN_RE.match(text, i)
            if m:
                close = text.find(")" + m.group(1) + '"', m.end())
                end = n if close < 0 else close + len(m.group(1)) + 2
                cur.append('""')
                emit_span_newlines(i, end)
                i = end
                continue
        if c in ('"', "'"):
            j = i + 1
            while j < n and text[j] not in (c, "\n"):
                j += 2 if text[j] == "\\" else 1
            cur.append('""' if c == '"' else "''")
            i = j + 1 if j < n and text[j] == c else j
            continue
        cur.append(c)
        i += 1
    lines.append("".join(cur))
    return lines


def strip_noncode(line: str) -> str:
    """Single-line convenience wrapper over strip_noncode_text (a lone
    line cannot carry cross-line comment state)."""
    return strip_noncode_text(line)[0]


def report(problems: list[str], path: Path, lineno: int, message: str) -> None:
    rel = path.relative_to(REPO)
    problems.append(f"{rel}:{lineno}: {message}")


def check_pragma_once(problems: list[str]) -> None:
    for path in cxx_files(HEADER_SUFFIXES):
        with open(path, encoding="utf-8") as f:
            first = f.readline().rstrip("\n")
        if first.strip() != "#pragma once":
            report(problems, path, 1, "header must start with '#pragma once'")


def check_content_rules(problems: list[str]) -> None:
    for path in cxx_files(SOURCE_SUFFIXES):
        rel = str(path.relative_to(REPO)).replace("\\", "/")
        in_wrapper = rel in RAW_THREADING_ALLOWLIST
        text = path.read_text(encoding="utf-8")
        stripped = strip_noncode_text(text)
        for lineno, (raw, code) in enumerate(
                zip(text.splitlines(), stripped), 1):
            if ALLOW_MARKER in raw:
                continue
            if not in_wrapper and rel.startswith("src/"):
                m = RAW_THREADING_RE.search(code)
                if m:
                    report(
                        problems, path, lineno,
                        f"raw {m.group(0)} outside common/mutex.*; use "
                        "textmr::Mutex / MutexLock / CondVar",
                    )
            m = BANNED_CALL_RE.search(code)
            if m:
                report(
                    problems, path, lineno,
                    f"banned call {m.group(1)}() (non-deterministic or unsafe)",
                )


def check_op_names(problems: list[str]) -> None:
    header = REPO / "src/mr/metrics.hpp"
    source = REPO / "src/mr/metrics.cpp"
    enum_match = re.search(
        r"enum class Op[^{]*\{(.*?)\};", header.read_text(encoding="utf-8"), re.S
    )
    if not enum_match:
        report(problems, header, 1, "could not find 'enum class Op'")
        return
    enumerators = [
        name
        for name in re.findall(r"^\s*(k\w+)", enum_match.group(1), re.M)
        if name != "kNumOps"
    ]
    body = source.read_text(encoding="utf-8")
    fn_match = re.search(r"op_name\(Op op\)\s*\{(.*?)\n\}", body, re.S)
    if not fn_match:
        report(problems, source, 1, "could not find op_name(Op) definition")
        return
    covered = set(re.findall(r"case Op::(k\w+)", fn_match.group(1)))
    for name in enumerators:
        if name not in covered:
            report(
                problems, source, 1,
                f"Op::{name} has no case in op_name(); traces/reports would "
                "label it 'unknown'",
            )


def check_msg_type_names(problems: list[str]) -> None:
    header = REPO / "src/cluster/protocol.hpp"
    source = REPO / "src/cluster/protocol.cpp"
    enum_match = re.search(
        r"enum class MsgType[^{]*\{(.*?)\};", header.read_text(encoding="utf-8"),
        re.S,
    )
    if not enum_match:
        report(problems, header, 1, "could not find 'enum class MsgType'")
        return
    enumerators = re.findall(r"^\s*(k\w+)\s*=", enum_match.group(1), re.M)
    body = source.read_text(encoding="utf-8")
    fn_match = re.search(r"msg_type_name\(MsgType type\)\s*\{(.*?)\n\}", body, re.S)
    if not fn_match:
        report(problems, source, 1, "could not find msg_type_name(MsgType)")
        return
    covered = set(re.findall(r"case MsgType::(k\w+)", fn_match.group(1)))
    for name in enumerators:
        if name not in covered:
            report(
                problems, source, 1,
                f"MsgType::{name} has no case in msg_type_name(); protocol "
                "logs would label it 'unknown'",
            )


# Trace-recording call sites: record_instant / record_counter take
# (buffer, "category", "name", ...); SpanTimer declarations take
# (buffer, "category", "name"). The second string literal is the event
# name the analyzer classifies by.
TRACE_CALLSITE_RE = re.compile(
    r'(?:record_instant|record_counter|SpanTimer\s+\w+)\s*'
    r'\(\s*[^,()]+,\s*"([^"]+)"\s*,\s*"([^"]+)"',
    re.S,
)


def check_event_names(problems: list[str]) -> None:
    analyze = REPO / "src/obs/analyze.cpp"
    table_match = re.search(
        r"kKnownEventNames\[\]\s*=\s*\{(.*?)\};",
        analyze.read_text(encoding="utf-8"), re.S,
    )
    if not table_match:
        report(problems, analyze, 1, "could not find kKnownEventNames table")
        return
    known = set(re.findall(r'"([^"]+)"', table_match.group(1)))

    recorded: dict[str, Path] = {}
    for path in cxx_files({".cpp", ".hpp"}):
        rel = str(path.relative_to(REPO)).replace("\\", "/")
        if not rel.startswith("src/"):
            continue
        for m in TRACE_CALLSITE_RE.finditer(path.read_text(encoding="utf-8")):
            recorded.setdefault(m.group(2), path)

    for name, path in sorted(recorded.items()):
        if name not in known:
            report(
                problems, path, 1,
                f"trace event '{name}' missing from kKnownEventNames in "
                "src/obs/analyze.cpp; textmr-analyze would report it unknown",
            )
    for name in sorted(known - recorded.keys()):
        report(
            problems, analyze, 1,
            f"kKnownEventNames entry '{name}' has no recording call site; "
            "drop it or restore the instrumentation",
        )


def find_clang_format() -> str | None:
    for candidate in (
        "clang-format",
        *(f"clang-format-{v}" for v in range(20, 13, -1)),
    ):
        if shutil.which(candidate):
            return candidate
    return None


def run_format_check(strict: bool) -> int:
    binary = find_clang_format()
    if binary is None:
        print("lint: clang-format not found on PATH; format check skipped")
        return 1 if strict else 0
    files = [str(p) for p in cxx_files(SOURCE_SUFFIXES)]
    result = subprocess.run(
        [binary, "--dry-run", "-Werror", *files], cwd=REPO,
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        sys.stdout.write(result.stderr)
        print("lint: clang-format check failed (run clang-format -i to fix)")
        return 1
    print(f"lint: format check ok ({len(files)} files, {binary})")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--format-check", action="store_true",
        help="also verify formatting with clang-format --dry-run",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail (instead of skip) when clang-format is unavailable",
    )
    args = parser.parse_args()

    problems: list[str] = []
    check_pragma_once(problems)
    check_content_rules(problems)
    check_op_names(problems)
    check_msg_type_names(problems)
    check_event_names(problems)

    for problem in problems:
        print(problem)

    status = 0
    if problems:
        print(f"lint: {len(problems)} violation(s)")
        status = 1
    else:
        print("lint: invariants ok")

    if args.format_check and run_format_check(args.strict) != 0:
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
