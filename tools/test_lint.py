#!/usr/bin/env python3
"""Regression tests for tools/lint.py's noncode stripper.

The original strip_noncode worked line by line with regexes, so
`/* ... */` block comments and raw string literals (R"(...)") leaked
into — or hid from — the content checks. These tests pin the scanner
behavior. Run directly (python3 tools/test_lint.py) or via the CI lint
job; unittest exits nonzero on failure.
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lint import strip_noncode, strip_noncode_text  # noqa: E402


class StripNoncodeTextTest(unittest.TestCase):
    def test_line_comment_cut(self):
        self.assertEqual(strip_noncode_text("int x;  // std::mutex\n"),
                         ["int x;  ", ""])

    def test_string_contents_removed(self):
        self.assertEqual(strip_noncode_text('f("std::mutex");'),
                         ['f("");'])

    def test_escaped_quote_in_string(self):
        self.assertEqual(strip_noncode_text(r'f("a\"b system( c");'),
                         ['f("");'])

    def test_char_literal(self):
        self.assertEqual(strip_noncode_text("char c = '\\'';"),
                         ["char c = '';"])

    def test_block_comment_same_line(self):
        # Regression: the old stripper left /* ... */ text in place.
        self.assertEqual(strip_noncode_text("int x; /* std::mutex m; */"),
                         ["int x; "])

    def test_block_comment_code_after_close(self):
        self.assertEqual(strip_noncode_text("/* note */ std::mutex m;"),
                         [" std::mutex m;"])

    def test_block_comment_spanning_lines_preserves_numbering(self):
        text = "int a;\n/* std::mutex\n   system(\n*/\nstd::mutex m;\n"
        self.assertEqual(
            strip_noncode_text(text),
            ["int a;", "", "", "", "std::mutex m;", ""])

    def test_raw_string_hides_contents(self):
        # Regression: the old stripper did not understand R"(...)", so a
        # quote inside flipped its string state for the rest of the line.
        self.assertEqual(strip_noncode_text('f(R"(std::mutex system( ")");'),
                         ['f("");'])

    def test_raw_string_with_delimiter(self):
        self.assertEqual(
            strip_noncode_text('f(R"x(a )" still raw system( )x");'),
            ['f("");'])

    def test_raw_string_spanning_lines_preserves_numbering(self):
        # The "" marker lands on the opening line; code after the
        # closing )" stays on its true line (here the trailing ';').
        text = 'auto s = R"(line one\nstd::mutex\n)";\nsystem(1);\n'
        self.assertEqual(strip_noncode_text(text),
                         ['auto s = ""', "", ";", "system(1);", ""])

    def test_comment_markers_inside_string_ignored(self):
        self.assertEqual(strip_noncode_text('f("// not a comment");'),
                         ['f("");'])
        self.assertEqual(strip_noncode_text('f("/* not open");\nint x;'),
                         ['f("");', "int x;"])

    def test_unterminated_block_comment_swallows_rest(self):
        self.assertEqual(strip_noncode_text("int a;\n/* open\nint b;"),
                         ["int a;", "", ""])

    def test_single_line_wrapper(self):
        self.assertEqual(strip_noncode("x /* y */ z // w"), "x  z ")


class LintContentIntegrationTest(unittest.TestCase):
    """The stripped lines drive the existing content regexes; make sure
    the end-to-end verdicts flip the right way."""

    def _violations(self, text):
        import lint
        problems = []
        stripped = lint.strip_noncode_text(text)
        for raw, code in zip(text.splitlines(), stripped):
            if lint.ALLOW_MARKER in raw:
                continue
            if lint.RAW_THREADING_RE.search(code):
                problems.append("raw-threading")
            if lint.BANNED_CALL_RE.search(code):
                problems.append("banned-call")
        return problems

    def test_mutex_in_block_comment_is_clean(self):
        self.assertEqual(
            self._violations("/* std::mutex is banned here */\nint x;\n"),
            [])

    def test_mutex_in_raw_string_is_clean(self):
        self.assertEqual(
            self._violations('const char* kDoc = R"(use std::mutex)";\n'),
            [])

    def test_real_violation_after_comment_still_fires(self):
        self.assertEqual(
            self._violations("/* docs */\nstd::mutex m_;\n"),
            ["raw-threading"])

    def test_banned_call_still_fires(self):
        self.assertEqual(self._violations("system(cmd);\n"), ["banned-call"])

    def test_lint_allow_still_respected(self):
        self.assertEqual(
            self._violations("std::mutex m_;  // lint:allow\n"), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
