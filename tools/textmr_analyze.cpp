// textmr-analyze: offline critical-path analysis of a textmr job trace.
//
//   textmr-analyze [--json] TRACE_FILE
//
// TRACE_FILE is a Chrome trace JSON written by --trace or a JSONL trace
// written by --trace-jsonl, from either the local or the cluster engine.
// The default output is the human-readable breakdown (per-phase wall
// time, per-worker idle time, straggler attribution, critical path);
// --json emits the same numbers as one JSON document for scripting.

#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "obs/analyze.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--json] TRACE_FILE\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  try {
    const textmr::obs::TraceData trace = textmr::obs::load_trace_file(path);
    const textmr::obs::TraceAnalysis analysis =
        textmr::obs::analyze_trace(trace);
    const std::string out = json ? textmr::obs::format_analysis_json(analysis)
                                 : textmr::obs::format_analysis(analysis);
    std::fwrite(out.data(), 1, out.size(), stdout);
    if (!json && !out.empty() && out.back() != '\n') std::putchar('\n');
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "textmr-analyze: %s: %s\n", path, e.what());
    return 1;
  }
}
