"""C++ lexer for textmr-check (tools/check).

Produces a flat token stream plus a per-line comment map. Unlike the
regex line-stripping in tools/lint.py this is a real scanner: block
comments spanning lines, raw string literals (R"delim(...)delim"),
escapes in string/char literals and preprocessor continuations are all
handled, so downstream checks never mistake comment or literal text for
code. Comment *text* is preserved per line because the suppression
(`check:allow(rule)`) and corpus-expectation (`check:expect(rule)`)
markers live in comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

# Longest-match punctuation. Three-char first, then two-char; anything
# else is a single character.
_PUNCT3 = ("<=>", "->*", "<<=", ">>=", "...")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

_RAW_STRING_RE = re.compile(r'R"([^()\\ \t\n]{0,16})\(')


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based


class LexError(Exception):
    pass


def lex(text: str):
    """Returns (tokens, comments) where comments maps line -> comment text
    (all comment text that starts on or spans that line, concatenated)."""
    tokens: list[Token] = []
    comments: dict[int, str] = {}
    i, n, line = 0, len(text), 1

    def add_comment(start_line: int, end_line: int, body: str) -> None:
        for ln in range(start_line, end_line + 1):
            comments[ln] = comments.get(ln, "") + " " + body

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: skip to end of line, honoring
        # backslash continuations (comments inside are still comments).
        if c == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                if text[i] == "\n":
                    if i > 0 and text[i - 1] == "\\":
                        line += 1
                        i += 1
                        continue
                    break
                # Line comment ends the directive logically.
                if text.startswith("//", i):
                    break
                if text.startswith("/*", i):
                    end = text.find("*/", i + 2)
                    if end < 0:
                        raise LexError(f"unterminated block comment at line {line}")
                    line += text.count("\n", i, end)
                    i = end + 2
                    continue
                i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            end = n if end < 0 else end
            add_comment(line, line, text[i:end])
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated block comment at line {line}")
            body = text[i : end + 2]
            start_line = line
            line += body.count("\n")
            add_comment(start_line, line, body)
            i = end + 2
            continue
        # Raw string literal.
        if c == "R" and text.startswith('R"', i):
            m = _RAW_STRING_RE.match(text, i)
            if m:
                delim = m.group(1)
                close = text.find(")" + delim + '"', m.end())
                if close < 0:
                    raise LexError(f"unterminated raw string at line {line}")
                end = close + len(delim) + 2
                tokens.append(Token(STRING, '""', line))
                line += text.count("\n", i, end)
                i = end
                continue
        if c == '"':
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == '"':
                    break
                if text[j] == "\n":
                    raise LexError(f"unterminated string at line {line}")
                j += 1
            if j >= n:
                raise LexError(f"unterminated string at line {line}")
            tokens.append(Token(STRING, '""', line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == "'":
                    break
                if text[j] == "\n":
                    break  # stray quote (digit separator misuse); bail
                j += 1
            if j < n and text[j] == "'":
                tokens.append(Token(CHAR, "''", line))
                i = j + 1
                continue
            i += 1  # stray single quote; skip
            continue
        if c in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token(IDENT, text[i:j], line))
            i = j
            continue
        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            j = i
            # Good-enough C++ number scan incl. hex, exponents and digit
            # separators; stops before ident-breaking punctuation.
            while j < n and (
                text[j] in _IDENT_CONT
                or text[j] in ".'"
                or (
                    text[j] in "+-"
                    and j > i
                    and text[j - 1] in "eEpP"
                )
            ):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], line))
            i = j
            continue
        for p in _PUNCT3:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += 3
                break
        else:
            for p in _PUNCT2:
                if text.startswith(p, i):
                    tokens.append(Token(PUNCT, p, line))
                    i += 2
                    break
            else:
                tokens.append(Token(PUNCT, c, line))
                i += 1
    return tokens, comments


def match_forward(tokens: list[Token], i: int, open_text: str,
                  close_text: str) -> int:
    """Index of the token closing the group opened at `i` (tokens[i] must
    be `open_text`). Raises LexError when unbalanced."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_text:
            depth += 1
        elif t == close_text:
            depth -= 1
            if depth == 0:
                return j
    raise LexError(f"unbalanced '{open_text}' at line {tokens[i].line}")
