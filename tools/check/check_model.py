"""Shared IR for textmr-check (tools/check).

Both frontends — the libclang one (precise types, driven by
compile_commands.json) and the pure-Python token frontend (always
available) — lower source files into these models; every rule in
check_rules.py runs against the IR only, so the checks themselves are
exercised by the self-test corpus regardless of which frontend built
the models.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from check_lexer import Token

ALLOW_RE = re.compile(r"check:allow\(([a-z0-9_-]+)\)")
EXPECT_RE = re.compile(r"check:expect\(([a-z0-9_-]+)\)")

# Thread-safety annotation macros whose presence marks a member as
# covered by the analysis (tools/lint.py bans raw std::mutex, so the
# TEXTMR_* spellings are the only ones in tree; the bare names appear in
# the corpus stubs).
GUARD_MACROS = {
    "TEXTMR_GUARDED_BY", "TEXTMR_PT_GUARDED_BY",
    "GUARDED_BY", "PT_GUARDED_BY",
}

# Types that are non-owning views into someone else's storage.
VIEW_TYPE_MARKERS = ("string_view", "RecordRef", "RecordView", "SegmentEntry")

# Mutex-like capability types (a member of one of these makes the class
# subject to the lock-coverage rule; the members themselves are exempt).
# Lowercase spellings cover the sanctioned raw-std uses (the textmr::Mutex
# implementation itself; tools/lint.py bans them everywhere else).
SYNC_TYPE_MARKERS = ("Mutex", "CondVar", "MutexLock", "once_flag",
                     "mutex", "condition_variable")


@dataclass
class Param:
    name: str
    type_text: str  # normalized, space-separated type tokens

    @property
    def is_view(self) -> bool:
        return (
            any(m in self.type_text for m in VIEW_TYPE_MARKERS)
            and "*" not in self.type_text
            and "vector" not in self.type_text
        )

    @property
    def is_mutable_ref(self) -> bool:
        return "&" in self.type_text and "const" not in self.type_text


@dataclass
class FunctionModel:
    name: str
    line: int
    params: list[Param]
    body: list[Token]        # tokens between (and excluding) the braces
    return_type: str = ""    # best effort; "" when unknown
    class_name: str = ""     # enclosing class when known


@dataclass
class MemberModel:
    name: str
    line: int
    decl_text: str
    is_static: bool = False
    is_const: bool = False
    is_reference: bool = False
    is_atomic: bool = False
    is_guarded: bool = False
    is_sync: bool = False
    is_function: bool = False
    is_type: bool = False


@dataclass
class ClassModel:
    name: str
    line: int
    members: list[MemberModel] = field(default_factory=list)

    @property
    def has_mutex(self) -> bool:
        return any(
            m.is_sync
            and ("Mutex" in m.decl_text or "mutex" in m.decl_text)
            and "MutexLock" not in m.decl_text
            for m in self.members
        )


@dataclass
class EnumModel:
    name: str            # unqualified (Op, MsgType, ActionKind, ...)
    line: int
    enumerators: list[str] = field(default_factory=list)


@dataclass
class CaseLabel:
    enum_name: str   # unqualified enum the label names, "" if unscoped
    enumerator: str
    line: int


@dataclass
class SwitchModel:
    line: int
    subject_text: str
    cases: list[CaseLabel] = field(default_factory=list)
    default_line: int = 0  # 0 = no default label
    function_name: str = ""


@dataclass
class FileModel:
    path: str  # repo-relative, forward slashes
    tokens: list[Token] = field(default_factory=list)
    comments: dict[int, str] = field(default_factory=dict)
    functions: list[FunctionModel] = field(default_factory=list)
    classes: list[ClassModel] = field(default_factory=list)
    enums: list[EnumModel] = field(default_factory=list)
    switches: list[SwitchModel] = field(default_factory=list)

    def allows_at(self, line: int) -> set[str]:
        """Rules suppressed at `line` via check:allow on the same line or
        anywhere in the contiguous comment block directly above it."""
        rules: set[str] = set(ALLOW_RE.findall(self.comments.get(line, "")))
        ln = line - 1
        while ln in self.comments:
            rules.update(ALLOW_RE.findall(self.comments[ln]))
            ln -= 1
        return rules

    def expects(self) -> list[tuple[str, int]]:
        """Corpus expectation markers: (rule, line) pairs."""
        out = []
        for ln, text in sorted(self.comments.items()):
            for rule in EXPECT_RE.findall(text):
                out.append((rule, ln))
        return out


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
