"""Token-heuristic frontend for textmr-check.

Builds the check_model IR from the token stream alone — no compiler, no
compile database. It is deliberately conservative: where it cannot
classify a construct it produces *less* model (a skipped member, an
unattributed switch) rather than a wrong one, so rules under-report
instead of hallucinating. The libclang frontend (check_frontend_clang)
produces the same IR with precise types when the bindings are
installed; this one keeps the self-test corpus and the src/ gate
running on any machine with a Python interpreter.
"""

from __future__ import annotations

from check_lexer import IDENT, LexError, Token, lex, match_forward
from check_model import (
    ClassModel, EnumModel, FileModel, FunctionModel, GUARD_MACROS,
    CaseLabel, MemberModel, Param, SwitchModel, SYNC_TYPE_MARKERS,
)

_KEYWORD_CALLS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "static_assert", "decltype", "noexcept", "throw", "new", "delete",
    "alignas", "case", "defined", "assert", "co_await", "co_return",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
}

_FN_TAIL_OK = {"const", "noexcept", "override", "final", "mutable", "&", "&&",
               "->", "::", "<", ">", "*", ","}

_MEMBER_SKIP_LEAD = {
    "using", "typedef", "friend", "template", "static_assert", "public",
    "private", "protected", "operator", "enum",
}


def _text(tokens: list[Token]) -> str:
    return " ".join(t.text for t in tokens)


def parse_file(path: str, text: str) -> FileModel:
    tokens, comments = lex(text)
    model = FileModel(path=path, tokens=tokens, comments=comments)
    _scan_enums(tokens, model)
    _scan_classes(tokens, model)
    _scan_functions(tokens, model)
    _scan_switches(tokens, model)
    return model


# ---- enums -----------------------------------------------------------------

def _scan_enums(tokens: list[Token], model: FileModel) -> None:
    i = 0
    while i < len(tokens):
        if tokens[i].text == "enum":
            j = i + 1
            if j < len(tokens) and tokens[j].text in ("class", "struct"):
                j += 1
            if j < len(tokens) and tokens[j].kind == IDENT:
                name_tok = tokens[j]
                j += 1
                if j < len(tokens) and tokens[j].text == ":":  # underlying type
                    while j < len(tokens) and tokens[j].text not in ("{", ";"):
                        j += 1
                if j < len(tokens) and tokens[j].text == "{":
                    close = match_forward(tokens, j, "{", "}")
                    enumerators = []
                    expect_name = True
                    depth = 0
                    for t in tokens[j + 1 : close]:
                        if t.text in ("(", "{", "["):
                            depth += 1
                        elif t.text in (")", "}", "]"):
                            depth -= 1
                        elif depth == 0 and t.text == ",":
                            expect_name = True
                        elif depth == 0 and expect_name and t.kind == IDENT:
                            enumerators.append(t.text)
                            expect_name = False
                    model.enums.append(
                        EnumModel(name=name_tok.text, line=name_tok.line,
                                  enumerators=enumerators))
                    i = close
        i += 1


# ---- classes / members -------------------------------------------------------

def _scan_classes(tokens: list[Token], model: FileModel) -> None:
    i = 0
    while i < len(tokens):
        if tokens[i].text in ("class", "struct") and (
            i == 0 or tokens[i - 1].text != "enum"
        ):
            j = i + 1
            # Skip attributes and export macros before the name.
            while j < len(tokens) and tokens[j].text == "[":
                j = match_forward(tokens, j, "[", "]") + 1
            if j < len(tokens) and tokens[j].kind == IDENT:
                name_tok = tokens[j]
                j += 1
                if j < len(tokens) and tokens[j].text == "final":
                    j += 1
                # Base clause: skip to the opening brace.
                if j < len(tokens) and tokens[j].text == ":":
                    while j < len(tokens) and tokens[j].text not in ("{", ";"):
                        j += 1
                if j < len(tokens) and tokens[j].text == "{":
                    close = match_forward(tokens, j, "{", "}")
                    cls = ClassModel(name=name_tok.text, line=name_tok.line)
                    _scan_members(tokens, j + 1, close, cls, model)
                    model.classes.append(cls)
                    # Recurse into the body for nested classes via the
                    # outer loop (it walks every token anyway).
        i += 1


def _scan_members(tokens: list[Token], start: int, end: int,
                  cls: ClassModel, model: FileModel) -> None:
    """Splits the class body [start, end) into declaration statements at
    depth 0 and classifies each as data member / function / nested type."""
    stmt: list[Token] = []
    nested_group = False  # statement contained a brace group ({} body)
    i = start
    while i < end:
        t = tokens[i]
        if t.text in ("{",):
            close = match_forward(tokens, i, "{", "}")
            nested_group = True
            stmt.append(Token("punct", "{}", t.line))
            i = close + 1
            if _is_braced_member(stmt):
                continue  # `struct X {...} member_;` — wait for the ';'
            # Method body or brace initializer; an optional ';' follows.
            if i < end and tokens[i].text == ";":
                i += 1
            _classify_statement(stmt, cls, nested_group)
            stmt, nested_group = [], False
            continue
        if t.text in ("(",):
            close = match_forward(tokens, i, "(", ")")
            stmt.extend(tokens[i : close + 1])
            i = close + 1
            continue
        if t.text == ";":
            _classify_statement(stmt, cls, nested_group)
            stmt, nested_group = [], False
            i += 1
            continue
        if t.text == ":" and stmt and stmt[-1].text in (
            "public", "private", "protected"
        ):
            stmt, nested_group = [], False  # access specifier
            i += 1
            continue
        stmt.append(t)
        i += 1
    if stmt:
        _classify_statement(stmt, cls, nested_group)


def _is_braced_member(stmt: list[Token]) -> bool:
    """After consuming a brace group: does the statement look like it will
    continue with a declarator (member of anonymous/nested type or a
    brace initializer), i.e. `T x_{...}` (already has a name before the
    brace) should NOT wait for more tokens, while `struct X {}` might be
    followed by a declarator. We keep accumulating only for leading
    class/struct/union/enum definitions."""
    return bool(stmt) and stmt[0].text in ("struct", "class", "union", "enum")


def _classify_statement(stmt: list[Token], cls: ClassModel,
                        nested_group: bool) -> None:
    if not stmt:
        return
    lead = stmt[0].text
    if lead in _MEMBER_SKIP_LEAD:
        return
    if lead in ("struct", "class", "union"):
        # Nested type definition; a trailing declarator would make it a
        # member, but the repo has none — record as type and move on.
        cls.members.append(MemberModel(
            name=stmt[1].text if len(stmt) > 1 and stmt[1].kind == IDENT else "",
            line=stmt[0].line, decl_text=_text(stmt), is_type=True))
        return
    text = _text(stmt)
    if "operator" in (t.text for t in stmt):
        return
    # Find the initializer boundary: first top-level '=' or '{}' group.
    decl = stmt
    for k, t in enumerate(stmt):
        if t.text == "=" or t.text == "{}":
            decl = stmt[:k]
            break
    # Function (declaration or definition): declarator name directly
    # followed by '(' where the name is not an annotation macro.
    is_function = False
    fn_name = ""
    for k in range(len(decl) - 1):
        if (
            decl[k].kind == IDENT
            and decl[k + 1].text == "("
            and decl[k].text not in GUARD_MACROS
            and not decl[k].text.startswith("TEXTMR_")
            and decl[k].text not in _KEYWORD_CALLS
        ):
            is_function = True
            fn_name = decl[k].text
            break
    if is_function:
        cls.members.append(MemberModel(
            name=fn_name, line=stmt[0].line, decl_text=text,
            is_function=True))
        return
    # Data member: name = last identifier before annotation macro / '[' /
    # end of decl.
    name_tok = None
    for t in decl:
        if t.text in GUARD_MACROS or t.text == "[":
            break
        if t.kind == IDENT and t.text not in (
            "const", "static", "mutable", "volatile", "constexpr", "inline",
            "signed", "unsigned", "long", "short",
        ):
            name_tok = t
    if name_tok is None:
        return
    decl_types = text
    is_guarded = any(t.text in GUARD_MACROS for t in stmt)
    is_static = any(t.text in ("static", "constexpr") for t in decl)
    has_ptr = any(t.text == "*" for t in decl)
    prev = ""
    is_const = False
    for t in decl:
        if t is name_tok:
            is_const = prev == "const" or (
                "const" in (x.text for x in decl) and not has_ptr
            )
            break
        prev = t.text
    cls.members.append(MemberModel(
        name=name_tok.text,
        line=name_tok.line,
        decl_text=decl_types,
        is_static=is_static,
        is_const=is_const,
        is_reference=any(t.text in ("&", "&&") for t in decl),
        is_atomic="atomic" in decl_types,
        is_guarded=is_guarded,
        # A pointer to / container of a sync type is ordinary data, not a
        # capability (e.g. the rank registry's vector<const Mutex*>).
        is_sync=(
            any(m in decl_types for m in SYNC_TYPE_MARKERS)
            and not has_ptr
            and not any(c in decl_types for c in ("vector", "deque", "map"))
        ),
    ))


# ---- functions ---------------------------------------------------------------

def _scan_functions(tokens: list[Token], model: FileModel) -> None:
    n = len(tokens)
    i = 0
    while i < n - 1:
        if not (tokens[i].kind == IDENT and tokens[i + 1].text == "("):
            i += 1
            continue
        name = tokens[i].text
        if name in _KEYWORD_CALLS or name.startswith("TEXTMR_"):
            i += 1
            continue
        try:
            close = match_forward(tokens, i + 1, "(", ")")
        except LexError:
            break
        body_open = _find_body_open(tokens, close + 1)
        if body_open < 0:
            i += 1
            continue
        try:
            body_close = match_forward(tokens, body_open, "{", "}")
        except LexError:
            break
        params = _parse_params(tokens[i + 2 : close])
        ret = _return_type(tokens, i)
        model.functions.append(FunctionModel(
            name=name, line=tokens[i].line, params=params,
            body=tokens[body_open + 1 : body_close], return_type=ret,
            class_name=""))
        # Continue scanning *inside* the body too (lambdas, local fns are
        # rare; nested captures would double-report, so skip the body).
        i = body_close + 1
    _attach_methods(model)


def _find_body_open(tokens: list[Token], i: int) -> int:
    """From just after the parameter ')': returns the index of the body
    '{', or -1 if this is not a function definition."""
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "{":
            return i
        if t in (";", "}", ")", "=", "#"):
            return -1
        if t == ":":
            # Constructor init list: `: name(...) , name{...} , ... {`.
            # Parse it structurally — each initializer is an identifier
            # path followed by one (...) or {...} group — so the body
            # brace is unambiguous. Anything else → not a definition.
            i += 1
            while i < n:
                # Identifier path (possibly qualified / templated).
                saw_name = False
                while i < n and (tokens[i].kind == IDENT or
                                 tokens[i].text == "::"):
                    saw_name = tokens[i].kind == IDENT or saw_name
                    i += 1
                if i < n and tokens[i].text == "<":
                    depth = 0
                    while i < n:
                        if tokens[i].text == "<":
                            depth += 1
                        elif tokens[i].text == ">":
                            depth -= 1
                            if depth == 0:
                                i += 1
                                break
                        i += 1
                if not saw_name:
                    return -1
                if i >= n or tokens[i].text not in ("(", "{"):
                    return -1
                opener = tokens[i].text
                i = match_forward(tokens, i, opener,
                                  ")" if opener == "(" else "}") + 1
                if i < n and tokens[i].text == ",":
                    i += 1
                    continue
                if i < n and tokens[i].text == "{":
                    return i
                return -1
            return -1
        if t == "(":
            i = match_forward(tokens, i, "(", ")")
        elif t == "[":
            i = match_forward(tokens, i, "[", "]")
        elif tokens[i].kind == IDENT or t in _FN_TAIL_OK:
            pass
        else:
            return -1
        i += 1
    return -1


def _parse_params(tokens: list[Token]) -> list[Param]:
    if not tokens:
        return []
    groups: list[list[Token]] = [[]]
    depth = 0
    for t in tokens:
        if t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.text in (")", ">", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            groups.append([])
        else:
            groups[-1].append(t)
    params = []
    for g in groups:
        # Drop default argument.
        for k, t in enumerate(g):
            if t.text == "=":
                g = g[:k]
                break
        if not g:
            continue
        name = ""
        if g[-1].kind == IDENT and g[-1].text not in ("const", "void"):
            name = g[-1].text
            g = g[:-1]
        params.append(Param(name=name, type_text=_text(g)))
    return params


def _return_type(tokens: list[Token], name_idx: int) -> str:
    """Best-effort return type: tokens between the previous statement
    boundary and the function name."""
    stop = {";", "}", "{", ":", "(", ")", ","}
    j = name_idx - 1
    parts: list[Token] = []
    while j >= 0 and tokens[j].text not in stop and len(parts) < 12:
        if tokens[j].text == ">":
            # Walk back over a template argument list.
            depth = 0
            while j >= 0:
                if tokens[j].text == ">":
                    depth += 1
                elif tokens[j].text == "<":
                    depth -= 1
                    if depth == 0:
                        break
                parts.insert(0, tokens[j])
                j -= 1
            if j >= 0:
                parts.insert(0, tokens[j])
                j -= 1
            continue
        parts.insert(0, tokens[j])
        j -= 1
    return _text(parts)


def _attach_methods(model: FileModel) -> None:
    """Tags functions whose name matches Class::name definitions."""
    for fn in model.functions:
        pass  # qualified names arrive as separate :: tokens; the checks
        # that care about class context use ClassModel instead.


# ---- switches ----------------------------------------------------------------

def _scan_switches(tokens: list[Token], model: FileModel) -> None:
    n = len(tokens)
    fn_ranges = []
    for fn in model.functions:
        if fn.body:
            fn_ranges.append((fn.body[0].line, fn.body[-1].line, fn.name))
    i = 0
    while i < n:
        if tokens[i].text != "switch":
            i += 1
            continue
        if i + 1 >= n or tokens[i + 1].text != "(":
            i += 1
            continue
        close = match_forward(tokens, i + 1, "(", ")")
        subject = _text(tokens[i + 2 : close])
        if close + 1 >= n or tokens[close + 1].text != "{":
            i = close
            continue
        body_close = match_forward(tokens, close + 1, "{", "}")
        sw = SwitchModel(line=tokens[i].line, subject_text=subject)
        for s, e, fname in fn_ranges:
            if s <= tokens[i].line <= e:
                sw.function_name = fname
        depth = 0
        j = close + 2
        while j < body_close:
            t = tokens[j]
            if t.text in ("{", "(", "["):
                depth += 1
            elif t.text in ("}", ")", "]"):
                depth -= 1
            elif depth == 0 and t.text == "case":
                label: list[Token] = []
                j += 1
                while j < body_close and tokens[j].text != ":":
                    label.append(tokens[j])
                    j += 1
                sw.cases.append(_parse_case_label(label, t.line))
            elif depth == 0 and t.text == "default":
                sw.default_line = t.line
            j += 1
        model.switches.append(sw)
        i = body_close + 1


def _parse_case_label(label: list[Token], line: int) -> CaseLabel:
    # `Op :: kX`, `failpoint :: ActionKind :: kX`, or an unscoped value.
    idents = [t.text for t in label if t.kind == IDENT]
    if len(idents) >= 2:
        return CaseLabel(enum_name=idents[-2], enumerator=idents[-1], line=line)
    return CaseLabel(enum_name="",
                     enumerator=idents[-1] if idents else _text(label),
                     line=line)
