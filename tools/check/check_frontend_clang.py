"""libclang frontend for textmr-check.

Strategy: the token frontend (check_frontend_lite) always builds the
structural IR — functions, members, enums, switches are token-level
concepts and the shared rules run on tokens. What the AST adds is
*types*: a parameter declared `Slice s` is invisible to the token
frontend but is a `std::string_view` typedef to the AST. So this
frontend parses each TU through clang.cindex (flags taken from
compile_commands.json) and overlays canonical type spellings onto the
lite models — parameters, return types, field qualifiers and enum
enumerator lists are refined in place; everything else is untouched.
That keeps the clang-specific surface small and the rule logic
identical across frontends.

Availability: `available()` is False when the clang Python bindings or
a loadable libclang are missing; the driver then warns and falls back
(or skips, per --frontend). Any parse-level exception degrades to the
unrefined lite model for that file rather than failing the run.
"""

from __future__ import annotations

import glob
import json
import os

from check_model import FileModel, Param

_STATE: dict[str, object] = {"checked": False, "index": None, "error": ""}

_LIBCLANG_GLOBS = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/llvm-*/lib/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-[0-9]*.so*",
    "/usr/local/lib/libclang.so*",
)


def _init() -> None:
    if _STATE["checked"]:
        return
    _STATE["checked"] = True
    try:
        from clang import cindex  # noqa: PLC0415
    except ImportError as e:
        _STATE["error"] = f"clang Python bindings not importable ({e})"
        return
    try:
        _STATE["index"] = cindex.Index.create()
        return
    except Exception:  # library not on the default search path
        pass
    candidates: list[str] = []
    for pattern in _LIBCLANG_GLOBS:
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for lib in candidates:
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            _STATE["index"] = cindex.Index.create()
            return
        except Exception:
            continue
    _STATE["error"] = "no loadable libclang shared library found"


def available() -> bool:
    _init()
    return _STATE["index"] is not None


def unavailable_reason() -> str:
    _init()
    return str(_STATE["error"]) or "unknown"


def _compile_args(compile_db: str | None, path: str,
                  repo_root: str) -> list[str]:
    default = ["-x", "c++", "-std=c++20", f"-I{os.path.join(repo_root, 'src')}"]
    if not compile_db or not os.path.exists(compile_db):
        return default
    try:
        with open(compile_db, encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError):
        return default
    base = os.path.basename(path)
    want = os.path.abspath(path)
    for entry in entries:
        entry_file = entry.get("file", "")
        entry_abs = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry_file))
        if entry_abs != want and os.path.abspath(entry_file) != want:
            continue
        args = entry.get("arguments")
        if not args:
            args = entry.get("command", "").split()
        # Drop the compiler, -c/-o pairs and the input file itself.
        cleaned, skip = [], False
        for a in args[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c",):
                continue
            if a in ("-o",):
                skip = True
                continue
            if os.path.basename(a) == base:
                continue
            cleaned.append(a)
        return cleaned
    return default


def refine(model: FileModel, abs_path: str, compile_db: str | None,
           repo_root: str) -> bool:
    """Overlays AST type information onto a lite-parsed FileModel.
    Returns True when the AST was applied, False on any degradation."""
    _init()
    index = _STATE["index"]
    if index is None:
        return False
    from clang import cindex  # noqa: PLC0415

    try:
        tu = index.parse(abs_path,
                         args=_compile_args(compile_db, abs_path, repo_root))
    except Exception:
        return False

    K = cindex.CursorKind
    fn_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR}
    fns_by_line = {fn.line: fn for fn in model.functions}
    enums_by_name = {en.name: en for en in model.enums}
    members_by_line = {}
    for cls in model.classes:
        for m in cls.members:
            members_by_line[m.line] = m

    def visit(cursor) -> None:
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or \
                    os.path.abspath(loc.file.name) != os.path.abspath(abs_path):
                # Recurse only through same-file containers; headers
                # pulled in by the TU are modeled by their own run.
                continue
            kind = child.kind
            if kind in fn_kinds and child.is_definition():
                fn = fns_by_line.get(loc.line)
                if fn is not None:
                    params = []
                    for arg in child.get_arguments():
                        params.append(Param(
                            name=arg.spelling or "",
                            type_text=arg.type.get_canonical().spelling))
                    if params:
                        fn.params = params
                    fn.return_type = child.result_type.get_canonical().spelling
            elif kind == K.ENUM_DECL and child.is_definition():
                en = enums_by_name.get(child.spelling)
                if en is not None:
                    names = [c.spelling for c in child.get_children()
                             if c.kind == K.ENUM_CONSTANT_DECL]
                    if names:
                        en.enumerators = names
            elif kind == K.FIELD_DECL:
                m = members_by_line.get(loc.line)
                if m is not None and m.name == child.spelling:
                    ty = child.type.get_canonical()
                    m.is_const = ty.is_const_qualified()
                    m.is_atomic = "atomic" in ty.spelling
            visit(child)

    try:
        visit(tu.cursor)
    except Exception:
        return False
    return True
