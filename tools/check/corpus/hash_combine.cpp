// textmr-check self-test corpus: the hash-combine shard table's two
// failure modes (DESIGN.md §15). Case 1: a RecordRef reference held
// across RecordArena growth — append() returns a reference into the
// arena's ref table, which the *next* append() may reallocate
// (view-escape). Case 2: an unguarded load_* read over the shard's
// offset-addressed vector<char> value heap (decoder-bounds). The real
// src/mr/hash_combine.cpp copies RecordRefs by value and TEXTMR_CHECKs
// every heap offset; these snippets are the shapes it must avoid.
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

struct RecordRef {
  std::uint64_t key_prefix;
};

struct RecordArena {
  const RecordRef& append(std::uint32_t partition, std::string_view key,
                          std::string_view value);
};

void sink(std::uint64_t);

// Case 1: the reference from the first append() dangles once the arena
// grows again; the use after the second append() reads freed memory.
void bad_ref_across_growth(RecordArena& arena) {
  const RecordRef& first = arena.append(0, "alpha", "1");
  arena.append(0, "beta", "1");
  sink(first.key_prefix);  // check:expect(view-escape)
}

// Control: copying the RecordRef by value (the shard table's Entry
// stores it this way) survives any number of later appends.
void good_copy_across_growth(RecordArena& arena) {
  const RecordRef first = arena.append(0, "alpha", "1");
  arena.append(0, "beta", "1");
  sink(first.key_prefix);
}

// Control: a reference used before the arena grows again is fine.
void good_ref_before_growth(RecordArena& arena) {
  const RecordRef& first = arena.append(0, "alpha", "1");
  sink(first.key_prefix);
  arena.append(0, "beta", "1");
}

// Case 2: a value-heap block reader with no size guard — a corrupted
// chain offset reads past the heap.
std::uint32_t load_chain_next(const std::vector<char>& heap,
                              std::size_t offset) {
  std::uint32_t next;
  std::memcpy(&next, heap.data() + offset,  // check:expect(decoder-bounds)
              sizeof(next));
  return next;
}

// Control: the guarded form (what src/mr/hash_combine.cpp does).
void require(bool ok);
std::uint32_t load_chain_next_guarded(const std::vector<char>& heap,
                                      std::size_t offset) {
  require(offset + sizeof(std::uint32_t) <= heap.size());
  std::uint32_t next;
  std::memcpy(&next, heap.data() + offset, sizeof(next));
  return next;
}
