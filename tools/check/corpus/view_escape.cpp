// textmr-check self-test corpus: view-escape.
// Every line tagged check:expect(<rule>) MUST produce exactly that
// finding; untagged lines must stay clean. The snippets are
// deliberately minimal — they are parsed, never compiled.
#include <string>
#include <string_view>
#include <vector>

// A view parameter stored into a view-typed member outlives the call.
class BadMemberStore {
 public:
  void set(std::string_view v) {
    view_ = v;  // check:expect(view-escape)
  }

 private:
  std::string_view view_;
};

// A view parameter stored into a member container of views.
class BadContainerStore {
 public:
  void add(std::string_view v) {
    views_.push_back(v);  // check:expect(view-escape)
  }

 private:
  std::vector<std::string_view> views_;
};

// A view parameter escaping through a view out-parameter.
void bad_out_param(std::string_view p, std::string_view& out) {
  out = p;  // check:expect(view-escape)
}

// A view bound to a std::string temporary dies at the semicolon.
void bad_temporary() {
  std::string_view sv = std::string("temp");  // check:expect(view-escape)
  (void)sv;
}

// Returning a view of a function-local owning string.
std::string_view bad_return_local() {
  std::string s = "local";
  return s;  // check:expect(view-escape)
}

// Returning a view of a temporary built in the return statement.
std::string_view bad_return_temp() {
  return std::string("temp");  // check:expect(view-escape)
}

// Control: copying into owned storage is fine.
class GoodCopyStore {
 public:
  void set(std::string_view v) {
    owned_.assign(v.data(), v.size());
    names_.push_back(std::string(v));
  }

 private:
  std::string owned_;
  std::vector<std::string> names_;
};
