// textmr-check self-test corpus: decoder-bounds.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

// Indexed read with no size guard anywhere before it.
std::uint32_t decode_u16(std::string_view payload) {
  return static_cast<std::uint32_t>(
      (payload[0] << 8) | payload[1]);  // check:expect(decoder-bounds)
}

// memcpy out of a raw byte span with no guard.
std::uint64_t parse_header(const char* data, std::size_t len, char* out) {
  std::memcpy(out, data, 8);  // check:expect(decoder-bounds)
  return len;
}

// Control: guarded reads are fine (the rule is flow-insensitive by
// design — any size/remaining guard before the read counts).
std::uint32_t decode_guarded(std::string_view payload) {
  if (payload.size() < 2) {
    return 0;
  }
  return static_cast<std::uint32_t>((payload[0] << 8) | payload[1]);
}

// Control: helper-based guards (ensure/require/check_size) count too.
void require(bool ok);
std::uint32_t parse_checked(std::string_view payload) {
  require(payload.length() >= 4);
  std::uint32_t v = 0;
  std::memcpy(&v, payload.data(), 4);
  return v;
}

// Control: functions not named decode_*/parse_* are out of scope.
std::uint32_t peek_first(std::string_view payload) {
  return static_cast<std::uint32_t>(payload[0]);
}
