// textmr-check self-test corpus: lock-coverage.
// Bare GUARDED_BY / Mutex spellings stand in for the TEXTMR_* macros —
// the model accepts both, and the corpus must not depend on repo
// headers.
#include <atomic>
#include <string>

struct Mutex {};
struct CondVar {};
#define GUARDED_BY(x)

// Every mutable member of a mutex-owning class needs an annotation.
class BadUnannotated {
 private:
  Mutex mu_;
  int counter_ = 0;  // check:expect(lock-coverage)
  std::string name_;  // check:expect(lock-coverage)
};

// Control: annotated, atomic, const, static and sync members are all
// exempt, so a fully-covered class is clean.
class GoodCovered {
 private:
  Mutex mu_;
  CondVar cv_;
  int counter_ GUARDED_BY(mu_) = 0;
  std::string name_ GUARDED_BY(mu_);
  std::atomic<int> hits_{0};
  const int limit_ = 8;
  static constexpr int kMax = 4;
};

// Control: a class with no mutex is outside the rule entirely.
class GoodNoMutex {
 private:
  int counter_ = 0;
  std::string name_;
};
