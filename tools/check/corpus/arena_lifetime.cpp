// textmr-check self-test corpus: arena-lifetime.
// Minimal stand-ins for RecordArena / SpillBuffer: the rule keys on the
// records()/stable_views()/index_frames/take()/release()/clear()/reset()
// protocol, not on the concrete types.
#include <cstdint>
#include <vector>

struct RecordRef {
  const char* data;
  std::uint32_t size;
};

struct Arena {
  std::vector<RecordRef> records() const { return {}; }
  void clear() {}
  void reset() {}
};

struct Spill {
  std::uint64_t sequence = 0;
  std::vector<RecordRef> records;
};

struct Ring {
  Spill take() { return {}; }
  void release(const Spill&, std::uint64_t) {}
};

std::vector<RecordRef> index_frames(const Arena&, int) { return {}; }
void consume(const RecordRef&) {}
void consume_seq(std::uint64_t) {}

// Refs from records() dangle once the arena is cleared.
void bad_use_after_clear(Arena& arena) {
  auto recs = arena.records();
  arena.clear();
  consume(recs[0]);  // check:expect(arena-lifetime)
}

// index_frames results dangle once the arena is reset.
void bad_index_after_reset(Arena& arena) {
  auto idx = index_frames(arena, 0);
  arena.reset();
  consume(idx[0]);  // check:expect(arena-lifetime)
}

// A spill's records point into the ring, reusable after release().
void bad_records_after_release(Ring& ring) {
  auto spill = ring.take();
  ring.release(spill, 0);
  consume(spill.records[0]);  // check:expect(arena-lifetime)
}

// Control: POD fields of the by-value Spill stay valid after release
// (map_task reads spill->sequence this way), and uses *before* the
// kill are fine.
void good_pod_after_release(Ring& ring) {
  auto spill = ring.take();
  consume(spill.records[0]);
  ring.release(spill, 0);
  consume_seq(spill.sequence);
}

// Control: re-deriving after the reset starts a fresh lifetime.
void good_rederive(Arena& arena) {
  auto recs = arena.records();
  consume(recs[0]);
  arena.clear();
  recs = arena.records();
  consume(recs[0]);
}
