// textmr-check self-test corpus: suppression.
// Every finding here carries a check:allow marker, so the file must
// report zero active findings and at least one suppressed finding —
// proving the baseline mechanism actually works (the self-test asserts
// both counts for this file by name).
#include <string_view>

struct Mutex {};

class DeliberatelyUnguarded {
 private:
  Mutex mu_;
  // check:allow(lock-coverage): written only before threads start
  int config_value_ = 0;
  int flags_ = 0;  // check:allow(lock-coverage): same-line marker form
};

std::uint32_t decode_trusted(std::string_view payload) {
  // check:allow(decoder-bounds): caller guarantees >= 2 bytes
  return static_cast<std::uint32_t>((payload[0] << 8) | payload[1]);
}
