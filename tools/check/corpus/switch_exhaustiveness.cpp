// textmr-check self-test corpus: switch-exhaustiveness.
// A local three-enumerator MsgType overrides the in-tree snapshot for
// this run, so the expectations stay stable as the real protocol grows.
enum class MsgType { kPing, kPong, kClose };
enum class Op { kMapRead, kEmit, kNumOps };

void handle_ping();
void handle_pong();
void handle_close();
void handle_other();

// Missing kClose: the dispatch site must decide what it means.
void bad_missing_case(MsgType t) {
  switch (t) {  // check:expect(switch-exhaustiveness)
    case MsgType::kPing:
      handle_ping();
      break;
    case MsgType::kPong:
      handle_pong();
      break;
  }
}

// 'default:' swallows future enumerators even when all current ones
// are listed.
void bad_default(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      handle_ping();
      break;
    case MsgType::kPong:
      handle_pong();
      break;
    case MsgType::kClose:
      handle_close();
      break;
    default:  // check:expect(switch-exhaustiveness)
      handle_other();
      break;
  }
}

// Control: exhaustive, no default. kNumOps is a sentinel the rule
// does not require.
void good_exhaustive(MsgType t, Op op) {
  switch (t) {
    case MsgType::kPing:
      handle_ping();
      break;
    case MsgType::kPong:
      handle_pong();
      break;
    case MsgType::kClose:
      handle_close();
      break;
  }
  switch (op) {
    case Op::kMapRead:
      handle_ping();
      break;
    case Op::kEmit:
      handle_pong();
      break;
  }
}

// Control: switches over unregistered enums are never checked.
enum class Color { kRed, kGreen };
void good_unregistered(Color c) {
  switch (c) {
    case Color::kRed:
      break;
    default:
      break;
  }
}
