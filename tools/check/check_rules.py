"""The textmr-check rule catalog (DESIGN.md §13).

Every rule consumes the check_model IR and yields Findings; rules never
touch raw source, so both frontends feed them identically. Each rule is
registered in RULES with a stable kebab-case name — the name users
write in `// check:allow(<rule>)` suppressions and the corpus writes in
`// check:expect(<rule>)` markers.
"""

from __future__ import annotations

import re

from check_lexer import IDENT, Token
from check_model import FileModel, Finding, FunctionModel

# Enums whose dispatch switches must be exhaustive, by unqualified name,
# with sentinel enumerators that no switch is expected to handle.
EXHAUSTIVE_ENUMS: dict[str, set[str]] = {
    "Op": {"kNumOps"},
    "MsgType": set(),
    "ActionKind": set(),
}

_DECODER_FN_RE = re.compile(r"^(decode|parse|load)_")

# Token-sequence helpers -------------------------------------------------------


def _seq(tokens: list[Token], i: int, *texts: str) -> bool:
    if i + len(texts) > len(tokens):
        return False
    return all(tokens[i + k].text == t for k, t in enumerate(texts))


def _find_stmt_end(tokens: list[Token], i: int) -> int:
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == ";" and depth <= 0:
            return i
        i += 1
    return len(tokens)


def _stmt_text(tokens: list[Token], i: int, j: int) -> str:
    return " ".join(t.text for t in tokens[i:j])


# ---- rule: view-escape -------------------------------------------------------

_STORE_METHODS = {"push_back", "emplace_back", "insert", "assign", "emplace"}
_TEMP_STRING_MARKERS = (
    "std :: string (", "std :: to_string (", ". str ( )",
)


def check_view_escape(files: list[FileModel]) -> list[Finding]:
    # Member name -> decl texts, across every analyzed file: methods are
    # often defined in a .cpp while the member lives in the header, and
    # the trailing-underscore convention makes name collisions harmless.
    member_decls: dict[str, list[str]] = {}
    for fm in files:
        for cls in fm.classes:
            for m in cls.members:
                if m.name and not m.is_function and not m.is_type:
                    member_decls.setdefault(m.name, []).append(m.decl_text)
    out: list[Finding] = []
    for fm in files:
        for fn in fm.functions:
            out.extend(_view_escape_fn(fm, fn, member_decls))
    return out


def _member_is_view(member_decls: dict[str, list[str]], name: str) -> bool:
    """True when `name` resolves to a member whose declared type is a
    view (or container of views). Unresolvable names return False —
    assigning a view into a std::string member *copies*, so flagging
    every store would drown the rule in false positives; only stores
    into storage that actually aliases the view's bytes matter."""
    from check_model import VIEW_TYPE_MARKERS  # noqa: PLC0415
    return any(
        any(v in decl for v in VIEW_TYPE_MARKERS)
        for decl in member_decls.get(name, ())
    )


def _view_escape_fn(fm: FileModel, fn: FunctionModel,
                    member_decls: dict[str, list[str]]) -> list[Finding]:
    out: list[Finding] = []
    view_params = {p.name for p in fn.params if p.is_view and p.name}
    out_params = {p.name for p in fn.params
                  if p.is_mutable_ref and p.is_view and p.name}
    body = fn.body
    n = len(body)
    owning_strings: set[str] = set()
    for i, t in enumerate(body):
        # Track owning std::string locals (for return-dangle).
        if (
            t.text == "string" and i + 1 < n and body[i + 1].kind == IDENT
            and (i + 2 >= n or body[i + 2].text in ("=", ";", "{", "("))
        ):
            owning_strings.add(body[i + 1].text)
        # p stored into a member: `member_ = p ;` / `this->x = p ;`.
        if (
            t.text == "=" and i + 1 < n and body[i + 1].text in view_params
            and i + 2 < n and body[i + 2].text in (";", ",")
            and i >= 1 and body[i - 1].kind == IDENT
        ):
            target = body[i - 1].text
            is_member = (target.endswith("_") or (
                i >= 3 and _seq(body, i - 3, "this", "->")
            )) and _member_is_view(member_decls, target)
            if is_member:
                out.append(Finding(
                    "view-escape", fm.path, t.line,
                    f"view parameter '{body[i + 1].text}' stored into member "
                    f"'{target}', which outlives the call; copy into owned "
                    "storage or tie the lifetimes explicitly"))
            elif target in out_params:
                out.append(Finding(
                    "view-escape", fm.path, t.line,
                    f"view parameter '{body[i + 1].text}' escapes through "
                    f"out-parameter '{target}'; the caller's view may "
                    "outlive the bytes it points at"))
        # p stored into a member container: `c_.push_back(p)`.
        if (
            t.kind == IDENT and t.text in _STORE_METHODS
            and i >= 2 and body[i - 1].text == "."
            and body[i - 2].kind == IDENT
            and i + 2 < n and body[i + 1].text == "("
        ):
            target = body[i - 2].text
            if (target.endswith("_") and
                    _member_is_view(member_decls, target)) or \
                    target in out_params:
                arg = body[i + 2].text
                if arg in view_params:
                    out.append(Finding(
                        "view-escape", fm.path, t.line,
                        f"view parameter '{arg}' stored into container "
                        f"'{target}' via {t.text}(); the container outlives "
                        "the view's backing bytes"))
        # view local bound to a std::string temporary.
        if t.text in ("string_view", "RecordView") and i + 1 < n and \
                body[i + 1].kind == IDENT:
            j = _find_stmt_end(body, i)
            stmt = _stmt_text(body, i, j)
            if any(m in stmt for m in _TEMP_STRING_MARKERS):
                out.append(Finding(
                    "view-escape", fm.path, t.line,
                    f"view '{body[i + 1].text}' bound to a temporary "
                    "std::string that dies at the end of the statement"))
    out.extend(_refs_across_arena_growth(fm, fn))
    # return-dangle: function returns a view built from owned locals.
    if "string_view" in fn.return_type:
        for i, t in enumerate(body):
            if t.text != "return":
                continue
            j = _find_stmt_end(body, i)
            stmt = _stmt_text(body, i + 1, j)
            if any(m in stmt for m in _TEMP_STRING_MARKERS):
                out.append(Finding(
                    "view-escape", fm.path, t.line,
                    "returning a string_view into a std::string temporary "
                    "created in the return statement"))
            elif j == i + 2 and body[i + 1].text in owning_strings:
                out.append(Finding(
                    "view-escape", fm.path, t.line,
                    f"returning a string_view into local std::string "
                    f"'{body[i + 1].text}', destroyed when the function "
                    "returns"))
    return out


def _refs_across_arena_growth(fm: FileModel,
                              fn: FunctionModel) -> list[Finding]:
    """RecordRef references held across arena growth (DESIGN.md §15).

    `RecordArena::append()` returns a `const RecordRef&` into the
    arena's ref table — a vector that a *later* append() may
    reallocate. Binding that result by reference and touching it after
    another append() on the same arena dangles; the hash-combine shard
    table copies RecordRefs BY VALUE into its entries for exactly this
    reason. By-value copies (`RecordRef r = arena.append(...)`) are
    clean; only `&` bindings are tracked."""
    body = fn.body
    texts = [t.text for t in body]
    n = len(body)
    out: list[Finding] = []
    i = 0
    while i < n:
        t = body[i]
        if not (t.text == "=" and i >= 2 and body[i - 1].kind == IDENT
                and body[i - 2].text == "&"):
            i += 1
            continue
        # rhs must be `<owner tokens> . append (` — the owner expression
        # is everything up to the call paren (no-paren exprs only).
        paren = i + 1
        while paren < n and body[paren].text not in ("(", ";"):
            paren += 1
        if (paren >= n or body[paren].text != "(" or paren < i + 3
                or texts[paren - 1] != "append" or texts[paren - 2] != "."
                or body[i + 1].kind != IDENT):
            i += 1
            continue
        name = body[i - 1].text
        owner = texts[i + 1:paren - 2]
        growth = owner + [".", "append", "("]
        # The next textual append() on the same arena invalidates the
        # reference; any later use of it is a dangle.
        grown_at = -1
        for k in range(paren + 1, n - len(growth) + 1):
            if texts[k:k + len(growth)] == growth:
                grown_at = k
                break
        if grown_at < 0:
            i += 1
            continue
        for k in range(grown_at + len(growth), n):
            u = body[k]
            if (u.kind == IDENT and u.text == name
                    and not (k + 1 < n and texts[k + 1] == "=")
                    and not (k >= 1 and texts[k - 1] in (".", "->"))):
                out.append(Finding(
                    "view-escape", fm.path, u.line,
                    f"reference '{name}' bound to "
                    f"{' '.join(owner)}.append() is used after the arena "
                    f"grew again on line {body[grown_at].line}; append() "
                    "may reallocate the ref table — copy the RecordRef "
                    "by value instead"))
                break
        i += 1
    return out


# ---- rule: arena-lifetime ----------------------------------------------------

_SOURCE_METHODS = {"records", "stable_views"}
_KILL_METHODS = {"clear", "reset"}


def check_arena_lifetime(files: list[FileModel]) -> list[Finding]:
    out: list[Finding] = []
    for fm in files:
        for fn in fm.functions:
            out.extend(_arena_lifetime_fn(fm, fn))
    return out


def _arena_lifetime_fn(fm: FileModel, fn: FunctionModel) -> list[Finding]:
    body = fn.body
    n = len(body)
    derived: dict[str, str] = {}   # view var -> owner var
    spills: dict[str, str] = {}    # spill var -> buffer var
    killed: dict[str, int] = {}    # var -> kill line
    out: list[Finding] = []
    reported: set[str] = set()
    i = 0
    while i < n:
        t = body[i]
        # var = owner.records() / owner.stable_views(...)
        if (
            t.text == "=" and i >= 1 and body[i - 1].kind == IDENT
            and i + 3 < n and body[i + 1].kind == IDENT
            and body[i + 2].text == "." and body[i + 3].kind == IDENT
            and body[i + 3].text in _SOURCE_METHODS
        ):
            derived[body[i - 1].text] = body[i + 1].text
            killed.pop(body[i - 1].text, None)
        # var = index_frames(owner, ...)
        elif (
            t.text == "=" and i >= 1 and body[i - 1].kind == IDENT
            and i + 2 < n and body[i + 1].text == "index_frames"
            and body[i + 2].text == "("
            and i + 3 < n and body[i + 3].kind == IDENT
        ):
            derived[body[i - 1].text] = body[i + 3].text
            killed.pop(body[i - 1].text, None)
        # var = buffer.take()
        elif (
            t.text == "=" and i >= 1 and body[i - 1].kind == IDENT
            and i + 3 < n and body[i + 1].kind == IDENT
            and body[i + 2].text == "." and body[i + 3].text == "take"
        ):
            spills[body[i - 1].text] = body[i + 1].text
            killed.pop(body[i - 1].text, None)
        # owner.clear() / owner.reset(): kills everything derived from it.
        elif (
            t.text == "." and i >= 1 and body[i - 1].kind == IDENT
            and i + 1 < n and body[i + 1].text in _KILL_METHODS
            and i + 2 < n and body[i + 2].text == "("
        ):
            owner = body[i - 1].text
            for var, src in derived.items():
                if src == owner and var not in killed:
                    killed[var] = t.line
        # buffer.release(spill, ...) / buffer.release(*spill, ...).
        elif (
            t.text == "." and i >= 1 and body[i - 1].kind == IDENT
            and i + 1 < n and body[i + 1].text == "release"
            and i + 2 < n and body[i + 2].text == "("
        ):
            k = i + 3
            if k < n and body[k].text == "*":
                k += 1
            if k < n and body[k].kind == IDENT and body[k].text in spills:
                killed.setdefault(body[k].text, t.line)
                i = k  # don't treat the release argument as a use
        elif (
            t.kind == IDENT and t.text in killed
            # Re-assignment is a rebirth, not a use; the '=' branch
            # above resets the variable's lifetime next iteration.
            and not (i + 1 < n and body[i + 1].text == "=")
        ):
            # A released Spill was taken *by value* (take() returns
            # std::optional<Spill>), so its POD fields stay valid after
            # release(); only `records` holds RecordRefs into the now
            # re-usable ring. Vars derived from an arena are RecordRef
            # vectors / cursors, so any use at all dangles.
            if t.text in spills and not (
                i + 2 < n and body[i + 1].text in (".", "->")
                and body[i + 2].text == "records"
            ):
                i += 1
                continue
            key = f"{fn.name}:{t.text}"
            if key not in reported:
                reported.add(key)
                what = ("backing ring region was released"
                        if t.text in spills else
                        f"storage owned by '{derived.get(t.text, '?')}' "
                        "was reset")
                out.append(Finding(
                    "arena-lifetime", fm.path, t.line,
                    f"'{t.text}' used after its {what} on line "
                    f"{killed[t.text]}; the refs/views now dangle"))
        i += 1
    return out


# ---- rule: lock-coverage -----------------------------------------------------

def check_lock_coverage(files: list[FileModel]) -> list[Finding]:
    out: list[Finding] = []
    for fm in files:
        for cls in fm.classes:
            if not cls.has_mutex:
                continue
            for m in cls.members:
                if (m.is_function or m.is_type or m.is_static or m.is_const
                        or m.is_guarded or m.is_atomic or m.is_sync):
                    continue
                if not m.name:
                    continue
                out.append(Finding(
                    "lock-coverage", fm.path, m.line,
                    f"mutable member '{cls.name}::{m.name}' in a "
                    "mutex-owning class has no TEXTMR_GUARDED_BY / "
                    "TEXTMR_PT_GUARDED_BY annotation (unannotated members "
                    "are silently unchecked by -Wthread-safety); annotate "
                    "it or add a check:allow(lock-coverage) comment "
                    "explaining the synchronization"))
    return out


# ---- rule: switch-exhaustiveness ---------------------------------------------

def check_switch_exhaustiveness(files: list[FileModel]) -> list[Finding]:
    # Enum definitions can live in a different file than the switch.
    enums: dict[str, list[str]] = {}
    for fm in files:
        for en in fm.enums:
            if en.name in EXHAUSTIVE_ENUMS:
                enums[en.name] = en.enumerators
    # Fallback so a partial file set (corpus runs) still checks switches
    # against the snapshot below; the live definition wins when parsed.
    for name, snapshot in _ENUM_SNAPSHOT.items():
        enums.setdefault(name, snapshot)
    out: list[Finding] = []
    for fm in files:
        for sw in fm.switches:
            hits = [c for c in sw.cases if c.enum_name in enums]
            if not hits:
                continue
            enum_name = hits[0].enum_name
            sentinel = EXHAUSTIVE_ENUMS.get(enum_name, set())
            expected = [e for e in enums[enum_name] if e not in sentinel]
            covered = {c.enumerator for c in sw.cases
                       if c.enum_name == enum_name}
            missing = [e for e in expected if e not in covered]
            if missing:
                out.append(Finding(
                    "switch-exhaustiveness", fm.path, sw.line,
                    f"switch over {enum_name} does not handle "
                    f"{', '.join(enum_name + '::' + m for m in missing)}; "
                    "every dispatch site must decide explicitly what a new "
                    "enumerator means"))
            if sw.default_line:
                out.append(Finding(
                    "switch-exhaustiveness", fm.path, sw.default_line,
                    f"'default:' in a switch over {enum_name} swallows "
                    "future enumerators — list the remaining cases "
                    "explicitly so adding one forces a decision here"))
    return out


# Snapshot of the registered enums as of this PR, used only when the
# analyzed file set does not include the defining header (e.g. corpus
# self-tests). tools/lint.py already gates the live tables elsewhere.
_ENUM_SNAPSHOT: dict[str, list[str]] = {
    "Op": [
        "kMapRead", "kMapUser", "kEmit", "kProfile", "kFreqTable", "kSort",
        "kCombine", "kSpillWrite", "kMerge", "kMergeCombine", "kShuffle",
        "kReduceMerge", "kReduceUser", "kOutputWrite", "kMapIdle",
        "kSupportIdle", "kNumOps",
    ],
    "MsgType": [
        "kRunMap", "kRunReduce", "kShutdown", "kClockProbe", "kSkewPlan",
        "kWelcome", "kHeartbeat", "kMapDone", "kReduceDone", "kTaskFailed",
        "kClockSync", "kTraceChunk", "kHello", "kShuffleFetch",
        "kShuffleData", "kShuffleError",
    ],
    "ActionKind": ["kThrow", "kShortWrite", "kCorrupt", "kDelay"],
}


# ---- rule: decoder-bounds ----------------------------------------------------

_GUARD_METHODS = {"size", "length", "empty", "remaining"}
_GUARD_CALLS = {"ensure", "expect_done", "require", "check_size",
                "bounds_check", "TEXTMR_CHECK"}


def check_decoder_bounds(files: list[FileModel]) -> list[Finding]:
    out: list[Finding] = []
    for fm in files:
        for fn in fm.functions:
            if not _DECODER_FN_RE.match(fn.name):
                continue
            out.extend(_decoder_bounds_fn(fm, fn))
    return out


def _decoder_bounds_fn(fm: FileModel, fn: FunctionModel) -> list[Finding]:
    span_params = {
        p.name for p in fn.params
        if p.name and ("string_view" in p.type_text
                       or "span" in p.type_text
                       or ("char" in p.type_text and "*" in p.type_text)
                       # Offset-addressed byte heaps (the hash-combine
                       # shard table's value chains, DESIGN.md §15):
                       # load_* readers over a vector<char> heap must
                       # guard the offset like any other decoder.
                       or ("vector" in p.type_text
                           and "char" in p.type_text))
    }
    if not span_params:
        return []
    body = fn.body
    n = len(body)
    guard_seen = False
    out: list[Finding] = []
    for i, t in enumerate(body):
        if (
            t.text == "." and i + 2 < n and body[i + 1].kind == IDENT
            and body[i + 1].text in _GUARD_METHODS
            and body[i + 2].text == "("
        ):
            guard_seen = True
            continue
        if t.kind == IDENT and t.text in _GUARD_CALLS and \
                i + 1 < n and body[i + 1].text == "(":
            guard_seen = True
            continue
        if guard_seen:
            continue
        # Unguarded indexed read: `p[...]`.
        if (
            t.kind == IDENT and t.text in span_params
            and i + 1 < n and body[i + 1].text == "["
        ):
            out.append(Finding(
                "decoder-bounds", fm.path, t.line,
                f"indexed read '{t.text}[...]' in {fn.name}() before any "
                "size guard; a truncated input reads out of bounds"))
        # Unguarded memcpy touching a span param.
        if t.text == "memcpy" and i + 1 < n and body[i + 1].text == "(":
            j = _find_stmt_end(body, i)
            args = {x.text for x in body[i + 1 : j] if x.kind == IDENT}
            if args & span_params:
                out.append(Finding(
                    "decoder-bounds", fm.path, t.line,
                    f"memcpy from '{', '.join(sorted(args & span_params))}'"
                    f" in {fn.name}() before any size guard; a short "
                    "buffer overreads"))
    return out


# ---- registry ----------------------------------------------------------------

RULES = {
    "view-escape": (
        check_view_escape,
        "a view (string_view / RecordRef / RecordView) bound to "
        "short-lived bytes must not be stored somewhere that outlives "
        "them (member, member container, out-param, return), and a "
        "RecordRef reference must not be held across arena growth",
    ),
    "arena-lifetime": (
        check_arena_lifetime,
        "no use of RecordRefs / index_frames results / stable_views "
        "cursors after the owning arena is cleared or the spill is "
        "released back to its ring",
    ),
    "lock-coverage": (
        check_lock_coverage,
        "every mutable member of a textmr::Mutex-owning class is "
        "GUARDED_BY-annotated, atomic, const, or carries an explicit "
        "exemption comment",
    ),
    "switch-exhaustiveness": (
        check_switch_exhaustiveness,
        "switches over mr::Op, cluster::MsgType and failpoint::ActionKind "
        "handle every enumerator and never hide behind 'default:'",
    ),
    "decoder-bounds": (
        check_decoder_bounds,
        "decode_*/parse_*/load_* functions over string_view / byte "
        "spans / vector<char> heaps bounds-check before indexed or "
        "memcpy reads",
    ),
}


def run_rules(files: list[FileModel],
              rules: list[str] | None = None) -> list[Finding]:
    selected = rules or sorted(RULES)
    findings: list[Finding] = []
    for name in selected:
        fn, _ = RULES[name]
        findings.extend(fn(files))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def split_suppressed(files: list[FileModel], findings: list[Finding]):
    """Partitions findings into (active, suppressed) using the
    check:allow(rule) comment markers."""
    by_path = {fm.path: fm for fm in files}
    active, suppressed = [], []
    for f in findings:
        fm = by_path.get(f.path)
        if fm is not None and f.rule in fm.allows_at(f.line):
            suppressed.append(f)
        else:
            active.append(f)
    return active, suppressed
