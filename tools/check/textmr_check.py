#!/usr/bin/env python3
"""textmr-check: AST-grounded static analyzer for project invariants the
regex lint (tools/lint.py) and stock clang-tidy cannot express
(DESIGN.md §13).

Rules (run `--list-checks` for the live catalog):
  view-escape            views must not outlive the bytes they borrow
  arena-lifetime         no RecordRef/cursor use after arena reset /
                         spill release
  lock-coverage          every mutable member of a Mutex-owning class is
                         GUARDED_BY-annotated or explicitly exempted
  switch-exhaustiveness  dispatch switches over mr::Op, cluster::MsgType
                         and failpoint::ActionKind cover every
                         enumerator, with no 'default:' escape hatch
  decoder-bounds         decode_*/parse_* functions bounds-check before
                         indexed reads

Frontends: `clang` parses each TU through libclang using the flags in
--compile-db and overlays canonical types on the token IR; `lite` is
the token frontend alone (no toolchain needed). `auto` (default) uses
clang when the bindings are importable, otherwise lite. With
`--frontend=clang` and no usable libclang the tool *skips* — warning +
exit 0 — mirroring tools/lint.py's clang-format behavior, so tier-1
builds never depend on the clang toolchain.

Suppression: a finding is suppressed by `// check:allow(<rule>)` (with
an optional `: reason`) on the same or the preceding line. Suppressed
findings still appear in --json output with "suppressed": true.

Exit status: 0 clean/skipped, 1 unsuppressed findings, 2 internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_frontend_clang  # noqa: E402
import check_frontend_lite  # noqa: E402
from check_lexer import LexError  # noqa: E402
from check_model import FileModel  # noqa: E402
from check_rules import RULES, run_rules, split_suppressed  # noqa: E402

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

SOURCE_SUFFIXES = (".cpp", ".cc", ".hpp", ".h")


def collect_sources(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO, p)
        if os.path.isfile(ap):
            files.append(ap)
            continue
        for root, _dirs, names in os.walk(ap):
            for name in sorted(names):
                if name.endswith(SOURCE_SUFFIXES):
                    files.append(os.path.join(root, name))
    return sorted(set(files))


def build_models(files: list[str], frontend: str,
                 compile_db: str | None) -> tuple[list[FileModel], str]:
    """Returns (models, frontend_used)."""
    use_clang = False
    if frontend in ("clang", "auto"):
        use_clang = check_frontend_clang.available()
    models: list[FileModel] = []
    refined = 0
    for path in files:
        rel = os.path.relpath(path, REPO).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            text = f.read()
        try:
            model = check_frontend_lite.parse_file(rel, text)
        except LexError as e:
            print(f"textmr-check: {rel}: {e}", file=sys.stderr)
            raise
        if use_clang and check_frontend_clang.refine(
                model, path, compile_db, REPO):
            refined += 1
        models.append(model)
    used = f"clang ({refined}/{len(files)} TUs refined)" if use_clang \
        else "lite"
    return models, used


def run_self_test(frontend: str, compile_db: str | None) -> int:
    """Proves every rule still fires: each corpus line tagged
    `check:expect(<rule>)` must produce exactly that active finding, no
    untagged finding may appear, every rule must be exercised, and
    suppression.cpp must yield only suppressed findings. A rule that
    silently stops firing therefore fails CI."""
    corpus = os.path.join(REPO, "tools", "check", "corpus")
    files = collect_sources([corpus])
    if not files:
        print(f"textmr-check: self-test corpus missing at {corpus}",
              file=sys.stderr)
        return 2
    try:
        models, frontend_used = build_models(files, frontend, compile_db)
    except LexError:
        return 2
    active, suppressed = split_suppressed(models, run_rules(models))

    failures: list[str] = []
    expected: dict[tuple[str, str, int], bool] = {}
    for fm in models:
        for rule, ln in fm.expects():
            if rule not in RULES:
                failures.append(
                    f"{fm.path}:{ln}: check:expect names unknown rule "
                    f"'{rule}'")
                continue
            expected[(fm.path, rule, ln)] = False
    for f in active:
        key = (f.path, f.rule, f.line)
        if key in expected:
            expected[key] = True
        else:
            failures.append(f"unexpected finding: {f.render()}")
    for (path, rule, ln), hit in sorted(expected.items()):
        if not hit:
            failures.append(f"{path}:{ln}: expected [{rule}] did not fire")
    for f in suppressed:
        if not f.path.endswith("suppression.cpp"):
            failures.append(f"stray suppression outside suppression.cpp: "
                            f"{f.render()}")
    if not any(f.path.endswith("suppression.cpp") for f in suppressed):
        failures.append("suppression.cpp yielded no suppressed findings; "
                        "the check:allow mechanism is broken")
    unexercised = set(RULES) - {rule for (_, rule, _) in expected}
    if unexercised:
        failures.append("corpus exercises no snippet for rule(s): "
                        + ", ".join(sorted(unexercised)))

    for msg in failures:
        print(f"textmr-check self-test: FAIL: {msg}")
    verdict = "FAIL" if failures else "ok"
    print(f"textmr-check self-test: {verdict} — {len(expected)} expected "
          f"findings over {len(files)} corpus files, "
          f"{len(suppressed)} suppressed [frontend: {frontend_used}]")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="textmr-check",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--frontend", choices=("auto", "clang", "lite"),
                        default="auto")
    parser.add_argument("--compile-db", default=os.path.join(
        REPO, "build", "compile_commands.json"),
        help="compile_commands.json for the clang frontend")
    parser.add_argument("--paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--rules", default="",
                        help="comma-separated rule subset")
    parser.add_argument("--json", dest="json_out", default="",
                        help="write a findings JSON artifact here")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the known-bad corpus under "
                             "tools/check/corpus and verify every rule "
                             "fires where expected")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings")
    args = parser.parse_args()

    if args.list_checks:
        for name in sorted(RULES):
            _, desc = RULES[name]
            print(f"{name}\n    {desc}")
        return 0

    rules = [r for r in args.rules.split(",") if r] or None
    if rules:
        unknown = [r for r in rules if r not in RULES]
        if unknown:
            print(f"textmr-check: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    if args.self_test:
        return run_self_test(args.frontend, args.compile_db)

    if args.frontend == "clang" and not check_frontend_clang.available():
        print("textmr-check: libclang unavailable "
              f"({check_frontend_clang.unavailable_reason()}); "
              "skipping AST analysis (install the clang Python bindings "
              "to enable, or use --frontend=lite)")
        return 0

    files = collect_sources(args.paths)
    if not files:
        print("textmr-check: no source files under "
              f"{', '.join(args.paths)}", file=sys.stderr)
        return 2

    try:
        models, frontend_used = build_models(files, args.frontend,
                                             args.compile_db)
    except LexError:
        return 2

    findings = run_rules(models, rules)
    active, suppressed = split_suppressed(models, findings)

    for f in active:
        print(f.render())
    if args.show_suppressed:
        for f in suppressed:
            print(f"{f.render()}  [suppressed]")

    if args.json_out:
        payload = {
            "frontend": frontend_used,
            "files_analyzed": len(files),
            "rules": sorted(rules or RULES),
            "findings": [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message, "suppressed": False}
                for f in active
            ] + [
                {"rule": f.rule, "path": f.path, "line": f.line,
                 "message": f.message, "suppressed": True}
                for f in suppressed
            ],
            "active": len(active),
            "suppressed": len(suppressed),
        }
        with open(args.json_out, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2)
            out.write("\n")

    if active:
        print(f"textmr-check: {len(active)} finding(s) "
              f"({len(suppressed)} suppressed) over {len(files)} files "
              f"[frontend: {frontend_used}]")
        return 1
    print(f"textmr-check: clean ({len(suppressed)} suppressed) over "
          f"{len(files)} files [frontend: {frontend_used}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
