#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mr/types.hpp"

namespace textmr::apps {

/// Parsed UserVisits record (subset of fields the queries touch).
struct UserVisit {
  std::string_view source_ip;
  std::string_view dest_url;
  std::uint64_t ad_revenue_cents = 0;
};

/// Parsed Rankings record.
struct Ranking {
  std::string_view page_url;
  std::uint64_t page_rank = 0;
};

/// Parses a UserVisits line (9 '|'-separated fields). Returns nullopt on
/// malformed input (the applications skip such lines, like Hadoop's
/// counters-and-continue convention).
std::optional<UserVisit> parse_user_visit(std::string_view line);

/// Parses a Rankings line (3 '|'-separated fields).
std::optional<Ranking> parse_ranking(std::string_view line);

/// AccessLogSum (paper §II-B):
///   SELECT destURL, sum(adRevenue) FROM UserVisits GROUP BY destURL
/// Intermediate value: varint revenue in cents. Reducer prints dollars.
/// Counter names the access-log applications report (see mr::Counters).
namespace log_counters {
inline constexpr const char* kVisits = "access_log.visits";
inline constexpr const char* kRankings = "access_log.rankings";
inline constexpr const char* kMalformed = "access_log.malformed_lines";
inline constexpr const char* kJoinedRows = "access_log.joined_rows";
inline constexpr const char* kOrphanVisits = "access_log.orphan_visits";
}  // namespace log_counters

class AccessLogSumMapper final : public mr::Mapper {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    counters_ = info.counters;
  }
  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override;

 private:
  mr::Counters* counters_ = nullptr;
  std::string value_;
};

class AccessLogSumCombiner final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  std::string value_;
};

class AccessLogSumReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;
};

/// AccessLogJoin (paper §II-B):
///   SELECT sourceIP, adRevenue, pageRank
///   FROM UserVisits UV JOIN Rankings R ON UV.destURL = R.pageURL
///
/// A reduce-side repartition join: both inputs are mapped under the URL
/// key with a type tag ('R' for rankings, 'V' for visits); the reducer
/// buffers visits until the ranking arrives and then emits
/// (sourceIP, "adRevenue|pageRank") rows. The mapper distinguishes the
/// two inputs by their field count, so one job can read both files.
/// No combiner exists for this job (nothing is associative).
class AccessLogJoinMapper final : public mr::Mapper {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    counters_ = info.counters;
  }
  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override;

 private:
  mr::Counters* counters_ = nullptr;
  std::string value_;
};

class AccessLogJoinReducer final : public mr::Reducer {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    counters_ = info.counters;
  }
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  mr::Counters* counters_ = nullptr;
  std::vector<std::string> pending_visits_;
  std::string text_;
};

/// AccessLogJoinSorted: the same repartition join with canonicalized
/// output — one URL group's joined rows are collected and emitted in
/// sorted (sourceIP, payload) order instead of value-arrival order. The
/// canonical order makes the group's bytes a pure function of its value
/// *set*, so the differential battery can run this app under partitioner
/// modes and engines whose merge interleavings need not match. Joins
/// against the first ranking row of the group (well-formed inputs have
/// exactly one per URL).
class AccessLogJoinSortedReducer final : public mr::Reducer {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    counters_ = info.counters;
  }
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  mr::Counters* counters_ = nullptr;
  std::vector<std::pair<std::string, std::string>> rows_;
  std::string text_;
};

}  // namespace textmr::apps
