#pragma once

#include <cstdint>
#include <string>

#include "mr/types.hpp"

namespace textmr::apps {

/// SynText (paper §V-D, Fig. 10): a parameterizable text-centric job that
/// sweeps the space between WordCount (cheap map, shrinking combine) and
/// the hard cases.
///
/// * `cpu_intensity` — multiplicative map() compute factor over
///   WordCount: each token pays `cpu_intensity` rounds of a deterministic
///   mixing loop (1 ~ WordCount's trivial map; large values approach
///   WordPOSTag).
/// * `storage_intensity` — growth of combine() output: combining values
///   with total payload T yields one value of size
///   base + storage_intensity * (T - base). 0 collapses to a fixed-size
///   aggregate (WordCount-like); 1 concatenates (InvertedIndex-like).
struct SynTextParams {
  double cpu_intensity = 1.0;
  double storage_intensity = 0.0;
  std::uint32_t base_value_bytes = 8;
};

class SynTextMapper final : public mr::Mapper {
 public:
  explicit SynTextMapper(SynTextParams params) : params_(params) {}

  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override;

 private:
  SynTextParams params_;
  std::string scratch_;
  std::string value_;
};

class SynTextCombiner final : public mr::Reducer {
 public:
  explicit SynTextCombiner(SynTextParams params) : params_(params) {}

  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  SynTextParams params_;
  std::string value_;
};

/// Final reducer reports the aggregated payload size per key (the
/// output's content does not matter for the benchmark; its size does).
class SynTextReducer final : public mr::Reducer {
 public:
  explicit SynTextReducer(SynTextParams params) : params_(params) {}

  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  SynTextParams params_;
};

}  // namespace textmr::apps
