#include "apps/pos_tag.hpp"

#include <cmath>

#include "common/hash.hpp"
#include "common/varint.hpp"
#include "apps/tokenizer.hpp"

namespace textmr::apps {
namespace {

struct LexiconEntry {
  std::string_view word;
  PosTag tag;
};

/// Closed-class words: unambiguous high-frequency function words.
constexpr LexiconEntry kLexicon[] = {
    {"the", PosTag::kDeterminer},   {"a", PosTag::kDeterminer},
    {"an", PosTag::kDeterminer},    {"this", PosTag::kDeterminer},
    {"that", PosTag::kDeterminer},  {"these", PosTag::kDeterminer},
    {"of", PosTag::kPreposition},   {"in", PosTag::kPreposition},
    {"on", PosTag::kPreposition},   {"at", PosTag::kPreposition},
    {"by", PosTag::kPreposition},   {"for", PosTag::kPreposition},
    {"with", PosTag::kPreposition}, {"from", PosTag::kPreposition},
    {"to", PosTag::kPreposition},   {"and", PosTag::kConjunction},
    {"or", PosTag::kConjunction},   {"but", PosTag::kConjunction},
    {"nor", PosTag::kConjunction},  {"i", PosTag::kPronoun},
    {"you", PosTag::kPronoun},      {"he", PosTag::kPronoun},
    {"she", PosTag::kPronoun},      {"it", PosTag::kPronoun},
    {"we", PosTag::kPronoun},       {"they", PosTag::kPronoun},
    {"is", PosTag::kVerb},          {"are", PosTag::kVerb},
    {"was", PosTag::kVerbPast},     {"were", PosTag::kVerbPast},
    {"be", PosTag::kVerb},          {"been", PosTag::kVerbPast},
    {"very", PosTag::kAdverb},      {"not", PosTag::kAdverb},
};

bool ends_with(std::string_view word, std::string_view suffix) {
  return word.size() >= suffix.size() &&
         word.substr(word.size() - suffix.size()) == suffix;
}

bool is_numeric(std::string_view word) {
  for (char c : word) {
    if (c < '0' || c > '9') return false;
  }
  return !word.empty();
}

}  // namespace

const char* pos_tag_name(PosTag tag) {
  switch (tag) {
    case PosTag::kNoun: return "NN";
    case PosTag::kPluralNoun: return "NNS";
    case PosTag::kProperNoun: return "NNP";
    case PosTag::kVerb: return "VB";
    case PosTag::kVerbPast: return "VBD";
    case PosTag::kVerbGerund: return "VBG";
    case PosTag::kAdjective: return "JJ";
    case PosTag::kAdverb: return "RB";
    case PosTag::kDeterminer: return "DT";
    case PosTag::kPreposition: return "IN";
    case PosTag::kPronoun: return "PRP";
    case PosTag::kConjunction: return "CC";
    case PosTag::kNumber: return "CD";
    case PosTag::kOther: return "X";
    case PosTag::kNumTags: break;
  }
  return "?";
}

PosTagger::PosTagger(std::uint32_t work_passes)
    : work_passes_(work_passes == 0 ? 1 : work_passes) {}

PosTag PosTagger::tag_word(std::string_view word) const {
  for (const auto& entry : kLexicon) {
    if (entry.word == word) return entry.tag;
  }
  if (is_numeric(word)) return PosTag::kNumber;
  if (ends_with(word, "ing")) return PosTag::kVerbGerund;
  if (ends_with(word, "ed")) return PosTag::kVerbPast;
  if (ends_with(word, "ly")) return PosTag::kAdverb;
  if (ends_with(word, "tion") || ends_with(word, "ment") ||
      ends_with(word, "ness") || ends_with(word, "ity")) {
    return PosTag::kNoun;
  }
  if (ends_with(word, "ous") || ends_with(word, "ful") ||
      ends_with(word, "ive") || ends_with(word, "able")) {
    return PosTag::kAdjective;
  }
  if (ends_with(word, "s")) return PosTag::kPluralNoun;
  return PosTag::kNoun;
}

double PosTagger::lexical_score(std::string_view word, PosTag tag) const {
  // Deterministic pseudo-emission score: a hash-derived base biased toward
  // the suffix-rule tag. This is the per-(word, tag) feature evaluation
  // that makes tagging CPU-bound, as with a real statistical tagger.
  const std::uint64_t h = mix64(
      fnv1a64(word) ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(tag) + 1)));
  double score = static_cast<double>(h & 0xffff) / 65536.0;
  if (tag_word(word) == tag) score += 1.5;
  return score;
}

double PosTagger::transition_score(PosTag prev, PosTag cur) const {
  // Hand-written bigram preferences (the contextual knowledge a trained
  // model would encode).
  if (prev == PosTag::kDeterminer &&
      (cur == PosTag::kNoun || cur == PosTag::kAdjective ||
       cur == PosTag::kPluralNoun)) {
    return 1.0;
  }
  if (prev == PosTag::kPreposition &&
      (cur == PosTag::kDeterminer || cur == PosTag::kNoun)) {
    return 0.8;
  }
  if (prev == PosTag::kPronoun &&
      (cur == PosTag::kVerb || cur == PosTag::kVerbPast)) {
    return 0.9;
  }
  if (prev == PosTag::kAdjective && cur == PosTag::kNoun) return 0.7;
  if (prev == PosTag::kAdverb &&
      (cur == PosTag::kVerb || cur == PosTag::kAdjective)) {
    return 0.6;
  }
  if (prev == PosTag::kDeterminer && cur == PosTag::kDeterminer) return -1.0;
  return 0.0;
}

void PosTagger::tag_sentence(const std::vector<std::string>& tokens,
                             std::vector<PosTag>& tags_out) const {
  tags_out.resize(tokens.size());
  if (tokens.empty()) return;

  // Initial assignment from lexicon + suffix rules.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    tags_out[i] = tag_word(tokens[i]);
  }

  // Iterative contextual re-scoring: each pass re-evaluates every token
  // against all candidate tags given its neighbours' current tags and
  // keeps the argmax. Multiple passes let changes propagate, and also set
  // the application's CPU intensity (paper: WordPOSTag's map() is
  // "extremely computationally intensive").
  for (std::uint32_t pass = 0; pass < work_passes_; ++pass) {
    bool changed = false;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const PosTag prev = (i > 0) ? tags_out[i - 1] : PosTag::kOther;
      const PosTag next =
          (i + 1 < tokens.size()) ? tags_out[i + 1] : PosTag::kOther;
      PosTag best = tags_out[i];
      double best_score = -1e9;
      for (std::size_t t = 0; t < kNumPosTags - 1; ++t) {
        const PosTag candidate = static_cast<PosTag>(t);
        const double score = lexical_score(tokens[i], candidate) +
                             transition_score(prev, candidate) +
                             transition_score(candidate, next);
        if (score > best_score) {
          best_score = score;
          best = candidate;
        }
      }
      if (best != tags_out[i]) {
        tags_out[i] = best;
        changed = true;
      }
    }
    if (changed && pass + 1 == work_passes_) {
      // Converged or out of budget; either way we stop (fixed work per
      // sentence keeps the benchmark deterministic).
      break;
    }
  }
}

namespace tagcounts {

void encode(std::string& out,
            const std::array<std::uint64_t, kNumPosTags>& counts) {
  out.clear();
  for (const std::uint64_t count : counts) put_varint(out, count);
}

void decode_add(std::string_view bytes,
                std::array<std::uint64_t, kNumPosTags>& counts) {
  std::size_t pos = 0;
  for (auto& count : counts) count += get_varint(bytes, pos);
}

}  // namespace tagcounts

void WordPosTagMapper::map(std::uint64_t /*offset*/, std::string_view line,
                           mr::EmitSink& out) {
  tokens_.clear();
  for_each_token(line, scratch_, [&](std::string_view token) {
    tokens_.emplace_back(token);
  });
  tagger_.tag_sentence(tokens_, tags_);
  std::array<std::uint64_t, kNumPosTags> counts{};
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    counts.fill(0);
    counts[static_cast<std::size_t>(tags_[i])] = 1;
    tagcounts::encode(value_, counts);
    out.emit(tokens_[i], value_);
  }
}

void WordPosTagCombiner::reduce(std::string_view key, mr::ValueStream& values,
                                mr::EmitSink& out) {
  std::array<std::uint64_t, kNumPosTags> counts{};
  while (auto value = values.next()) {
    tagcounts::decode_add(*value, counts);
  }
  tagcounts::encode(value_, counts);
  out.emit(key, value_);
}

void WordPosTagReducer::reduce(std::string_view key, mr::ValueStream& values,
                               mr::EmitSink& out) {
  std::array<std::uint64_t, kNumPosTags> counts{};
  while (auto value = values.next()) {
    tagcounts::decode_add(*value, counts);
  }
  text_.clear();
  for (std::size_t t = 0; t < kNumPosTags; ++t) {
    if (counts[t] == 0) continue;
    if (!text_.empty()) text_.push_back(' ');
    text_ += pos_tag_name(static_cast<PosTag>(t));
    text_.push_back(':');
    text_ += std::to_string(counts[t]);
  }
  out.emit(key, text_);
}

}  // namespace textmr::apps
