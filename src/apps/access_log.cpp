#include "apps/access_log.hpp"

#include <algorithm>
#include <cstdio>

#include "common/varint.hpp"
#include "apps/tokenizer.hpp"

namespace textmr::apps {
namespace {

constexpr char kSep = '|';

/// Parses "123.45" into cents without floating point.
std::optional<std::uint64_t> parse_cents(std::string_view text) {
  std::uint64_t dollars = 0;
  std::size_t i = 0;
  if (i >= text.size()) return std::nullopt;
  while (i < text.size() && text[i] != '.') {
    if (text[i] < '0' || text[i] > '9') return std::nullopt;
    dollars = dollars * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  std::uint64_t cents = 0;
  if (i < text.size()) {
    ++i;  // skip '.'
    std::uint64_t scale = 10;
    while (i < text.size()) {
      if (text[i] < '0' || text[i] > '9') return std::nullopt;
      if (scale > 0) {
        cents += static_cast<std::uint64_t>(text[i] - '0') * scale;
        scale /= 10;
      }
      ++i;
    }
  }
  return dollars * 100 + cents;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

void split_fields(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  for_each_field(line, kSep, [&](std::size_t, std::string_view field) {
    out.push_back(field);
  });
}

std::string format_dollars(std::uint64_t cents) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%02llu",
                static_cast<unsigned long long>(cents / 100),
                static_cast<unsigned long long>(cents % 100));
  return buf;
}

thread_local std::vector<std::string_view> t_fields;

}  // namespace

std::optional<UserVisit> parse_user_visit(std::string_view line) {
  split_fields(line, t_fields);
  if (t_fields.size() != 9) return std::nullopt;
  auto cents = parse_cents(t_fields[3]);
  if (!cents.has_value()) return std::nullopt;
  return UserVisit{t_fields[0], t_fields[1], *cents};
}

std::optional<Ranking> parse_ranking(std::string_view line) {
  split_fields(line, t_fields);
  if (t_fields.size() != 3) return std::nullopt;
  auto rank = parse_u64(t_fields[1]);
  if (!rank.has_value()) return std::nullopt;
  return Ranking{t_fields[0], *rank};
}

void AccessLogSumMapper::map(std::uint64_t /*offset*/, std::string_view line,
                             mr::EmitSink& out) {
  auto visit = parse_user_visit(line);
  if (!visit.has_value()) {
    if (counters_ != nullptr) counters_->increment(log_counters::kMalformed);
    return;
  }
  if (counters_ != nullptr) counters_->increment(log_counters::kVisits);
  value_.clear();
  put_varint(value_, visit->ad_revenue_cents);
  out.emit(visit->dest_url, value_);
}

void AccessLogSumCombiner::reduce(std::string_view key,
                                  mr::ValueStream& values, mr::EmitSink& out) {
  std::uint64_t total = 0;
  while (auto value = values.next()) {
    std::size_t pos = 0;
    total += get_varint(*value, pos);
  }
  value_.clear();
  put_varint(value_, total);
  out.emit(key, value_);
}

void AccessLogSumReducer::reduce(std::string_view key, mr::ValueStream& values,
                                 mr::EmitSink& out) {
  std::uint64_t total = 0;
  while (auto value = values.next()) {
    std::size_t pos = 0;
    total += get_varint(*value, pos);
  }
  out.emit(key, format_dollars(total));
}

void AccessLogJoinMapper::map(std::uint64_t /*offset*/, std::string_view line,
                              mr::EmitSink& out) {
  // Dispatch by schema: 9 fields = UserVisits, 3 fields = Rankings.
  if (auto visit = parse_user_visit(line); visit.has_value()) {
    if (counters_ != nullptr) counters_->increment(log_counters::kVisits);
    value_.clear();
    value_.push_back('V');
    value_.append(visit->source_ip);
    value_.push_back(kSep);
    put_varint(value_, visit->ad_revenue_cents);
    out.emit(visit->dest_url, value_);
    return;
  }
  if (auto ranking = parse_ranking(line); ranking.has_value()) {
    if (counters_ != nullptr) counters_->increment(log_counters::kRankings);
    value_.clear();
    value_.push_back('R');
    put_varint(value_, ranking->page_rank);
    out.emit(ranking->page_url, value_);
    return;
  }
  if (counters_ != nullptr) counters_->increment(log_counters::kMalformed);
}

void AccessLogJoinReducer::reduce(std::string_view key,
                                  mr::ValueStream& values, mr::EmitSink& out) {
  (void)key;
  std::optional<std::uint64_t> page_rank;
  pending_visits_.clear();

  auto emit_joined = [&](std::string_view visit_payload) {
    // visit_payload: sourceIP | varint(cents)
    const std::size_t sep = visit_payload.find(kSep);
    if (sep == std::string_view::npos) return;
    std::size_t pos = sep + 1;
    const std::uint64_t cents = get_varint(visit_payload, pos);
    text_.clear();
    text_ += format_dollars(cents);
    text_.push_back(kSep);
    text_ += std::to_string(*page_rank);
    out.emit(visit_payload.substr(0, sep), text_);
    if (counters_ != nullptr) counters_->increment(log_counters::kJoinedRows);
  };

  while (auto value = values.next()) {
    if (value->empty()) continue;
    if ((*value)[0] == 'R') {
      std::size_t pos = 1;
      page_rank = get_varint(*value, pos);
      // Drain buffered visits now that the dimension row arrived.
      for (const auto& visit : pending_visits_) emit_joined(visit);
      pending_visits_.clear();
    } else if ((*value)[0] == 'V') {
      if (page_rank.has_value()) {
        emit_joined(value->substr(1));
      } else {
        pending_visits_.emplace_back(value->substr(1));
      }
    }
  }
  // Visits without a ranking row are dropped (inner join semantics).
  if (counters_ != nullptr && !pending_visits_.empty()) {
    counters_->increment(log_counters::kOrphanVisits,
                         pending_visits_.size());
  }
}

void AccessLogJoinSortedReducer::reduce(std::string_view key,
                                        mr::ValueStream& values,
                                        mr::EmitSink& out) {
  (void)key;
  std::optional<std::uint64_t> page_rank;
  rows_.clear();
  std::size_t orphans = 0;

  // First pass: remember the dimension row's rank, stash visit payloads.
  while (auto value = values.next()) {
    if (value->empty()) continue;
    if ((*value)[0] == 'R') {
      if (!page_rank.has_value()) {
        std::size_t pos = 1;
        page_rank = get_varint(*value, pos);
      }
    } else if ((*value)[0] == 'V') {
      // visit payload: sourceIP | varint(cents)
      const std::string_view payload = value->substr(1);
      const std::size_t sep = payload.find(kSep);
      if (sep == std::string_view::npos) continue;
      rows_.emplace_back(std::string(payload.substr(0, sep)),
                         std::string(payload.substr(sep)));
    }
  }

  if (!page_rank.has_value()) {
    orphans = rows_.size();
    rows_.clear();
  }
  std::sort(rows_.begin(), rows_.end());
  for (const auto& [ip, payload] : rows_) {
    std::size_t pos = 1;  // skip the leading kSep
    const std::uint64_t cents = get_varint(payload, pos);
    text_.clear();
    text_ += format_dollars(cents);
    text_.push_back(kSep);
    text_ += std::to_string(*page_rank);
    out.emit(ip, text_);
    if (counters_ != nullptr) counters_->increment(log_counters::kJoinedRows);
  }
  if (counters_ != nullptr && orphans > 0) {
    counters_->increment(log_counters::kOrphanVisits, orphans);
  }
}

}  // namespace textmr::apps
