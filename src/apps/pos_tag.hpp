#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mr/types.hpp"

namespace textmr::apps {

/// Part-of-speech tag set (a compact Penn-Treebank-style inventory).
enum class PosTag : std::uint8_t {
  kNoun = 0,
  kPluralNoun,
  kProperNoun,
  kVerb,
  kVerbPast,
  kVerbGerund,
  kAdjective,
  kAdverb,
  kDeterminer,
  kPreposition,
  kPronoun,
  kConjunction,
  kNumber,
  kOther,
  kNumTags,
};

constexpr std::size_t kNumPosTags = static_cast<std::size_t>(PosTag::kNumTags);

const char* pos_tag_name(PosTag tag);

/// Rule-based POS tagger: a closed-class lexicon, suffix/shape rules, and
/// an iterative contextual re-scoring pass over each sentence (in the
/// spirit of Brill's transformation rules).
///
/// This substitutes for the paper's Apache OpenNLP tagger (WordPOSTag,
/// §II-B footnote 1). Its experimental role there is to be the
/// CPU-intensive extreme among the benchmarks — map() dominating all
/// framework costs — so the tagger exposes `work_passes`: the number of
/// contextual re-scoring iterations, each a real O(sentence × tags)
/// scoring sweep. The default is calibrated to make tagging cost dominate
/// tokenization by roughly the OpenNLP/WordCount ratio in the paper's
/// Fig. 2.
class PosTagger {
 public:
  explicit PosTagger(std::uint32_t work_passes = 24);

  /// Tags every token of a sentence. `tokens` views must stay valid for
  /// the call. Returns one tag per token.
  void tag_sentence(const std::vector<std::string>& tokens,
                    std::vector<PosTag>& tags_out) const;

  /// Tags one word with no sentence context (lexicon + suffix rules only).
  PosTag tag_word(std::string_view word) const;

 private:
  double lexical_score(std::string_view word, PosTag tag) const;
  double transition_score(PosTag prev, PosTag cur) const;

  std::uint32_t work_passes_;
};

/// WordPOSTag application (paper §II-B): map() tags each word of the line
/// and emits (word, counter-array) where the array counts how many times
/// the word was assigned each tag; combine and reduce sum the arrays.
///
/// Intermediate value encoding: kNumPosTags varints.
namespace tagcounts {

void encode(std::string& out, const std::array<std::uint64_t, kNumPosTags>& counts);
void decode_add(std::string_view bytes,
                std::array<std::uint64_t, kNumPosTags>& counts);

}  // namespace tagcounts

class WordPosTagMapper final : public mr::Mapper {
 public:
  explicit WordPosTagMapper(std::uint32_t work_passes = 24)
      : tagger_(work_passes) {}

  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override;

 private:
  PosTagger tagger_;
  std::string scratch_;
  std::vector<std::string> tokens_;
  std::vector<PosTag> tags_;
  std::string value_;
};

/// Sums counter arrays; combiner form (binary output).
class WordPosTagCombiner final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  std::string value_;
};

/// Final reducer: emits "TAG:count TAG:count ..." for nonzero tags.
class WordPosTagReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  std::string text_;
};

}  // namespace textmr::apps
