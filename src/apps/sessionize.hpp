#pragma once

#include <map>
#include <string>
#include <utility>

#include "apps/tokenizer.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// Sessionize: per-client activity rollup over the UserVisits log.
///
///   map:    sourceIP -> "visitDate|duration"
///   reduce: for each distinct date of one client, ascending,
///           emit (sourceIP, "date|visits|seconds")
///
/// The reducer needs a client's whole visit set to build the per-date
/// rollup, so there is no combiner — under skew-aware partitioning a
/// heavy client can be *placed* on a dedicated reducer but never split.
/// Output order inside a group is the std::map's date order, independent
/// of value arrival order, so runs are byte-identical across engines and
/// partitioner modes.
namespace session_counters {
inline constexpr const char* kVisits = "sessionize.visits";
inline constexpr const char* kMalformed = "sessionize.malformed_lines";
}  // namespace session_counters

class SessionizeMapper final : public mr::Mapper {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    counters_ = info.counters;
  }

  void map(std::uint64_t /*offset*/, std::string_view line,
           mr::EmitSink& out) override {
    // UserVisits schema: sourceIP|destURL|visitDate|adRevenue|userAgent|
    // countryCode|languageCode|searchWord|duration.
    std::string_view ip;
    std::string_view date;
    std::string_view duration;
    const std::size_t fields =
        for_each_field(line, '|', [&](std::size_t index, std::string_view f) {
          if (index == 0) ip = f;
          if (index == 2) date = f;
          if (index == 8) duration = f;
        });
    if (fields != 9 || ip.empty() || date.empty() || duration.empty() ||
        duration.find_first_not_of("0123456789") != std::string_view::npos) {
      if (counters_ != nullptr) {
        counters_->increment(session_counters::kMalformed);
      }
      return;
    }
    if (counters_ != nullptr) counters_->increment(session_counters::kVisits);
    value_.assign(date);
    value_.push_back('|');
    value_.append(duration);
    out.emit(ip, value_);
  }

 private:
  mr::Counters* counters_ = nullptr;
  std::string value_;
};

class SessionizeReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    by_date_.clear();
    while (auto value = values.next()) {
      const std::size_t sep = value->find('|');
      if (sep == std::string_view::npos) continue;
      std::uint64_t seconds = 0;
      for (char c : value->substr(sep + 1)) {
        seconds = seconds * 10 + static_cast<std::uint64_t>(c - '0');
      }
      auto& [visits, total] = by_date_[std::string(value->substr(0, sep))];
      visits += 1;
      total += seconds;
    }
    for (const auto& [date, rollup] : by_date_) {
      text_.assign(date);
      text_.push_back('|');
      text_.append(std::to_string(rollup.first));
      text_.push_back('|');
      text_.append(std::to_string(rollup.second));
      out.emit(key, text_);
    }
  }

 private:
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> by_date_;
  std::string text_;
};

}  // namespace textmr::apps
