#include "apps/syntext.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"
#include "apps/tokenizer.hpp"

namespace textmr::apps {
namespace {

/// Deterministic compute kernel: `rounds` iterations of 64-bit mixing.
/// The result is folded into the output so the optimizer cannot elide it.
std::uint64_t burn_cpu(std::uint64_t seed, std::uint64_t rounds) {
  std::uint64_t x = seed | 1;
  for (std::uint64_t i = 0; i < rounds; ++i) {
    x = textmr::mix64(x + i);
  }
  return x;
}

/// Fills `out` with `size` deterministic bytes derived from `seed`.
void fill_payload(std::string& out, std::uint64_t seed, std::uint64_t size) {
  out.clear();
  out.reserve(size);
  std::uint64_t x = seed;
  while (out.size() < size) {
    x = textmr::mix64(x);
    const std::size_t take =
        std::min<std::size_t>(8, static_cast<std::size_t>(size) - out.size());
    for (std::size_t b = 0; b < take; ++b) {
      out.push_back(static_cast<char>('a' + ((x >> (8 * b)) % 26)));
    }
  }
}

/// Rounds of mixing per token at cpu_intensity == 1, roughly matching
/// WordCount's per-token map cost so intensities read as multiples of it.
constexpr std::uint64_t kBaseRounds = 8;

}  // namespace

void SynTextMapper::map(std::uint64_t /*offset*/, std::string_view line,
                        mr::EmitSink& out) {
  const std::uint64_t rounds = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params_.cpu_intensity *
                                    static_cast<double>(kBaseRounds)));
  for_each_token(line, scratch_, [&](std::string_view token) {
    const std::uint64_t mixed = burn_cpu(textmr::fnv1a64(token), rounds);
    fill_payload(value_, mixed, params_.base_value_bytes);
    out.emit(token, value_);
  });
}

void SynTextCombiner::reduce(std::string_view key, mr::ValueStream& values,
                             mr::EmitSink& out) {
  std::uint64_t total_bytes = 0;
  std::uint64_t checksum = textmr::fnv1a64(key);
  while (auto value = values.next()) {
    total_bytes += value->size();
    checksum = textmr::mix64(checksum ^ textmr::fnv1a64(*value));
  }
  // Output size models the app's aggregation behaviour: base bytes plus a
  // storage_intensity share of the excess (paper's "average growth in
  // output size when two records are aggregated").
  const std::uint64_t base = params_.base_value_bytes;
  const std::uint64_t excess =
      total_bytes > base ? total_bytes - base : 0;
  const std::uint64_t out_size =
      base + static_cast<std::uint64_t>(params_.storage_intensity *
                                        static_cast<double>(excess));
  fill_payload(value_, checksum, out_size);
  out.emit(key, value_);
}

void SynTextReducer::reduce(std::string_view key, mr::ValueStream& values,
                            mr::EmitSink& out) {
  std::uint64_t total_bytes = 0;
  std::uint64_t count = 0;
  while (auto value = values.next()) {
    total_bytes += value->size();
    ++count;
  }
  out.emit(key, std::to_string(count) + ":" + std::to_string(total_bytes));
}

}  // namespace textmr::apps
