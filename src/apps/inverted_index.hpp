#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/varint.hpp"
#include "apps/tokenizer.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// InvertedIndex (paper §II-B): for each word, the sorted list of
/// locations where it appears. A location is (task_id << 40) | line
/// ordinal — globally unique and monotone within a task.
///
/// Intermediate value encoding: varint count, then delta-encoded varint
/// locations (ascending). The combiner merges posting lists, so unlike
/// WordCount the combined output *grows* with input — this is the
/// storage-intensive corner of the paper's Fig. 10.
namespace postings {

inline std::uint64_t make_location(std::uint32_t task_id,
                                   std::uint64_t ordinal) {
  return (static_cast<std::uint64_t>(task_id) << 40) | (ordinal & ((1ull << 40) - 1));
}

inline void encode(std::string& out, const std::vector<std::uint64_t>& sorted) {
  out.clear();
  put_varint(out, sorted.size());
  std::uint64_t previous = 0;
  for (const std::uint64_t location : sorted) {
    put_varint(out, location - previous);
    previous = location;
  }
}

inline void decode_into(std::string_view bytes,
                        std::vector<std::uint64_t>& out) {
  std::size_t pos = 0;
  const std::uint64_t count = get_varint(bytes, pos);
  std::uint64_t location = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    location += get_varint(bytes, pos);
    out.push_back(location);
  }
}

}  // namespace postings

class InvertedIndexMapper final : public mr::Mapper {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    task_id_ = info.task_id;
  }

  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override {
    const std::uint64_t location = postings::make_location(task_id_, offset);
    for_each_token(line, scratch_, [&](std::string_view token) {
      single_[0] = location;
      postings::encode(value_, single_);
      out.emit(token, value_);
    });
  }

 private:
  std::uint32_t task_id_ = 0;
  std::string scratch_;
  std::string value_;
  std::vector<std::uint64_t> single_ = {0};
};

/// Merges posting lists into one sorted list.
class InvertedIndexCombiner final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    merged_.clear();
    while (auto value = values.next()) {
      postings::decode_into(*value, merged_);
    }
    // Lists usually arrive in location order (each map task emits
    // ascending offsets and runs are merged stably), so the common case
    // is already sorted and the O(n log n) pass is skipped.
    if (!std::is_sorted(merged_.begin(), merged_.end())) {
      std::sort(merged_.begin(), merged_.end());
    }
    postings::encode(value_, merged_);
    out.emit(key, value_);
  }

 private:
  std::vector<std::uint64_t> merged_;
  std::string value_;
};

/// Final reducer: emits "count:loc1,loc2,..." as text.
class InvertedIndexReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    merged_.clear();
    while (auto value = values.next()) {
      postings::decode_into(*value, merged_);
    }
    std::sort(merged_.begin(), merged_.end());
    text_.clear();
    text_ += std::to_string(merged_.size());
    text_.push_back(':');
    for (std::size_t i = 0; i < merged_.size(); ++i) {
      if (i > 0) text_.push_back(',');
      text_ += std::to_string(merged_[i]);
    }
    out.emit(key, text_);
  }

 private:
  std::vector<std::uint64_t> merged_;
  std::string text_;
};

}  // namespace textmr::apps
