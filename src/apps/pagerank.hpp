#pragma once

#include <string>
#include <string_view>

#include "mr/types.hpp"

namespace textmr::apps {

/// One PageRank iteration (paper §II-B) over the web graph format
/// `url \t rank \t out1,out2,...`:
///
///   map:    (url, 'G' + outlinks)             — graph reconstruction
///           (target, 'R' + rank/out_degree)   — one share per outlink
///   combine: sums 'R' shares per key, passes 'G' records through
///   reduce: rank' = (1-d) + d * sum(shares); emits url \t rank' \t links
///
/// Damping factor d = 0.85. Rank shares are carried as decimal text (the
/// era-appropriate Hadoop representation — deserialization cost is part
/// of what Fig. 2 measures).
inline constexpr double kPageRankDamping = 0.85;

class PageRankMapper final : public mr::Mapper {
 public:
  void map(std::uint64_t offset, std::string_view line,
           mr::EmitSink& out) override;

 private:
  std::string value_;
};

/// Sums rank shares; forwards graph records unchanged. Key-preserving.
class PageRankCombiner final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  std::string value_;
};

class PageRankReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override;

 private:
  std::string text_;
};

}  // namespace textmr::apps
