#pragma once

#include <string>

#include "common/varint.hpp"
#include "apps/tokenizer.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// WordCount (paper §II-B): map emits (word, 1); combine and reduce sum.
/// Intermediate counts are varint-encoded; the final reducer formats
/// decimal text.
class WordCountMapper final : public mr::Mapper {
 public:
  void map(std::uint64_t /*offset*/, std::string_view line,
           mr::EmitSink& out) override {
    for_each_token(line, scratch_, [&](std::string_view token) {
      value_.clear();
      put_varint(value_, 1);
      out.emit(token, value_);
    });
  }

 private:
  std::string scratch_;
  std::string value_;
};

/// Sums varint-encoded counts; used as the combiner (re-emits varint).
class WordCountCombiner final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    std::uint64_t total = 0;
    while (auto value = values.next()) {
      std::size_t pos = 0;
      total += get_varint(*value, pos);
    }
    value_.clear();
    put_varint(value_, total);
    out.emit(key, value_);
  }

 private:
  std::string value_;
};

/// Final reducer: sums and emits decimal text.
class WordCountReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    std::uint64_t total = 0;
    while (auto value = values.next()) {
      std::size_t pos = 0;
      total += get_varint(*value, pos);
    }
    out.emit(key, std::to_string(total));
  }
};

}  // namespace textmr::apps
