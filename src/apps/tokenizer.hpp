#pragma once

#include <string>
#include <string_view>

#include "text/tokenize.hpp"

namespace textmr::apps {

/// Streaming word tokenizer used by the text-centric applications:
/// splits on any non-alphanumeric byte and lowercases ASCII letters.
/// `fn` receives each normalized token as a view into `scratch`, valid
/// only during the call. Backed by the runtime-dispatched SWAR/SIMD
/// kernels in src/text/tokenize.hpp; every kernel is fuzz-proven
/// equivalent to the scalar oracle, so the selected mode never changes
/// job output.
template <typename Fn>
void for_each_token(std::string_view line, std::string& scratch, Fn&& fn) {
  text::for_each_token(line, scratch, fn);
}

/// Splits `line` on `sep`, invoking `fn(index, field)` per field.
/// Returns the number of fields.
template <typename Fn>
std::size_t for_each_field(std::string_view line, char sep, Fn&& fn) {
  std::size_t index = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = line.find(sep, start);
    const std::string_view field =
        line.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    fn(index, field);
    ++index;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return index;
}

}  // namespace textmr::apps
