#pragma once

#include <string>
#include <string_view>

namespace textmr::apps {

/// Streaming word tokenizer used by the text-centric applications:
/// splits on any non-alphanumeric byte and lowercases ASCII letters.
/// `fn` receives each normalized token as a view into `scratch`, valid
/// only during the call.
template <typename Fn>
void for_each_token(std::string_view line, std::string& scratch, Fn&& fn) {
  scratch.clear();
  for (std::size_t i = 0; i <= line.size(); ++i) {
    const char c = (i < line.size()) ? line[i] : ' ';
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      scratch.push_back(c);
    } else if (c >= 'A' && c <= 'Z') {
      scratch.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      if (!scratch.empty()) {
        fn(std::string_view(scratch));
        scratch.clear();
      }
    }
  }
}

/// Splits `line` on `sep`, invoking `fn(index, field)` per field.
/// Returns the number of fields.
template <typename Fn>
std::size_t for_each_field(std::string_view line, char sep, Fn&& fn) {
  std::size_t index = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t end = line.find(sep, start);
    const std::string_view field =
        line.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    fn(index, field);
    ++index;
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return index;
}

}  // namespace textmr::apps
