#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "apps/tokenizer.hpp"
#include "common/varint.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// TF-IDF as a two-job pipeline — the classic "output of job 1 is the
/// input of job 2" shape the single-job differential apps never
/// exercise.
///
/// Job 1 (term frequency): tokenize corpus lines and emit
///   key = term '\x01' doc, value = varint(1)
/// where doc is the map task id — a "document" is one input split, which
/// both engines compute identically, so the doc axis is deterministic.
/// The combiner sums varints (WordCountCombiner works verbatim) and the
/// job-1 reducer prints the sum as decimal text.
///
/// Job 2 (document-frequency join): parse job-1 output lines
/// "term\x01doc\tcount" back apart, regroup by term, and emit one line
/// per (term, doc) — "doc|tf|df" with docs ascending — where df is the
/// number of distinct documents containing the term. df needs the whole
/// group, so job 2 has no combiner.
inline constexpr char kTfIdfSep = '\x01';

class TfIdfTermCountMapper final : public mr::Mapper {
 public:
  void begin_task(const mr::TaskInfo& info) override {
    doc_ = std::to_string(info.task_id);
  }

  void map(std::uint64_t /*offset*/, std::string_view line,
           mr::EmitSink& out) override {
    for_each_token(line, scratch_, [&](std::string_view token) {
      key_.assign(token);
      key_.push_back(kTfIdfSep);
      key_.append(doc_);
      value_.clear();
      put_varint(value_, 1);
      out.emit(key_, value_);
    });
  }

 private:
  std::string doc_;
  std::string scratch_;
  std::string key_;
  std::string value_;
};

class TfIdfJoinMapper final : public mr::Mapper {
 public:
  void map(std::uint64_t /*offset*/, std::string_view line,
           mr::EmitSink& out) override {
    // Job-1 output line: term '\x01' doc '\t' count.
    const std::size_t sep = line.find(kTfIdfSep);
    const std::size_t tab = line.rfind('\t');
    if (sep == std::string_view::npos || tab == std::string_view::npos ||
        tab <= sep) {
      return;
    }
    value_.assign(line.substr(sep + 1, tab - sep - 1));  // doc
    value_.push_back('|');
    value_.append(line.substr(tab + 1));  // tf
    out.emit(line.substr(0, sep), value_);
  }

 private:
  std::string value_;
};

class TfIdfJoinReducer final : public mr::Reducer {
 public:
  void reduce(std::string_view key, mr::ValueStream& values,
              mr::EmitSink& out) override {
    docs_.clear();
    while (auto value = values.next()) {
      const std::size_t sep = value->find('|');
      if (sep == std::string_view::npos) continue;
      std::uint64_t doc = 0;
      for (char c : value->substr(0, sep)) {
        if (c < '0' || c > '9') return;
        doc = doc * 10 + static_cast<std::uint64_t>(c - '0');
      }
      docs_.emplace_back(doc, std::string(value->substr(sep + 1)));
    }
    // Each (term, doc) pair appears exactly once in job-1 output, so the
    // group size is the document frequency.
    std::sort(docs_.begin(), docs_.end());
    const std::string df = std::to_string(docs_.size());
    for (const auto& [doc, tf] : docs_) {
      text_.assign(std::to_string(doc));
      text_.push_back('|');
      text_.append(tf);
      text_.push_back('|');
      text_.append(df);
      out.emit(key, text_);
    }
  }

 private:
  std::vector<std::pair<std::uint64_t, std::string>> docs_;
  std::string text_;
};

}  // namespace textmr::apps
