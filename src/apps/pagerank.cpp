#include "apps/pagerank.hpp"

#include <charconv>
#include <cstdio>

#include "apps/tokenizer.hpp"

namespace textmr::apps {
namespace {

struct GraphLine {
  std::string_view url;
  double rank = 0.0;
  std::string_view links;  // comma-separated, may be empty
  bool ok = false;
};

GraphLine parse_graph_line(std::string_view line) {
  GraphLine result;
  const std::size_t tab1 = line.find('\t');
  if (tab1 == std::string_view::npos) return result;
  const std::size_t tab2 = line.find('\t', tab1 + 1);
  if (tab2 == std::string_view::npos) return result;
  result.url = line.substr(0, tab1);
  const std::string_view rank_text = line.substr(tab1 + 1, tab2 - tab1 - 1);
  const auto [ptr, ec] = std::from_chars(
      rank_text.data(), rank_text.data() + rank_text.size(), result.rank);
  if (ec != std::errc()) return result;
  result.links = line.substr(tab2 + 1);
  result.ok = true;
  return result;
}

void format_rank(std::string& out, double rank) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", rank);
  out += buf;
}

double parse_rank(std::string_view text) {
  double value = 0.0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

}  // namespace

void PageRankMapper::map(std::uint64_t /*offset*/, std::string_view line,
                         mr::EmitSink& out) {
  const GraphLine graph = parse_graph_line(line);
  if (!graph.ok) return;

  // Graph reconstruction record.
  value_.clear();
  value_.push_back('G');
  value_.append(graph.links);
  out.emit(graph.url, value_);

  if (graph.links.empty()) return;
  std::size_t out_degree = 1;
  for (char c : graph.links) {
    if (c == ',') ++out_degree;
  }
  const double share = graph.rank / static_cast<double>(out_degree);
  for_each_field(graph.links, ',', [&](std::size_t, std::string_view target) {
    if (target.empty()) return;
    value_.clear();
    value_.push_back('R');
    format_rank(value_, share);
    out.emit(target, value_);
  });
}

void PageRankCombiner::reduce(std::string_view key, mr::ValueStream& values,
                              mr::EmitSink& out) {
  double rank_sum = 0.0;
  bool saw_rank = false;
  while (auto value = values.next()) {
    if (value->empty()) continue;
    if ((*value)[0] == 'R') {
      rank_sum += parse_rank(value->substr(1));
      saw_rank = true;
    } else {
      out.emit(key, *value);  // pass graph records through
    }
  }
  if (saw_rank) {
    value_.clear();
    value_.push_back('R');
    format_rank(value_, rank_sum);
    out.emit(key, value_);
  }
}

void PageRankReducer::reduce(std::string_view key, mr::ValueStream& values,
                             mr::EmitSink& out) {
  double rank_sum = 0.0;
  std::string links;
  bool saw_graph = false;
  while (auto value = values.next()) {
    if (value->empty()) continue;
    if ((*value)[0] == 'R') {
      rank_sum += parse_rank(value->substr(1));
    } else if ((*value)[0] == 'G') {
      links.assign(value->substr(1));
      saw_graph = true;
    }
  }
  const double new_rank = (1.0 - kPageRankDamping) + kPageRankDamping * rank_sum;
  text_.clear();
  format_rank(text_, new_rank);
  text_.push_back('\t');
  // Pages that only appear as link targets (no graph record) get an empty
  // adjacency list, keeping the output a valid next-iteration input.
  if (saw_graph) text_ += links;
  out.emit(key, text_);
}

}  // namespace textmr::apps
