#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/access_log.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pagerank.hpp"
#include "apps/pos_tag.hpp"
#include "apps/sessionize.hpp"
#include "apps/syntext.hpp"
#include "apps/tfidf.hpp"
#include "apps/wordcount.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// Which of the paper's datasets an application consumes.
enum class Dataset { kCorpus, kAccessLog, kAccessLogWithRankings, kWebGraph };

/// One of the paper's six benchmark applications, packaged as the
/// factories a JobSpec needs plus the paper's per-app frequency-buffering
/// parameters (§V-B2: k=3000, s=0.01 for the text apps; k=10000, s=0.1
/// for the log apps; PageRank grouped with the log side).
struct AppBundle {
  std::string name;
  bool text_centric = false;
  Dataset dataset = Dataset::kCorpus;
  mr::MapperFactory mapper;
  mr::ReducerFactory reducer;
  mr::ReducerFactory combiner;  // empty if the app has none
  std::size_t freq_top_k = 3000;
  double freq_sampling_fraction = 0.01;
};

inline AppBundle wordcount_app() {
  return AppBundle{
      "WordCount",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); },
      [] { return std::make_unique<WordCountCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle inverted_index_app() {
  return AppBundle{
      "InvertedIndex",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<InvertedIndexMapper>(); },
      [] { return std::make_unique<InvertedIndexReducer>(); },
      [] { return std::make_unique<InvertedIndexCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle word_pos_tag_app(std::uint32_t work_passes = 24) {
  return AppBundle{
      "WordPOSTag",
      true,
      Dataset::kCorpus,
      [work_passes] { return std::make_unique<WordPosTagMapper>(work_passes); },
      [] { return std::make_unique<WordPosTagReducer>(); },
      [] { return std::make_unique<WordPosTagCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle access_log_sum_app() {
  return AppBundle{
      "AccessLogSum",
      false,
      Dataset::kAccessLog,
      [] { return std::make_unique<AccessLogSumMapper>(); },
      [] { return std::make_unique<AccessLogSumReducer>(); },
      [] { return std::make_unique<AccessLogSumCombiner>(); },
      10000,
      0.1,
  };
}

inline AppBundle access_log_join_app() {
  return AppBundle{
      "AccessLogJoin",
      false,
      Dataset::kAccessLogWithRankings,
      [] { return std::make_unique<AccessLogJoinMapper>(); },
      [] { return std::make_unique<AccessLogJoinReducer>(); },
      nullptr,
      10000,
      0.1,
  };
}

inline AppBundle pagerank_app() {
  return AppBundle{
      "PageRank",
      false,
      Dataset::kWebGraph,
      [] { return std::make_unique<PageRankMapper>(); },
      [] { return std::make_unique<PageRankReducer>(); },
      [] { return std::make_unique<PageRankCombiner>(); },
      10000,
      0.1,
  };
}

/// Join variant with canonicalized (sorted) group output; see
/// AccessLogJoinSortedReducer. Same inputs and freq parameters as the
/// paper's join.
inline AppBundle access_log_join_sorted_app() {
  return AppBundle{
      "AccessLogJoinSorted",
      false,
      Dataset::kAccessLogWithRankings,
      [] { return std::make_unique<AccessLogJoinMapper>(); },
      [] { return std::make_unique<AccessLogJoinSortedReducer>(); },
      nullptr,
      10000,
      0.1,
  };
}

inline AppBundle sessionize_app() {
  return AppBundle{
      "Sessionize",
      false,
      Dataset::kAccessLog,
      [] { return std::make_unique<SessionizeMapper>(); },
      [] { return std::make_unique<SessionizeReducer>(); },
      nullptr,
      10000,
      0.1,
  };
}

/// TF-IDF job 1 (term frequency per document). Job-1 sums are plain
/// varint counts, so WordCount's combiner and reducer apply verbatim.
inline AppBundle tfidf_job1_app() {
  return AppBundle{
      "TfIdfTermCount",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<TfIdfTermCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); },
      [] { return std::make_unique<WordCountCombiner>(); },
      3000,
      0.01,
  };
}

/// TF-IDF job 2 (document-frequency join); consumes job 1's output
/// files, so grids wire the two jobs as a pipeline rather than reading a
/// generated dataset directly.
inline AppBundle tfidf_job2_app() {
  return AppBundle{
      "TfIdfJoin",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<TfIdfJoinMapper>(); },
      [] { return std::make_unique<TfIdfJoinReducer>(); },
      nullptr,
      3000,
      0.01,
  };
}

inline AppBundle syntext_app(SynTextParams params) {
  return AppBundle{
      "SynText",
      true,
      Dataset::kCorpus,
      [params] { return std::make_unique<SynTextMapper>(params); },
      [params] { return std::make_unique<SynTextReducer>(params); },
      [params] { return std::make_unique<SynTextCombiner>(params); },
      3000,
      0.01,
  };
}

/// All six paper applications in the paper's presentation order.
inline std::vector<AppBundle> paper_apps(std::uint32_t pos_work_passes = 24) {
  return {wordcount_app(),      inverted_index_app(),
          word_pos_tag_app(pos_work_passes), access_log_sum_app(),
          access_log_join_app(), pagerank_app()};
}

}  // namespace textmr::apps
