#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/access_log.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pagerank.hpp"
#include "apps/pos_tag.hpp"
#include "apps/syntext.hpp"
#include "apps/wordcount.hpp"
#include "mr/types.hpp"

namespace textmr::apps {

/// Which of the paper's datasets an application consumes.
enum class Dataset { kCorpus, kAccessLog, kAccessLogWithRankings, kWebGraph };

/// One of the paper's six benchmark applications, packaged as the
/// factories a JobSpec needs plus the paper's per-app frequency-buffering
/// parameters (§V-B2: k=3000, s=0.01 for the text apps; k=10000, s=0.1
/// for the log apps; PageRank grouped with the log side).
struct AppBundle {
  std::string name;
  bool text_centric = false;
  Dataset dataset = Dataset::kCorpus;
  mr::MapperFactory mapper;
  mr::ReducerFactory reducer;
  mr::ReducerFactory combiner;  // empty if the app has none
  std::size_t freq_top_k = 3000;
  double freq_sampling_fraction = 0.01;
};

inline AppBundle wordcount_app() {
  return AppBundle{
      "WordCount",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<WordCountReducer>(); },
      [] { return std::make_unique<WordCountCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle inverted_index_app() {
  return AppBundle{
      "InvertedIndex",
      true,
      Dataset::kCorpus,
      [] { return std::make_unique<InvertedIndexMapper>(); },
      [] { return std::make_unique<InvertedIndexReducer>(); },
      [] { return std::make_unique<InvertedIndexCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle word_pos_tag_app(std::uint32_t work_passes = 24) {
  return AppBundle{
      "WordPOSTag",
      true,
      Dataset::kCorpus,
      [work_passes] { return std::make_unique<WordPosTagMapper>(work_passes); },
      [] { return std::make_unique<WordPosTagReducer>(); },
      [] { return std::make_unique<WordPosTagCombiner>(); },
      3000,
      0.01,
  };
}

inline AppBundle access_log_sum_app() {
  return AppBundle{
      "AccessLogSum",
      false,
      Dataset::kAccessLog,
      [] { return std::make_unique<AccessLogSumMapper>(); },
      [] { return std::make_unique<AccessLogSumReducer>(); },
      [] { return std::make_unique<AccessLogSumCombiner>(); },
      10000,
      0.1,
  };
}

inline AppBundle access_log_join_app() {
  return AppBundle{
      "AccessLogJoin",
      false,
      Dataset::kAccessLogWithRankings,
      [] { return std::make_unique<AccessLogJoinMapper>(); },
      [] { return std::make_unique<AccessLogJoinReducer>(); },
      nullptr,
      10000,
      0.1,
  };
}

inline AppBundle pagerank_app() {
  return AppBundle{
      "PageRank",
      false,
      Dataset::kWebGraph,
      [] { return std::make_unique<PageRankMapper>(); },
      [] { return std::make_unique<PageRankReducer>(); },
      [] { return std::make_unique<PageRankCombiner>(); },
      10000,
      0.1,
  };
}

inline AppBundle syntext_app(SynTextParams params) {
  return AppBundle{
      "SynText",
      true,
      Dataset::kCorpus,
      [params] { return std::make_unique<SynTextMapper>(params); },
      [params] { return std::make_unique<SynTextReducer>(params); },
      [params] { return std::make_unique<SynTextCombiner>(params); },
      3000,
      0.01,
  };
}

/// All six paper applications in the paper's presentation order.
inline std::vector<AppBundle> paper_apps(std::uint32_t pos_work_passes = 24) {
  return {wordcount_app(),      inverted_index_app(),
          word_pos_tag_app(pos_work_passes), access_log_sum_app(),
          access_log_join_app(), pagerank_app()};
}

}  // namespace textmr::apps
