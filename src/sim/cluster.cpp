#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace textmr::sim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

double ceil_div(double a, double b) { return std::ceil(a / b); }

}  // namespace

SimJobResult simulate_job(const AppProfile& profile, const ClusterSpec& cluster,
                          const SimJobConfig& job) {
  TEXTMR_CHECK(job.input_bytes > 0.0, "simulated job needs input bytes");
  TEXTMR_CHECK(cluster.map_slots() >= 1 && cluster.reduce_slots() >= 1,
               "cluster needs slots");
  SimJobResult result;

  // ---- map task internals -------------------------------------------------
  const double tasks = ceil_div(job.input_bytes, job.split_bytes);
  const double split = job.input_bytes / tasks;  // even splits
  result.map_tasks = static_cast<std::uint64_t>(tasks);

  // Disk bandwidth is shared by the node's concurrently running map tasks.
  const double disk_read_share =
      cluster.disk_read_mbps * kMB / cluster.map_slots_per_node;
  const double disk_write_share =
      cluster.disk_write_mbps * kMB / cluster.map_slots_per_node;

  const double spill_input = split * profile.spill_input_bytes;
  const double spilled = split * profile.spilled_bytes;
  const double merged = split * profile.merged_bytes;

  // Produce side: CPU (read+map+emit+freqbuf) overlapped with the input
  // disk stream — the slower of the two governs.
  const double produce_cpu_s = split * profile.produce_cpu_ns_per_input_byte *
                               1e-9 * cluster.cpu_scale;
  const double produce_io_s = split / disk_read_share;
  const double produce_s = std::max(produce_cpu_s, produce_io_s);

  // Consume side: per spill-input byte, sort/combine CPU plus writing the
  // post-combine bytes out.
  const double consume_cpu_per_byte =
      profile.consume_cpu_ns_per_spill_byte * 1e-9 * cluster.cpu_scale;
  const double write_ratio =
      spill_input > 0.0 ? spilled / spill_input : 0.0;
  const double consume_s_per_byte =
      consume_cpu_per_byte + write_ratio / disk_write_share;

  const double buffer =
      job.spill_buffer_bytes * (1.0 - job.freq_table_fraction);

  PipelineResult pipeline;
  if (spill_input > 0.0 && consume_s_per_byte > 0.0 && produce_s > 0.0) {
    PipelineConfig config;
    config.produce_rate = spill_input / produce_s;
    config.consume_rate = 1.0 / consume_s_per_byte;
    config.total_bytes = spill_input;
    config.buffer_bytes = buffer;
    config.threshold = job.spill_threshold;
    config.policy = job.use_spill_matcher ? SimSpillPolicy::kMatcher
                                          : SimSpillPolicy::kFixed;
    pipeline = simulate_map_pipeline(config);
  }
  const double pipeline_s = std::max(pipeline.wall_s, produce_s);
  result.map_pipeline_s = pipeline_s;
  result.spills_per_task = pipeline.spills;
  result.map_idle_fraction =
      pipeline_s > 0.0 ? pipeline.map_idle_s / pipeline_s : 0.0;
  result.support_idle_fraction =
      pipeline_s > 0.0
          ? (pipeline.support_idle_s +
             // After the last consume the support thread is done; if the
             // producer path out-lasted it, count that as support idle too.
             std::max(0.0, produce_s - pipeline.wall_s)) /
                pipeline_s
          : 1.0;

  // Map-side final merge: skipped when a single spill covered the task
  // (Hadoop adopts the run by rename).
  double merge_s = 0.0;
  if (pipeline.spills > 1) {
    merge_s = spilled * profile.merge_cpu_ns_per_spilled_byte * 1e-9 *
                  cluster.cpu_scale +
              spilled / disk_read_share + merged / disk_write_share;
  }
  result.map_merge_s = merge_s;

  result.map_task_wall_s = cluster.task_startup_s + pipeline_s + merge_s;
  result.map_waves = static_cast<std::uint64_t>(
      ceil_div(tasks, static_cast<double>(cluster.map_slots())));
  result.map_phase_s =
      static_cast<double>(result.map_waves) * result.map_task_wall_s;

  // ---- reduce phase ---------------------------------------------------------
  const double shuffle_total = job.input_bytes * profile.merged_bytes;
  const double reducers = static_cast<double>(job.num_reducers);
  const double bytes_per_reducer = shuffle_total / reducers;
  result.reduce_waves = static_cast<std::uint64_t>(
      ceil_div(reducers, static_cast<double>(cluster.reduce_slots())));
  const double active_reducers =
      std::min(reducers, static_cast<double>(cluster.reduce_slots()));

  // A reducer's fetch rate: its share of the cluster's aggregate network,
  // capped by its own NIC.
  const double aggregate_net =
      static_cast<double>(cluster.nodes) * cluster.network_mbps_per_node * kMB;
  const double fetch_bw = std::min(cluster.network_mbps_per_node * kMB,
                                   aggregate_net / active_reducers);
  result.shuffle_s = fetch_bw > 0.0 ? bytes_per_reducer / fetch_bw : 0.0;

  const double reduce_cpu_s = bytes_per_reducer *
                              profile.reduce_cpu_ns_per_shuffled_byte * 1e-9 *
                              cluster.cpu_scale;
  const double reduce_disk_write =
      cluster.disk_write_mbps * kMB / cluster.reduce_slots_per_node;
  const double output_write_s =
      (job.input_bytes * profile.output_bytes / reducers) / reduce_disk_write;

  result.reduce_task_wall_s =
      cluster.task_startup_s + result.shuffle_s + reduce_cpu_s + output_write_s;
  result.reduce_phase_s =
      static_cast<double>(result.reduce_waves) * result.reduce_task_wall_s;

  result.total_s =
      cluster.job_overhead_s + result.map_phase_s + result.reduce_phase_s;
  return result;
}

}  // namespace textmr::sim
