#pragma once

#include <cstdint>

#include "mr/metrics.hpp"

namespace textmr::sim {

/// Per-unit characterization of one application under one optimization
/// setting, extracted from a real (scaled-down) LocalEngine run. All CPU
/// costs are nanoseconds per byte on the measuring machine; the cluster
/// simulator rescales them with ClusterSpec::cpu_scale.
///
/// This is the calibration boundary between the real runtime and the
/// cluster simulator (DESIGN.md §2): volumes and per-byte costs are
/// *measured*, only their composition at cluster scale is simulated.
struct AppProfile {
  // ---- volumes, normalized per input byte ----
  double map_output_bytes = 0.0;   // emitted by map()
  double spill_input_bytes = 0.0;  // entering the spill buffer (post-freqbuf)
  double spilled_bytes = 0.0;      // written to spill runs (post-combine)
  double merged_bytes = 0.0;       // final map output = shuffle volume
  double output_bytes = 0.0;       // final reduce output

  // ---- CPU costs ----
  /// Map-thread cost per *input* byte: read + user map + emit + profile +
  /// frequency-table work + in-table combine.
  double produce_cpu_ns_per_input_byte = 0.0;
  /// Support-thread cost per spill-input byte: sort + combine + run write.
  double consume_cpu_ns_per_spill_byte = 0.0;
  /// Map-side merge cost per spilled byte (merge + merge-path combine).
  double merge_cpu_ns_per_spilled_byte = 0.0;
  /// Reduce cost per shuffled byte: merge/group + user reduce + output.
  double reduce_cpu_ns_per_shuffled_byte = 0.0;

  /// Builds a profile from a finished job's metrics. The job must have
  /// processed a representative input (same generator family, smaller
  /// size); per-byte normalization removes the scale.
  static AppProfile from_job(const mr::JobMetrics& metrics);
};

}  // namespace textmr::sim
