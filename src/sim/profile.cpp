#include "sim/profile.hpp"

#include "common/error.hpp"

namespace textmr::sim {
namespace {

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

}  // namespace

AppProfile AppProfile::from_job(const mr::JobMetrics& metrics) {
  using mr::Op;
  const auto& map = metrics.map_work;
  const auto& support = metrics.support_work;
  const auto& reduce = metrics.reduce_work;

  const double input_bytes = static_cast<double>(map.input_bytes);
  TEXTMR_CHECK(input_bytes > 0.0, "profile needs a job that read input");

  AppProfile profile;
  profile.map_output_bytes =
      ratio(static_cast<double>(map.map_output_bytes), input_bytes);
  profile.spill_input_bytes =
      ratio(static_cast<double>(map.spill_input_bytes), input_bytes);
  profile.spilled_bytes =
      ratio(static_cast<double>(support.spilled_bytes), input_bytes);
  profile.merged_bytes =
      ratio(static_cast<double>(map.merged_bytes), input_bytes);
  profile.output_bytes =
      ratio(static_cast<double>(reduce.output_bytes), input_bytes);

  const double produce_ns = static_cast<double>(
      map.op_ns(Op::kMapRead) + map.op_ns(Op::kMapUser) + map.op_ns(Op::kEmit) +
      map.op_ns(Op::kProfile) + map.op_ns(Op::kFreqTable) +
      map.op_ns(Op::kCombine));
  profile.produce_cpu_ns_per_input_byte = ratio(produce_ns, input_bytes);

  const double consume_ns = static_cast<double>(
      support.op_ns(Op::kSort) + support.op_ns(Op::kCombine) +
      support.op_ns(Op::kSpillWrite));
  profile.consume_cpu_ns_per_spill_byte =
      ratio(consume_ns, static_cast<double>(map.spill_input_bytes));

  const double merge_ns = static_cast<double>(map.op_ns(Op::kMerge) +
                                              map.op_ns(Op::kMergeCombine));
  profile.merge_cpu_ns_per_spilled_byte =
      ratio(merge_ns, static_cast<double>(support.spilled_bytes));

  const double reduce_ns = static_cast<double>(
      reduce.op_ns(Op::kReduceMerge) + reduce.op_ns(Op::kReduceUser) +
      reduce.op_ns(Op::kOutputWrite));
  profile.reduce_cpu_ns_per_shuffled_byte =
      ratio(reduce_ns, static_cast<double>(reduce.shuffled_bytes));

  return profile;
}

}  // namespace textmr::sim
