#include "sim/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace textmr::sim {

PipelineResult simulate_map_pipeline(const PipelineConfig& config) {
  PipelineResult result;
  result.final_threshold = config.threshold;
  if (config.total_bytes <= 0.0) return result;
  TEXTMR_CHECK(config.produce_rate > 0.0 && config.consume_rate > 0.0,
               "pipeline rates must be positive");
  TEXTMR_CHECK(config.buffer_bytes > 0.0, "pipeline needs a buffer");

  const double p = config.produce_rate;
  const double c = config.consume_rate;
  const double M = config.buffer_bytes;
  double x = std::clamp(config.threshold, 0.01, 0.99);

  double t = 0.0;         // map thread clock at the start of the region
  double sup_free = 0.0;  // support thread busy until here (>= t always)
  double backlog = 0.0;   // bytes of the in-flight spill (freed at sup_free)
  double remaining = config.total_bytes;

  // Mirrors the real SpillBuffer's rules exactly, in fluid form:
  //  * the producer keeps appending to the open region until it is sealed;
  //  * while a spill is in flight, only cap = M − backlog bytes fit, and a
  //    full ring blocks the producer until the release at sup_free;
  //  * a region is sealed when it has reached x·M *and* the consumer is
  //    free (so regions overshoot the threshold while the consumer is
  //    busy — the paper's m_i = max{xM, min{(p/c)m_{i-1}, M − m_{i-1}}});
  //  * end of input seals whatever exists (close()).
  for (std::uint64_t iter = 0; remaining > 0.0 && iter < 100'000'000; ++iter) {
    const double cap = M - backlog;
    const double target = x * M;
    const double unblocked = p * (sup_free - t);  // if never capped
    const double region_at_sup_free =
        std::min(std::max(unblocked, 0.0), cap);

    double m;
    double seal_t;
    double consume_start;

    if (remaining <= region_at_sup_free) {
      // Input ends while the consumer is still busy; the final region
      // (<= cap, so never blocked) waits in the queue.
      m = remaining;
      seal_t = t + m / p;
      consume_start = sup_free;
    } else if (region_at_sup_free >= target) {
      // The region passed the threshold while the consumer was busy; it
      // is sealed the instant the consumer frees up. If the ring filled
      // first, the producer blocked for the remainder of that window.
      m = region_at_sup_free;
      if (unblocked > cap) {
        result.map_idle_s += sup_free - (t + cap / p);
      }
      seal_t = sup_free;
      consume_start = sup_free;
    } else {
      // The region is still short of the threshold when the consumer
      // frees (or the consumer is already idle): production continues —
      // after a possible blocked stretch if the ring filled — until the
      // threshold or the end of input, and the consumer waits.
      m = std::min(target, remaining);
      if (unblocked > cap) {
        // Ring filled before sup_free: idle, then resume at sup_free.
        result.map_idle_s += sup_free - (t + cap / p);
        seal_t = sup_free + (m - cap) / p;
      } else {
        seal_t = t + m / p;
      }
      result.support_idle_s += std::max(0.0, seal_t - sup_free);
      consume_start = seal_t;
    }

    const double t_p = m / p;  // active production time (blocks excluded)
    const double t_c = m / c;
    sup_free = consume_start + t_c;
    remaining -= m;
    backlog = m;
    t = seal_t;
    result.spills += 1;

    if (config.policy == SimSpillPolicy::kMatcher) {
      // Paper eq. (1) applied to the last spill's measured times.
      x = std::clamp(std::max(t_p / (t_p + t_c), 0.5), 0.05, 0.95);
    }
  }

  result.wall_s = sup_free;
  result.final_threshold = x;
  return result;
}

}  // namespace textmr::sim
