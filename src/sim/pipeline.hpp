#pragma once

#include <cstdint>

namespace textmr::sim {

/// Spill-threshold policy for the simulated pipeline.
enum class SimSpillPolicy : std::uint8_t { kFixed, kMatcher };

struct PipelineConfig {
  double produce_rate = 0.0;   // buffer bytes per second the map thread emits
  double consume_rate = 0.0;   // buffer bytes per second the support thread drains
  double total_bytes = 0.0;    // bytes that flow through the buffer
  double buffer_bytes = 0.0;   // M
  double threshold = 0.8;      // x (initial value under kMatcher)
  SimSpillPolicy policy = SimSpillPolicy::kFixed;
};

struct PipelineResult {
  double wall_s = 0.0;          // from first byte produced to last byte consumed
  double map_idle_s = 0.0;      // map thread blocked on a full buffer
  double support_idle_s = 0.0;  // support thread waiting for a sealed spill
  std::uint64_t spills = 0;
  double final_threshold = 0.8;
};

/// Simulates the map-task produce/consume pipeline of paper §IV-C exactly:
/// the map thread fills a circular buffer of M bytes at rate p; a region
/// is sealed when it reaches x·M *and* the support thread is free (so
/// regions grow while the previous spill is in flight, reproducing
///   m_i = max{ xM, min{ (p/c)·m_{i-1}, M − m_{i-1} } } );
/// a full buffer blocks the map thread and forces a seal on release.
/// Under kMatcher the threshold is recomputed per spill from the last
/// spill's (T_p, T_c) via eq. (1): x = max{T_p/(T_p+T_c), 1/2}.
///
/// All quantities are continuous (fluid model): with per-record sizes
/// orders of magnitude below M, the discrete effects are negligible, and
/// the fluid recurrence is the one the paper derives.
PipelineResult simulate_map_pipeline(const PipelineConfig& config);

}  // namespace textmr::sim
