#pragma once

#include <cstdint>

#include "sim/pipeline.hpp"
#include "sim/profile.hpp"

namespace textmr::sim {

/// Hardware model of the simulated cluster. Defaults approximate the
/// paper's local cluster: 6 worker machines (2×quad-core 1.86 GHz Xeon,
/// 16 GB RAM, spinning disks), 12 mappers + 12 reducers total, GbE.
struct ClusterSpec {
  std::uint32_t nodes = 6;
  std::uint32_t map_slots_per_node = 2;
  std::uint32_t reduce_slots_per_node = 2;

  double disk_read_mbps = 90.0;    // per node, sequential
  double disk_write_mbps = 70.0;
  double network_mbps_per_node = 110.0;  // GbE payload rate

  /// Per-task fixed overhead (JVM start, scheduling heartbeat) — the
  /// constant that dominates tiny jobs on real Hadoop.
  double task_startup_s = 1.5;
  /// Per-job fixed overhead (job setup/teardown).
  double job_overhead_s = 6.0;

  /// Ratio of simulated-node CPU time to measuring-machine CPU time for
  /// the same work. >1 means the simulated node is slower. The paper's
  /// 2008-era 1.86 GHz Xeons vs. a modern core; the default is a rough
  /// but documented factor (EXPERIMENTS.md).
  double cpu_scale = 3.0;

  std::uint32_t map_slots() const { return nodes * map_slots_per_node; }
  std::uint32_t reduce_slots() const { return nodes * reduce_slots_per_node; }
};

/// Job-level knobs for a simulated run.
struct SimJobConfig {
  double input_bytes = 0.0;          // total job input
  /// Defaults sized so a text-centric map task spills several times per
  /// task (the regime the paper's Table II idle numbers imply): 256 MB
  /// splits over a 64 MB sort buffer give ~4-10 spills for map-output
  /// ratios near 1-2.5x.
  double split_bytes = 256.0 * 1024 * 1024;
  std::uint32_t num_reducers = 12;
  double spill_buffer_bytes = 64.0 * 1024 * 1024;
  double spill_threshold = 0.8;
  bool use_spill_matcher = false;
  /// Fraction of the buffer carved out for the frequent-key table; the
  /// pipeline's effective M shrinks by this much (the profile already
  /// reflects the absorbed volume).
  double freq_table_fraction = 0.0;
};

struct SimJobResult {
  double total_s = 0.0;
  double map_phase_s = 0.0;
  double reduce_phase_s = 0.0;

  // Per-map-task internals (all tasks are statistically identical).
  double map_task_wall_s = 0.0;
  double map_pipeline_s = 0.0;
  double map_merge_s = 0.0;
  double map_idle_fraction = 0.0;      // of pipeline wall
  double support_idle_fraction = 0.0;  // of pipeline wall
  std::uint64_t map_tasks = 0;
  std::uint64_t map_waves = 0;
  std::uint64_t spills_per_task = 0;

  double reduce_task_wall_s = 0.0;
  double shuffle_s = 0.0;  // per reduce task
  std::uint64_t reduce_waves = 0;
};

/// Composes a measured AppProfile over a simulated cluster: map tasks in
/// waves over the map slots (each task's produce/consume pipeline run
/// through the §IV-C fluid model, plus merge and I/O), then reduce tasks
/// in waves (shuffle over the shared network, merge, reduce, write).
SimJobResult simulate_job(const AppProfile& profile, const ClusterSpec& cluster,
                          const SimJobConfig& job);

}  // namespace textmr::sim
