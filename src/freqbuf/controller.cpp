#include "freqbuf/controller.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "io/dfs.hpp"

namespace textmr::freqbuf {

namespace {

void append_u32(std::string& out, std::uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out.append(buf, 4);
}

bool read_u32(std::string_view& in, std::uint32_t& value) {
  if (in.size() < 4) return false;
  value = static_cast<std::uint8_t>(in[0]) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[1])) << 8) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[2])) << 16) |
          (static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[3])) << 24);
  in.remove_prefix(4);
  return true;
}

constexpr char kKeyCacheMagic[4] = {'T', 'M', 'R', 'K'};

}  // namespace

std::string NodeKeyCache::encode_keys(const std::vector<std::string>& keys) {
  std::string out(kKeyCacheMagic, sizeof(kKeyCacheMagic));
  append_u32(out, static_cast<std::uint32_t>(keys.size()));
  for (const std::string& key : keys) {
    append_u32(out, static_cast<std::uint32_t>(key.size()));
    out.append(key);
  }
  return out;
}

std::optional<std::vector<std::string>> NodeKeyCache::decode_keys(
    std::string_view bytes) {
  if (bytes.size() < sizeof(kKeyCacheMagic) ||
      std::memcmp(bytes.data(), kKeyCacheMagic, sizeof(kKeyCacheMagic)) != 0) {
    return std::nullopt;
  }
  bytes.remove_prefix(sizeof(kKeyCacheMagic));
  std::uint32_t count = 0;
  if (!read_u32(bytes, count)) return std::nullopt;
  std::vector<std::string> keys;
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t len = 0;
    if (!read_u32(bytes, len) || bytes.size() < len) return std::nullopt;
    keys.emplace_back(bytes.substr(0, len));
    bytes.remove_prefix(len);
  }
  if (!bytes.empty()) return std::nullopt;
  return keys;
}

void NodeKeyCache::put(std::vector<std::string> keys) {
  textmr::MutexLock lock(mu_);
  if (keys_.has_value()) return;
  keys_ = std::move(keys);
  if (file_.empty()) return;
  // Persist the winning set so a replacement worker process for this node
  // skips profiling (DESIGN.md §10). tmp+rename means a concurrent reader
  // sees either nothing or a complete file; a write failure only costs
  // the optimization, so it is logged rather than propagated.
  try {
    io::atomic_write_file(file_, encode_keys(*keys_));
  } catch (const IoError& err) {
    TEXTMR_LOG(kWarn) << "node key cache write failed: " << err.what();
  }
}

void NodeKeyCache::attach_file(std::filesystem::path path) {
  textmr::MutexLock lock(mu_);
  file_ = std::move(path);
  if (keys_.has_value()) return;
  std::ifstream in(file_, std::ios::binary);
  if (!in) return;  // no prior worker persisted a set
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  if (auto keys = decode_keys(bytes); keys.has_value()) {
    keys_ = std::move(*keys);
  } else {
    TEXTMR_LOG(kWarn) << "ignoring corrupt node key cache " << file_.string();
  }
}

FreqBufferController::FreqBufferController(const FreqBufConfig& config,
                                           std::uint64_t table_budget_bytes,
                                           mr::Reducer* combiner,
                                           mr::EmitSink& spill_sink,
                                           mr::TaskMetrics& metrics,
                                           NodeKeyCache* node_cache,
                                           obs::TraceBuffer* trace)
    : config_(config),
      table_budget_bytes_(table_budget_bytes),
      combiner_(combiner),
      spill_sink_(spill_sink),
      metrics_(metrics),
      node_cache_(node_cache),
      trace_(trace) {
  TEXTMR_CHECK(config.enabled, "controller built with freqbuf disabled");
  TEXTMR_CHECK(config.top_k >= 1, "freqbuf needs top_k >= 1");

  if (config_.share_across_tasks && node_cache_ != nullptr) {
    if (auto cached = node_cache_->get(); cached.has_value()) {
      // A sibling task on this node already froze the set: skip straight
      // to the optimization stage (paper §III-B).
      obs::record_instant(trace_, "freq", "freq_cached_keys", "keys",
                          static_cast<double>(cached->size()));
      start_optimize(std::move(*cached));
      return;
    }
  }
  if (config_.sampling_fraction > 0.0) {
    // Fixed s: no pre-profiling step needed.
    effective_s_ = std::min(config_.sampling_fraction, 1.0);
    enter_profile_stage();
  }
  // Otherwise start in kPreProfile with the exact counter.
}

void FreqBufferController::set_progress(double fraction) {
  progress_ = std::clamp(fraction, 0.0, 1.0);
  switch (stage_) {
    case Stage::kPreProfile:
      if (progress_ >= config_.pre_profile_fraction && records_seen_ > 0) {
        // Fit alpha from the exact pre-profile counts (paper §III-C).
        auto top = pre_counts_.top(pre_counts_.distinct());
        std::vector<std::uint64_t> freqs;
        freqs.reserve(top.size());
        for (const auto& [key, count] : top) freqs.push_back(count);
        fit_ = sketch::fit_zipf(freqs);

        // n: expected total intermediate records, extrapolated from the
        // records-per-progress rate seen so far. m: distinct keys,
        // linearly extrapolated (an upper-bound-ish heuristic; H_{m,a}
        // is only logarithmically sensitive to it for a ~ 1).
        const double n_estimate =
            static_cast<double>(records_seen_) / std::max(progress_, 1e-9);
        const double m_estimate =
            static_cast<double>(pre_counts_.distinct()) /
            std::max(progress_, 1e-9);
        effective_s_ = sketch::sampling_fraction(
            config_.top_k, fit_->alpha,
            static_cast<std::uint64_t>(std::max(1.0, m_estimate)),
            static_cast<std::uint64_t>(std::max(1.0, n_estimate)));
        // The pre-profiled records count toward the sample.
        effective_s_ = std::max(effective_s_, config_.pre_profile_fraction);
        enter_profile_stage();
        // Seed the Space-Saving sketch with what the exact counter knows,
        // so the pre-profiled prefix is not wasted.
        for (const auto& [key, count] : top) {
          if (sketch_->size() < sketch_->capacity()) {
            for (std::uint64_t i = 0; i < count; ++i) sketch_->offer(key);
          }
        }
      }
      break;
    case Stage::kProfile:
      if (progress_ >= effective_s_) freeze_keys();
      break;
    case Stage::kOptimize:
      break;
  }
}

void FreqBufferController::enter_profile_stage() {
  const std::size_t capacity = config_.sketch_capacity != 0
                                   ? config_.sketch_capacity
                                   : config_.top_k * 4;
  sketch_ = std::make_unique<sketch::SpaceSaving>(
      std::max<std::size_t>(capacity, config_.top_k));
  stage_ = Stage::kProfile;
  obs::record_instant(trace_, "freq", "freq_profile_begin", "sampling_fraction",
                      effective_s_, "alpha",
                      fit_.has_value() ? fit_->alpha : 0.0);
}

void FreqBufferController::freeze_keys() {
  auto entries = sketch_->top(config_.top_k);
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  for (auto& entry : entries) keys.push_back(std::move(entry.key));
  obs::record_instant(trace_, "freq", "freq_freeze", "keys",
                      static_cast<double>(keys.size()), "records_profiled",
                      static_cast<double>(records_seen_));
  if (config_.share_across_tasks && node_cache_ != nullptr) {
    node_cache_->put(keys);
  }
  sketch_.reset();
  start_optimize(std::move(keys));
}

void FreqBufferController::start_optimize(std::vector<std::string> keys) {
  if (combiner_ == nullptr) {
    // Without a combiner the table could only delay data, not shrink it
    // (pure overhead); keep the profiling cost honest but absorb nothing,
    // matching the paper's ~100% runtime for AccessLogJoin (Table III).
    keys.clear();
  }
  FrequentKeyTable::Options options;
  options.budget_bytes = table_budget_bytes_;
  options.per_key_limit_bytes = config_.per_key_limit_bytes;
  table_ = std::make_unique<FrequentKeyTable>(
      std::move(keys), options, combiner_, spill_sink_, metrics_);
  stage_ = Stage::kOptimize;
}

bool FreqBufferController::offer(std::string_view key,
                                 std::string_view value) {
  ++records_seen_;
  switch (stage_) {
    case Stage::kPreProfile: {
      mr::ScopedTimer timer(metrics_, mr::Op::kProfile);
      pre_counts_.offer(key);
      return false;
    }
    case Stage::kProfile: {
      mr::ScopedTimer timer(metrics_, mr::Op::kProfile);
      sketch_->offer(key);
      return false;
    }
    case Stage::kOptimize:
      // Sampled time-series of the table's occupancy and hit rate (one
      // point per 1024 records; a single branch when tracing is off).
      if (trace_ != nullptr && (records_seen_ & 1023u) == 0) {
        obs::record_counter(trace_, "freq", "freq_buffered_bytes",
                            static_cast<double>(table_->buffered_bytes()));
        obs::record_counter(
            trace_, "freq", "freq_hit_rate",
            static_cast<double>(metrics_.freq_hits) /
                static_cast<double>(records_seen_));
      }
      // No timer here: the table accounts its fast path to kFreqTable and
      // its combine/evict slow paths to kCombine/kEmit themselves.
      return table_->offer(key, value);
  }
  return false;
}

void FreqBufferController::finish() {
  if (stage_ != Stage::kOptimize) {
    // Input ended before profiling completed (tiny split): freeze now so
    // the node cache is still populated for sibling tasks.
    if (stage_ == Stage::kPreProfile) {
      if (records_seen_ == 0) return;
      enter_profile_stage();
      for (const auto& [key, count] : pre_counts_.top(pre_counts_.distinct())) {
        for (std::uint64_t i = 0; i < count; ++i) sketch_->offer(key);
      }
    }
    freeze_keys();
  }
  if (table_ != nullptr) {
    obs::record_instant(trace_, "freq", "freq_flush", "buffered_bytes",
                        static_cast<double>(table_->buffered_bytes()),
                        "keys", static_cast<double>(table_->num_keys()));
    table_->flush();
  }
}

}  // namespace textmr::freqbuf
