#include "freqbuf/controller.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace textmr::freqbuf {

FreqBufferController::FreqBufferController(const FreqBufConfig& config,
                                           std::uint64_t table_budget_bytes,
                                           mr::Reducer* combiner,
                                           mr::EmitSink& spill_sink,
                                           mr::TaskMetrics& metrics,
                                           NodeKeyCache* node_cache,
                                           obs::TraceBuffer* trace)
    : config_(config),
      table_budget_bytes_(table_budget_bytes),
      combiner_(combiner),
      spill_sink_(spill_sink),
      metrics_(metrics),
      node_cache_(node_cache),
      trace_(trace) {
  TEXTMR_CHECK(config.enabled, "controller built with freqbuf disabled");
  TEXTMR_CHECK(config.top_k >= 1, "freqbuf needs top_k >= 1");

  if (config_.share_across_tasks && node_cache_ != nullptr) {
    if (auto cached = node_cache_->get(); cached.has_value()) {
      // A sibling task on this node already froze the set: skip straight
      // to the optimization stage (paper §III-B).
      obs::record_instant(trace_, "freq", "freq_cached_keys", "keys",
                          static_cast<double>(cached->size()));
      start_optimize(std::move(*cached));
      return;
    }
  }
  if (config_.sampling_fraction > 0.0) {
    // Fixed s: no pre-profiling step needed.
    effective_s_ = std::min(config_.sampling_fraction, 1.0);
    enter_profile_stage();
  }
  // Otherwise start in kPreProfile with the exact counter.
}

void FreqBufferController::set_progress(double fraction) {
  progress_ = std::clamp(fraction, 0.0, 1.0);
  switch (stage_) {
    case Stage::kPreProfile:
      if (progress_ >= config_.pre_profile_fraction && records_seen_ > 0) {
        // Fit alpha from the exact pre-profile counts (paper §III-C).
        auto top = pre_counts_.top(pre_counts_.distinct());
        std::vector<std::uint64_t> freqs;
        freqs.reserve(top.size());
        for (const auto& [key, count] : top) freqs.push_back(count);
        fit_ = sketch::fit_zipf(freqs);

        // n: expected total intermediate records, extrapolated from the
        // records-per-progress rate seen so far. m: distinct keys,
        // linearly extrapolated (an upper-bound-ish heuristic; H_{m,a}
        // is only logarithmically sensitive to it for a ~ 1).
        const double n_estimate =
            static_cast<double>(records_seen_) / std::max(progress_, 1e-9);
        const double m_estimate =
            static_cast<double>(pre_counts_.distinct()) /
            std::max(progress_, 1e-9);
        effective_s_ = sketch::sampling_fraction(
            config_.top_k, fit_->alpha,
            static_cast<std::uint64_t>(std::max(1.0, m_estimate)),
            static_cast<std::uint64_t>(std::max(1.0, n_estimate)));
        // The pre-profiled records count toward the sample.
        effective_s_ = std::max(effective_s_, config_.pre_profile_fraction);
        enter_profile_stage();
        // Seed the Space-Saving sketch with what the exact counter knows,
        // so the pre-profiled prefix is not wasted.
        for (const auto& [key, count] : top) {
          if (sketch_->size() < sketch_->capacity()) {
            for (std::uint64_t i = 0; i < count; ++i) sketch_->offer(key);
          }
        }
      }
      break;
    case Stage::kProfile:
      if (progress_ >= effective_s_) freeze_keys();
      break;
    case Stage::kOptimize:
      break;
  }
}

void FreqBufferController::enter_profile_stage() {
  const std::size_t capacity = config_.sketch_capacity != 0
                                   ? config_.sketch_capacity
                                   : config_.top_k * 4;
  sketch_ = std::make_unique<sketch::SpaceSaving>(
      std::max<std::size_t>(capacity, config_.top_k));
  stage_ = Stage::kProfile;
  obs::record_instant(trace_, "freq", "freq_profile_begin", "sampling_fraction",
                      effective_s_, "alpha",
                      fit_.has_value() ? fit_->alpha : 0.0);
}

void FreqBufferController::freeze_keys() {
  auto entries = sketch_->top(config_.top_k);
  std::vector<std::string> keys;
  keys.reserve(entries.size());
  for (auto& entry : entries) keys.push_back(std::move(entry.key));
  obs::record_instant(trace_, "freq", "freq_freeze", "keys",
                      static_cast<double>(keys.size()), "records_profiled",
                      static_cast<double>(records_seen_));
  if (config_.share_across_tasks && node_cache_ != nullptr) {
    node_cache_->put(keys);
  }
  sketch_.reset();
  start_optimize(std::move(keys));
}

void FreqBufferController::start_optimize(std::vector<std::string> keys) {
  if (combiner_ == nullptr) {
    // Without a combiner the table could only delay data, not shrink it
    // (pure overhead); keep the profiling cost honest but absorb nothing,
    // matching the paper's ~100% runtime for AccessLogJoin (Table III).
    keys.clear();
  }
  FrequentKeyTable::Options options;
  options.budget_bytes = table_budget_bytes_;
  options.per_key_limit_bytes = config_.per_key_limit_bytes;
  table_ = std::make_unique<FrequentKeyTable>(
      std::move(keys), options, combiner_, spill_sink_, metrics_);
  stage_ = Stage::kOptimize;
}

bool FreqBufferController::offer(std::string_view key,
                                 std::string_view value) {
  ++records_seen_;
  switch (stage_) {
    case Stage::kPreProfile: {
      mr::ScopedTimer timer(metrics_, mr::Op::kProfile);
      pre_counts_.offer(key);
      return false;
    }
    case Stage::kProfile: {
      mr::ScopedTimer timer(metrics_, mr::Op::kProfile);
      sketch_->offer(key);
      return false;
    }
    case Stage::kOptimize:
      // Sampled time-series of the table's occupancy and hit rate (one
      // point per 1024 records; a single branch when tracing is off).
      if (trace_ != nullptr && (records_seen_ & 1023u) == 0) {
        obs::record_counter(trace_, "freq", "freq_buffered_bytes",
                            static_cast<double>(table_->buffered_bytes()));
        obs::record_counter(
            trace_, "freq", "freq_hit_rate",
            static_cast<double>(metrics_.freq_hits) /
                static_cast<double>(records_seen_));
      }
      // No timer here: the table accounts its fast path to kFreqTable and
      // its combine/evict slow paths to kCombine/kEmit themselves.
      return table_->offer(key, value);
  }
  return false;
}

void FreqBufferController::finish() {
  if (stage_ != Stage::kOptimize) {
    // Input ended before profiling completed (tiny split): freeze now so
    // the node cache is still populated for sibling tasks.
    if (stage_ == Stage::kPreProfile) {
      if (records_seen_ == 0) return;
      enter_profile_stage();
      for (const auto& [key, count] : pre_counts_.top(pre_counts_.distinct())) {
        for (std::uint64_t i = 0; i < count; ++i) sketch_->offer(key);
      }
    }
    freeze_keys();
  }
  if (table_ != nullptr) {
    obs::record_instant(trace_, "freq", "freq_flush", "buffered_bytes",
                        static_cast<double>(table_->buffered_bytes()),
                        "keys", static_cast<double>(table_->num_keys()));
    table_->flush();
  }
}

}  // namespace textmr::freqbuf
