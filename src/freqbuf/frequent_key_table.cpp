#include "freqbuf/frequent_key_table.hpp"

#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/varint.hpp"

namespace textmr::freqbuf {
namespace {

/// Streams the length-prefixed values of an entry buffer.
class BufferValueStream final : public mr::ValueStream {
 public:
  explicit BufferValueStream(std::string_view buffer) : buffer_(buffer) {}

  std::optional<std::string_view> next() override {
    if (pos_ >= buffer_.size()) return std::nullopt;
    return get_length_prefixed(buffer_, pos_);
  }

 private:
  std::string_view buffer_;
  std::size_t pos_ = 0;
};

/// Captures combiner output values into a caller-owned buffer, asserting
/// the key-preserving contract. The caller provides the buffer so its
/// capacity can be recycled across combines (no per-combine allocation).
class CaptureSink final : public mr::EmitSink {
 public:
  CaptureSink(std::string_view expected_key, std::string& out)
      : buffer(out), expected_key_(expected_key) {}

  void emit(std::string_view key, std::string_view value) override {
    TEXTMR_CHECK(key == expected_key_,
                 "combiner must be key-preserving (frequency-buffering)");
    put_length_prefixed(buffer, value);
    ++count;
    bytes += value.size();
  }

  std::string& buffer;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;

 private:
  std::string_view expected_key_;
};

}  // namespace

FrequentKeyTable::FrequentKeyTable(std::vector<std::string> frequent_keys,
                                   Options options, mr::Reducer* combiner,
                                   mr::EmitSink& spill_sink,
                                   mr::TaskMetrics& metrics)
    : options_(options),
      combiner_(combiner),
      spill_sink_(spill_sink),
      metrics_(metrics) {
  table_.reserve(frequent_keys.size());
  for (auto& key : frequent_keys) {
    table_.emplace(std::move(key), Entry{});
  }
  // Effective per-key combine trigger: no single key may claim more than
  // its fair share of the budget (otherwise k keys at the configured
  // limit overshoot the budget and every hit churns through the
  // combine/evict slow path). Floor of 64 bytes keeps combining batchy.
  if (!table_.empty()) {
    const std::uint64_t fair_share =
        std::max<std::uint64_t>(64, options_.budget_bytes / table_.size());
    per_key_limit_ = std::min(options_.per_key_limit_bytes, fair_share);
  } else {
    per_key_limit_ = options_.per_key_limit_bytes;
  }
}

bool FrequentKeyTable::offer(std::string_view key, std::string_view value) {
  // The fast path (lookup + append) is accounted to kFreqTable by timing
  // one offer in 32 and scaling — per-offer clock reads would otherwise
  // be a significant fraction of the path they measure. The slow paths
  // below account themselves (kCombine / the spill sink's kEmit), so no
  // interval is counted twice.
  const bool timed = (sample_counter_++ & 31u) == 0;
  const std::uint64_t t0 = timed ? monotonic_ns() : 0;
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (timed) metrics_.op_ns(mr::Op::kFreqTable) += (monotonic_ns() - t0) * 32;
    return false;
  }

  Entry& entry = it->second;
  put_length_prefixed(entry.buffer, value);
  entry.count += 1;
  entry.bytes += value.size();
  buffered_bytes_ += value.size();
  metrics_.freq_hits += 1;
  if (timed) metrics_.op_ns(mr::Op::kFreqTable) += (monotonic_ns() - t0) * 32;

  if (entry.bytes > per_key_limit_) {
    if (combiner_ != nullptr) {
      combine_entry(it->first, entry);
      if (entry.bytes > per_key_limit_ ||
          buffered_bytes_ > options_.budget_bytes) {
        // "In the case where there is not enough space to store the
        // aggregated record, it is written to disk using the original
        // dataflow" (§III-A). This also bounds the work per hit for
        // storage-intensive combiners (InvertedIndex) whose aggregates
        // never shrink below the limit — without the eviction, every
        // subsequent hit would re-combine the whole aggregate.
        evict_entry(it->first, entry);
      }
    } else {
      evict_entry(it->first, entry);
    }
  } else if (buffered_bytes_ > options_.budget_bytes) {
    // Total budget exceeded by growth of this key: combine it first if
    // possible, evict if that is not enough.
    if (combiner_ != nullptr) combine_entry(it->first, entry);
    if (buffered_bytes_ > options_.budget_bytes) evict_entry(it->first, entry);
  }
  return true;
}

void FrequentKeyTable::combine_entry(std::string_view key, Entry& entry) {
  if (entry.count <= 1) return;
  mr::ScopedTimer timer(metrics_, mr::Op::kCombine);
  BufferValueStream stream(entry.buffer);
  combine_scratch_.clear();  // keeps capacity from previous combines
  CaptureSink capture(key, combine_scratch_);
  combiner_->reduce(key, stream, capture);
  buffered_bytes_ -= entry.bytes;
  // Swap, don't move: the entry's old buffer becomes next combine's
  // scratch, so steady-state combining allocates nothing.
  entry.buffer.swap(combine_scratch_);
  entry.count = capture.count;
  entry.bytes = capture.bytes;
  buffered_bytes_ += entry.bytes;
}

void FrequentKeyTable::evict_entry(std::string_view key, Entry& entry) {
  BufferValueStream stream(entry.buffer);
  while (auto value = stream.next()) {
    spill_sink_.emit(key, *value);
    metrics_.freq_flushes += 1;
  }
  buffered_bytes_ -= entry.bytes;
  entry.buffer.clear();
  entry.buffer.shrink_to_fit();
  entry.count = 0;
  entry.bytes = 0;
}

void FrequentKeyTable::flush() {
  for (auto& [key, entry] : table_) {
    if (entry.count == 0) continue;
    if (combiner_ != nullptr) combine_entry(key, entry);
    evict_entry(key, entry);
  }
}

}  // namespace textmr::freqbuf
