#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mr/metrics.hpp"
#include "mr/types.hpp"

namespace textmr::freqbuf {

/// The in-memory hash table of frequent keys (paper §III-A, Fig. 4).
///
/// Tuples whose key is in the frequent set are buffered here instead of
/// entering the sort-spill path. When one key's buffered values exceed a
/// per-key space limit, the user's combine() is applied to collapse them
/// (usually to a single much smaller tuple). If even after combining the
/// table is over its total memory budget, the aggregated record overflows
/// to the standard dataflow via the spill sink. At end of input `flush()`
/// combines every resident key once more and emits the results through
/// the standard dataflow, preserving the sorted-run invariants downstream.
///
/// Without a combiner the table still absorbs duplicates into per-key
/// buffers but can only delay (not shrink) the data; jobs without a
/// combiner gain nothing from frequency-buffering, exactly as in the
/// paper.
class FrequentKeyTable {
 public:
  struct Options {
    std::uint64_t budget_bytes = 1 << 20;      // total buffered-value budget
    std::uint64_t per_key_limit_bytes = 4096;  // combine trigger per key
  };

  /// `combiner` may be null. `spill_sink` receives overflow / flush
  /// records and must route them into the normal spill path. `metrics`
  /// receives kCombine time and the freq_* counters.
  FrequentKeyTable(std::vector<std::string> frequent_keys, Options options,
                   mr::Reducer* combiner, mr::EmitSink& spill_sink,
                   mr::TaskMetrics& metrics);

  /// Offers one tuple; returns true if it was absorbed (key is frequent),
  /// false if the caller must send it down the standard path.
  bool offer(std::string_view key, std::string_view value);

  /// Combines and emits everything still resident. Idempotent.
  void flush();

  std::size_t num_keys() const { return table_.size(); }
  std::uint64_t buffered_bytes() const { return buffered_bytes_; }

  /// The combine trigger actually in effect: the configured per-key limit
  /// capped at each key's fair share of the budget (>= 64 bytes).
  std::uint64_t effective_per_key_limit() const { return per_key_limit_; }

 private:
  /// Buffered values are stored length-prefixed in one contiguous buffer
  /// (not a vector<string>): absorbing a tuple is then a single amortized
  /// append, which keeps the table's per-hit cost far below the sort +
  /// serialize cost it saves on the spill path.
  struct Entry {
    std::string buffer;          // length-prefixed concatenated values
    std::uint64_t count = 0;     // number of buffered values
    std::uint64_t bytes = 0;     // payload bytes (excluding prefixes)
  };

  /// Applies the combiner to an entry's buffered values in place.
  void combine_entry(std::string_view key, Entry& entry);

  /// Emits an entry's buffered values through the spill sink and empties it.
  void evict_entry(std::string_view key, Entry& entry);

  struct ShHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct ShEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  Options options_;
  std::uint64_t per_key_limit_ = 0;
  std::uint32_t sample_counter_ = 0;  // fast-path timer sampling
  mr::Reducer* combiner_;
  mr::EmitSink& spill_sink_;
  mr::TaskMetrics& metrics_;
  std::unordered_map<std::string, Entry, ShHash, ShEq> table_;
  std::uint64_t buffered_bytes_ = 0;
  // Recycled combiner-output buffer; swapped with the combined entry's
  // buffer each combine_entry so neither side reallocates in steady state.
  std::string combine_scratch_;
};

}  // namespace textmr::freqbuf
