#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "freqbuf/frequent_key_table.hpp"
#include "mr/metrics.hpp"
#include "mr/types.hpp"
#include "obs/trace.hpp"
#include "sketch/exact_counter.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf_estimator.hpp"

namespace textmr::freqbuf {

/// Configuration of frequency-buffering for a job (paper §III).
struct FreqBufConfig {
  bool enabled = false;

  /// Size of the frequent-key set (paper's k; 3000 for text apps,
  /// 10000 for the log apps in §V-B2).
  std::size_t top_k = 3000;

  /// Fraction of input records to profile before freezing the key set
  /// (paper's s). 0 enables the §III-C auto-tuner, which pre-profiles
  /// `pre_profile_fraction` of the records, fits a Zipf alpha and derives
  /// s from  n*s >= k^alpha * H_{m,alpha}.
  double sampling_fraction = 0.0;

  /// Fraction of records examined by the auto-tuner's pre-profiling step
  /// ("about 1%", §III-C).
  double pre_profile_fraction = 0.01;

  /// Fraction of the spill buffer's capacity handed to the frequent-key
  /// table ("we devoted 30% of the baseline's spill buffer", §V-B2).
  /// The engine shrinks the spill buffer accordingly, keeping the total
  /// memory fixed.
  double table_budget_fraction = 0.3;

  /// Per-key buffered-value limit that triggers an eager combine().
  std::uint64_t per_key_limit_bytes = 4096;

  /// Space-Saving capacity; 0 means 4 * top_k (a realistic budget that is
  /// below the algorithm's exactness guarantee, as in §V-B1).
  std::size_t sketch_capacity = 0;

  /// Share the frozen key set between map tasks on the same node
  /// (§III-B: "our system finds the top-k frequent-key set just once for
  /// all the tasks that run on a single node").
  bool share_across_tasks = true;
};

/// Per-node cache of the frozen frequent-key set. Shared by every map
/// task a worker ("node") runs, hence the lock: concurrent tasks race to
/// publish their frozen set and the first writer wins (paper §III-B).
///
/// In cluster mode the cache is additionally backed by a node-local file
/// (attach_file): the first frozen set is persisted via tmp+rename, and a
/// replacement worker process for the same node reloads it, so the top-k
/// set is still found only once per node across worker restarts
/// (DESIGN.md §10).
class NodeKeyCache {
 public:
  std::optional<std::vector<std::string>> get() const {
    textmr::MutexLock lock(mu_);
    return keys_;
  }

  /// First writer wins; later tasks keep the established set. With an
  /// attached file, the winning set is persisted exactly once.
  void put(std::vector<std::string> keys);

  /// Attaches the node-local cache file, loading a previously persisted
  /// set if one exists (a corrupt or unreadable file is treated as
  /// absent — the cache is an optimization, never a correctness
  /// dependency). Call before the first task runs.
  void attach_file(std::filesystem::path path);

  /// Serialized form of a key set (the cache-file format): used by the
  /// persistence path and by tests asserting file contents.
  static std::string encode_keys(const std::vector<std::string>& keys);
  static std::optional<std::vector<std::string>> decode_keys(
      std::string_view bytes);

 private:
  mutable textmr::Mutex mu_{textmr::LockRank::kFreqBuf,
                            "freqbuf.node_key_cache"};
  std::optional<std::vector<std::string>> keys_ TEXTMR_GUARDED_BY(mu_);
  std::filesystem::path file_ TEXTMR_GUARDED_BY(mu_);
};

/// Map-side frequency-buffering state machine. One instance per map task,
/// living on the map thread's emit path:
///
///   kPreProfile --(pre_profile_fraction reached)--> kProfile
///   kProfile    --(sampling fraction s reached)---> kOptimize
///
/// During the first two stages every record continues down the standard
/// spill path (offer() returns false) while being counted; in kOptimize
/// records with frequent keys are absorbed by the FrequentKeyTable.
/// With a shared NodeKeyCache holding a frozen set, a task starts directly
/// in kOptimize.
class FreqBufferController {
 public:
  enum class Stage { kPreProfile, kProfile, kOptimize };

  /// `spill_sink` is where absorbed records re-enter the standard
  /// dataflow (table overflow + final flush). `combiner` may be null.
  /// `trace` (optional, owned by the map thread) receives stage
  /// transitions and sampled occupancy / hit-rate counters.
  FreqBufferController(const FreqBufConfig& config,
                       std::uint64_t table_budget_bytes,
                       mr::Reducer* combiner, mr::EmitSink& spill_sink,
                       mr::TaskMetrics& metrics,
                       NodeKeyCache* node_cache = nullptr,
                       obs::TraceBuffer* trace = nullptr);

  /// Must be called (cheaply) as input is consumed: fraction in [0,1] of
  /// the task's input processed so far. Drives stage transitions.
  void set_progress(double fraction);

  /// Routes one map-output tuple. Returns true if absorbed.
  bool offer(std::string_view key, std::string_view value);

  /// Flushes the table into the spill sink. Call once at end of input.
  void finish();

  Stage stage() const { return stage_; }

  /// The sampling fraction in effect (fixed or auto-tuned); meaningful
  /// once the controller leaves kPreProfile.
  double effective_sampling_fraction() const { return effective_s_; }

  /// The auto-tuner's fitted Zipf parameter (nullopt for fixed s or
  /// before the fit happens).
  std::optional<sketch::ZipfFit> zipf_fit() const { return fit_; }

  const FrequentKeyTable* table() const { return table_.get(); }

 private:
  void enter_profile_stage();
  void freeze_keys();
  void start_optimize(std::vector<std::string> keys);

  FreqBufConfig config_;
  std::uint64_t table_budget_bytes_;
  mr::Reducer* combiner_;
  mr::EmitSink& spill_sink_;
  mr::TaskMetrics& metrics_;
  NodeKeyCache* node_cache_;
  obs::TraceBuffer* trace_;

  Stage stage_ = Stage::kPreProfile;
  double progress_ = 0.0;
  double effective_s_ = 0.0;
  std::uint64_t records_seen_ = 0;

  sketch::ExactCounter pre_counts_;   // pre-profiling (exact over ~1%)
  std::optional<sketch::ZipfFit> fit_;
  std::unique_ptr<sketch::SpaceSaving> sketch_;
  std::unique_ptr<FrequentKeyTable> table_;
};

}  // namespace textmr::freqbuf
