#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace textmr::io {

/// Byte-range description of a portion of an input file. Splits follow
/// Hadoop semantics: a reader assigned [offset, offset+length) skips the
/// first (partial) line unless offset == 0, and reads past the end of the
/// range until it completes the line that straddles the boundary. Together
/// the splits of a file therefore cover every line exactly once.
struct InputSplit {
  std::string path;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  friend bool operator==(const InputSplit&, const InputSplit&) = default;
};

/// Buffered line reader over an InputSplit.
///
/// Lines are returned without their trailing '\n'. A trailing '\r' (CRLF
/// input) is also stripped. The returned string_view is valid until the
/// next call to `next_line`.
class LineReader {
 public:
  explicit LineReader(const InputSplit& split,
                      std::size_t buffer_size = 1 << 16);
  ~LineReader();

  LineReader(const LineReader&) = delete;
  LineReader& operator=(const LineReader&) = delete;

  /// Returns the next full line owned by this split, or nullopt at end.
  std::optional<std::string_view> next_line();

  /// Bytes consumed from the underlying file so far (includes newline
  /// bytes and any boundary-straddling tail line). Advances in buffer-
  /// sized jumps; use `fraction_consumed` for smooth progress.
  std::uint64_t bytes_read() const { return bytes_read_; }

  /// Fraction of the split's byte range logically consumed so far, in
  /// [0, 1]. Record-accurate (advances per line), which the
  /// frequency-buffering profiler relies on for its stage transitions.
  double fraction_consumed() const {
    if (initial_range_ == 0) return 1.0;
    return 1.0 - static_cast<double>(remaining_) /
                     static_cast<double>(initial_range_);
  }

 private:
  bool fill();

  std::FILE* file_ = nullptr;
  std::vector<char> buffer_;
  std::size_t buf_begin_ = 0;   // first unconsumed byte in buffer_
  std::size_t buf_end_ = 0;     // one past last valid byte in buffer_
  std::string line_;            // backing store when a line spans refills
  std::uint64_t remaining_ = 0; // bytes of the split range not yet consumed
  std::uint64_t initial_range_ = 0;
  std::uint64_t bytes_read_ = 0;
  bool at_eof_ = false;
  bool past_range_ = false;     // consumed the full range; finishing last line
};

/// Compute splits of roughly `target_split_bytes` for a file. The final
/// split absorbs any remainder smaller than half a split.
std::vector<InputSplit> make_splits(const std::string& path,
                                    std::uint64_t target_split_bytes);

}  // namespace textmr::io
