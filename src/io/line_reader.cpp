#include "io/line_reader.hpp"

#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace textmr::io {

LineReader::LineReader(const InputSplit& split, std::size_t buffer_size)
    : buffer_(buffer_size), remaining_(split.length) {
  TEXTMR_CHECK(buffer_size > 0, "line reader buffer must be non-empty");
  TEXTMR_FAILPOINT("dfs.open");
  file_ = std::fopen(split.path.c_str(), "rb");
  if (file_ == nullptr) {
    throw IoError("cannot open " + split.path);
  }
  // Hadoop's LineRecordReader trick: for a non-zero offset, seek one byte
  // early and discard through the first newline. If a line ends exactly at
  // offset-1 the discarded "line" is empty, so the real line starting at
  // offset is kept; otherwise the partial line (owned by the previous
  // split, which reads past its end to finish it) is dropped.
  const std::uint64_t seek_to = split.offset > 0 ? split.offset - 1 : 0;
  if (std::fseek(file_, static_cast<long>(seek_to), SEEK_SET) != 0) {
    std::fclose(file_);
    throw IoError("cannot seek to split offset in " + split.path);
  }
  if (split.offset > 0) {
    remaining_ += 1;  // account for the extra byte at offset-1
    while (remaining_ > 0) {
      if (buf_begin_ == buf_end_ && !fill()) {
        remaining_ = 0;
        break;
      }
      const char* nl = static_cast<const char*>(std::memchr(
          buffer_.data() + buf_begin_, '\n', buf_end_ - buf_begin_));
      const std::size_t avail = buf_end_ - buf_begin_;
      const std::size_t skip =
          (nl != nullptr)
              ? static_cast<std::size_t>(nl - (buffer_.data() + buf_begin_)) + 1
              : avail;
      const std::size_t counted =
          static_cast<std::size_t>(std::min<std::uint64_t>(skip, remaining_));
      buf_begin_ += skip;
      remaining_ -= counted;
      if (nl != nullptr) break;
      if (counted < skip) {
        // Newline found beyond the range end: the whole split was one
        // partial line.
        remaining_ = 0;
        break;
      }
    }
  }
  initial_range_ = remaining_;  // the byte range this split's lines occupy
}

LineReader::~LineReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool LineReader::fill() {
  if (at_eof_) return false;
  buf_begin_ = 0;
  buf_end_ = std::fread(buffer_.data(), 1, buffer_.size(), file_);
  bytes_read_ += buf_end_;
  if (buf_end_ == 0) {
    at_eof_ = true;
    return false;
  }
  return true;
}

std::optional<std::string_view> LineReader::next_line() {
  // A line belongs to this split iff its first byte is inside the range.
  if (remaining_ == 0) return std::nullopt;

  line_.clear();
  bool spanning = false;
  while (true) {
    if (buf_begin_ == buf_end_ && !fill()) {
      // EOF: a final line without trailing newline still counts.
      remaining_ = 0;
      if (spanning && !line_.empty()) {
        if (!line_.empty() && line_.back() == '\r') line_.pop_back();
        return std::string_view(line_);
      }
      return std::nullopt;
    }
    const char* base = buffer_.data() + buf_begin_;
    const std::size_t avail = buf_end_ - buf_begin_;
    const char* nl = static_cast<const char*>(std::memchr(base, '\n', avail));
    if (nl == nullptr) {
      line_.append(base, avail);
      spanning = true;
      const std::uint64_t counted = std::min<std::uint64_t>(avail, remaining_);
      remaining_ -= counted;
      buf_begin_ = buf_end_;
      continue;
    }
    const std::size_t line_len = static_cast<std::size_t>(nl - base);
    const std::uint64_t consumed = line_len + 1;  // include '\n'
    remaining_ -= std::min<std::uint64_t>(consumed, remaining_);
    buf_begin_ += line_len + 1;
    if (spanning) {
      line_.append(base, line_len);
      if (!line_.empty() && line_.back() == '\r') line_.pop_back();
      return std::string_view(line_);
    }
    std::string_view view(base, line_len);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    return view;
  }
}

std::vector<InputSplit> make_splits(const std::string& path,
                                    std::uint64_t target_split_bytes) {
  TEXTMR_CHECK(target_split_bytes > 0, "split size must be positive");
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("cannot stat " + path + ": " + ec.message());

  std::vector<InputSplit> splits;
  if (size == 0) return splits;
  std::uint64_t offset = 0;
  while (offset < size) {
    std::uint64_t length = std::min<std::uint64_t>(target_split_bytes, size - offset);
    // Absorb a short tail into the last split instead of creating a sliver.
    if (size - (offset + length) < target_split_bytes / 2) {
      length = size - offset;
    }
    splits.push_back(InputSplit{path, offset, length});
    offset += length;
  }
  return splits;
}

}  // namespace textmr::io
