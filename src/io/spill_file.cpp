#include "io/spill_file.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/varint.hpp"

namespace textmr::io {
namespace {

constexpr std::uint32_t kMagic = 0x54585252;  // "TXRR"
constexpr std::size_t kWriteBufferBytes = 1 << 18;
constexpr std::size_t kReadChunkBytes = 1 << 16;

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

void encode_record(std::string& out, std::string_view key,
                   std::string_view value, SpillFormat format) {
  if (format == SpillFormat::kCompactVarint) {
    textmr::put_varint(out, key.size());
    textmr::put_varint(out, value.size());
  } else {
    textmr::put_fixed32(out, static_cast<std::uint32_t>(key.size()));
    textmr::put_fixed32(out, static_cast<std::uint32_t>(value.size()));
  }
  out.append(key.data(), key.size());
  out.append(value.data(), value.size());
}

std::size_t encoded_record_size(std::size_t key_size, std::size_t value_size,
                                SpillFormat format) {
  const std::size_t header = (format == SpillFormat::kCompactVarint)
                                 ? varint_size(key_size) + varint_size(value_size)
                                 : 8;
  return header + key_size + value_size;
}

std::size_t encode_frame_header(char* dest, std::size_t key_size,
                                std::size_t value_size, SpillFormat format) {
  if (format == SpillFormat::kCompactVarint) {
    char* p = dest;
    std::uint64_t v = key_size;
    while (v >= 0x80) {
      *p++ = static_cast<char>(v | 0x80);
      v >>= 7;
    }
    *p++ = static_cast<char>(v);
    v = value_size;
    while (v >= 0x80) {
      *p++ = static_cast<char>(v | 0x80);
      v >>= 7;
    }
    *p++ = static_cast<char>(v);
    return static_cast<std::size_t>(p - dest);
  }
  const auto k = static_cast<std::uint32_t>(key_size);
  const auto v = static_cast<std::uint32_t>(value_size);
  for (int i = 0; i < 4; ++i) {
    dest[i] = static_cast<char>((k >> (8 * i)) & 0xff);
    dest[4 + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  return 8;
}

FrameHeader decode_frame_header(std::string_view data, SpillFormat format) {
  FrameHeader header;
  std::size_t pos = 0;
  std::uint64_t klen;
  std::uint64_t vlen;
  if (format == SpillFormat::kCompactVarint) {
    klen = textmr::get_varint(data, pos);
    vlen = textmr::get_varint(data, pos);
  } else {
    klen = textmr::get_fixed32(data, pos);
    vlen = textmr::get_fixed32(data, pos);
  }
  // Two comparisons, not klen + vlen (which a corrupt varint could wrap).
  if (klen > data.size() - pos || vlen > data.size() - pos - klen) {
    throw FormatError("record frame exceeds available bytes");
  }
  header.key_size = static_cast<std::uint32_t>(klen);
  header.value_size = static_cast<std::uint32_t>(vlen);
  header.header_size = static_cast<std::uint16_t>(pos);
  return header;
}

SpillRunWriter::SpillRunWriter(std::string path, std::uint32_t num_partitions,
                               SpillFormat format)
    : path_(std::move(path)), format_(format) {
  TEXTMR_CHECK(num_partitions > 0, "run file needs >= 1 partition");
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) throw IoError("cannot create run file " + path_);
  partitions_.resize(num_partitions);
  buffer_.reserve(kWriteBufferBytes + 4096);
}

SpillRunWriter::~SpillRunWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void SpillRunWriter::flush_buffer() {
  if (buffer_.empty()) return;
  std::size_t want = buffer_.size();
  if (failpoint::enabled()) {
    // "spill.write" owns a byte buffer, so it honors every action kind:
    // kShortWrite writes a prefix and lets the existing short-write check
    // below fire (like a real ENOSPC), kCorrupt flips a byte mid-buffer.
    if (const auto fault = failpoint::consume("spill.write")) {
      switch (fault->kind) {
        case failpoint::ActionKind::kThrow:
          throw failpoint::InjectedFault("spill.write");
        case failpoint::ActionKind::kShortWrite:
          want /= 2;
          break;
        case failpoint::ActionKind::kCorrupt:
          buffer_[buffer_.size() / 2] =
              static_cast<char>(buffer_[buffer_.size() / 2] ^ 0x5a);
          break;
        case failpoint::ActionKind::kDelay:
          failpoint::maybe_delay(*fault);
          break;
      }
    }
  }
  if (std::fwrite(buffer_.data(), 1, want, file_) != buffer_.size()) {
    throw IoError("short write to " + path_);
  }
  buffer_.clear();
}

void SpillRunWriter::append(std::uint32_t partition, std::string_view key,
                            std::string_view value) {
  TEXTMR_CHECK(!finished_, "append after finish");
  TEXTMR_CHECK(partition < partitions_.size(), "partition out of range");
  TEXTMR_CHECK(static_cast<std::int64_t>(partition) >= current_partition_,
               "partitions must be appended in nondecreasing order");
  if (static_cast<std::int64_t>(partition) != current_partition_) {
    current_partition_ = partition;
    partitions_[partition].offset = bytes_;
  }
  const std::size_t before = buffer_.size();
  encode_record(buffer_, key, value, format_);
  const std::uint64_t record_bytes = buffer_.size() - before;
  bytes_ += record_bytes;
  records_ += 1;
  partitions_[partition].bytes += record_bytes;
  partitions_[partition].records += 1;
  if (buffer_.size() >= kWriteBufferBytes) flush_buffer();
}

void SpillRunWriter::append_frame(std::uint32_t partition,
                                  std::string_view frame) {
  TEXTMR_CHECK(!finished_, "append after finish");
  TEXTMR_CHECK(partition < partitions_.size(), "partition out of range");
  TEXTMR_CHECK(static_cast<std::int64_t>(partition) >= current_partition_,
               "partitions must be appended in nondecreasing order");
  if (static_cast<std::int64_t>(partition) != current_partition_) {
    current_partition_ = partition;
    partitions_[partition].offset = bytes_;
  }
  buffer_.append(frame.data(), frame.size());
  bytes_ += frame.size();
  records_ += 1;
  partitions_[partition].bytes += frame.size();
  partitions_[partition].records += 1;
  if (buffer_.size() >= kWriteBufferBytes) flush_buffer();
}

SpillRunInfo SpillRunWriter::finish() {
  TEXTMR_CHECK(!finished_, "finish called twice");
  finished_ = true;
  // Partitions that received no records still need a consistent offset:
  // point them at the position where their records would have begun.
  std::uint64_t running = 0;
  for (auto& extent : partitions_) {
    if (extent.records == 0) extent.offset = running;
    running = extent.offset + extent.bytes;
  }
  for (const auto& extent : partitions_) {
    textmr::put_fixed64(buffer_, extent.offset);
    textmr::put_fixed64(buffer_, extent.bytes);
    textmr::put_fixed64(buffer_, extent.records);
  }
  textmr::put_fixed32(buffer_, static_cast<std::uint32_t>(partitions_.size()));
  textmr::put_fixed32(buffer_, kMagic);
  flush_buffer();
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    throw IoError("close failed for " + path_);
  }
  file_ = nullptr;
  return SpillRunInfo{path_, bytes_, records_, partitions_};
}

SpillRunReader::SpillRunReader(std::string path, SpillFormat format)
    : path_(std::move(path)), format_(format) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open run file " + path_);
  if (std::fseek(f, -8, SEEK_END) != 0) {
    std::fclose(f);
    throw FormatError("run file too small: " + path_);
  }
  char tail[8];
  if (std::fread(tail, 1, 8, f) != 8) {
    std::fclose(f);
    throw FormatError("cannot read run footer: " + path_);
  }
  std::size_t pos = 0;
  const std::string_view tail_view(tail, 8);
  const std::uint32_t num_partitions = textmr::get_fixed32(tail_view, pos);
  const std::uint32_t magic = textmr::get_fixed32(tail_view, pos);
  if (magic != kMagic) {
    std::fclose(f);
    throw FormatError("bad magic in run file " + path_);
  }
  const long footer_bytes = static_cast<long>(num_partitions) * 24 + 8;
  if (std::fseek(f, -footer_bytes, SEEK_END) != 0) {
    std::fclose(f);
    throw FormatError("run footer exceeds file size: " + path_);
  }
  std::string footer(static_cast<std::size_t>(footer_bytes) - 8, '\0');
  if (std::fread(footer.data(), 1, footer.size(), f) != footer.size()) {
    std::fclose(f);
    throw FormatError("short footer read: " + path_);
  }
  std::fclose(f);
  partitions_.resize(num_partitions);
  pos = 0;
  for (auto& extent : partitions_) {
    extent.offset = textmr::get_fixed64(footer, pos);
    extent.bytes = textmr::get_fixed64(footer, pos);
    extent.records = textmr::get_fixed64(footer, pos);
  }
}

const PartitionExtent& SpillRunReader::extent(std::uint32_t partition) const {
  TEXTMR_CHECK(partition < partitions_.size(), "partition out of range");
  return partitions_[partition];
}

RunCursor SpillRunReader::open(std::uint32_t partition) const {
  return RunCursor(path_, extent(partition), format_);
}

std::string SpillRunReader::read_partition(std::uint32_t partition) const {
  const PartitionExtent& ext = extent(partition);
  std::string data(static_cast<std::size_t>(ext.bytes), '\0');
  if (ext.bytes == 0) return data;
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) throw IoError("cannot open run file " + path_);
  if (std::fseek(f, static_cast<long>(ext.offset), SEEK_SET) != 0) {
    std::fclose(f);
    throw IoError("cannot seek in run file " + path_);
  }
  const std::size_t got = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) throw FormatError("unexpected EOF in run file");
  if (failpoint::enabled()) {
    // Same "spill.read" site as the streaming cursor, consumed once per
    // bulk read: kCorrupt flips a mid-buffer byte, other kinds throw or
    // delay.
    if (const auto fault = failpoint::consume("spill.read")) {
      if (fault->kind == failpoint::ActionKind::kCorrupt) {
        data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x5a);
      } else if (fault->kind == failpoint::ActionKind::kDelay) {
        failpoint::maybe_delay(*fault);
      } else {
        throw failpoint::InjectedFault("spill.read");
      }
    }
  }
  return data;
}

RunCursor::RunCursor(const std::string& path, const PartitionExtent& extent,
                     SpillFormat format)
    : format_(format),
      remaining_bytes_(extent.bytes),
      remaining_records_(extent.records) {
  if (extent.records == 0) return;  // never opens the file
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) throw IoError("cannot open run file " + path);
  if (std::fseek(file_, static_cast<long>(extent.offset), SEEK_SET) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    throw IoError("cannot seek in run file " + path);
  }
}

RunCursor::~RunCursor() {
  if (file_ != nullptr) std::fclose(file_);
}

RunCursor::RunCursor(RunCursor&& other) noexcept
    : file_(other.file_),
      format_(other.format_),
      buffer_(std::move(other.buffer_)),
      pos_(other.pos_),
      remaining_bytes_(other.remaining_bytes_),
      remaining_records_(other.remaining_records_),
      bytes_consumed_(other.bytes_consumed_) {
  other.file_ = nullptr;
  other.remaining_records_ = 0;
}

bool RunCursor::ensure(std::size_t needed) {
  if (buffer_.size() - pos_ >= needed) return true;
  // Compact consumed prefix, then top up from the file.
  buffer_.erase(0, pos_);
  pos_ = 0;
  while (buffer_.size() < needed && remaining_bytes_ > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(kReadChunkBytes, remaining_bytes_));
    const std::size_t old = buffer_.size();
    buffer_.resize(old + want);
    const std::size_t got = std::fread(buffer_.data() + old, 1, want, file_);
    buffer_.resize(old + got);
    remaining_bytes_ -= got;
    if (got == 0) throw FormatError("unexpected EOF in run file");
    if (failpoint::enabled()) {
      // "spill.read": kCorrupt flips a byte of the freshly read chunk
      // (surfacing later as a FormatError or garbled record); other
      // fault kinds throw here.
      if (const auto fault = failpoint::consume("spill.read")) {
        if (fault->kind == failpoint::ActionKind::kCorrupt) {
          buffer_[old + got / 2] =
              static_cast<char>(buffer_[old + got / 2] ^ 0x5a);
        } else if (fault->kind == failpoint::ActionKind::kDelay) {
          failpoint::maybe_delay(*fault);
        } else {
          throw failpoint::InjectedFault("spill.read");
        }
      }
    }
  }
  return buffer_.size() - pos_ >= needed;
}

std::optional<RecordView> RunCursor::next() {
  if (remaining_records_ == 0) return std::nullopt;
  std::uint64_t klen;
  std::uint64_t vlen;
  if (format_ == SpillFormat::kCompactVarint) {
    // Varint headers are at most 10+10 bytes; make sure enough is buffered
    // to decode them, then the payload.
    ensure(20);
    std::size_t p = pos_;
    const std::string_view view(buffer_);
    klen = textmr::get_varint(view, p);
    vlen = textmr::get_varint(view, p);
    const std::size_t header = p - pos_;
    if (!ensure(header + klen + vlen)) throw FormatError("truncated record");
    pos_ += header;
    bytes_consumed_ += header;
  } else {
    if (!ensure(8)) throw FormatError("truncated record header");
    std::size_t p = pos_;
    const std::string_view view(buffer_);
    klen = textmr::get_fixed32(view, p);
    vlen = textmr::get_fixed32(view, p);
    if (!ensure(8 + klen + vlen)) throw FormatError("truncated record");
    pos_ += 8;
    bytes_consumed_ += 8;
  }
  RecordView record{
      std::string_view(buffer_).substr(pos_, klen),
      std::string_view(buffer_).substr(pos_ + klen, vlen),
  };
  pos_ += klen + vlen;
  bytes_consumed_ += klen + vlen;
  remaining_records_ -= 1;
  return record;
}

}  // namespace textmr::io
