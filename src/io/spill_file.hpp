#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "io/record.hpp"

namespace textmr::io {

/// On-disk format for one sorted run produced by a spill (or by the final
/// map-side merge). Records are grouped by partition, and within each
/// partition sorted by key — the invariant the shuffle and merge phases
/// rely on.
///
/// Layout:
///   record stream:  per record  [varint klen][varint vlen][key][value]
///   footer:         per partition [fixed64 offset][fixed64 bytes][fixed64 count]
///                   [fixed32 num_partitions][fixed32 magic]
///
/// The varint framing is deliberately the compact choice; the
/// `SpillFormat::kFixed32` ablation (DESIGN.md §7) swaps it for fixed-width
/// framing to expose serialization-cost sensitivity.
enum class SpillFormat : std::uint8_t { kCompactVarint, kFixed32 };

struct PartitionExtent {
  std::uint64_t offset = 0;  // byte offset of first record
  std::uint64_t bytes = 0;   // total record-stream bytes
  std::uint64_t records = 0;
};

struct SpillRunInfo {
  std::string path;
  std::uint64_t bytes = 0;    // record-stream bytes (excludes footer)
  std::uint64_t records = 0;
  std::vector<PartitionExtent> partitions;
};

/// Upper bound on the frame header (two 10-byte varints); callers
/// encoding into raw storage must have at least this much room.
inline constexpr std::size_t kMaxFrameHeaderBytes = 20;

/// Decoded frame header of the record at the start of a byte range.
struct FrameHeader {
  std::uint32_t key_size = 0;
  std::uint32_t value_size = 0;
  std::uint16_t header_size = 0;  // bytes before the key
};

/// Encodes the frame header for a (key_size, value_size) record into
/// `dest` (which must have room for kMaxFrameHeaderBytes); returns the
/// header size. The full frame is [header][key][value] — exactly the
/// record stream layout above, so frames built in memory can be written
/// to a run file verbatim (SpillRunWriter::append_frame).
std::size_t encode_frame_header(char* dest, std::size_t key_size,
                                std::size_t value_size, SpillFormat format);

/// Decodes the frame header at the start of `data`, validating that the
/// whole framed record fits inside `data`. Throws FormatError otherwise.
FrameHeader decode_frame_header(std::string_view data, SpillFormat format);

/// Sequential writer. `append` must be called with nondecreasing partition
/// ids; key order within a partition is the caller's responsibility (the
/// spill sorter guarantees it).
class SpillRunWriter {
 public:
  SpillRunWriter(std::string path, std::uint32_t num_partitions,
                 SpillFormat format = SpillFormat::kCompactVarint);
  ~SpillRunWriter();

  SpillRunWriter(const SpillRunWriter&) = delete;
  SpillRunWriter& operator=(const SpillRunWriter&) = delete;

  void append(std::uint32_t partition, std::string_view key,
              std::string_view value);

  /// Appends one record that is already framed in this writer's format
  /// (a blit — no re-encoding). The spill path uses this to write ring
  /// records byte-for-byte as they already sit in memory.
  void append_frame(std::uint32_t partition, std::string_view frame);

  SpillFormat format() const { return format_; }

  /// Writes the footer and closes the file. Must be called exactly once.
  SpillRunInfo finish();

 private:
  void flush_buffer();

  std::string path_;
  std::FILE* file_;
  SpillFormat format_;
  std::string buffer_;
  std::uint64_t bytes_ = 0;
  std::uint64_t records_ = 0;
  std::int64_t current_partition_ = -1;
  std::vector<PartitionExtent> partitions_;
  bool finished_ = false;
};

/// Streaming cursor over one partition's records in a run file. Each cursor
/// owns an independent file handle, so many cursors (k-way merge inputs)
/// can be open on the same run.
class RunCursor {
 public:
  RunCursor(const std::string& path, const PartitionExtent& extent,
            SpillFormat format);
  ~RunCursor();

  RunCursor(const RunCursor&) = delete;
  RunCursor& operator=(const RunCursor&) = delete;
  RunCursor(RunCursor&&) noexcept;

  /// Next record, or nullopt at the end of the partition. The view is
  /// valid until the next call.
  std::optional<RecordView> next() TEXTMR_LIFETIME_BOUND;

  std::uint64_t bytes_read() const { return bytes_consumed_; }

 private:
  bool ensure(std::size_t needed);

  std::FILE* file_ = nullptr;
  SpillFormat format_;
  std::string buffer_;
  std::size_t pos_ = 0;
  std::uint64_t remaining_bytes_ = 0;   // record-stream bytes not yet buffered
  std::uint64_t remaining_records_ = 0;
  std::uint64_t bytes_consumed_ = 0;
};

/// Opens a run file's footer.
class SpillRunReader {
 public:
  explicit SpillRunReader(std::string path,
                          SpillFormat format = SpillFormat::kCompactVarint);

  std::uint32_t num_partitions() const {
    return static_cast<std::uint32_t>(partitions_.size());
  }
  const PartitionExtent& extent(std::uint32_t partition) const
      TEXTMR_LIFETIME_BOUND;
  SpillFormat format() const { return format_; }

  /// Cursor over one partition.
  RunCursor open(std::uint32_t partition) const;

  /// Reads one partition's whole record stream in a single bulk read.
  /// The returned bytes are frames in this run's format; decode them in
  /// place with mr::index_frames for a copy-free record index (the
  /// reduce-side shuffle path).
  std::string read_partition(std::uint32_t partition) const;

 private:
  std::string path_;
  SpillFormat format_;
  std::vector<PartitionExtent> partitions_;
};

/// Serialize one record into `out` using `format`; shared by writer and
/// the in-memory spill sorter (for exact size accounting).
void encode_record(std::string& out, std::string_view key,
                   std::string_view value, SpillFormat format);

/// Size in bytes `encode_record` would produce.
std::size_t encoded_record_size(std::size_t key_size, std::size_t value_size,
                                SpillFormat format);

}  // namespace textmr::io
