#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "io/line_reader.hpp"

namespace textmr::io {

/// Atomically replaces `path` with `contents`: writes `path` + ".tmp" and
/// renames it into place, so readers never observe a partial file. This is
/// the commit primitive shared by the reduce-output rename path, the
/// cluster engine's first-writer-wins task commit, and the per-node
/// frequent-key cache files (DESIGN.md §10). Throws IoError on failure.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents);

/// A split plus its block-locality hint, the information a MapReduce
/// scheduler uses to place map tasks near their data.
struct DfsSplit {
  InputSplit split;
  std::uint32_t preferred_node = 0;

  friend bool operator==(const DfsSplit&, const DfsSplit&) = default;
};

/// SimDfs: a minimal distributed-filesystem stand-in backed by a local
/// directory. Files are stored as ordinary files (so generators and
/// readers are plain file I/O), but SimDfs tracks a virtual block layout —
/// fixed-size blocks assigned round-robin to `num_nodes` virtual nodes —
/// and serves locality-annotated splits from it. The cluster simulator
/// (src/sim) uses the node assignment to model local vs. remote reads;
/// the real LocalEngine only uses the byte ranges.
///
/// Layout metadata is persisted in a `<name>.dfsmeta` sidecar so a SimDfs
/// can be reopened over an existing directory.
class SimDfs {
 public:
  struct Options {
    std::uint32_t num_nodes = 1;
    std::uint64_t block_bytes = 64ull << 20;  // HDFS-style 64 MiB default
  };

  SimDfs(std::filesystem::path root, Options options);

  const std::filesystem::path& root() const { return root_; }
  std::uint32_t num_nodes() const { return options_.num_nodes; }
  std::uint64_t block_bytes() const { return options_.block_bytes; }

  /// Absolute path of a file in this DFS namespace.
  std::filesystem::path path_of(const std::string& name) const;

  /// Registers a file that was written directly into the namespace
  /// (e.g. by a dataset generator) and assigns its blocks to nodes.
  void commit(const std::string& name);

  bool exists(const std::string& name) const;
  std::uint64_t file_size(const std::string& name) const;

  /// Locality-annotated splits. If `split_bytes` is 0 the block size is
  /// used, yielding one split per block (the Hadoop default).
  std::vector<DfsSplit> splits(const std::string& name,
                               std::uint64_t split_bytes = 0) const;

  /// Node that owns the block containing `offset` of a committed file.
  std::uint32_t node_of(const std::string& name, std::uint64_t offset) const;

 private:
  void write_meta(const std::string& name, std::uint32_t first_node) const;
  std::uint32_t read_meta(const std::string& name) const;

  std::filesystem::path root_;
  Options options_;
  std::uint32_t next_node_ = 0;  // round-robin start node for new files
};

}  // namespace textmr::io
