#pragma once

#include <string>
#include <string_view>

namespace textmr::io {

/// An owned intermediate record. Keys and values are opaque byte strings;
/// typed applications serialize into them (see src/apps). This mirrors
/// Hadoop's BytesWritable boundary: every record crossing between user code
/// and the framework pays an explicit serialization cost, which is exactly
/// the "emit" operation of the paper's Table I.
struct Record {
  std::string key;
  std::string value;

  friend bool operator==(const Record&, const Record&) = default;
};

/// A non-owning view of a record, used on read paths (spill runs, merge,
/// shuffle) to avoid copies until a copy is semantically required.
struct RecordView {
  std::string_view key;
  std::string_view value;

  Record to_record() const { return Record{std::string(key), std::string(value)}; }

  friend bool operator==(const RecordView&, const RecordView&) = default;
};

}  // namespace textmr::io
