#include "io/dfs.hpp"

#include <fstream>

#include "common/error.hpp"

namespace textmr::io {

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view contents) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open " + tmp.string() + " for writing");
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) throw IoError("short write to " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm_ec;
    std::filesystem::remove(tmp, rm_ec);
    throw IoError("cannot rename " + tmp.string() + " -> " + path.string() +
                  ": " + ec.message());
  }
}

SimDfs::SimDfs(std::filesystem::path root, Options options)
    : root_(std::move(root)), options_(options) {
  TEXTMR_CHECK(options_.num_nodes >= 1, "SimDfs needs >= 1 node");
  TEXTMR_CHECK(options_.block_bytes >= 1, "SimDfs block size must be positive");
  std::filesystem::create_directories(root_);
}

std::filesystem::path SimDfs::path_of(const std::string& name) const {
  TEXTMR_CHECK(name.find("..") == std::string::npos, "path escapes namespace");
  return root_ / name;
}

void SimDfs::commit(const std::string& name) {
  if (!std::filesystem::exists(path_of(name))) {
    throw IoError("commit of missing file " + name);
  }
  write_meta(name, next_node_);
  next_node_ = (next_node_ + 1) % options_.num_nodes;
}

bool SimDfs::exists(const std::string& name) const {
  return std::filesystem::exists(path_of(name)) &&
         std::filesystem::exists(path_of(name + ".dfsmeta"));
}

std::uint64_t SimDfs::file_size(const std::string& name) const {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_of(name), ec);
  if (ec) throw IoError("cannot stat " + name + ": " + ec.message());
  return size;
}

void SimDfs::write_meta(const std::string& name,
                        std::uint32_t first_node) const {
  std::ofstream meta(path_of(name + ".dfsmeta"));
  if (!meta) throw IoError("cannot write dfs metadata for " + name);
  meta << "first_node " << first_node << "\n"
       << "block_bytes " << options_.block_bytes << "\n"
       << "num_nodes " << options_.num_nodes << "\n";
}

std::uint32_t SimDfs::read_meta(const std::string& name) const {
  std::ifstream meta(path_of(name + ".dfsmeta"));
  if (!meta) throw IoError("file not committed to SimDfs: " + name);
  std::string field;
  std::uint32_t first_node = 0;
  if (!(meta >> field >> first_node) || field != "first_node") {
    throw FormatError("bad dfs metadata for " + name);
  }
  return first_node;
}

std::uint32_t SimDfs::node_of(const std::string& name,
                              std::uint64_t offset) const {
  const std::uint32_t first_node = read_meta(name);
  const std::uint64_t block = offset / options_.block_bytes;
  return static_cast<std::uint32_t>((first_node + block) % options_.num_nodes);
}

std::vector<DfsSplit> SimDfs::splits(const std::string& name,
                                     std::uint64_t split_bytes) const {
  const std::uint32_t first_node = read_meta(name);
  if (split_bytes == 0) split_bytes = options_.block_bytes;
  const auto base = make_splits(path_of(name).string(), split_bytes);
  std::vector<DfsSplit> result;
  result.reserve(base.size());
  for (const auto& split : base) {
    const std::uint64_t block = split.offset / options_.block_bytes;
    result.push_back(DfsSplit{
        split, static_cast<std::uint32_t>((first_node + block) %
                                          options_.num_nodes)});
  }
  return result;
}

}  // namespace textmr::io
