#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/stopwatch.hpp"

namespace textmr::obs {

/// Structured trace subsystem (ISSUE 1): a low-overhead per-thread ring
/// of typed events covering the engine's lifecycle — task begin/end,
/// spill seal/sort/combine/write, spill-matcher threshold updates with
/// the measured T_p/T_c, frequency-buffering stage transitions, merge,
/// shuffle — exportable to Chrome trace JSON (chrome://tracing,
/// Perfetto) and JSONL. Everything is gated on a nullable TraceBuffer*:
/// with tracing disabled every hook is a single pointer compare.

enum class EventKind : std::uint8_t {
  kSpan,     // has dur_ns; Chrome "X" (complete) event
  kInstant,  // Chrome "i" event
  kCounter,  // Chrome "C" event; arg0 is the sampled value
};

/// One trace event. Names and argument names must be string literals (or
/// otherwise outlive the collector): events store pointers, not copies,
/// to keep recording allocation-free.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t ts_ns = 0;   // monotonic_ns at begin
  std::uint64_t dur_ns = 0;  // spans only
  std::uint32_t pid = 0;     // task (Chrome process)
  std::uint32_t tid = 0;     // thread role within the task
  EventKind kind = EventKind::kInstant;
  std::uint8_t num_args = 0;
  const char* arg_names[3] = {nullptr, nullptr, nullptr};
  double args[3] = {0, 0, 0};
};

/// pid/tid conventions used by the mr layer when emitting events.
inline constexpr std::uint32_t kDriverPid = 0;
inline constexpr std::uint32_t map_task_pid(std::uint32_t task_id) {
  return 1 + task_id;
}
inline constexpr std::uint32_t reduce_task_pid(std::uint32_t partition) {
  return 100001 + partition;
}
/// Cluster worker processes get their own timeline rows, disjoint from
/// every task pid (task rows stay globally unique because a task's
/// winning attempt runs on exactly one worker).
inline constexpr std::uint32_t kWorkerPidBase = 200000;
inline constexpr std::uint32_t worker_pid(std::uint32_t worker_id) {
  return kWorkerPidBase + worker_id;
}
inline constexpr std::uint32_t kMapThreadTid = 0;
inline constexpr std::uint32_t kSupportThreadTidBase = 1;  // +support index
inline constexpr std::uint32_t kSpillBufferTid = 99;
inline constexpr std::uint32_t kReduceThreadTid = 0;
// Engine scheduler threads (retry events) live under kDriverPid.
inline constexpr std::uint32_t kMapWorkerTidBase = 1;       // +worker index
inline constexpr std::uint32_t kReduceWorkerTidBase = 1001;  // +worker index

struct TraceConfig {
  bool enabled = false;
  /// Ring capacity per registered thread, in events. When a thread
  /// overflows its ring the oldest events are overwritten (flight-recorder
  /// semantics); the drop count is reported in the trace metadata.
  std::size_t ring_capacity = 1u << 14;
};

/// Fixed-capacity event ring. Single-writer: only the owning thread may
/// record (the spill buffer's ring is the one exception — both pipeline
/// threads write to it, serialized by the buffer's own mutex).
class TraceBuffer {
 public:
  TraceBuffer(std::uint32_t pid, std::uint32_t tid, std::size_t capacity)
      : pid_(pid), tid_(tid), capacity_(capacity) {
    ring_.reserve(capacity_);
  }

  void record(TraceEvent event) {
    event.pid = pid_;
    event.tid = tid_;
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
    } else {
      ring_[next_overwrite_] = event;
      next_overwrite_ = (next_overwrite_ + 1) % capacity_;
      ++dropped_;
    }
  }

  std::uint32_t pid() const { return pid_; }
  std::uint32_t tid() const { return tid_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Events in record order (oldest surviving first).
  std::vector<TraceEvent> snapshot() const;

  struct Drained {
    std::vector<TraceEvent> events;  // record order (oldest first)
    std::uint64_t dropped = 0;       // drops since the previous drain
  };
  /// Moves the buffered events out and resets the ring in place (the
  /// buffer stays registered, so writers keep their pointer). Same
  /// single-writer contract as record(): only safe at a point where the
  /// owning thread is not writing — the cluster worker drains at task
  /// boundaries, after every task thread has joined.
  Drained drain();

 private:
  std::uint32_t pid_;
  std::uint32_t tid_;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_overwrite_ = 0;  // oldest slot once the ring wrapped
  std::uint64_t dropped_ = 0;
  std::uint64_t drained_dropped_ = 0;  // dropped_ watermark at last drain
};

/// Everything a traced run produced, carried inside JobResult.
struct TraceData {
  bool enabled = false;
  std::string job_name;
  std::uint64_t epoch_ns = 0;  // monotonic_ns when the collector started
  std::vector<TraceEvent> events;  // merged across threads, sorted by ts
  std::uint64_t dropped_events = 0;
  /// Ring-overflow attribution: which (pid, tid) rings dropped events
  /// and how many. Only rings that actually dropped appear, so a clean
  /// run carries an empty vector. Overflow poisons any analysis built on
  /// the trace — the analyzer and JobMetrics JSON both surface this.
  struct RingDrops {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
  };
  std::vector<RingDrops> ring_drops;
  /// True when part of the job's telemetry was lost: a cluster worker
  /// died (e.g. SIGKILL) before shipping its final trace chunk. The
  /// merged timeline is still valid, just missing that worker's tail.
  bool incomplete = false;
  std::vector<std::pair<std::uint32_t, std::string>> process_names;
  struct ThreadName {
    std::uint32_t pid;
    std::uint32_t tid;
    std::string name;
  };
  std::vector<ThreadName> thread_names;

  /// Backing store for event name/arg strings that do not outlive their
  /// producer — events recorded in-process point at string literals, but
  /// a trace deserialized from another process (the cluster engine's
  /// per-worker uploads) needs owned storage. Each string is held behind
  /// a shared_ptr so copying or moving the TraceData (or merging pools)
  /// never relocates the bytes the events point at.
  std::vector<std::shared_ptr<const std::string>> string_pool;

  /// Copies `s` into the pool and returns a pointer valid as long as any
  /// copy of this TraceData lives (no deduplication — callers cache).
  const char* intern(std::string_view s) TEXTMR_LIFETIME_BOUND {
    string_pool.push_back(std::make_shared<const std::string>(s));
    return string_pool.back()->c_str();
  }
};

/// Merges `from` into `into` (cluster engine: per-worker trace uploads
/// into the coordinator's timeline). Appends events, process/thread
/// names, drop counts; adopts `from`'s string pool so event pointers
/// survive; re-sorts the combined events by timestamp. The earliest
/// epoch wins, which is correct because every process stamps events with
/// the same monotonic clock.
void merge_trace(TraceData& into, TraceData&& from);

/// Shifts every event timestamp (and the epoch) by -offset_ns,
/// saturating at zero. The cluster coordinator uses this to rebase a
/// worker's trace onto its own clock: offset_ns is the worker-minus-
/// coordinator clock offset measured by the startup handshake
/// (cluster::estimate_clock_offset), so coordinator_ts = worker_ts -
/// offset. Durations are clock-speed-invariant and stay untouched.
void rebase_trace(TraceData& trace, std::int64_t offset_ns);

/// Owns one TraceBuffer per registered thread. make_buffer() is
/// thread-safe (called at task/thread start, never on a hot path);
/// recording into the returned buffer is lock-free. finish() must only be
/// called after every writer thread has joined.
class TraceCollector {
 public:
  explicit TraceCollector(TraceConfig config);

  /// Registers a thread ring. `process_name`, when non-empty, names the
  /// pid in the exported trace (first writer wins).
  TraceBuffer* make_buffer(std::uint32_t pid, std::uint32_t tid,
                           std::string thread_name,
                           std::string process_name = "");

  void set_job_name(std::string name) {
    textmr::MutexLock lock(mu_);
    job_name_ = std::move(name);
  }

  /// Merges all rings into a ts-sorted TraceData and leaves the
  /// collector empty.
  TraceData finish();

  /// Incremental variant of finish(): moves out everything recorded
  /// since the previous drain (or construction) but keeps every ring
  /// registered, so writer threads' TraceBuffer pointers stay valid and
  /// recording can continue. Process/thread names registered since the
  /// last drain ship exactly once; drop counts are per-drain deltas, so
  /// summing chunk metadata (merge_trace does) stays correct. Same
  /// safety contract as finish(): call only when no writer is mid-record
  /// — the cluster worker drains between tasks.
  TraceData drain();

 private:
  TraceData drain_locked() TEXTMR_REQUIRES(mu_);

  // Both fixed in the constructor, read-only afterwards.
  TraceConfig config_;     // check:allow(lock-coverage): const after ctor
  std::uint64_t epoch_ns_;  // check:allow(lock-coverage): const after ctor
  // mu_ guards the ring registry, not ring contents: recording into a
  // TraceBuffer stays lock-free (single-writer contract above), and
  // finish() may only run after every writer thread has joined.
  mutable textmr::Mutex mu_{textmr::LockRank::kTrace, "obs.trace_collector"};
  std::string job_name_ TEXTMR_GUARDED_BY(mu_);
  std::deque<TraceBuffer> buffers_ TEXTMR_GUARDED_BY(mu_);  // stable addresses
  std::vector<std::pair<std::uint32_t, std::string>> process_names_
      TEXTMR_GUARDED_BY(mu_);
  std::vector<TraceData::ThreadName> thread_names_ TEXTMR_GUARDED_BY(mu_);
};

// ---- recording helpers (no-ops on a null buffer) -------------------------

inline void record_instant(TraceBuffer* buffer, const char* category,
                           const char* name) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_ns = monotonic_ns();
  e.kind = EventKind::kInstant;
  buffer->record(e);
}

inline void record_instant(TraceBuffer* buffer, const char* category,
                           const char* name, const char* a0, double v0) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_ns = monotonic_ns();
  e.kind = EventKind::kInstant;
  e.num_args = 1;
  e.arg_names[0] = a0;
  e.args[0] = v0;
  buffer->record(e);
}

inline void record_instant(TraceBuffer* buffer, const char* category,
                           const char* name, const char* a0, double v0,
                           const char* a1, double v1) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_ns = monotonic_ns();
  e.kind = EventKind::kInstant;
  e.num_args = 2;
  e.arg_names[0] = a0;
  e.args[0] = v0;
  e.arg_names[1] = a1;
  e.args[1] = v1;
  buffer->record(e);
}

inline void record_instant(TraceBuffer* buffer, const char* category,
                           const char* name, const char* a0, double v0,
                           const char* a1, double v1, const char* a2,
                           double v2) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.ts_ns = monotonic_ns();
  e.kind = EventKind::kInstant;
  e.num_args = 3;
  e.arg_names[0] = a0;
  e.args[0] = v0;
  e.arg_names[1] = a1;
  e.args[1] = v1;
  e.arg_names[2] = a2;
  e.args[2] = v2;
  buffer->record(e);
}

/// Time-series sample: one point of a named counter track (spill
/// threshold, buffer fill level, freq-table occupancy / hit rate, ...).
inline void record_counter(TraceBuffer* buffer, const char* category,
                           const char* series, double value) {
  if (buffer == nullptr) return;
  TraceEvent e;
  e.name = series;
  e.category = category;
  e.ts_ns = monotonic_ns();
  e.kind = EventKind::kCounter;
  e.num_args = 1;
  e.arg_names[0] = "value";
  e.args[0] = value;
  buffer->record(e);
}

/// RAII span: records a complete ("X") event covering its lifetime.
/// Costs two clock reads when tracing is on, one branch when off.
class SpanTimer {
 public:
  SpanTimer(TraceBuffer* buffer, const char* category, const char* name)
      : buffer_(buffer) {
    if (buffer_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.ts_ns = monotonic_ns();
    event_.kind = EventKind::kSpan;
  }

  /// Attaches a numeric argument (up to 3; extras are dropped).
  void arg(const char* name, double value) {
    if (buffer_ == nullptr || event_.num_args >= 3) return;
    event_.arg_names[event_.num_args] = name;
    event_.args[event_.num_args] = value;
    ++event_.num_args;
  }

  /// Ends and records the span now instead of at scope exit. Idempotent.
  void done() {
    if (buffer_ == nullptr) return;
    event_.dur_ns = monotonic_ns() - event_.ts_ns;
    buffer_->record(event_);
    buffer_ = nullptr;
  }

  ~SpanTimer() { done(); }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceBuffer* buffer_;
  TraceEvent event_;
};

// ---- export ---------------------------------------------------------------

/// Renders the trace as a Chrome trace-event JSON document (the
/// {"traceEvents": [...]} form understood by chrome://tracing and
/// Perfetto). Timestamps are microseconds relative to the collector
/// epoch; pid = task, tid = thread role.
std::string format_chrome_trace(const TraceData& trace);

/// Renders the trace as JSONL: one self-contained JSON object per line.
std::string format_trace_jsonl(const TraceData& trace);

/// Writes `contents` to `path`, throwing IoError on failure.
void write_file(const std::filesystem::path& path, std::string_view contents);

// ---- series extraction ----------------------------------------------------

/// One point of an extracted counter series.
struct CounterSample {
  std::uint64_t ts_ns = 0;  // relative to the trace epoch
  std::uint32_t pid = 0;
  double value = 0;
};

/// Pulls one named counter track out of a trace, in time order — e.g.
/// counter_series(trace, "spill_threshold") yields the spill-matcher's
/// threshold trajectory, enough to regenerate Fig. 9-style plots from a
/// single run.
std::vector<CounterSample> counter_series(const TraceData& trace,
                                          std::string_view series);

/// Number of events with the given name (any kind).
std::size_t count_events(const TraceData& trace, std::string_view name);

}  // namespace textmr::obs
