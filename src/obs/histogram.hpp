#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace textmr::obs {

/// Log-linear latency histogram (HdrHistogram-style, ISSUE 6): each
/// power-of-two range is split into kSubBuckets linear sub-buckets, so
/// relative error is bounded by 1/kSubBuckets (~6%) across the whole
/// range while the footprint stays a few KB. Workers record per-task
/// latencies into one of these and piggyback it on heartbeats and trace
/// chunks; the coordinator merges them into cluster-wide quantiles.
///
/// Values are dimensionless u64s (the cluster uses nanoseconds). Not
/// thread-safe: owned by one writer, merged after the fact — the same
/// contract as TaskMetrics.
class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  /// Values at or above 2^kMaxExponent land in one overflow bucket.
  /// 2^42 ns is ~73 minutes — far beyond any plausible task latency.
  static constexpr std::uint32_t kMaxExponent = 42;
  static constexpr std::uint32_t kNumBuckets =
      kSubBuckets + (kMaxExponent - kSubBits) * kSubBuckets + 1;

  /// Bucket index for a value; the last index is the overflow bucket.
  static std::uint32_t bucket_index(std::uint64_t value);

  /// Largest value mapping to the bucket (inclusive). The overflow
  /// bucket reports UINT64_MAX.
  static std::uint64_t bucket_upper_bound(std::uint32_t index);

  void record(std::uint64_t value);
  void merge(const LatencyHistogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]: the upper bound of the bucket holding
  /// the ceil(q * count)-th sample, clamped to the exact observed max so
  /// quantile(1.0) == max(). Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;

  struct Bucket {
    std::uint32_t index = 0;
    std::uint64_t count = 0;
  };
  /// Populated buckets in index order (sparse view for serialization).
  std::vector<Bucket> nonzero_buckets() const;

  /// Compact little-endian sparse encoding: count/sum/max plus
  /// (index, count) pairs for populated buckets. A fresh histogram
  /// serializes to 28 bytes; a busy one to a few hundred.
  std::string serialize() const;

  /// Inverse of serialize(); throws FormatError on malformed input.
  [[nodiscard]] static LatencyHistogram deserialize(std::string_view bytes);

  bool operator==(const LatencyHistogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           max_ == other.max_ && counts_ == other.counts_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, kNumBuckets> counts_{};
};

}  // namespace textmr::obs
