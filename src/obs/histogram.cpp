#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace textmr::obs {

std::uint32_t LatencyHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::uint32_t>(value);
  const auto msb = static_cast<std::uint32_t>(std::bit_width(value) - 1);
  if (msb >= kMaxExponent) return kNumBuckets - 1;  // overflow bucket
  const auto sub =
      static_cast<std::uint32_t>((value >> (msb - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets + (msb - kSubBits) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::uint32_t index) {
  if (index < kSubBuckets) return index;
  if (index >= kNumBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
  const std::uint32_t rel = index - kSubBuckets;
  const std::uint32_t octave = rel / kSubBuckets;  // msb == kSubBits + octave
  const std::uint32_t sub = rel % kSubBuckets;
  return ((static_cast<std::uint64_t>(kSubBuckets + sub + 1)) << octave) - 1;
}

void LatencyHistogram::record(std::uint64_t value) {
  counts_[bucket_index(value)] += 1;
  count_ += 1;
  sum_ += value;
  max_ = std::max(max_, value);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::clear() {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

std::uint64_t LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) {
      return std::min(bucket_upper_bound(i), max_);
    }
  }
  return max_;
}

std::vector<LatencyHistogram::Bucket> LatencyHistogram::nonzero_buckets() const {
  std::vector<Bucket> buckets;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] != 0) buckets.push_back(Bucket{i, counts_[i]});
  }
  return buckets;
}

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t take_u32(std::string_view& in) {
  if (in.size() < 4) throw FormatError("histogram blob truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(in[i])) << (8 * i);
  }
  in.remove_prefix(4);
  return v;
}

std::uint64_t take_u64(std::string_view& in) {
  if (in.size() < 8) throw FormatError("histogram blob truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(in[i])) << (8 * i);
  }
  in.remove_prefix(8);
  return v;
}

}  // namespace

std::string LatencyHistogram::serialize() const {
  const std::vector<Bucket> buckets = nonzero_buckets();
  std::string out;
  out.reserve(28 + buckets.size() * 12);
  put_u32(out, static_cast<std::uint32_t>(buckets.size()));
  put_u64(out, count_);
  put_u64(out, sum_);
  put_u64(out, max_);
  for (const Bucket& bucket : buckets) {
    put_u32(out, bucket.index);
    put_u64(out, bucket.count);
  }
  return out;
}

LatencyHistogram LatencyHistogram::deserialize(std::string_view bytes) {
  LatencyHistogram h;
  const std::uint32_t num_buckets = take_u32(bytes);
  h.count_ = take_u64(bytes);
  h.sum_ = take_u64(bytes);
  h.max_ = take_u64(bytes);
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < num_buckets; ++i) {
    const std::uint32_t index = take_u32(bytes);
    const std::uint64_t count = take_u64(bytes);
    if (index >= kNumBuckets) {
      throw FormatError("histogram bucket index out of range");
    }
    h.counts_[index] += count;
    total += count;
  }
  if (!bytes.empty()) throw FormatError("histogram blob has trailing bytes");
  if (total != h.count_) {
    throw FormatError("histogram bucket counts disagree with total");
  }
  return h;
}

}  // namespace textmr::obs
