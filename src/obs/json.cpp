#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace textmr::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
  out_ += '"';
  append_json_escaped(out_, k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_json_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// ---- validity checker ------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos + i]))) {
              return false;
            }
          }
          pos += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return pos > start;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      ok = true;
      if (!eat('}')) {
        while (true) {
          skip_ws();
          if (!string()) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          if (eat('}')) break;
          ok = false;
          break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      ok = true;
      if (!eat(']')) {
        while (true) {
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          if (eat(']')) break;
          ok = false;
          break;
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Checker checker{text};
  if (!checker.value()) return false;
  checker.skip_ws();
  return checker.pos == text.size();
}

}  // namespace textmr::obs
