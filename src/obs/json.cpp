#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace textmr::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  counts_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  counts_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (counts_.back() > 0) out_ += ',';
  ++counts_.back();
  out_ += '"';
  append_json_escaped(out_, k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ += '"';
  append_json_escaped(out_, v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// ---- validity checker ------------------------------------------------------

namespace {

struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos + i]))) {
              return false;
            }
          }
          pos += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }

  bool digits() {
    const std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
    return pos > start;
  }

  bool number() {
    eat('-');
    if (eat('0')) {
      // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth > kMaxDepth) return false;
    skip_ws();
    bool ok = false;
    if (pos >= text.size()) {
      ok = false;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      ok = true;
      if (!eat('}')) {
        while (true) {
          skip_ws();
          if (!string()) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          if (eat('}')) break;
          ok = false;
          break;
        }
      }
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      ok = true;
      if (!eat(']')) {
        while (true) {
          if (!value()) { ok = false; break; }
          skip_ws();
          if (eat(',')) continue;
          if (eat(']')) break;
          ok = false;
          break;
        }
      }
    } else if (text[pos] == '"') {
      ok = string();
    } else if (text[pos] == 't') {
      ok = literal("true");
    } else if (text[pos] == 'f') {
      ok = literal("false");
    } else if (text[pos] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Checker checker{text};
  if (!checker.value()) return false;
  checker.skip_ws();
  return checker.pos == text.size();
}

// ---- parser ---------------------------------------------------------------

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> v) {
  JsonValue j;
  j.type_ = Type::kArray;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> v) {
  JsonValue j;
  j.type_ = Type::kObject;
  j.members_ = std::move(v);
  return j;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser sharing the Checker's lexical rules; the
/// escape and number handling mirror what JsonWriter emits.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  static constexpr int kMaxDepth = 256;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  std::optional<std::string> string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c < 0x20) return std::nullopt;  // raw control character
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return std::nullopt;
      const char e = text[pos];
      ++pos;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos + static_cast<std::size_t>(i)];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return std::nullopt;
            }
            const std::uint32_t digit =
                h <= '9' ? static_cast<std::uint32_t>(h - '0')
                         : static_cast<std::uint32_t>((h | 0x20) - 'a' + 10);
            cp = (cp << 4) | digit;
          }
          pos += 4;
          // Surrogates never appear in our own exports (JsonWriter only
          // \u-escapes control characters); map them to U+FFFD.
          if (cp >= 0xd800 && cp <= 0xdfff) cp = 0xfffd;
          append_utf8(out, cp);
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos;
    eat('-');
    if (!eat('0')) {
      if (pos >= text.size() ||
          !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return std::nullopt;
      }
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
    }
    if (eat('.')) {
      const std::size_t frac = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (pos == frac) return std::nullopt;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      const std::size_t exp = pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos]))) {
        ++pos;
      }
      if (pos == exp) return std::nullopt;
    }
    const std::string token(text.substr(start, pos - start));
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  std::optional<JsonValue> value() {
    if (++depth > kMaxDepth) return std::nullopt;
    skip_ws();
    std::optional<JsonValue> out;
    if (pos >= text.size()) {
      out = std::nullopt;
    } else if (text[pos] == '{') {
      ++pos;
      skip_ws();
      std::vector<std::pair<std::string, JsonValue>> members;
      bool ok = true;
      if (!eat('}')) {
        while (true) {
          skip_ws();
          auto key = string();
          if (!key.has_value()) { ok = false; break; }
          skip_ws();
          if (!eat(':')) { ok = false; break; }
          auto member = value();
          if (!member.has_value()) { ok = false; break; }
          members.emplace_back(std::move(*key), std::move(*member));
          skip_ws();
          if (eat(',')) continue;
          if (eat('}')) break;
          ok = false;
          break;
        }
      }
      if (ok) out = JsonValue::make_object(std::move(members));
    } else if (text[pos] == '[') {
      ++pos;
      skip_ws();
      std::vector<JsonValue> elements;
      bool ok = true;
      if (!eat(']')) {
        while (true) {
          auto element = value();
          if (!element.has_value()) { ok = false; break; }
          elements.push_back(std::move(*element));
          skip_ws();
          if (eat(',')) continue;
          if (eat(']')) break;
          ok = false;
          break;
        }
      }
      if (ok) out = JsonValue::make_array(std::move(elements));
    } else if (text[pos] == '"') {
      auto s = string();
      if (s.has_value()) out = JsonValue::make_string(std::move(*s));
    } else if (text[pos] == 't') {
      if (literal("true")) out = JsonValue::make_bool(true);
    } else if (text[pos] == 'f') {
      if (literal("false")) out = JsonValue::make_bool(false);
    } else if (text[pos] == 'n') {
      if (literal("null")) out = JsonValue::make_null();
    } else {
      out = number();
    }
    --depth;
    return out;
  }
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  Parser parser{text};
  auto value = parser.value();
  if (!value.has_value()) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != text.size()) return std::nullopt;
  return value;
}

}  // namespace textmr::obs
