#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace textmr::obs {

// ---- known event names ----------------------------------------------------

/// Sorted. tools/lint.py extracts every record_instant / record_counter /
/// SpanTimer name literal in the tree and requires it to appear here, so
/// adding a trace op without teaching the analyzer fails CI.
const char* const kKnownEventNames[] = {
    "buffer_fill",
    "clock_sync",
    "freq_buffered_bytes",
    "freq_cached_keys",
    "freq_flush",
    "freq_freeze",
    "freq_hit_rate",
    "freq_profile_begin",
    "hash_demote",
    "hash_flush",
    "map_dispatch",
    "map_exec",
    "map_merge",
    "map_phase",
    "map_task",
    "output_close",
    "partition_bytes",
    "reduce_apply",
    "reduce_dispatch",
    "reduce_exec",
    "reduce_phase",
    "reduce_task",
    "shuffle",
    "shuffle_fetch",
    "skew_finalize",
    "skew_plan",
    "speculative_attempt",
    "spill_consume",
    "spill_seal",
    "spill_sort",
    "spill_threshold",
    "spill_write",
    "task_retry",
    "threshold_update",
    "worker_death",
};
const std::size_t kNumKnownEventNames =
    sizeof(kKnownEventNames) / sizeof(kKnownEventNames[0]);

bool known_event_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumKnownEventNames; ++i) {
    if (name == kKnownEventNames[i]) return true;
  }
  return false;
}

// ---- analysis -------------------------------------------------------------

namespace {

/// Container spans structure the timeline; everything else is leaf work.
bool is_container_span(std::string_view name) {
  return name == "map_phase" || name == "reduce_phase" || name == "map_task" ||
         name == "reduce_task" || name == "map_exec" || name == "reduce_exec";
}

std::uint64_t span_end(const TraceEvent& e) { return e.ts_ns + e.dur_ns; }

std::uint64_t clamp_ts(std::uint64_t ts, std::uint64_t lo, std::uint64_t hi) {
  return std::min(std::max(ts, lo), hi);
}

std::uint64_t to_u64(double v) {
  return v <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

std::uint64_t median_of(std::vector<std::uint64_t> values) {
  if (values.empty()) return 0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<std::size_t>(n) < sizeof(buffer)) {
    out.append(buffer, static_cast<std::size_t>(n));
  } else {
    const std::size_t old_size = out.size();
    out.resize(old_size + static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data() + old_size, static_cast<std::size_t>(n) + 1,
                   format, args_copy);
    out.resize(old_size + static_cast<std::size_t>(n));
  }
  va_end(args_copy);
}

double seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Decomposes one phase into wait-before / critical-task / tail segments
/// (Fig. 9's wait structure). The gating attempt is the one whose end is
/// latest while still inside the phase — attempts that outlive the phase
/// are speculative losers, not the element that released the barrier.
void decompose_phase(const TraceAnalysis::Phase& phase,
                     std::uint64_t phase_abs_start,
                     const std::vector<TraceAnalysis::TaskSpan>& tasks,
                     std::uint64_t rel_base, const char* kind,
                     std::vector<TraceAnalysis::Segment>& out) {
  const std::uint64_t phase_start = phase_abs_start;
  const std::uint64_t phase_endn = phase_abs_start + phase.dur_ns;
  const TraceAnalysis::TaskSpan* critical = nullptr;
  for (const auto& task : tasks) {
    const std::uint64_t end = rel_base + task.start_ns + task.dur_ns;
    if (end > phase_endn) continue;  // finished after the phase: a loser
    if (critical == nullptr ||
        end > rel_base + critical->start_ns + critical->dur_ns) {
      critical = &task;
    }
  }
  if (critical == nullptr) {
    out.push_back({std::string(kind) + " phase", phase.dur_ns});
    return;
  }
  const std::uint64_t crit_start =
      clamp_ts(rel_base + critical->start_ns, phase_start, phase_endn);
  const std::uint64_t crit_end = clamp_ts(
      rel_base + critical->start_ns + critical->dur_ns, crit_start, phase_endn);
  std::string label = std::string(kind) + " waves before critical task " +
                      std::to_string(critical->id);
  out.push_back({std::move(label), crit_start - phase_start});
  out.push_back({std::string(kind) + " critical task " +
                     std::to_string(critical->id),
                 crit_end - crit_start});
  out.push_back({std::string(kind) + " completion tail",
                 phase_endn - crit_end});
}

}  // namespace

TraceAnalysis analyze_trace(const TraceData& trace) {
  TraceAnalysis a;
  a.job_name = trace.job_name;
  a.num_events = trace.events.size();
  a.dropped_events = trace.dropped_events;
  a.ring_drops = trace.ring_drops;
  a.telemetry_incomplete = trace.incomplete;
  if (trace.events.empty()) return a;

  // Absolute extent.
  std::uint64_t t0 = trace.events.front().ts_ns;
  std::uint64_t t_end = 0;
  for (const auto& e : trace.events) {
    t0 = std::min(t0, e.ts_ns);
    t_end = std::max(t_end, e.kind == EventKind::kSpan ? span_end(e) : e.ts_ns);
  }
  a.start_ns = t0;
  a.end_ns = t_end;
  a.wall_ns = t_end - t0;

  // Single pass: classify spans.
  std::optional<TraceEvent> map_phase;
  std::optional<TraceEvent> reduce_phase;
  std::vector<TraceAnalysis::TaskSpan> map_tasks;
  std::vector<TraceAnalysis::TaskSpan> reduce_tasks;
  std::unordered_map<std::string, TraceAnalysis::OpTotal> ops;
  std::unordered_map<std::uint32_t, TraceAnalysis::WorkerLane> lanes;
  std::set<std::string> unknown;
  std::unordered_map<std::uint32_t, std::uint64_t> partition_bytes;
  for (const auto& e : trace.events) {
    const std::string_view name = e.name != nullptr ? e.name : "?";
    if (name != "?" && !known_event_name(name)) unknown.emplace(name);
    if (e.kind == EventKind::kInstant && name == "partition_bytes") {
      // Driver-side per-partition shuffle volume: args (partition, bytes).
      std::optional<std::uint32_t> part;
      std::uint64_t bytes = 0;
      for (std::uint8_t i = 0; i < e.num_args; ++i) {
        const std::string_view arg =
            e.arg_names[i] != nullptr ? e.arg_names[i] : "";
        if (arg == "partition") {
          part = static_cast<std::uint32_t>(e.args[i]);
        } else if (arg == "bytes") {
          bytes = to_u64(e.args[i]);
        }
      }
      if (part.has_value()) {
        // Speculative attempts re-record the partition; the volume is
        // identical either way, so last-write-wins is fine.
        partition_bytes[*part] = bytes;
      }
      continue;
    }
    if (e.kind != EventKind::kSpan) continue;
    if (name == "map_phase") {
      if (!map_phase.has_value()) map_phase = e;
      continue;
    }
    if (name == "reduce_phase") {
      if (!reduce_phase.has_value()) reduce_phase = e;
      continue;
    }
    if (name == "map_task") {
      map_tasks.push_back({e.pid - 1, e.ts_ns - t0, e.dur_ns});
      continue;
    }
    if (name == "reduce_task") {
      reduce_tasks.push_back({e.pid - 100001, e.ts_ns - t0, e.dur_ns});
      continue;
    }
    if (name == "map_exec" || name == "reduce_exec") {
      TraceAnalysis::WorkerLane& lane = lanes[e.pid];
      lane.pid = e.pid;
      lane.busy_ns += e.dur_ns;
      lane.tasks += 1;
      continue;
    }
    if (is_container_span(name)) continue;
    TraceAnalysis::OpTotal& op = ops[std::string(name)];
    op.name = name;
    op.total_ns += e.dur_ns;
    op.count += 1;
  }

  // Phases: an exhaustive partition of [t0, t_end] when the driver's
  // phase spans are present, so the critical path below covers the wall
  // by construction.
  if (map_phase.has_value()) {
    const std::uint64_t ms = clamp_ts(map_phase->ts_ns, t0, t_end);
    const std::uint64_t me = clamp_ts(span_end(*map_phase), ms, t_end);
    a.phases.push_back({"startup", 0, ms - t0});
    a.phases.push_back({"map_phase", ms - t0, me - ms});
    if (reduce_phase.has_value()) {
      const std::uint64_t rs = clamp_ts(reduce_phase->ts_ns, me, t_end);
      const std::uint64_t re = clamp_ts(span_end(*reduce_phase), rs, t_end);
      a.phases.push_back({"barrier", me - t0, rs - me});
      a.phases.push_back({"reduce_phase", rs - t0, re - rs});
      a.phases.push_back({"finalize", re - t0, t_end - re});
    } else {
      a.phases.push_back({"finalize", me - t0, t_end - me});
    }
  } else {
    a.phases.push_back({"untracked", 0, a.wall_ns});
  }

  // Critical path: expand the phase partition, decomposing map/reduce
  // phases around their gating task attempt.
  for (const auto& phase : a.phases) {
    if (phase.name == "map_phase") {
      decompose_phase(phase, t0 + phase.start_ns, map_tasks, t0, "map",
                      a.critical_path);
    } else if (phase.name == "reduce_phase") {
      decompose_phase(phase, t0 + phase.start_ns, reduce_tasks, t0, "reduce",
                      a.critical_path);
    } else {
      a.critical_path.push_back({phase.name, phase.dur_ns});
    }
  }
  for (const auto& segment : a.critical_path) {
    a.critical_path_ns += segment.dur_ns;
  }

  // Op totals, largest first.
  a.op_totals.reserve(ops.size());
  for (auto& [name, op] : ops) a.op_totals.push_back(std::move(op));
  std::sort(a.op_totals.begin(), a.op_totals.end(),
            [](const auto& x, const auto& y) {
              return x.total_ns != y.total_ns ? x.total_ns > y.total_ns
                                              : x.name < y.name;
            });

  // Worker lanes: utilization within the job's active window (dispatch
  // of the first task to the end of the reduce phase).
  std::uint64_t window_start = t0;
  std::uint64_t window_end = t_end;
  if (map_phase.has_value()) window_start = clamp_ts(map_phase->ts_ns, t0, t_end);
  if (reduce_phase.has_value()) {
    window_end = clamp_ts(span_end(*reduce_phase), window_start, t_end);
  }
  const std::uint64_t window = window_end - window_start;
  for (auto& [pid, lane] : lanes) {
    lane.window_ns = window;
    lane.name = "pid " + std::to_string(pid);
    for (const auto& [proc_pid, proc_name] : trace.process_names) {
      if (proc_pid == pid) {
        lane.name = proc_name;
        break;
      }
    }
    const std::uint64_t busy = std::min(lane.busy_ns, window);
    lane.idle_fraction =
        window == 0 ? 0.0
                    : static_cast<double>(window - busy) /
                          static_cast<double>(window);
    a.workers.push_back(std::move(lane));
  }
  std::sort(a.workers.begin(), a.workers.end(),
            [](const auto& x, const auto& y) { return x.pid < y.pid; });

  // Straggler attribution. Before ranking, annotate reduce spans with
  // the skew evidence the trace carries: a dedicated skew partition
  // registers its ring as "reduce_<p> key=<k>", and the driver records
  // one "partition_bytes" instant per physical partition — so a reduce
  // straggler can be attributed to the heavy key it serves rather than
  // left as an anonymous slow task.
  std::unordered_map<std::uint32_t, std::string> heavy_keys;
  for (const auto& [pid, proc_name] : trace.process_names) {
    if (proc_name.rfind("reduce_", 0) != 0) continue;
    const std::size_t sep = proc_name.find(" key=");
    if (sep == std::string::npos) continue;
    const std::string digits = proc_name.substr(7, sep - 7);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    heavy_keys[static_cast<std::uint32_t>(std::stoul(digits))] =
        proc_name.substr(sep + 5);
  }
  for (auto& task : reduce_tasks) {
    if (const auto it = heavy_keys.find(task.id); it != heavy_keys.end()) {
      task.heavy_key = it->second;
    }
    if (const auto it = partition_bytes.find(task.id);
        it != partition_bytes.end()) {
      task.shuffled_bytes = it->second;
    }
  }
  const auto by_dur_desc = [](const TraceAnalysis::TaskSpan& x,
                              const TraceAnalysis::TaskSpan& y) {
    return x.dur_ns != y.dur_ns ? x.dur_ns > y.dur_ns : x.id < y.id;
  };
  std::vector<std::uint64_t> durations;
  for (const auto& task : map_tasks) durations.push_back(task.dur_ns);
  a.median_map_task_ns = median_of(std::move(durations));
  durations.clear();
  for (const auto& task : reduce_tasks) durations.push_back(task.dur_ns);
  a.median_reduce_task_ns = median_of(std::move(durations));
  std::sort(map_tasks.begin(), map_tasks.end(), by_dur_desc);
  std::sort(reduce_tasks.begin(), reduce_tasks.end(), by_dur_desc);
  if (map_tasks.size() > 3) map_tasks.resize(3);
  if (reduce_tasks.size() > 3) reduce_tasks.resize(3);
  a.slowest_map_tasks = std::move(map_tasks);
  a.slowest_reduce_tasks = std::move(reduce_tasks);

  a.unknown_event_names.assign(unknown.begin(), unknown.end());
  return a;
}

// ---- formatting -----------------------------------------------------------

std::string format_analysis(const TraceAnalysis& a) {
  std::string out;
  appendf(out, "=== trace analysis: %s ===\n",
          a.job_name.empty() ? "(unnamed job)" : a.job_name.c_str());
  appendf(out, "events: %zu (dropped: %llu), wall: %.3fs, telemetry: %s\n",
          a.num_events, static_cast<unsigned long long>(a.dropped_events),
          seconds(a.wall_ns), a.telemetry_incomplete ? "INCOMPLETE" : "complete");

  const double wall = static_cast<double>(a.wall_ns);
  appendf(out, "phases:\n");
  for (const auto& phase : a.phases) {
    appendf(out, "  %-14s %9.3fs %5.1f%%\n", phase.name.c_str(),
            seconds(phase.dur_ns),
            wall > 0 ? 100.0 * static_cast<double>(phase.dur_ns) / wall : 0.0);
  }

  appendf(out, "critical path (%.1f%% of wall):\n",
          100.0 * a.critical_path_coverage());
  for (const auto& segment : a.critical_path) {
    appendf(out, "  %-40s %9.3fs %5.1f%%\n", segment.label.c_str(),
            seconds(segment.dur_ns),
            wall > 0 ? 100.0 * static_cast<double>(segment.dur_ns) / wall
                     : 0.0);
  }

  if (!a.op_totals.empty()) {
    appendf(out, "serialized work by op:\n");
    for (const auto& op : a.op_totals) {
      appendf(out, "  %-20s %9.3fs  x%llu\n", op.name.c_str(),
              seconds(op.total_ns), static_cast<unsigned long long>(op.count));
    }
  }

  if (!a.workers.empty()) {
    appendf(out, "workers (within the job's active window):\n");
    for (const auto& lane : a.workers) {
      appendf(out, "  %-12s busy %5.1f%%  idle %5.1f%%  (%llu task attempts)\n",
              lane.name.c_str(), 100.0 * (1.0 - lane.idle_fraction),
              100.0 * lane.idle_fraction,
              static_cast<unsigned long long>(lane.tasks));
    }
  }

  if (!a.slowest_map_tasks.empty()) {
    const auto& slowest = a.slowest_map_tasks.front();
    appendf(out, "stragglers: map median %.3fs, slowest task %u = %.3fs",
            seconds(a.median_map_task_ns), slowest.id, seconds(slowest.dur_ns));
    if (a.median_map_task_ns > 0) {
      appendf(out, " (%.1fx median)",
              static_cast<double>(slowest.dur_ns) /
                  static_cast<double>(a.median_map_task_ns));
    }
    appendf(out, "\n");
  }
  if (!a.slowest_reduce_tasks.empty()) {
    const auto& slowest = a.slowest_reduce_tasks.front();
    appendf(out,
            "            reduce median %.3fs, slowest partition %u = %.3fs\n",
            seconds(a.median_reduce_task_ns), slowest.id,
            seconds(slowest.dur_ns));
    bool annotated = false;
    for (const auto& task : a.slowest_reduce_tasks) {
      if (!task.heavy_key.empty() || task.shuffled_bytes > 0) annotated = true;
    }
    if (annotated) {
      appendf(out, "reduce stragglers:\n");
      for (const auto& task : a.slowest_reduce_tasks) {
        appendf(out, "  partition %-5u %9.3fs", task.id, seconds(task.dur_ns));
        if (task.shuffled_bytes > 0) {
          appendf(out, "  %10.1f KB shuffled",
                  static_cast<double>(task.shuffled_bytes) / 1024.0);
        }
        if (!task.heavy_key.empty()) {
          appendf(out, "  heavy key \"%s\"", task.heavy_key.c_str());
        }
        appendf(out, "\n");
      }
    }
  }

  for (const auto& drops : a.ring_drops) {
    appendf(out, "ring overflow: pid %u tid %u dropped %llu events\n",
            drops.pid, drops.tid,
            static_cast<unsigned long long>(drops.dropped));
  }
  if (!a.unknown_event_names.empty()) {
    appendf(out, "unknown event names:");
    for (const auto& name : a.unknown_event_names) {
      appendf(out, " %s", name.c_str());
    }
    appendf(out, "\n");
  }
  return out;
}

std::string format_analysis_json(const TraceAnalysis& a) {
  JsonWriter w;
  w.begin_object();
  w.field("job", a.job_name);
  w.field("num_events", static_cast<std::uint64_t>(a.num_events));
  w.field("wall_ns", a.wall_ns);
  w.field("dropped_events", a.dropped_events);
  w.field("telemetry_incomplete", a.telemetry_incomplete);
  w.key("phases").begin_array();
  for (const auto& phase : a.phases) {
    w.begin_object();
    w.field("name", phase.name);
    w.field("start_ns", phase.start_ns);
    w.field("dur_ns", phase.dur_ns);
    w.end_object();
  }
  w.end_array();
  w.key("critical_path").begin_array();
  for (const auto& segment : a.critical_path) {
    w.begin_object();
    w.field("label", segment.label);
    w.field("dur_ns", segment.dur_ns);
    w.end_object();
  }
  w.end_array();
  w.field("critical_path_ns", a.critical_path_ns);
  w.field("critical_path_coverage", a.critical_path_coverage());
  w.key("op_totals").begin_array();
  for (const auto& op : a.op_totals) {
    w.begin_object();
    w.field("name", op.name);
    w.field("total_ns", op.total_ns);
    w.field("count", op.count);
    w.end_object();
  }
  w.end_array();
  w.key("workers").begin_array();
  for (const auto& lane : a.workers) {
    w.begin_object();
    w.field("pid", lane.pid);
    w.field("name", lane.name);
    w.field("busy_ns", lane.busy_ns);
    w.field("window_ns", lane.window_ns);
    w.field("tasks", lane.tasks);
    w.field("idle_fraction", lane.idle_fraction);
    w.end_object();
  }
  w.end_array();
  w.key("slowest_map_tasks").begin_array();
  for (const auto& task : a.slowest_map_tasks) {
    w.begin_object();
    w.field("id", task.id);
    w.field("start_ns", task.start_ns);
    w.field("dur_ns", task.dur_ns);
    w.end_object();
  }
  w.end_array();
  w.field("median_map_task_ns", a.median_map_task_ns);
  w.key("slowest_reduce_tasks").begin_array();
  for (const auto& task : a.slowest_reduce_tasks) {
    w.begin_object();
    w.field("id", task.id);
    w.field("start_ns", task.start_ns);
    w.field("dur_ns", task.dur_ns);
    w.field("heavy_key", task.heavy_key);
    w.field("shuffled_bytes", task.shuffled_bytes);
    w.end_object();
  }
  w.end_array();
  w.field("median_reduce_task_ns", a.median_reduce_task_ns);
  w.key("ring_drops").begin_array();
  for (const auto& drops : a.ring_drops) {
    w.begin_object();
    w.field("pid", drops.pid);
    w.field("tid", drops.tid);
    w.field("dropped", drops.dropped);
    w.end_object();
  }
  w.end_array();
  w.key("unknown_event_names").begin_array();
  for (const auto& name : a.unknown_event_names) w.value(name);
  w.end_array();
  w.end_object();
  return w.take();
}

// ---- trace file loading ---------------------------------------------------

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::FILE* file = std::fopen(path.string().c_str(), "rb");
  if (file == nullptr) throw IoError("cannot open " + path.string());
  std::string contents;
  char buffer[65536];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) throw IoError("read failed on " + path.string());
  return contents;
}

/// Shared interning across one load so repeated names cost one pool slot.
struct Interner {
  TraceData& trace;
  std::unordered_map<std::string, const char*> seen;

  const char* operator()(const std::string& s) {
    auto it = seen.find(s);
    if (it != seen.end()) return it->second;
    const char* p = trace.intern(s);
    seen.emplace(s, p);
    return p;
  }
};

void read_args(const JsonValue& obj, TraceEvent& e, Interner& intern) {
  const JsonValue* args = obj.get("args");
  if (args == nullptr || !args->is_object()) return;
  for (const auto& [name, value] : args->members()) {
    if (e.num_args >= 3) break;
    e.arg_names[e.num_args] = intern(name);
    e.args[e.num_args] = value.number_or(0);
    ++e.num_args;
  }
}

void load_chrome_trace(const JsonValue& doc, TraceData& trace,
                       Interner& intern) {
  const JsonValue* events = doc.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw FormatError("trace file has no traceEvents array");
  }
  for (const JsonValue& ev : events->array()) {
    if (!ev.is_object()) throw FormatError("trace event is not an object");
    const JsonValue* ph = ev.get("ph");
    const std::string& kind = ph != nullptr ? ph->string_value() : "";
    const auto pid = static_cast<std::uint32_t>(
        ev.get("pid") != nullptr ? ev.get("pid")->number_or(0) : 0);
    const auto tid = static_cast<std::uint32_t>(
        ev.get("tid") != nullptr ? ev.get("tid")->number_or(0) : 0);
    const JsonValue* name = ev.get("name");
    const std::string& name_str =
        name != nullptr ? name->string_value() : std::string();
    if (kind == "M") {
      const JsonValue* args = ev.get("args");
      const JsonValue* arg_name =
          args != nullptr ? args->get("name") : nullptr;
      if (arg_name == nullptr) continue;
      if (name_str == "process_name") {
        trace.process_names.emplace_back(pid, arg_name->string_value());
      } else if (name_str == "thread_name") {
        trace.thread_names.push_back({pid, tid, arg_name->string_value()});
      }
      continue;
    }
    TraceEvent e;
    if (kind == "X") {
      e.kind = EventKind::kSpan;
      const JsonValue* dur = ev.get("dur");
      e.dur_ns = to_u64((dur != nullptr ? dur->number_or(0) : 0) * 1000.0);
    } else if (kind == "i") {
      e.kind = EventKind::kInstant;
    } else if (kind == "C") {
      e.kind = EventKind::kCounter;
    } else {
      continue;  // phase types we never emit
    }
    e.name = intern(name_str.empty() ? "?" : name_str);
    const JsonValue* cat = ev.get("cat");
    e.category = intern(cat != nullptr ? cat->string_value() : "textmr");
    const JsonValue* ts = ev.get("ts");
    e.ts_ns = to_u64((ts != nullptr ? ts->number_or(0) : 0) * 1000.0);
    e.pid = pid;
    e.tid = tid;
    read_args(ev, e, intern);
    trace.events.push_back(e);
  }
  const JsonValue* other = doc.get("otherData");
  if (other != nullptr && other->is_object()) {
    const JsonValue* job = other->get("job");
    if (job != nullptr) trace.job_name = job->string_value();
    const JsonValue* dropped = other->get("dropped_events");
    if (dropped != nullptr) trace.dropped_events = to_u64(dropped->number_or(0));
    const JsonValue* incomplete = other->get("telemetry_incomplete");
    if (incomplete != nullptr) trace.incomplete = incomplete->bool_or(false);
    const JsonValue* rings = other->get("dropped_rings");
    if (rings != nullptr && rings->is_array()) {
      for (const JsonValue& ring : rings->array()) {
        TraceData::RingDrops drops;
        if (const JsonValue* v = ring.get("pid")) {
          drops.pid = static_cast<std::uint32_t>(v->number_or(0));
        }
        if (const JsonValue* v = ring.get("tid")) {
          drops.tid = static_cast<std::uint32_t>(v->number_or(0));
        }
        if (const JsonValue* v = ring.get("dropped")) {
          drops.dropped = to_u64(v->number_or(0));
        }
        trace.ring_drops.push_back(drops);
      }
    }
  }
}

void load_jsonl_trace(std::string_view contents, TraceData& trace,
                      Interner& intern) {
  std::size_t line_no = 0;
  while (!contents.empty()) {
    const std::size_t eol = contents.find('\n');
    const std::string_view line = contents.substr(0, eol);
    contents.remove_prefix(eol == std::string_view::npos ? contents.size()
                                                         : eol + 1);
    ++line_no;
    if (line.empty()) continue;
    const auto parsed = JsonValue::parse(line);
    if (!parsed.has_value() || !parsed->is_object()) {
      throw FormatError("trace JSONL line " + std::to_string(line_no) +
                        " is not a JSON object");
    }
    const JsonValue& ev = *parsed;
    TraceEvent e;
    const JsonValue* kind = ev.get("kind");
    const std::string& kind_str =
        kind != nullptr ? kind->string_value() : std::string();
    if (kind_str == "span") {
      e.kind = EventKind::kSpan;
    } else if (kind_str == "counter") {
      e.kind = EventKind::kCounter;
    } else {
      e.kind = EventKind::kInstant;
    }
    const JsonValue* name = ev.get("name");
    e.name = intern(name != nullptr && !name->string_value().empty()
                        ? name->string_value()
                        : "?");
    const JsonValue* cat = ev.get("cat");
    e.category = intern(cat != nullptr ? cat->string_value() : "textmr");
    if (const JsonValue* v = ev.get("ts_ns")) e.ts_ns = to_u64(v->number_or(0));
    if (const JsonValue* v = ev.get("dur_ns")) {
      e.dur_ns = to_u64(v->number_or(0));
    }
    if (const JsonValue* v = ev.get("pid")) {
      e.pid = static_cast<std::uint32_t>(v->number_or(0));
    }
    if (const JsonValue* v = ev.get("tid")) {
      e.tid = static_cast<std::uint32_t>(v->number_or(0));
    }
    read_args(ev, e, intern);
    trace.events.push_back(e);
  }
}

}  // namespace

TraceData load_trace_file(const std::filesystem::path& path) {
  const std::string contents = read_file(path);
  TraceData trace;
  trace.enabled = true;
  Interner intern{trace, {}};
  std::size_t first = 0;
  while (first < contents.size() &&
         (contents[first] == ' ' || contents[first] == '\t' ||
          contents[first] == '\n' || contents[first] == '\r')) {
    ++first;
  }
  if (first >= contents.size()) {
    throw FormatError("trace file " + path.string() + " is empty");
  }
  // A Chrome trace is one {"traceEvents": ...} document; JSONL lines are
  // themselves objects, so sniff the first payload key instead of the
  // first byte.
  const bool chrome =
      contents.compare(first, 1, "{") == 0 &&
      contents.find("\"traceEvents\"", first) != std::string::npos;
  if (chrome) {
    const auto doc = JsonValue::parse(contents);
    if (!doc.has_value() || !doc->is_object()) {
      throw FormatError("trace file " + path.string() +
                        " is not valid JSON");
    }
    load_chrome_trace(*doc, trace, intern);
  } else {
    load_jsonl_trace(contents, trace, intern);
  }
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  return trace;
}

}  // namespace textmr::obs
