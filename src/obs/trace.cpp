#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace textmr::obs {

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> events;
  events.reserve(ring_.size());
  if (dropped_ == drained_dropped_) {
    // No overwrite since the last drain: the ring is in record order.
    events.assign(ring_.begin(), ring_.end());
  } else {
    // The ring wrapped: oldest surviving event sits at next_overwrite_.
    events.insert(events.end(), ring_.begin() + next_overwrite_, ring_.end());
    events.insert(events.end(), ring_.begin(),
                  ring_.begin() + next_overwrite_);
  }
  return events;
}

TraceBuffer::Drained TraceBuffer::drain() {
  Drained out;
  out.events = snapshot();
  out.dropped = dropped_ - drained_dropped_;
  drained_dropped_ = dropped_;
  ring_.clear();
  next_overwrite_ = 0;
  return out;
}

TraceCollector::TraceCollector(TraceConfig config)
    : config_(config), epoch_ns_(monotonic_ns()) {
  if (config_.ring_capacity < 64) config_.ring_capacity = 64;
}

TraceBuffer* TraceCollector::make_buffer(std::uint32_t pid, std::uint32_t tid,
                                         std::string thread_name,
                                         std::string process_name) {
  textmr::MutexLock lock(mu_);
  buffers_.emplace_back(pid, tid, config_.ring_capacity);
  thread_names_.push_back({pid, tid, std::move(thread_name)});
  if (!process_name.empty()) {
    const bool known =
        std::any_of(process_names_.begin(), process_names_.end(),
                    [pid](const auto& entry) { return entry.first == pid; });
    if (!known) process_names_.emplace_back(pid, std::move(process_name));
  }
  return &buffers_.back();
}

TraceData TraceCollector::drain_locked() {
  TraceData data;
  data.enabled = true;
  data.job_name = job_name_;
  data.epoch_ns = epoch_ns_;
  // Names ship exactly once: the first drain after a ring registers
  // carries its name, later drains carry nothing (merge_trace dedupes
  // process names anyway, but not thread names).
  data.process_names = std::move(process_names_);
  data.thread_names = std::move(thread_names_);
  process_names_.clear();
  thread_names_.clear();
  for (auto& buffer : buffers_) {
    TraceBuffer::Drained drained = buffer.drain();
    data.events.insert(data.events.end(), drained.events.begin(),
                       drained.events.end());
    data.dropped_events += drained.dropped;
    if (drained.dropped > 0) {
      data.ring_drops.push_back(
          TraceData::RingDrops{buffer.pid(), buffer.tid(), drained.dropped});
    }
  }
  std::stable_sort(data.events.begin(), data.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return data;
}

TraceData TraceCollector::drain() {
  textmr::MutexLock lock(mu_);
  return drain_locked();
}

TraceData TraceCollector::finish() {
  textmr::MutexLock lock(mu_);
  TraceData data = drain_locked();
  buffers_.clear();
  return data;
}

void merge_trace(TraceData& into, TraceData&& from) {
  if (!from.enabled) return;
  into.enabled = true;
  if (into.job_name.empty()) into.job_name = std::move(from.job_name);
  if (into.epoch_ns == 0 || (from.epoch_ns != 0 && from.epoch_ns < into.epoch_ns)) {
    into.epoch_ns = from.epoch_ns;
  }
  into.events.insert(into.events.end(), from.events.begin(), from.events.end());
  into.dropped_events += from.dropped_events;
  into.incomplete = into.incomplete || from.incomplete;
  for (const auto& drops : from.ring_drops) {
    auto it = std::find_if(into.ring_drops.begin(), into.ring_drops.end(),
                           [&drops](const TraceData::RingDrops& existing) {
                             return existing.pid == drops.pid &&
                                    existing.tid == drops.tid;
                           });
    if (it != into.ring_drops.end()) {
      it->dropped += drops.dropped;
    } else {
      into.ring_drops.push_back(drops);
    }
  }
  for (auto& entry : from.process_names) {
    const std::uint32_t pid = entry.first;
    const bool known =
        std::any_of(into.process_names.begin(), into.process_names.end(),
                    [pid](const auto& existing) { return existing.first == pid; });
    if (!known) into.process_names.push_back(std::move(entry));
  }
  into.thread_names.insert(into.thread_names.end(),
                           std::make_move_iterator(from.thread_names.begin()),
                           std::make_move_iterator(from.thread_names.end()));
  // Adopt the pool: the shared_ptrs move but the strings they own do not,
  // so the events' pointers stay valid.
  into.string_pool.insert(into.string_pool.end(),
                          std::make_move_iterator(from.string_pool.begin()),
                          std::make_move_iterator(from.string_pool.end()));
  std::stable_sort(into.events.begin(), into.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
}

void rebase_trace(TraceData& trace, std::int64_t offset_ns) {
  if (offset_ns == 0) return;
  const auto shift = [offset_ns](std::uint64_t ts) -> std::uint64_t {
    const auto t = static_cast<std::int64_t>(ts) - offset_ns;
    return t < 0 ? 0 : static_cast<std::uint64_t>(t);
  };
  for (TraceEvent& e : trace.events) e.ts_ns = shift(e.ts_ns);
  trace.epoch_ns = shift(trace.epoch_ns);
}

namespace {

double to_us(std::uint64_t ns, std::uint64_t epoch_ns) {
  return static_cast<double>(ns - std::min(ns, epoch_ns)) * 1e-3;
}

void write_args(JsonWriter& w, const TraceEvent& e) {
  w.key("args").begin_object();
  for (std::uint8_t i = 0; i < e.num_args; ++i) {
    w.field(e.arg_names[i], e.args[i]);
  }
  w.end_object();
}

void write_event(JsonWriter& w, const TraceEvent& e, std::uint64_t epoch_ns) {
  w.begin_object();
  switch (e.kind) {
    case EventKind::kSpan:
      w.field("ph", "X");
      w.field("dur", static_cast<double>(e.dur_ns) * 1e-3);
      break;
    case EventKind::kInstant:
      w.field("ph", "i");
      w.field("s", "t");  // thread-scoped instant
      break;
    case EventKind::kCounter:
      w.field("ph", "C");
      break;
  }
  w.field("name", e.name != nullptr ? e.name : "?");
  w.field("cat", e.category != nullptr ? e.category : "textmr");
  w.field("ts", to_us(e.ts_ns, epoch_ns));
  w.field("pid", e.pid);
  w.field("tid", e.tid);
  write_args(w, e);
  w.end_object();
}

}  // namespace

std::string format_chrome_trace(const TraceData& trace) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [pid, name] : trace.process_names) {
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "process_name");
    w.field("pid", pid);
    w.field("tid", std::uint64_t{0});
    w.key("args").begin_object().field("name", name).end_object();
    w.end_object();
  }
  for (const auto& thread : trace.thread_names) {
    w.begin_object();
    w.field("ph", "M");
    w.field("name", "thread_name");
    w.field("pid", thread.pid);
    w.field("tid", thread.tid);
    w.key("args").begin_object().field("name", thread.name).end_object();
    w.end_object();
  }
  for (const auto& event : trace.events) {
    write_event(w, event, trace.epoch_ns);
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.field("job", trace.job_name);
  w.field("dropped_events", trace.dropped_events);
  w.field("telemetry_incomplete", trace.incomplete);
  w.key("dropped_rings").begin_array();
  for (const auto& drops : trace.ring_drops) {
    w.begin_object();
    w.field("pid", drops.pid);
    w.field("tid", drops.tid);
    w.field("dropped", drops.dropped);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  return w.take();
}

std::string format_trace_jsonl(const TraceData& trace) {
  std::string out;
  for (const auto& e : trace.events) {
    JsonWriter w;
    w.begin_object();
    switch (e.kind) {
      case EventKind::kSpan: w.field("kind", "span"); break;
      case EventKind::kInstant: w.field("kind", "instant"); break;
      case EventKind::kCounter: w.field("kind", "counter"); break;
    }
    w.field("name", e.name != nullptr ? e.name : "?");
    w.field("cat", e.category != nullptr ? e.category : "textmr");
    w.field("ts_ns", e.ts_ns - std::min(e.ts_ns, trace.epoch_ns));
    if (e.kind == EventKind::kSpan) w.field("dur_ns", e.dur_ns);
    w.field("pid", e.pid);
    w.field("tid", e.tid);
    write_args(w, e);
    w.end_object();
    out += w.take();
    out += '\n';
  }
  return out;
}

void write_file(const std::filesystem::path& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.string().c_str(), "wb");
  if (file == nullptr) {
    throw IoError("cannot create " + path.string());
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  const int close_rc = std::fclose(file);
  if (written != contents.size() || close_rc != 0) {
    throw IoError("short write to " + path.string());
  }
}

std::vector<CounterSample> counter_series(const TraceData& trace,
                                          std::string_view series) {
  std::vector<CounterSample> samples;
  for (const auto& e : trace.events) {
    if (e.kind != EventKind::kCounter || e.name == nullptr ||
        series != e.name) {
      continue;
    }
    samples.push_back(CounterSample{
        e.ts_ns - std::min(e.ts_ns, trace.epoch_ns), e.pid, e.args[0]});
  }
  return samples;
}

std::size_t count_events(const TraceData& trace, std::string_view name) {
  std::size_t count = 0;
  for (const auto& e : trace.events) {
    if (e.name != nullptr && name == e.name) ++count;
  }
  return count;
}

}  // namespace textmr::obs
