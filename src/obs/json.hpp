#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace textmr::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters as \u00XX; UTF-8 payload bytes pass through).
void append_json_escaped(std::string& out, std::string_view s);

/// Streaming JSON writer used by every machine-readable export (job
/// metrics, trace files, bench artifacts). No allocation beyond the
/// output string; enforces well-formedness structurally (keys only in
/// objects, commas inserted automatically).
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("WordCount");
///   w.key("ops").begin_object().key("sort").value(123u).end_object();
///   w.end_object();
///   std::string json = w.take();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next call must supply its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices a pre-serialized JSON document in value position. The caller
  /// vouches for its validity (e.g. output of another JsonWriter).
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document. Caller is responsible for having closed
  /// every object/array.
  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: number of values written at that level.
  // after_key_ suppresses the comma/count for the value following key().
  std::basic_string<std::uint32_t> counts_ = {0};
  bool after_key_ = false;
};

/// Minimal full-document JSON validity checker (RFC 8259 grammar, depth
/// capped at 256). Used by tests and the CI smoke bench to prove that
/// exported artifacts parse; not a general-purpose parser.
bool json_valid(std::string_view text);

}  // namespace textmr::obs
