#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace textmr::obs {

/// Appends `s` to `out` with JSON string escaping (quotes, backslash,
/// control characters as \u00XX; UTF-8 payload bytes pass through).
void append_json_escaped(std::string& out, std::string_view s);

/// Streaming JSON writer used by every machine-readable export (job
/// metrics, trace files, bench artifacts). No allocation beyond the
/// output string; enforces well-formedness structurally (keys only in
/// objects, commas inserted automatically).
///
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("WordCount");
///   w.key("ops").begin_object().key("sort").value(123u).end_object();
///   w.end_object();
///   std::string json = w.take();
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Writes an object key; the next call must supply its value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(const std::string& v) {
    return value(std::string_view(v));
  }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) {
    return value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splices a pre-serialized JSON document in value position. The caller
  /// vouches for its validity (e.g. output of another JsonWriter).
  JsonWriter& raw(std::string_view json);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// The finished document. Caller is responsible for having closed
  /// every object/array.
  std::string take() { return std::move(out_); }
  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  // One entry per open container: number of values written at that level.
  // after_key_ suppresses the comma/count for the value following key().
  std::basic_string<std::uint32_t> counts_ = {0};
  bool after_key_ = false;
};

/// Minimal full-document JSON validity checker (RFC 8259 grammar, depth
/// capped at 256). Used by tests and the CI smoke bench to prove that
/// exported artifacts parse; not a general-purpose parser.
bool json_valid(std::string_view text);

/// Parsed JSON document node (recursive-descent, same grammar and depth
/// cap as json_valid). Built for reading back the engine's own exports —
/// textmr-analyze loads merged trace files through this — so numbers are
/// doubles (trace timestamps fit in the 2^53 integer range) and object
/// member order is preserved as written.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Whole-document parse; nullopt on malformed input or trailing bytes.
  static std::optional<JsonValue> parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_or(bool fallback) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  double number_or(double fallback) const {
    return type_ == Type::kNumber ? number_ : fallback;
  }
  /// Empty string when this is not a string node.
  const std::string& string_value() const { return string_; }
  /// Empty for non-arrays.
  const std::vector<JsonValue>& array() const { return array_; }
  /// Object members in document order; empty for non-objects.
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member with the given key, or nullptr (also for non-objects).
  const JsonValue* get(std::string_view key) const;

  // Node construction (parser + tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> v);
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace textmr::obs
