#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.hpp"

namespace textmr::obs {

/// Offline trace analysis (ISSUE 6): turns one merged job trace into the
/// paper's measurement artifacts — per-phase wall breakdown (Fig. 2
/// style), per-worker busy/idle time (Table II style), straggler
/// attribution and the job's critical path (Fig. 9 style wait
/// decomposition) — as derived numbers from any real run, instead of
/// one-off instrumented builds. Library half of the textmr-analyze CLI.

struct TraceAnalysis {
  std::string job_name;
  std::size_t num_events = 0;
  std::uint64_t start_ns = 0;  // earliest event timestamp (absolute)
  std::uint64_t end_ns = 0;    // latest event end (absolute)
  std::uint64_t wall_ns = 0;   // end_ns - start_ns
  std::uint64_t dropped_events = 0;
  std::vector<TraceData::RingDrops> ring_drops;
  bool telemetry_incomplete = false;

  /// Top-level timeline partition. Starts at 0 (relative to start_ns);
  /// contiguous and exhaustive when the driver phase spans are present.
  struct Phase {
    std::string name;
    std::uint64_t start_ns = 0;  // relative to start_ns
    std::uint64_t dur_ns = 0;
  };
  std::vector<Phase> phases;

  /// Serialized time per leaf work op (spill_sort, shuffle, ...),
  /// summed across all tasks and workers, sorted by total descending.
  struct OpTotal {
    std::string name;
    std::uint64_t total_ns = 0;
    std::uint64_t count = 0;
  };
  std::vector<OpTotal> op_totals;

  /// Per-worker utilization within the job's active window (cluster
  /// traces only — local-engine traces have no worker lanes).
  struct WorkerLane {
    std::uint32_t pid = 0;
    std::string name;
    std::uint64_t busy_ns = 0;  // sum of map_exec/reduce_exec spans
    std::uint64_t window_ns = 0;
    std::uint64_t tasks = 0;  // exec spans (includes failed attempts)
    double idle_fraction = 0.0;
  };
  std::vector<WorkerLane> workers;

  /// One task attempt's span, for straggler attribution. Reduce spans
  /// additionally carry the skew annotations when the trace has them:
  /// `heavy_key` comes from the "reduce_<p> key=<k>" process name a
  /// dedicated skew partition registers, and `shuffled_bytes` from the
  /// driver's per-partition "partition_bytes" instants — together they
  /// let the straggler table say *why* a reduce partition ran long.
  struct TaskSpan {
    std::uint32_t id = 0;        // map task id or reduce partition
    std::uint64_t start_ns = 0;  // relative to start_ns
    std::uint64_t dur_ns = 0;
    std::string heavy_key;             // reduce only; empty when not skewed
    std::uint64_t shuffled_bytes = 0;  // reduce only; 0 when not recorded
  };
  std::vector<TaskSpan> slowest_map_tasks;  // descending by duration
  std::vector<TaskSpan> slowest_reduce_tasks;
  std::uint64_t median_map_task_ns = 0;
  std::uint64_t median_reduce_task_ns = 0;

  /// The job's critical path: a contiguous chain of segments from first
  /// to last event whose durations sum to ~wall_ns. Within a phase the
  /// gating element is the task attempt that finished last.
  struct Segment {
    std::string label;
    std::uint64_t dur_ns = 0;
  };
  std::vector<Segment> critical_path;
  std::uint64_t critical_path_ns = 0;

  double critical_path_coverage() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(critical_path_ns) /
                              static_cast<double>(wall_ns);
  }

  /// Event names seen in the trace but missing from kKnownEventNames —
  /// nonempty means the table (and the lint check guarding it) rotted.
  std::vector<std::string> unknown_event_names;
};

TraceAnalysis analyze_trace(const TraceData& trace);

/// Human-readable report (the textmr-analyze default output).
std::string format_analysis(const TraceAnalysis& analysis);

/// Machine-readable variant (textmr-analyze --json).
std::string format_analysis_json(const TraceAnalysis& analysis);

/// Reads a trace file written by --trace (Chrome trace JSON) or
/// --trace-jsonl (one event object per line); the format is sniffed from
/// the first byte. Timestamps come back epoch-relative. Throws IoError
/// on unreadable files and FormatError on unparseable ones.
TraceData load_trace_file(const std::filesystem::path& path);

/// Every event name the engine records, in sorted order. tools/lint.py
/// cross-checks this table against the record_instant / record_counter /
/// SpanTimer call sites in the tree, so analyzer classification cannot
/// silently miss a new op.
extern const char* const kKnownEventNames[];
extern const std::size_t kNumKnownEventNames;
bool known_event_name(std::string_view name);

}  // namespace textmr::obs
