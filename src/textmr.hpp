#pragma once

/// textmr — a text-centric MapReduce runtime with the two framework-side
/// optimizations of Hsiao, Cafarella & Narayanasamy, "Reducing MapReduce
/// Abstraction Costs for Text-Centric Applications" (ICPP 2014):
/// frequency-buffering (§III) and the spill-matcher (§IV).
///
/// Umbrella header: pulls in the whole public API. Link textmr::textmr.
///
/// Quick start (see examples/quickstart.cpp for the runnable version):
///
///   textmr::mr::JobSpec spec;
///   spec.inputs = textmr::io::make_splits("corpus.txt", 32 << 20);
///   spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
///   spec.combiner = [] { return std::make_unique<WordCountCombiner>(); };
///   spec.reducer = [] { return std::make_unique<WordCountReducer>(); };
///   spec.use_spill_matcher = true;         // paper §IV
///   spec.freqbuf.enabled = true;           // paper §III
///   auto result = textmr::mr::LocalEngine().run(spec);

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/harmonic.hpp"
#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/tempdir.hpp"
#include "common/varint.hpp"
#include "common/zipf.hpp"

#include "obs/analyze.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

#include "io/dfs.hpp"
#include "io/line_reader.hpp"
#include "io/record.hpp"
#include "io/spill_file.hpp"

#include "sketch/exact_counter.hpp"
#include "sketch/lru_tracker.hpp"
#include "sketch/space_saving.hpp"
#include "sketch/zipf_estimator.hpp"

#include "spillmatch/spill_matcher.hpp"

#include "text/tokenize.hpp"

#include "freqbuf/controller.hpp"
#include "freqbuf/frequent_key_table.hpp"

#include "cluster/engine.hpp"
#include "cluster/protocol.hpp"
#include "cluster/straggler.hpp"
#include "cluster/worker.hpp"

#include "mr/engine.hpp"
#include "mr/hash_combine.hpp"
#include "mr/job.hpp"
#include "mr/map_task.hpp"
#include "mr/merger.hpp"
#include "mr/metrics.hpp"
#include "mr/partitioner.hpp"
#include "mr/record_arena.hpp"
#include "mr/reduce_task.hpp"
#include "mr/spill_buffer.hpp"
#include "mr/spill_sorter.hpp"
#include "mr/types.hpp"

#include "sim/cluster.hpp"
#include "sim/pipeline.hpp"
#include "sim/profile.hpp"

#include "apps/access_log.hpp"
#include "apps/app_suite.hpp"
#include "apps/inverted_index.hpp"
#include "apps/pagerank.hpp"
#include "apps/pos_tag.hpp"
#include "apps/syntext.hpp"
#include "apps/tokenizer.hpp"
#include "apps/wordcount.hpp"

#include "textgen/corpus_gen.hpp"
#include "textgen/graphgen.hpp"
#include "textgen/loggen.hpp"
