#include "textgen/graphgen.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace textmr::textgen {

std::string page_url(std::uint64_t page_id) {
  return "www.page" + std::to_string(page_id) + ".example.org";
}

WebGraphStats generate_web_graph(const WebGraphSpec& spec,
                                 const std::string& path) {
  TEXTMR_CHECK(spec.num_pages >= 2, "web graph needs >= 2 pages");
  TEXTMR_CHECK(spec.min_out_degree >= 1 &&
                   spec.min_out_degree <= spec.max_out_degree,
               "bad out-degree range");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw IoError("cannot create graph file " + path);

  WebGraphStats stats;
  Xoshiro256 rng(spec.seed);
  ZipfDistribution target_zipf(spec.num_pages, spec.link_alpha);

  std::string buffer;
  buffer.reserve(1 << 18);
  char rank_buf[32];
  std::snprintf(rank_buf, sizeof(rank_buf), "%.6f", spec.initial_rank);

  const std::uint32_t degree_span =
      spec.max_out_degree - spec.min_out_degree + 1;
  for (std::uint64_t page = 1; page <= spec.num_pages; ++page) {
    buffer += page_url(page);
    buffer.push_back('\t');
    buffer += rank_buf;
    buffer.push_back('\t');
    const std::uint32_t degree =
        spec.min_out_degree +
        static_cast<std::uint32_t>(rng.next_below(degree_span));
    for (std::uint32_t e = 0; e < degree; ++e) {
      std::uint64_t target = target_zipf(rng);
      if (target == page) target = (target % spec.num_pages) + 1;
      if (e > 0) buffer.push_back(',');
      buffer += page_url(target);
      stats.edges += 1;
    }
    buffer.push_back('\n');
    if (buffer.size() >= (1 << 18)) {
      if (std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
        std::fclose(file);
        throw IoError("short write to graph file " + path);
      }
      stats.bytes += buffer.size();
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    if (std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
      std::fclose(file);
      throw IoError("short write to graph file " + path);
    }
    stats.bytes += buffer.size();
  }
  std::fclose(file);
  stats.pages = spec.num_pages;
  return stats;
}

}  // namespace textmr::textgen
