#include "textgen/corpus_gen.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace textmr::textgen {

std::string word_for_rank(std::uint64_t rank) {
  TEXTMR_CHECK(rank >= 1, "word ranks are 1-based");
  // Bijective base-26 ('a'..'z'), so every rank has a unique word and
  // short words belong to frequent ranks.
  std::string word;
  std::uint64_t n = rank;
  while (n > 0) {
    const std::uint64_t digit = (n - 1) % 26;
    word.push_back(static_cast<char>('a' + digit));
    n = (n - 1) / 26;
  }
  return word;  // digits are reversed, but uniqueness is all that matters
}

CorpusStream::CorpusStream(const CorpusSpec& spec)
    : spec_(spec), zipf_(spec.vocabulary, spec.alpha), rng_(spec.seed) {
  TEXTMR_CHECK(spec.min_words_per_line >= 1 &&
                   spec.min_words_per_line <= spec.max_words_per_line,
               "bad words-per-line range");
}

bool CorpusStream::next_line(std::string& line) {
  line.clear();
  if (words_emitted_ >= spec_.total_words) return false;
  const std::uint32_t span =
      spec_.max_words_per_line - spec_.min_words_per_line + 1;
  std::uint32_t words_in_line =
      spec_.min_words_per_line +
      static_cast<std::uint32_t>(rng_.next_below(span));
  words_in_line = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      words_in_line, spec_.total_words - words_emitted_));
  for (std::uint32_t i = 0; i < words_in_line; ++i) {
    if (i > 0) line.push_back(' ');
    const std::uint64_t rank = zipf_(rng_);
    std::string word = word_for_rank(rank);
    if (spec_.decoration_rate > 0.0 &&
        rng_.next_double() < spec_.decoration_rate) {
      // Decorations exercise tokenizer normalization without changing
      // the underlying word distribution.
      word[0] = static_cast<char>(word[0] - 'a' + 'A');
      switch (rng_.next_below(4)) {
        case 0: word.push_back('.'); break;
        case 1: word.push_back(','); break;
        case 2: word.push_back('!'); break;
        default: break;
      }
    }
    line += word;
  }
  words_emitted_ += words_in_line;
  return true;
}

CorpusStats generate_corpus(const CorpusSpec& spec, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) throw IoError("cannot create corpus file " + path);

  CorpusStream stream(spec);
  CorpusStats stats;
  std::string line;
  std::string buffer;
  buffer.reserve(1 << 18);
  while (stream.next_line(line)) {
    buffer += line;
    buffer.push_back('\n');
    stats.lines += 1;
    if (buffer.size() >= (1 << 18)) {
      if (std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
        std::fclose(file);
        throw IoError("short write to corpus file " + path);
      }
      stats.bytes += buffer.size();
      buffer.clear();
    }
  }
  if (!buffer.empty()) {
    if (std::fwrite(buffer.data(), 1, buffer.size(), file) != buffer.size()) {
      std::fclose(file);
      throw IoError("short write to corpus file " + path);
    }
    stats.bytes += buffer.size();
  }
  std::fclose(file);
  stats.words = stream.words_emitted();
  return stats;
}

}  // namespace textmr::textgen
