#pragma once

#include <cstdint>
#include <string>

namespace textmr::textgen {

/// Synthetic web-graph generator for PageRank — the stand-in for the
/// paper's 10 M-page crawl built with Pavlo et al.'s tools. Link targets
/// follow Zipf(alpha = 1) per Adamic & Huberman (§V-A2), i.e. popular
/// pages attract most in-links.
///
/// Record format (one page per line):
///   url \t pagerank \t outlink1,outlink2,...
struct WebGraphSpec {
  std::uint64_t num_pages = 100'000;
  double link_alpha = 1.0;
  std::uint32_t min_out_degree = 1;
  std::uint32_t max_out_degree = 20;
  std::uint64_t seed = 13;
  double initial_rank = 1.0;  // uniform initial PageRank mass per page
};

struct WebGraphStats {
  std::uint64_t pages = 0;
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
};

/// URL naming shared with the PageRank application.
std::string page_url(std::uint64_t page_id);

WebGraphStats generate_web_graph(const WebGraphSpec& spec,
                                 const std::string& path);

}  // namespace textmr::textgen
