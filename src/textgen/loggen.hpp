#pragma once

#include <cstdint>
#include <string>

namespace textmr::textgen {

/// Pavlo-et-al.-style web server access log generator — the stand-in for
/// the benchmark data of "A Comparison of Approaches to Large-Scale Data
/// Analysis" used by AccessLogSum and AccessLogJoin. Two files:
///
///   UserVisits: sourceIP|destURL|visitDate|adRevenue|userAgent|
///               countryCode|languageCode|searchWord|duration
///   Rankings:   pageURL|pageRank|avgDuration
///
/// destURL popularity follows Zipf(0.8) per Breslau et al., exactly the
/// modification the paper makes to the original generator (§V-A2).
struct AccessLogSpec {
  std::uint64_t num_visits = 1'000'000;
  std::uint64_t num_urls = 600'000;   // paper: ~600,000 URLs
  double url_alpha = 0.8;             // Breslau et al. web-request skew
  std::uint64_t seed = 7;
};

struct AccessLogStats {
  std::uint64_t visit_records = 0;
  std::uint64_t visit_bytes = 0;
  std::uint64_t ranking_records = 0;
  std::uint64_t ranking_bytes = 0;
};

/// The canonical URL string for a URL id (1-based rank in the popularity
/// order).
std::string url_for_rank(std::uint64_t rank);

AccessLogStats generate_access_log(const AccessLogSpec& spec,
                                   const std::string& user_visits_path,
                                   const std::string& rankings_path);

/// Field accessors shared with the AccessLog applications (they parse
/// the same format).
inline constexpr char kLogFieldSep = '|';

}  // namespace textmr::textgen
