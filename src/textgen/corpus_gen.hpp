#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace textmr::textgen {

/// Deterministic synthetic text corpus with a Zipfian word distribution —
/// the stand-in for the paper's 8.52 GB Wikipedia 2008 dump (1.45 B words,
/// 24.7 M distinct, Fig. 3). The frequency *distribution* is what the
/// paper's optimizations exploit, and this generator matches it: word
/// ranks are drawn Zipf(alpha), and the word for rank r is a unique
/// base-26 token (so low ranks get short words, like real text).
struct CorpusSpec {
  std::uint64_t total_words = 1'000'000;
  std::uint64_t vocabulary = 50'000;
  double alpha = 1.0;          // Zipf exponent (Fig. 3 shows ~1 for text)
  std::uint64_t seed = 42;
  std::uint32_t min_words_per_line = 8;
  std::uint32_t max_words_per_line = 16;
  /// Fraction of words that get sentence-like decoration (capitalization,
  /// trailing punctuation) so tokenizers have something to normalize.
  double decoration_rate = 0.1;
};

struct CorpusStats {
  std::uint64_t words = 0;
  std::uint64_t lines = 0;
  std::uint64_t bytes = 0;
};

/// The canonical word for a vocabulary rank (1-based): 'a'..'z' base-26
/// encoding, optionally padded. rank 1 -> "a", 27 -> "aa", etc.
std::string word_for_rank(std::uint64_t rank);

/// Streaming corpus source: next_line() produces lines until the word
/// budget is exhausted. Useful for feeding sketches directly in tests.
class CorpusStream {
 public:
  explicit CorpusStream(const CorpusSpec& spec);

  /// Appends the next line (without '\n') to `line`; returns false when
  /// the corpus is complete. `line` is cleared first.
  bool next_line(std::string& line);

  std::uint64_t words_emitted() const { return words_emitted_; }

 private:
  CorpusSpec spec_;
  ZipfDistribution zipf_;
  Xoshiro256 rng_;
  std::uint64_t words_emitted_ = 0;
};

/// Writes the whole corpus to a file.
CorpusStats generate_corpus(const CorpusSpec& spec, const std::string& path);

}  // namespace textmr::textgen
