#include "textgen/loggen.hpp"

#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace textmr::textgen {
namespace {

const char* kUserAgents[] = {"Mozilla/5.0", "Opera/9.80", "Lynx/2.8",
                             "Chrome/35.0", "Safari/537"};
const char* kCountries[] = {"USA", "DEU", "JPN", "BRA", "IND", "GBR", "FRA"};
const char* kLanguages[] = {"en", "de", "ja", "pt", "hi", "fr"};
const char* kSearchWords[] = {"map", "reduce", "spill", "buffer", "index",
                              "corpus", "rank", "query"};

class BufferedFile {
 public:
  explicit BufferedFile(const std::string& path) : path_(path) {
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr) throw IoError("cannot create " + path);
    buffer_.reserve((1 << 18) + 4096);
  }
  ~BufferedFile() {
    if (file_ != nullptr) std::fclose(file_);
  }

  void append(const std::string& line) {
    buffer_ += line;
    buffer_.push_back('\n');
    if (buffer_.size() >= (1 << 18)) flush();
  }

  std::uint64_t close() {
    flush();
    if (std::fclose(file_) != 0) {
      file_ = nullptr;
      throw IoError("close failed for " + path_);
    }
    file_ = nullptr;
    return bytes_;
  }

 private:
  void flush() {
    if (buffer_.empty()) return;
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), file_) !=
        buffer_.size()) {
      throw IoError("short write to " + path_);
    }
    bytes_ += buffer_.size();
    buffer_.clear();
  }

  std::string path_;
  std::FILE* file_;
  std::string buffer_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

std::string url_for_rank(std::uint64_t rank) {
  return "http://www.site" + std::to_string(rank) + ".example.com/page" +
         std::to_string(rank % 97) + ".html";
}

AccessLogStats generate_access_log(const AccessLogSpec& spec,
                                   const std::string& user_visits_path,
                                   const std::string& rankings_path) {
  TEXTMR_CHECK(spec.num_urls >= 1, "need at least one URL");
  AccessLogStats stats;
  Xoshiro256 rng(spec.seed);
  ZipfDistribution url_zipf(spec.num_urls, spec.url_alpha);

  {
    BufferedFile visits(user_visits_path);
    std::string line;
    for (std::uint64_t i = 0; i < spec.num_visits; ++i) {
      line.clear();
      const std::uint64_t url_rank = url_zipf(rng);
      // sourceIP
      line += std::to_string(1 + rng.next_below(254)) + "." +
              std::to_string(rng.next_below(256)) + "." +
              std::to_string(rng.next_below(256)) + "." +
              std::to_string(1 + rng.next_below(254));
      line.push_back(kLogFieldSep);
      line += url_for_rank(url_rank);
      line.push_back(kLogFieldSep);
      // visitDate within 2008, matching the paper's corpus era
      line += "2008-" + std::to_string(1 + rng.next_below(12)) + "-" +
              std::to_string(1 + rng.next_below(28));
      line.push_back(kLogFieldSep);
      // adRevenue in cents-precision dollars
      const double revenue =
          static_cast<double>(1 + rng.next_below(99999)) / 100.0;
      char revenue_buf[32];
      std::snprintf(revenue_buf, sizeof(revenue_buf), "%.2f", revenue);
      line += revenue_buf;
      line.push_back(kLogFieldSep);
      line += kUserAgents[rng.next_below(std::size(kUserAgents))];
      line.push_back(kLogFieldSep);
      line += kCountries[rng.next_below(std::size(kCountries))];
      line.push_back(kLogFieldSep);
      line += kLanguages[rng.next_below(std::size(kLanguages))];
      line.push_back(kLogFieldSep);
      line += kSearchWords[rng.next_below(std::size(kSearchWords))];
      line.push_back(kLogFieldSep);
      line += std::to_string(1 + rng.next_below(600));  // duration seconds
      visits.append(line);
    }
    stats.visit_bytes = visits.close();
    stats.visit_records = spec.num_visits;
  }

  {
    BufferedFile rankings(rankings_path);
    std::string line;
    for (std::uint64_t rank = 1; rank <= spec.num_urls; ++rank) {
      line.clear();
      line += url_for_rank(rank);
      line.push_back(kLogFieldSep);
      // pageRank loosely anti-correlated with popularity rank.
      line += std::to_string(1 + (spec.num_urls - rank) % 10000);
      line.push_back(kLogFieldSep);
      line += std::to_string(1 + rng.next_below(600));
      rankings.append(line);
    }
    stats.ranking_bytes = rankings.close();
    stats.ranking_records = spec.num_urls;
  }

  return stats;
}

}  // namespace textmr::textgen
