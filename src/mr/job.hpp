#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "freqbuf/controller.hpp"
#include "io/line_reader.hpp"
#include "io/spill_file.hpp"
#include "mr/map_task.hpp"
#include "mr/metrics.hpp"
#include "mr/reduce_task.hpp"
#include "mr/skew_partitioner.hpp"
#include "mr/types.hpp"
#include "obs/trace.hpp"
#include "spillmatch/spill_matcher.hpp"

namespace textmr::mr {

/// Complete description of one MapReduce job. This is the library's main
/// public configuration surface; see examples/quickstart.cpp.
struct JobSpec {
  std::string name = "job";

  /// Input splits (one map task each). Use io::make_splits / SimDfs to
  /// build them.
  std::vector<io::InputSplit> inputs;

  MapperFactory mapper;
  ReducerFactory reducer;
  /// Optional combiner (empty = none). Must be key-preserving and
  /// associative/commutative over values.
  ReducerFactory combiner;

  std::uint32_t num_reducers = 1;

  /// Total map-side memory budget per task. When frequency-buffering is
  /// enabled, `freqbuf.table_budget_fraction` of this is carved out for
  /// the frequent-key table and the spill buffer gets the rest, keeping
  /// the total fixed (paper §V-B2).
  std::size_t spill_buffer_bytes = 16u << 20;

  /// Fixed spill threshold (Hadoop's io.sort.spill.percent default 0.8);
  /// ignored when `use_spill_matcher` is true.
  double spill_threshold = 0.8;

  /// Enable the spill-matcher adaptive threshold (paper §IV).
  bool use_spill_matcher = false;

  /// Support (sort/combine/spill) threads per map task — the paper's
  /// "one or more support threads" (§IV-A). Default 1 matches Hadoop's
  /// 1-map/1-support structure and the §IV-C analysis; more threads let
  /// consume-bound apps overlap several spills.
  std::uint32_t support_threads = 1;

  /// Map-side combine strategy (DESIGN.md §15). kHash replaces the
  /// ring/sort/spill pipeline with per-task shard hash tables that
  /// combine on insert and radix-sort at flush time; support_threads,
  /// spill_threshold and use_spill_matcher are then inert (there is no
  /// ring to seal). Output stays byte-identical to kSort.
  CombineMode combine_mode = CombineMode::kSort;
  std::uint32_t hash_combine_shards = 8;
  /// Per-shard resident-byte watermark; 0 derives it from
  /// spill_buffer_bytes / hash_combine_shards (the tables inherit the
  /// ring's memory budget).
  std::size_t hash_combine_watermark_bytes = 0;
  /// Watermark breaches before a shard is demoted to the sort-spill path.
  std::uint32_t hash_combine_demote_flushes = 4;

  /// Frequency-buffering configuration (paper §III).
  freqbuf::FreqBufConfig freqbuf;

  Grouping grouping = Grouping::kSorted;
  io::SpillFormat spill_format = io::SpillFormat::kCompactVarint;

  /// Skew-aware partitioning (DESIGN.md §12): a driver-side sampling
  /// pre-pass finds heavy reduce keys, places them on dedicated
  /// reducers, splits ultra-heavy keys across several, and a finalize
  /// merge restores the canonical part-file layout — outputs stay
  /// byte-identical to a plain hash-partitioner run. Requires
  /// Grouping::kSorted.
  SkewConfig skew;

  /// Concurrent map tasks / reduce tasks. Each concurrent map worker
  /// models one node's map slot and gets its own NodeKeyCache.
  std::uint32_t map_parallelism = 1;
  std::uint32_t reduce_parallelism = 1;

  std::filesystem::path scratch_dir;  // required; intermediate runs live here
  std::filesystem::path output_dir;   // required; part-r-* files land here

  bool keep_intermediates = false;

  /// Task-level fault recovery (DESIGN.md §6): a map or reduce task that
  /// throws is cleaned up and re-executed on a fresh attempt id, up to
  /// this many attempts total; only then does the job abort (with
  /// TaskFailedError). 1 restores fail-fast behaviour.
  std::uint32_t max_task_attempts = 3;

  /// Base of the exponential backoff between attempts of one task:
  /// attempt k (1-based retry) sleeps base * 2^(k-1) milliseconds.
  /// 0 disables the sleep (tests).
  std::uint32_t retry_backoff_base_ms = 10;

  /// Structured tracing (see src/obs/trace.hpp). Off by default; when off
  /// every instrumentation hook is a single null-pointer check. When on,
  /// JobResult::trace carries the merged events for Chrome-trace / JSONL
  /// export.
  obs::TraceConfig trace;
};

/// Everything a job run produced.
struct JobResult {
  std::vector<std::filesystem::path> outputs;  // part-r-00000 ... in order
  JobMetrics metrics;
  Counters counters;  // user counters aggregated over all tasks

  /// Per-task details (for the instrumentation figures).
  struct MapTaskSummary {
    std::uint64_t wall_ns = 0;
    std::uint64_t pipeline_wall_ns = 0;
    std::uint64_t map_idle_ns = 0;
    std::uint64_t support_idle_ns = 0;
    std::uint64_t spills = 0;
    double final_spill_threshold = 0.0;
    double freq_sampling_fraction = 0.0;
  };
  std::vector<MapTaskSummary> map_tasks;

  /// Per-physical-reduce-task details, in partition order (the skew
  /// battery derives its slowest/median wall ratio from these).
  struct ReduceTaskSummary {
    std::uint32_t partition = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t shuffled_bytes = 0;
    std::uint64_t output_bytes = 0;
  };
  std::vector<ReduceTaskSummary> reduce_tasks;

  /// Trace events collected when JobSpec::trace.enabled was set
  /// (trace.enabled is false otherwise). Export with
  /// obs::format_chrome_trace / obs::format_trace_jsonl.
  obs::TraceData trace;
};

}  // namespace textmr::mr
