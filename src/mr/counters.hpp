#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace textmr::mr {

/// Hadoop-style user counters: named monotonically increasing values that
/// user map/combine/reduce code can bump, aggregated across all tasks
/// into JobResult::counters. Each task owns its instance (no locks);
/// the engine merges after the task finishes.
///
/// Counter names are created on first use. Typical uses: malformed
/// records skipped, domain events observed (see AccessLogSumMapper).
class Counters {
 public:
  void increment(std::string_view name, std::uint64_t by = 1) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      values_.emplace(std::string(name), by);
    } else {
      it->second += by;
    }
  }

  std::uint64_t value(std::string_view name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }

  bool empty() const { return values_.empty(); }

  /// Merge another task's counters into this aggregate.
  Counters& operator+=(const Counters& other) {
    for (const auto& [name, value] : other.values_) {
      values_[name] += value;
    }
    return *this;
  }

  const std::map<std::string, std::uint64_t, std::less<>>& all() const {
    return values_;
  }

 private:
  std::map<std::string, std::uint64_t, std::less<>> values_;
};

}  // namespace textmr::mr
