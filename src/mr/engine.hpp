#pragma once

#include "mr/job.hpp"

namespace textmr::mr {

/// Executes MapReduce jobs on the local machine with real threads: up to
/// `map_parallelism` concurrent map tasks (each with its own support
/// thread) followed by up to `reduce_parallelism` concurrent reduce
/// tasks. This is the measurement substrate for all per-operation
/// instrumentation; cluster-scale wall clocks are produced by textmr::sim
/// on top of the work quantities this engine measures.
class LocalEngine {
 public:
  /// Validates `spec`, runs the job, returns outputs + metrics.
  /// Throws ConfigError for invalid specs and propagates task errors.
  JobResult run(const JobSpec& spec);
};

}  // namespace textmr::mr
