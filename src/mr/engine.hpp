#pragma once

#include "mr/job.hpp"

namespace textmr::mr {

/// Executes MapReduce jobs on the local machine with real threads: up to
/// `map_parallelism` concurrent map tasks (each with its own support
/// thread) followed by up to `reduce_parallelism` concurrent reduce
/// tasks. This is the measurement substrate for all per-operation
/// instrumentation; cluster-scale wall clocks are produced by textmr::sim
/// on top of the work quantities this engine measures.
class LocalEngine {
 public:
  /// Validates `spec`, runs the job, returns outputs + metrics.
  ///
  /// Task failures (I/O errors, user-code exceptions — injected or real)
  /// are recovered by re-executing the failed task on a fresh attempt id,
  /// up to JobSpec::max_task_attempts times with exponential backoff; the
  /// dead attempt's scratch files are removed first so a retry never sees
  /// them. Throws ConfigError for invalid specs and TaskFailedError when
  /// a task exhausts its attempts.
  JobResult run(const JobSpec& spec);
};

}  // namespace textmr::mr
